// scriptctl — inspect a Script runtime from the command line.
//
// Post-mortem (files):
//   scriptctl inspect <snapshot.json> [--raw]     Inspector snapshot report
//   scriptctl flight <dump.flight.json> [--tail N] flight-recorder summary
//   scriptctl timeline <dump.timeline.json> [--raw] [--series PREFIX]
//                                               [--epochs N]
//                                                 time-series history report
//   scriptctl top --from <dump.timeline.json> [--inspect <snapshot.json>]
//                                                 one dashboard frame from
//                                                 committed artifacts (CI)
//   scriptctl watch --from <dump.timeline.json>   print a dump's recent
//                                                 events once
//
// Live (the same commands pointed at a debug socket — a scheduler armed
// with arm_debug_endpoint() or $SCRIPT_DEBUG_SOCK=<path>):
//   scriptctl top <socket> [--interval-ms N] [--count N] [--once]
//                                                 auto-refreshing dashboard:
//                                                 per-script rates,
//                                                 sparklines, SLO burn
//   scriptctl watch <socket> [--interval-ms N] [--count N]
//                                                 follow events as they
//                                                 happen
//   scriptctl inspect|timeline|metrics|health|ping <socket>
//                                                 one scrape
//
// The endpoint speaks a line protocol ("<cmd> [args]\n" →
// "ok <nbytes>\n<payload>" or "err <reason>\n"); requests are serviced
// at scheduler safepoints, so a paused program answers when it next
// reaches one. Every rendering is a library function
// (render_inspect_report / render_timeline_report / render_top_report /
// render_event_lines), so tests pin them without exec'ing this binary.
#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/inspector.hpp"
#include "obs/json.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_read.hpp"

namespace {

constexpr const char* kVersion = "0.8.0";

int usage() {
  std::fprintf(
      stderr,
      "usage: scriptctl <command> [args]\n"
      "\n"
      "  inspect <snapshot.json|socket> [--raw]\n"
      "  flight <dump.flight.json> [--tail N]\n"
      "  timeline <dump.timeline.json|socket> [--raw] [--series PREFIX]\n"
      "           [--epochs N]\n"
      "  top <socket> [--interval-ms N] [--count N] [--once]\n"
      "  top --from <dump.timeline.json> [--inspect <snapshot.json>]\n"
      "  watch <socket> [--interval-ms N] [--count N]\n"
      "  watch --from <dump.timeline.json>\n"
      "  metrics <socket|file>\n"
      "  health <socket>\n"
      "  ping <socket>\n"
      "\n"
      "  --help     this text (to stdout, exit 0)\n"
      "  --version  print the version\n");
  return 2;
}

bool slurp(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool is_socket(const char* path) {
  struct stat st{};
  return ::stat(path, &st) == 0 && S_ISSOCK(st.st_mode);
}

/// Blocking client for the debug endpoint's line protocol.
class DebugClient {
 public:
  ~DebugClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connect(const char* path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (std::strlen(path) >= sizeof(addr.sun_path)) return false;
    std::strcpy(addr.sun_path, path);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }

  bool connected() const { return fd_ >= 0; }

  /// Send one request; fill `payload` on ok, `err` on failure. False on
  /// a transport error (connection unusable afterwards).
  bool request(const std::string& line, std::string& payload,
               std::string& err) {
    std::string out = line + "\n";
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n = ::send(fd_, out.data() + sent, out.size() - sent, 0);
      if (n <= 0) return fail(err);
      sent += static_cast<std::size_t>(n);
    }
    std::string header;
    if (!read_line(header)) return fail(err);
    if (header.rfind("ok ", 0) == 0) {
      const auto len = static_cast<std::size_t>(
          std::strtoull(header.c_str() + 3, nullptr, 10));
      payload.clear();
      payload.reserve(len);
      while (payload.size() < len) {
        const std::size_t want =
            std::min(len - payload.size(), buf_.size());
        if (want == 0) break;
        payload += buf_.substr(0, want);
        buf_.erase(0, want);
        if (payload.size() == len) break;
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n <= 0) return fail(err);
        buf_.append(chunk, static_cast<std::size_t>(n));
      }
      return true;
    }
    if (header.rfind("err ", 0) == 0) {
      err = header.substr(4);
      return false;
    }
    err = "malformed response: " + header;
    return false;
  }

 private:
  bool fail(std::string& err) {
    if (err.empty()) err = "connection lost";
    return false;
  }

  bool read_line(std::string& line) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  int fd_ = -1;
  std::string buf_;  // bytes read past the current message
};

/// Fetch `cmd`'s payload from a socket, or — when `source` is a regular
/// file — its contents. Returns false with a message on stderr.
bool fetch(const char* source, const std::string& cmd, std::string& out) {
  if (is_socket(source)) {
    DebugClient client;
    if (!client.connect(source)) {
      std::fprintf(stderr, "scriptctl: cannot connect to %s: %s\n", source,
                   std::strerror(errno));
      return false;
    }
    std::string err;
    if (!client.request(cmd, out, err)) {
      std::fprintf(stderr, "scriptctl: %s: %s\n", source, err.c_str());
      return false;
    }
    return true;
  }
  if (!slurp(source, out)) {
    std::fprintf(stderr, "scriptctl: cannot open %s\n", source);
    return false;
  }
  return true;
}

std::optional<script::obs::json::Value> parse_or_complain(
    const char* what, const std::string& text) {
  std::string err;
  auto doc = script::obs::json::parse(text, &err);
  if (!doc.has_value())
    std::fprintf(stderr, "scriptctl: %s is not valid JSON: %s\n", what,
                 err.c_str());
  return doc;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 1) return usage();
  const char* path = argv[0];
  bool raw = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--raw") == 0)
      raw = true;
    else
      return usage();
  }
  std::string text;
  if (!fetch(path, "inspect", text)) return 2;
  if (raw) {
    std::fputs(text.c_str(), stdout);
    if (!text.empty() && text.back() != '\n') std::fputc('\n', stdout);
    return 0;
  }
  const auto doc = parse_or_complain(path, text);
  if (!doc.has_value()) return 1;
  std::fputs(script::obs::render_inspect_report(*doc).c_str(), stdout);
  return 0;
}

int cmd_flight(int argc, char** argv) {
  if (argc < 1) return usage();
  const char* path = argv[0];
  std::size_t tail = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tail") == 0 && i + 1 < argc)
      tail = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else
      return usage();
  }
  const auto dump = script::obs::read_trace_file(path);
  if (!dump.has_value()) {
    std::fprintf(stderr, "scriptctl: cannot open %s\n", path);
    return 2;
  }
  if (dump->events.empty()) {
    std::fprintf(stderr, "scriptctl: no trace records in %s\n", path);
    return 1;
  }
  std::fputs(script::obs::render_flight_report(*dump, tail).c_str(), stdout);
  return 0;
}

int cmd_timeline(int argc, char** argv) {
  if (argc < 1) return usage();
  const char* path = argv[0];
  bool raw = false;
  std::string prefix;
  std::size_t epochs = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--raw") == 0)
      raw = true;
    else if (std::strcmp(argv[i], "--series") == 0 && i + 1 < argc)
      prefix = argv[++i];
    else if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc)
      epochs =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else
      return usage();
  }
  std::string text;
  if (!fetch(path, "timeline", text)) return 2;
  if (raw) {
    std::fputs(text.c_str(), stdout);
    if (!text.empty() && text.back() != '\n') std::fputc('\n', stdout);
    return 0;
  }
  const auto doc = parse_or_complain(path, text);
  if (!doc.has_value()) return 1;
  std::fputs(
      script::obs::render_timeline_report(*doc, prefix, epochs).c_str(),
      stdout);
  return 0;
}

int cmd_metrics(int argc, char** argv) {
  if (argc != 1) return usage();
  std::string text;
  if (!fetch(argv[0], "metrics", text)) return 2;
  std::fputs(text.c_str(), stdout);
  if (!text.empty() && text.back() != '\n') std::fputc('\n', stdout);
  return 0;
}

int cmd_health(int argc, char** argv) {
  if (argc != 1) return usage();
  std::string text;
  if (!fetch(argv[0], "health", text)) return 2;
  std::fputs(text.c_str(), stdout);
  if (!text.empty() && text.back() != '\n') std::fputc('\n', stdout);
  return 0;
}

int cmd_ping(int argc, char** argv) {
  if (argc != 1) return usage();
  std::string text;
  if (!fetch(argv[0], "ping", text)) return 2;
  std::fputs(text.c_str(), stdout);
  return 0;
}

int cmd_watch(int argc, char** argv) {
  const char* socket_path = nullptr;
  const char* from = nullptr;
  long interval_ms = 500;
  long count = -1;  // forever
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--from") == 0 && i + 1 < argc)
      from = argv[++i];
    else if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc)
      interval_ms = std::strtol(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc)
      count = std::strtol(argv[++i], nullptr, 10);
    else if (socket_path == nullptr)
      socket_path = argv[i];
    else
      return usage();
  }
  if (from != nullptr) {
    // A dump's "recent" section, printed once — the CI-able mode.
    std::string text;
    if (!slurp(from, text)) {
      std::fprintf(stderr, "scriptctl: cannot open %s\n", from);
      return 2;
    }
    const auto doc = parse_or_complain(from, text);
    if (!doc.has_value()) return 1;
    const script::obs::json::Value* recent = doc->get("recent");
    std::uint64_t last = 0;
    std::fputs(script::obs::render_event_lines(
                   recent != nullptr ? *recent : *doc, 0, &last)
                   .c_str(),
               stdout);
    return 0;
  }
  if (socket_path == nullptr) return usage();
  DebugClient client;
  if (!client.connect(socket_path)) {
    std::fprintf(stderr, "scriptctl: cannot connect to %s: %s\n", socket_path,
                 std::strerror(errno));
    return 2;
  }
  std::uint64_t last_seq = 0;
  for (long polls = 0; count < 0 || polls < count; ++polls) {
    std::string payload, err;
    if (!client.request("events 256", payload, err)) {
      std::fprintf(stderr, "scriptctl: %s: %s\n", socket_path, err.c_str());
      return 1;
    }
    const auto doc = parse_or_complain(socket_path, payload);
    if (!doc.has_value()) return 1;
    const std::string lines =
        script::obs::render_event_lines(*doc, last_seq, &last_seq);
    if (!lines.empty()) {
      std::fputs(lines.c_str(), stdout);
      std::fflush(stdout);
    }
    if (count < 0 || polls + 1 < count)
      ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
  }
  return 0;
}

int cmd_top(int argc, char** argv) {
  const char* socket_path = nullptr;
  const char* from = nullptr;
  const char* inspect_file = nullptr;
  long interval_ms = 1000;
  long count = -1;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--from") == 0 && i + 1 < argc)
      from = argv[++i];
    else if (std::strcmp(argv[i], "--inspect") == 0 && i + 1 < argc)
      inspect_file = argv[++i];
    else if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc)
      interval_ms = std::strtol(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc)
      count = std::strtol(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--once") == 0)
      count = 1;
    else if (socket_path == nullptr)
      socket_path = argv[i];
    else
      return usage();
  }

  if (from != nullptr) {
    // One frame from committed artifacts — what CI pins.
    std::string text;
    if (!slurp(from, text)) {
      std::fprintf(stderr, "scriptctl: cannot open %s\n", from);
      return 2;
    }
    const auto dump = parse_or_complain(from, text);
    if (!dump.has_value()) return 1;
    std::optional<script::obs::json::Value> inspect;
    if (inspect_file != nullptr) {
      std::string itext;
      if (!slurp(inspect_file, itext)) {
        std::fprintf(stderr, "scriptctl: cannot open %s\n", inspect_file);
        return 2;
      }
      inspect = parse_or_complain(inspect_file, itext);
      if (!inspect.has_value()) return 1;
    }
    std::fputs(script::obs::render_top_report(
                   *dump, inspect.has_value() ? &*inspect : nullptr)
                   .c_str(),
               stdout);
    return 0;
  }

  if (socket_path == nullptr) return usage();
  DebugClient client;
  if (!client.connect(socket_path)) {
    std::fprintf(stderr, "scriptctl: cannot connect to %s: %s\n", socket_path,
                 std::strerror(errno));
    return 2;
  }
  const bool live_screen = count != 1;
  for (long frames = 0; count < 0 || frames < count; ++frames) {
    std::string dump_text, inspect_text, err;
    if (!client.request("timeline", dump_text, err) ||
        !client.request("inspect", inspect_text, err)) {
      std::fprintf(stderr, "scriptctl: %s: %s\n", socket_path, err.c_str());
      return 1;
    }
    const auto dump = parse_or_complain(socket_path, dump_text);
    if (!dump.has_value()) return 1;
    const auto inspect = script::obs::json::parse(inspect_text);
    if (live_screen) std::fputs("\033[H\033[2J", stdout);  // clear + home
    std::fputs(script::obs::render_top_report(
                   *dump, inspect.has_value() ? &*inspect : nullptr)
                   .c_str(),
               stdout);
    std::fflush(stdout);
    if (count < 0 || frames + 1 < count)
      ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "--help") == 0 || std::strcmp(cmd, "-h") == 0 ||
      std::strcmp(cmd, "help") == 0) {
    // --help goes to stdout and succeeds; bad invocations get the same
    // text on stderr with exit 2.
    std::printf(
        "scriptctl — inspect a Script runtime (live over a debug socket,\n"
        "or post-mortem from dump files).\n\n");
    std::fflush(stdout);
    if (dup2(STDOUT_FILENO, STDERR_FILENO) < 0) return 1;
    usage();
    return 0;
  }
  if (std::strcmp(cmd, "--version") == 0) {
    std::printf("scriptctl %s\n", kVersion);
    return 0;
  }
  if (std::strcmp(cmd, "inspect") == 0) return cmd_inspect(argc - 2, argv + 2);
  if (std::strcmp(cmd, "flight") == 0) return cmd_flight(argc - 2, argv + 2);
  if (std::strcmp(cmd, "timeline") == 0)
    return cmd_timeline(argc - 2, argv + 2);
  if (std::strcmp(cmd, "metrics") == 0) return cmd_metrics(argc - 2, argv + 2);
  if (std::strcmp(cmd, "health") == 0) return cmd_health(argc - 2, argv + 2);
  if (std::strcmp(cmd, "ping") == 0) return cmd_ping(argc - 2, argv + 2);
  if (std::strcmp(cmd, "watch") == 0) return cmd_watch(argc - 2, argv + 2);
  if (std::strcmp(cmd, "top") == 0) return cmd_top(argc - 2, argv + 2);
  std::fprintf(stderr, "scriptctl: unknown command '%s'\n", cmd);
  return usage();
}
