// scriptctl — inspect a Script runtime from the command line.
//
//   scriptctl inspect <snapshot.json> [--raw]   render an Inspector
//                                               snapshot (Scheduler::
//                                               attach_inspector +
//                                               Inspector::write_snapshot)
//                                               as a human report; --raw
//                                               prints the JSON verbatim
//   scriptctl flight <dump.flight.json> [--tail N]
//                                               summarize a flight-
//                                               recorder dump: counts,
//                                               drops, trigger, and the
//                                               last N events (default 20)
//
// Snapshots come from Inspector::write_snapshot() (programs typically
// expose a debug hook or write one on SIGUSR-style commands); flight
// dumps are written automatically on crash escalation, deadlock, and
// supervisor give-up, or by $SCRIPT_FLIGHT=<base>. Both renderings are
// library functions (render_inspect_report / render_flight_report), so
// tests pin them without exec'ing this binary.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/inspector.hpp"
#include "obs/json.hpp"
#include "obs/trace_read.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: scriptctl inspect <snapshot.json> [--raw]\n"
               "       scriptctl flight <dump.flight.json> [--tail N]\n");
  return 2;
}

bool slurp(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 1) return usage();
  const char* path = argv[0];
  bool raw = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--raw") == 0)
      raw = true;
    else
      return usage();
  }
  std::string text;
  if (!slurp(path, text)) {
    std::fprintf(stderr, "scriptctl: cannot open %s\n", path);
    return 2;
  }
  if (raw) {
    std::fputs(text.c_str(), stdout);
    if (!text.empty() && text.back() != '\n') std::fputc('\n', stdout);
    return 0;
  }
  std::string err;
  const auto doc = script::obs::json::parse(text, &err);
  if (!doc.has_value()) {
    std::fprintf(stderr, "scriptctl: %s is not valid JSON: %s\n", path,
                 err.c_str());
    return 1;
  }
  std::fputs(script::obs::render_inspect_report(*doc).c_str(), stdout);
  return 0;
}

int cmd_flight(int argc, char** argv) {
  if (argc < 1) return usage();
  const char* path = argv[0];
  std::size_t tail = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tail") == 0 && i + 1 < argc)
      tail = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else
      return usage();
  }
  const auto dump = script::obs::read_trace_file(path);
  if (!dump.has_value()) {
    std::fprintf(stderr, "scriptctl: cannot open %s\n", path);
    return 2;
  }
  if (dump->events.empty()) {
    std::fprintf(stderr, "scriptctl: no trace records in %s\n", path);
    return 1;
  }
  std::fputs(script::obs::render_flight_report(*dump, tail).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "inspect") == 0)
    return cmd_inspect(argc - 2, argv + 2);
  if (std::strcmp(argv[1], "flight") == 0)
    return cmd_flight(argc - 2, argv + 2);
  return usage();
}
