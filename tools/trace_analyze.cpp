// trace-analyze — offline causal analysis of libscript trace files.
//
//   trace-analyze <trace.json>             per-performance report:
//                                          critical paths + wait times
//   trace-analyze --self-check <trace.json>  audit causal consistency;
//                                          exit 1 and list violations
//   trace-analyze --diff <a.json> <b.json>   causal diff of two runs
//
// Trace files come from $SCRIPT_TRACE=<path> (written at scheduler
// destruction) or Scheduler::write_trace(). The analysis is the same
// CausalAnalyzer a live subscriber gets — see docs/OBSERVABILITY.md.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "obs/causal.hpp"
#include "obs/trace_read.hpp"

namespace {

using script::obs::CausalAnalyzer;
using script::obs::TraceFile;

int usage() {
  std::fprintf(stderr,
               "usage: trace-analyze <trace.json>\n"
               "       trace-analyze --self-check <trace.json>\n"
               "       trace-analyze --diff <before.json> <after.json>\n");
  return 2;
}

std::optional<CausalAnalyzer> load(const char* path) {
  const auto file = script::obs::read_trace_file(path);
  if (!file.has_value()) {
    std::fprintf(stderr, "trace-analyze: cannot open %s\n", path);
    return std::nullopt;
  }
  if (file->events.empty()) {
    std::fprintf(stderr, "trace-analyze: no trace records in %s\n", path);
    return std::nullopt;
  }
  for (const auto& [key, value] : file->metadata)
    if (key == "truncated_events" && value != "0")
      std::fprintf(stderr,
                   "trace-analyze: note: companion TraceLog dropped %s "
                   "events (ring capacity)\n",
                   value.c_str());
  return CausalAnalyzer(file->events, file->fiber_names, file->lane_names);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--self-check") == 0) {
    if (argc != 3) return usage();
    const auto a = load(argv[2]);
    if (!a.has_value()) return 2;
    const std::string problems = a->self_check();
    if (problems.empty()) {
      std::printf("self-check OK: %zu events, %zu performances\n",
                  a->events().size(), a->performances().size());
      return 0;
    }
    std::printf("self-check FAILED:\n%s\n", problems.c_str());
    return 1;
  }

  if (argc >= 2 && std::strcmp(argv[1], "--diff") == 0) {
    if (argc != 4) return usage();
    const auto before = load(argv[2]);
    const auto after = load(argv[3]);
    if (!before.has_value() || !after.has_value()) return 2;
    std::fputs(CausalAnalyzer::diff(*before, *after).c_str(), stdout);
    return 0;
  }

  if (argc != 2 || argv[1][0] == '-') return usage();
  const auto a = load(argv[1]);
  if (!a.has_value()) return 2;
  std::fputs(a->report().c_str(), stdout);
  return 0;
}
