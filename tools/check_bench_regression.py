#!/usr/bin/env python3
"""Gate bench telemetry against the committed baselines.

Usage:
    check_bench_regression.py --fresh DIR [--fresh DIR ...] --baseline DIR
                              [--threshold 0.20] [names...]

Compares BENCH_<name>.json files produced by a fresh bench run (--fresh)
against the committed ones (--baseline). Only *time-like* gauges are
gated — keys ending in one of the COST_SUFFIXES, where bigger means
slower. Throughput-like keys (msgs_per_ms, reuse_ratio, index hits) and
semantic counters (violations, ticks_per_perf) are informational: they
are printed but never fail the gate, since they are either asserted
exactly by the benches themselves or not monotone in "better".

Wall-clock numbers on shared CI runners are noisy, so the default gate
is deliberately loose (20%) and only ever fires on a REGRESSION (fresh
slower than baseline), never on an improvement. Noise on a busy host is
purely additive, which makes the per-gauge MINIMUM the stable
estimator: pass --fresh several times (one directory per repeat run)
and each cost gauge is taken as the min across repeats before the
comparison. The committed baselines are produced the same way
(min-of-N), so both sides of the gate estimate the same quantity.
"""

import argparse
import json
import os
import re
import sys

COST_SUFFIXES = (
    "ns_per_op",
    "us_per_fiber",
    "us_per_perf",
    "ms_per_perf",
    "wall_us_per_perf",
)

# Absolute ceilings, in gauge units. Unlike the relative cost gate,
# these fail whenever the fresh value (min across --fresh repeats)
# exceeds the limit, baseline or no baseline: they encode documented
# guarantees rather than "no slower than last time".
ABS_LIMITS = {
    # docs/OBSERVABILITY.md: an armed flight recorder stays under 3%
    # on the C7 churn workload.
    "flight.overhead_pct": 3.0,
    # docs/ROBUSTNESS.md: budgets/deadlines/backpressure armed but not
    # firing stay under 3% on the performance-churn workload.
    "overload.overhead_pct": 3.0,
    # docs/OBSERVABILITY.md: an armed timeline recorder stays under 3%
    # on the C7 churn workload.
    "timeline.overhead_pct": 3.0,
    # docs/DISTRIBUTION.md: mounting the wire stack (SimTransport +
    # PeerSupervisor + Wire pumps, heartbeats live, no app frames)
    # beside a dense fiber churn stays under 5%.
    "wire.arming_overhead_pct": 5.0,
}

# Hardware-gated speedup floors (bigger is better, unlike ABS_LIMITS).
# A gauge named <workload>.w<N>.speedup_x is only enforced when the
# machine that produced the fresh run reports a `cores` gauge >= N — a
# host with fewer cores than workers physically cannot exhibit the
# parallelism, so the floor is reported there but never failed. The
# max across --fresh repeats is used (speedup noise is subtractive).
SPEEDUP_FLOORS = {
    # docs/PERFORMANCE.md: parallel mode delivers >= 3x rendezvous
    # throughput on the sharded C7 workload at 8 workers.
    "rendezvous.w8.speedup_x": 3.0,
}

SPEEDUP_KEY_RE = re.compile(r"\.w(\d+)\.speedup_x$")


def load_gauges(path):
    """Returns (schema_version, gauges). Files written before the
    registry stamped a schema_version are treated as version 1."""
    with open(path) as f:
        doc = json.load(f)
    return doc.get("schema_version", 1), doc.get("gauges", {})


def is_cost_key(key):
    return any(key.endswith(s) for s in COST_SUFFIXES)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", required=True, action="append",
                    help="directory with freshly produced BENCH_*.json; "
                         "repeat the flag for min-of-N across runs")
    ap.add_argument("--baseline", required=True,
                    help="directory with committed BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed fractional slowdown (default 0.20)")
    ap.add_argument("names", nargs="*",
                    help="bench names (e.g. c6_matcher); default: every "
                         "BENCH_*.json present in --baseline")
    args = ap.parse_args()

    names = args.names
    if not names:
        names = sorted(
            f[len("BENCH_"):-len(".json")]
            for f in os.listdir(args.baseline)
            if f.startswith("BENCH_") and f.endswith(".json"))

    failures = []
    for name in names:
        fname = "BENCH_%s.json" % name
        fresh_paths = [os.path.join(d, fname) for d in args.fresh]
        fresh_paths = [p for p in fresh_paths if os.path.exists(p)]
        base_path = os.path.join(args.baseline, fname)
        if not fresh_paths:
            failures.append("%s: fresh run produced no %s" % (name, fname))
            continue
        if not os.path.exists(base_path):
            print("%-24s NEW (no committed baseline, skipping)" % name)
            continue
        loaded = [load_gauges(p) for p in fresh_paths]
        runs = [gauges for _, gauges in loaded]
        # min across repeats for cost/limit gauges (noise is additive);
        # the last run's value for informational ones.
        fresh = dict(runs[-1])
        for key in fresh:
            if is_cost_key(key) or key in ABS_LIMITS:
                vals = [r[key] for r in runs if key in r]
                fresh[key] = min(vals)
        base_version, base = load_gauges(base_path)
        fresh_version = loaded[-1][0]
        if fresh_version != base_version:
            print("%-24s schema v%d baseline vs v%d fresh (tolerated)"
                  % (name, base_version, fresh_version))
        cores = max((r.get("cores", 0) for r in runs), default=0)
        for key, floor in sorted(SPEEDUP_FLOORS.items()):
            if key not in fresh:
                continue
            m = SPEEDUP_KEY_RE.search(key)
            workers = int(m.group(1)) if m else 0
            best = max(r[key] for r in runs if key in r)
            if cores < workers:
                print("%-24s %-36s %12g (floor %g SKIPPED: host has "
                      "%g cores < %d workers)"
                      % (name, key, best, floor, cores, workers))
                continue
            if best < floor:
                failures.append(
                    "%s: %s is %g, below the speedup floor %g "
                    "(host cores: %g)" % (name, key, best, floor, cores))
            print("%-24s %-36s %12g (floor %g)  %s"
                  % (name, key, best, floor,
                     "BELOW FLOOR" if best < floor else "ok"))
        for key, limit in sorted(ABS_LIMITS.items()):
            if key not in fresh:
                continue
            f = fresh[key]
            if f > limit:
                failures.append("%s: %s is %g, above the absolute limit %g"
                                % (name, key, f, limit))
            print("%-24s %-36s %12g (limit %g)  %s"
                  % (name, key, f, limit,
                     "ABOVE LIMIT" if f > limit else "ok"))
        for key in sorted(base):
            if key not in fresh:
                failures.append("%s: gauge %r vanished" % (name, key))
                continue
            if key in ABS_LIMITS:
                continue  # already gated against its absolute ceiling
            b, f = base[key], fresh[key]
            if not is_cost_key(key):
                print("%-24s %-36s %12g (info)" % (name, key, f))
                continue
            delta = (f - b) / b if b > 0 else 0.0
            verdict = "ok"
            if delta > args.threshold:
                verdict = "REGRESSION"
                failures.append(
                    "%s: %s went %g -> %g (%+.1f%%, limit +%.0f%%)"
                    % (name, key, b, f, delta * 100,
                       args.threshold * 100))
            print("%-24s %-36s %12g -> %-12g %+6.1f%%  %s"
                  % (name, key, b, f, delta * 100, verdict))

    if failures:
        print("\nFAILED bench regression gate:", file=sys.stderr)
        for msg in failures:
            print("  " + msg, file=sys.stderr)
        return 1
    print("\nbench regression gate: all cost gauges within "
          "+%.0f%% of baseline" % (args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
