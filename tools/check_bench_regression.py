#!/usr/bin/env python3
"""Gate bench telemetry against the committed baselines.

Usage:
    check_bench_regression.py --fresh DIR [--fresh DIR ...] --baseline DIR
                              [--threshold 0.20] [names...]

Compares BENCH_<name>.json files produced by a fresh bench run (--fresh)
against the committed ones (--baseline). Only *time-like* gauges are
gated — keys ending in one of the COST_SUFFIXES, where bigger means
slower. Throughput-like keys (msgs_per_ms, reuse_ratio, index hits) and
semantic counters (violations, ticks_per_perf) are informational: they
are printed but never fail the gate, since they are either asserted
exactly by the benches themselves or not monotone in "better".

Wall-clock numbers on shared CI runners are noisy, so the default gate
is deliberately loose (20%) and only ever fires on a REGRESSION (fresh
slower than baseline), never on an improvement. Noise on a busy host is
purely additive, which makes the per-gauge MINIMUM the stable
estimator: pass --fresh several times (one directory per repeat run)
and each cost gauge is taken as the min across repeats before the
comparison. The committed baselines are produced the same way
(min-of-N), so both sides of the gate estimate the same quantity.
"""

import argparse
import json
import os
import sys

COST_SUFFIXES = (
    "ns_per_op",
    "us_per_fiber",
    "us_per_perf",
    "ms_per_perf",
    "wall_us_per_perf",
)


def load_gauges(path):
    with open(path) as f:
        return json.load(f).get("gauges", {})


def is_cost_key(key):
    return any(key.endswith(s) for s in COST_SUFFIXES)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", required=True, action="append",
                    help="directory with freshly produced BENCH_*.json; "
                         "repeat the flag for min-of-N across runs")
    ap.add_argument("--baseline", required=True,
                    help="directory with committed BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed fractional slowdown (default 0.20)")
    ap.add_argument("names", nargs="*",
                    help="bench names (e.g. c6_matcher); default: every "
                         "BENCH_*.json present in --baseline")
    args = ap.parse_args()

    names = args.names
    if not names:
        names = sorted(
            f[len("BENCH_"):-len(".json")]
            for f in os.listdir(args.baseline)
            if f.startswith("BENCH_") and f.endswith(".json"))

    failures = []
    for name in names:
        fname = "BENCH_%s.json" % name
        fresh_paths = [os.path.join(d, fname) for d in args.fresh]
        fresh_paths = [p for p in fresh_paths if os.path.exists(p)]
        base_path = os.path.join(args.baseline, fname)
        if not fresh_paths:
            failures.append("%s: fresh run produced no %s" % (name, fname))
            continue
        if not os.path.exists(base_path):
            print("%-24s NEW (no committed baseline, skipping)" % name)
            continue
        runs = [load_gauges(p) for p in fresh_paths]
        # min across repeats for cost gauges (noise is additive); the
        # last run's value for informational ones.
        fresh = dict(runs[-1])
        for key in fresh:
            if is_cost_key(key):
                vals = [r[key] for r in runs if key in r]
                fresh[key] = min(vals)
        base = load_gauges(base_path)
        for key in sorted(base):
            if key not in fresh:
                failures.append("%s: gauge %r vanished" % (name, key))
                continue
            b, f = base[key], fresh[key]
            if not is_cost_key(key):
                print("%-24s %-36s %12g (info)" % (name, key, f))
                continue
            delta = (f - b) / b if b > 0 else 0.0
            verdict = "ok"
            if delta > args.threshold:
                verdict = "REGRESSION"
                failures.append(
                    "%s: %s went %g -> %g (%+.1f%%, limit +%.0f%%)"
                    % (name, key, b, f, delta * 100,
                       args.threshold * 100))
            print("%-24s %-36s %12g -> %-12g %+6.1f%%  %s"
                  % (name, key, b, f, delta * 100, verdict))

    if failures:
        print("\nFAILED bench regression gate:", file=sys.stderr)
        for msg in failures:
            print("  " + msg, file=sys.stderr)
        return 1
    print("\nbench regression gate: all cost gauges within "
          "+%.0f%% of baseline" % (args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
