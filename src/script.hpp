// Umbrella header: everything a libscript application typically needs.
//
//   #include "script.hpp"
//
// Pulls in the runtime (scheduler, latency models, exploration), the
// three host-language substrates (CSP, Ada, monitors), the script core
// (the paper's mechanism), and the pattern library. Individual modules
// remain includable on their own for finer-grained builds.
#pragma once

// Runtime substrate.
#include "runtime/explore.hpp"      // IWYU pragma: export
#include "runtime/scheduler.hpp"    // IWYU pragma: export
#include "runtime/sim_link.hpp"     // IWYU pragma: export
#include "runtime/wait_queue.hpp"   // IWYU pragma: export

// Observability: causal analysis and trace files.
#include "obs/causal.hpp"           // IWYU pragma: export
#include "obs/metrics.hpp"          // IWYU pragma: export
#include "obs/trace_export.hpp"     // IWYU pragma: export
#include "obs/trace_read.hpp"       // IWYU pragma: export

// Host-language substrates (paper §IV).
#include "ada/entry.hpp"            // IWYU pragma: export
#include "ada/select.hpp"           // IWYU pragma: export
#include "ada/task.hpp"             // IWYU pragma: export
#include "csp/alternative.hpp"      // IWYU pragma: export
#include "csp/net.hpp"              // IWYU pragma: export
#include "monitor/mailbox.hpp"      // IWYU pragma: export
#include "monitor/monitor.hpp"      // IWYU pragma: export

// The script mechanism (paper §II) and its §V extensions.
#include "script/distributed.hpp"   // IWYU pragma: export
#include "script/instance.hpp"      // IWYU pragma: export

// Pattern library (paper §III figures and more).
#include "scripts/auction.hpp"           // IWYU pragma: export
#include "scripts/barrier.hpp"           // IWYU pragma: export
#include "scripts/bounded_buffer.hpp"    // IWYU pragma: export
#include "scripts/broadcast.hpp"         // IWYU pragma: export
#include "scripts/lock_manager.hpp"      // IWYU pragma: export
#include "scripts/mailbox_broadcast.hpp" // IWYU pragma: export
#include "scripts/scatter_gather.hpp"    // IWYU pragma: export
#include "scripts/token_ring.hpp"        // IWYU pragma: export
#include "scripts/two_phase_commit.hpp"  // IWYU pragma: export

// §IV embeddings.
#include "scripts/ada_embedding.hpp"     // IWYU pragma: export
#include "scripts/csp_embedding.hpp"     // IWYU pragma: export
#include "scripts/monitor_embedding.hpp" // IWYU pragma: export

// Replicated-database substrate (Figure 5).
#include "lockdb/replica.hpp"            // IWYU pragma: export
#include "lockdb/strategies.hpp"         // IWYU pragma: export
