#include "support/rng.hpp"

#include "support/panic.hpp"

namespace script::support {

namespace {

// splitmix64: seeds the xoshiro state from a single word.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  SCRIPT_ASSERT(bound > 0, "Rng::below(0)");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  SCRIPT_ASSERT(lo <= hi, "Rng::range: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::uniform01() {
  // 53 random bits into the mantissa.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::size_t Rng::pick_index(std::size_t size) {
  SCRIPT_ASSERT(size > 0, "Rng::pick_index on empty range");
  return static_cast<std::size_t>(below(size));
}

}  // namespace script::support
