#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/panic.hpp"

namespace script::support {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  sum_ += x;
  sum_sq_ += x * x;
}

double Summary::mean() const {
  SCRIPT_ASSERT(!samples_.empty(), "Summary::mean on empty");
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const {
  SCRIPT_ASSERT(!samples_.empty(), "Summary::min on empty");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  SCRIPT_ASSERT(!samples_.empty(), "Summary::max on empty");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const {
  SCRIPT_ASSERT(!samples_.empty(), "Summary::stddev on empty");
  const double n = static_cast<double>(samples_.size());
  const double m = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

double Summary::percentile(double q) const {
  SCRIPT_ASSERT(!samples_.empty(), "Summary::percentile on empty");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[rank];
}

std::string Summary::brief() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.2f p50=%.2f p99=%.2f max=%.2f", count(), mean(),
                percentile(0.50), percentile(0.99), max());
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  SCRIPT_ASSERT(cells.size() == headers_.size(), "Table row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    std::printf("%s%s", std::string(widths[c], '-').c_str(),
                c + 1 == headers_.size() ? "\n" : "  ");
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

}  // namespace script::support
