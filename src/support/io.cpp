#include "support/io.hpp"

namespace script::support {

IoHooks io = {&::send, &::recv, &::accept4, &::connect};

}  // namespace script::support
