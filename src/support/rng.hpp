// Deterministic, seedable PRNG (xoshiro256**).
//
// All nondeterminism in libscript — "the choice of which process is
// actually enrolled is non-deterministic" (paper §II), CSP alternative
// tie-breaks, scheduler interleaving under the Random policy — funnels
// through one of these so any run is replayable from its seed.
#pragma once

#include <cstdint>
#include <vector>

namespace script::support {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index; v must be non-empty.
  std::size_t pick_index(std::size_t size);

 private:
  std::uint64_t s_[4];
};

}  // namespace script::support
