// Shared socket-syscall seam for everything in the runtime that does
// real I/O (runtime::DebugEndpoint, runtime::TcpTransport).
//
// Real networks deliver their failure modes — EINTR, short writes,
// EAGAIN, torn connections — at syscall granularity, and unit tests
// need to inject exactly those without arranging real signal delivery
// or socket buffer pressure. Every raw socket call therefore goes
// through this function-pointer table; tests swap individual entries
// (an interposer that returns EINTR for the first N calls, a send that
// only accepts one byte at a time) and restore them afterwards.
//
// The EINTR discipline every user of these hooks must follow:
//   * send/recv/accept returning -1 with errno == EINTR is NOT an
//     error — retry the call;
//   * a short send is NOT an error — advance the cursor and continue;
//   * EAGAIN/EWOULDBLOCK means "stop for now", never "tear down".
#pragma once

#include <sys/socket.h>
#include <sys/types.h>

namespace script::support {

/// The raw socket calls, overridable for deterministic fault injection.
/// Defaults to ::send / ::recv / ::accept4 / ::connect.
struct IoHooks {
  ssize_t (*send)(int fd, const void* buf, size_t len, int flags);
  ssize_t (*recv)(int fd, void* buf, size_t len, int flags);
  int (*accept)(int fd, sockaddr* addr, socklen_t* alen, int flags);
  int (*connect)(int fd, const sockaddr* addr, socklen_t alen);
};

/// Process-wide hook table. Tests that swap entries must restore them
/// (the DebugEndpointIo/TcpTransportIo fixtures do this in TearDown).
extern IoHooks io;

}  // namespace script::support
