#include "support/log.hpp"

#include <cstdio>

#include "support/panic.hpp"

namespace script::support {

void TraceLog::record(std::uint64_t time, std::string subject,
                      std::string what) {
  events_.push_back({time, std::move(subject), std::move(what)});
  ++recorded_;
  if (capacity_ != 0 && events_.size() > capacity_) {
    events_.pop_front();
    ++evicted_;
  }
}

void TraceLog::set_capacity(std::size_t n) {
  capacity_ = n;
  if (n != 0)
    while (events_.size() > n) {
      events_.pop_front();
      ++evicted_;
    }
}

std::ptrdiff_t TraceLog::find(const std::string& subject,
                              const std::string& what) const {
  for (std::size_t i = 0; i < events_.size(); ++i)
    if (events_[i].subject == subject && events_[i].what == what)
      return static_cast<std::ptrdiff_t>(i);
  return -1;
}

bool TraceLog::ordered(const std::string& s1, const std::string& w1,
                       const std::string& s2, const std::string& w2) const {
  const auto a = find(s1, w1);
  const auto b = find(s2, w2);
  SCRIPT_ASSERT(a >= 0, "TraceLog::ordered: first event missing: " + s1 +
                            " / " + w1);
  SCRIPT_ASSERT(b >= 0, "TraceLog::ordered: second event missing: " + s2 +
                            " / " + w2);
  return a < b;
}

void TraceLog::print() const {
  for (const auto& e : events_)
    std::printf("t=%-6llu %-12s %s\n",
                static_cast<unsigned long long>(e.time), e.subject.c_str(),
                e.what.c_str());
}

}  // namespace script::support
