// Event-trace logging. The paper's Figure 1 is a *timeline* of enrollments
// and completions; TraceLog records such timelines so tests can assert on
// ordering and benches can print paper-style traces.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

namespace script::support {

struct TraceEvent {
  std::uint64_t time;   // virtual-time ticks
  std::string subject;  // e.g. process or role name
  std::string what;     // e.g. "enrolls as p", "finishes role"
};

class TraceLog {
 public:
  void record(std::uint64_t time, std::string subject, std::string what);

  const std::deque<TraceEvent>& events() const { return events_; }
  void clear() {
    events_.clear();
    recorded_ = 0;
    evicted_ = 0;
  }

  /// Keep only the newest `n` events (a ring buffer); 0 — the default —
  /// keeps everything. Long soak runs set a capacity so the log stays
  /// useful (the recent past) without growing without bound.
  void set_capacity(std::size_t n);
  std::size_t capacity() const { return capacity_; }
  /// Events recorded since construction/clear(), including any the ring
  /// has already discarded.
  std::uint64_t recorded() const { return recorded_; }
  /// Events the capacity ring has discarded since construction/clear().
  /// Exporters surface this as the `truncated_events` metric so a
  /// truncated trace is never mistaken for a complete one.
  std::uint64_t evicted() const { return evicted_; }

  /// Index of first event matching both fields, or -1.
  std::ptrdiff_t find(const std::string& subject, const std::string& what) const;

  /// True iff (s1,w1) occurs before (s2,w2); both must be present.
  bool ordered(const std::string& s1, const std::string& w1,
               const std::string& s2, const std::string& w2) const;

  /// Figure-1-style dump: "t=12  D  attempts to enroll as p".
  void print() const;

 private:
  std::deque<TraceEvent> events_;
  std::size_t capacity_ = 0;  // 0 = unlimited
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace script::support
