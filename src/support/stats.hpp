// Small statistics helpers used by the benchmark harnesses to report the
// rows/series the paper's figures imply (latency distributions, message
// counts, time-in-script).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace script::support {

/// Online mean/min/max plus retained samples for percentile queries.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  double total() const { return sum_; }

  /// q in [0,1]; nearest-rank percentile. Empty summary panics.
  double percentile(double q) const;

  /// "n=.. mean=.. p50=.. p99=.. max=.." one-liner for bench output.
  std::string brief() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  double sum_ = 0;
  double sum_sq_ = 0;
};

/// Fixed-width table printer so every bench emits aligned, comparable rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render to stdout with column alignment.
  void print() const;

  static std::string num(double v, int precision = 2);
  static std::string integer(std::int64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace script::support
