#include "support/panic.hpp"

#include <cstdio>
#include <cstdlib>

namespace script::support {

void panic(const std::string& msg, const char* file, int line) {
  std::fprintf(stderr, "[libscript panic] %s:%d: %s\n", file, line,
               msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace script::support
