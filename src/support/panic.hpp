// Panic / assertion helpers for libscript.
//
// The runtime is cooperative and single-threaded; an internal invariant
// violation is a programming error, never a recoverable condition, so we
// print a diagnostic and abort rather than unwind across fiber stacks.
#pragma once

#include <string>

namespace script::support {

/// Print `msg` (with source location) to stderr and abort.
[[noreturn]] void panic(const std::string& msg, const char* file, int line);

}  // namespace script::support

/// Abort with a formatted message. Usable from any fiber.
#define SCRIPT_PANIC(msg) ::script::support::panic((msg), __FILE__, __LINE__)

/// Internal invariant check; active in all build types (the runtime is a
/// simulator — correctness beats the few ns a disabled assert would save).
#define SCRIPT_ASSERT(cond, msg)                                   \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::script::support::panic(std::string("assertion failed: ") + \
                                   #cond + " — " + (msg),          \
                               __FILE__, __LINE__);                \
    }                                                              \
  } while (0)
