// Minimal Expected<T, E> (std::expected is C++23; this toolchain is C++20).
//
// Used throughout libscript for fallible operations that must not throw
// across fiber boundaries — most prominently the "distinguished value"
// returned when a role communicates with an unfilled partner role
// (paper §II, "Critical Role Set").
#pragma once

#include <utility>
#include <variant>

#include "support/panic.hpp"

namespace script::support {

/// Tag wrapper so Expected<T, E> can disambiguate error construction.
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
Unexpected<E> make_unexpected(E e) {
  return Unexpected<E>{std::move(e)};
}

/// A value of type T or an error of type E. T and E may be the same type.
template <typename T, typename E>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> e)
      : data_(std::in_place_index<1>, std::move(e.error)) {}

  bool has_value() const { return data_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  T& value() & {
    SCRIPT_ASSERT(has_value(), "Expected::value() on error");
    return std::get<0>(data_);
  }
  const T& value() const& {
    SCRIPT_ASSERT(has_value(), "Expected::value() on error");
    return std::get<0>(data_);
  }
  T&& value() && {
    SCRIPT_ASSERT(has_value(), "Expected::value() on error");
    return std::get<0>(std::move(data_));
  }

  E& error() & {
    SCRIPT_ASSERT(!has_value(), "Expected::error() on value");
    return std::get<1>(data_);
  }
  const E& error() const& {
    SCRIPT_ASSERT(!has_value(), "Expected::error() on value");
    return std::get<1>(data_);
  }

  T value_or(T fallback) const& {
    return has_value() ? std::get<0>(data_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, E> data_;
};

/// Expected<void, E> specialization: success carries no payload.
template <typename E>
class [[nodiscard]] Expected<void, E> {
 public:
  Expected() : ok_(true) {}
  Expected(Unexpected<E> e) : ok_(false), error_(std::move(e.error)) {}

  bool has_value() const { return ok_; }
  explicit operator bool() const { return ok_; }

  E& error() {
    SCRIPT_ASSERT(!ok_, "Expected<void>::error() on success");
    return error_;
  }
  const E& error() const {
    SCRIPT_ASSERT(!ok_, "Expected<void>::error() on success");
    return error_;
  }

 private:
  bool ok_;
  E error_{};
};

}  // namespace script::support
