// ScriptSpec: the static declaration of a script (paper §II).
//
// Declares the roles (singletons, fixed indexed families, open-ended
// families from the paper's §V future-work list), the initiation and
// termination policies, and the critical role sets.
//
// A critical role set (paper §II "Critical Role Set") is a requirement
// of the form {role -> needed count}; a performance may begin once, for
// *some* declared set, every listed role has at least the needed number
// of members enrolled. When no set is declared "it is taken to mean
// that the entire collection of roles is critical".
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/health.hpp"
#include "runtime/overload.hpp"
#include "script/ids.hpp"

namespace script::core {

using runtime::OverflowPolicy;

/// Execution bounds for one script's performances (0 = unlimited).
/// Enforced by the Scheduler per admitted role — the volo panic
/// taxonomy (ExecutionLimitExceeded / QueryLimitExceeded) recast onto
/// the virtual clock and dispatch counter, so a blown budget raises the
/// typed, catchable runtime::BudgetExceeded.
struct ExecutionBudget {
  /// Dispatches a single role body may consume before
  /// BudgetExceeded{DispatchSteps}.
  std::uint64_t max_dispatch_steps = 0;
  /// Virtual ticks a role may spend (measured from its admission)
  /// before BudgetExceeded{VirtualTicks}.
  std::uint64_t max_virtual_ticks = 0;
  /// Bound on the enroll queue; arrivals beyond it are handled per
  /// OverloadConfig::overflow (sheds publish overload.shed and return
  /// EnrollResult::shed — QueueDepth is never thrown).
  std::size_t max_queue_depth = 0;

  bool any() const {
    return max_dispatch_steps != 0 || max_virtual_ticks != 0 ||
           max_queue_depth != 0;
  }
};

/// Backpressure / admission-control tuning for one script instance.
struct OverloadConfig {
  /// What a full enroll queue (ExecutionBudget::max_queue_depth) does
  /// with an arrival. Block keeps the classic unbounded behavior.
  OverflowPolicy overflow = OverflowPolicy::Block;
  /// retry_after hint stamped on shed EnrollResults (virtual ticks).
  std::uint64_t shed_retry_after = 16;
  /// Queue depth at which the admission circuit breaker trips Open
  /// (0 disables the breaker). The breaker also trips when the
  /// HealthMonitor's queue-depth or restart-pressure watchdogs latch.
  std::size_t breaker_queue_depth = 0;
  /// Virtual ticks the breaker stays Open before probing (HalfOpen).
  std::uint64_t breaker_cooldown = 64;
  /// Enrollments admitted per HalfOpen episode; a performance completing
  /// closes the breaker, the probes running out re-opens it.
  std::size_t half_open_probes = 1;

  bool breaker_enabled() const { return breaker_queue_depth != 0; }
};

enum class Initiation : std::uint8_t {
  Delayed,   // all critical roles enroll, then everyone starts together
  Immediate  // the script is activated by its first enroller
};

enum class Termination : std::uint8_t {
  Delayed,   // enrollees are freed together when every role is finished
  Immediate  // each enrollee is freed as soon as its own role finishes
};

/// What a performance does when an enrolled role's process crashes
/// mid-performance. Generalizes the paper's §II unfilled-role rule
/// (distinguished value) from "never filled" to "filled but failed".
enum class FailurePolicy : std::uint8_t {
  /// Unwind every surviving role (they observe PerformanceAborted), end
  /// the performance, and let the next generation start. Default: a
  /// script is a joint activity; losing a member voids the performance.
  Abort,
  /// Keep going: the failed role becomes `terminated(r)` and
  /// communication with it yields the distinguished value, exactly as
  /// if the role had never been filled (§II).
  Degrade,
  /// Role takeover: survivors park while the crashed role awaits a
  /// replacement enrollment. A request for the role arriving within
  /// `takeover_deadline()` ticks is admitted into the LIVE performance
  /// (rebinding the role, inheriting its data parameters, its context
  /// reporting resumed() == true — the §II unfilled-role semantics
  /// generalized to refilled roles). Past the deadline the performance
  /// falls back to `takeover_fallback()` (Abort or Degrade).
  Replace,
};

struct RoleDecl {
  std::string name;
  std::size_t count = 1;    // family size (1 + indexed=false → singleton)
  bool indexed = false;     // true: members are name[0..count-1]
  bool open_ended = false;  // §V: family may grow at run time
  std::size_t min_count = 0;  // open-ended: members needed for criticality
};

/// One critical role set: role name → required enrolled count.
using CriticalSet = std::map<std::string, std::size_t>;

/// One critical-set requirement as seen from a single role: "critical
/// set #set_index needs `needed` members of this role". The matcher's
/// per-set fill counters key off the inverted index built from these.
struct CriticalNeed {
  std::size_t set_index = 0;
  std::size_t needed = 0;
};

class ScriptSpec {
 public:
  explicit ScriptSpec(std::string name) : name_(std::move(name)) {}

  // ---- Builder interface ----

  ScriptSpec& role(const std::string& role_name);
  ScriptSpec& role_family(const std::string& role_name, std::size_t count);
  /// Open-ended family (§V): at least `min_count` members make it
  /// critical; more may enroll while the performance runs (immediate
  /// initiation only).
  ScriptSpec& open_role_family(const std::string& role_name,
                               std::size_t min_count);
  ScriptSpec& initiation(Initiation i);
  ScriptSpec& termination(Termination t);
  /// Paper §II: "If more than one process tries to enroll in the same
  /// role ... the choice of which process is actually enrolled is
  /// non-deterministic." Default is arrival order (deterministic, like
  /// Ada's queues); enable this for the CSP-style seeded-random choice
  /// among contenders.
  ScriptSpec& nondeterministic_contention(bool on = true);
  /// Add one alternative critical role set. May be called repeatedly;
  /// a performance may begin when ANY declared set is satisfied.
  ScriptSpec& critical(CriticalSet set);
  /// Reaction to a role crashing mid-performance (default Abort).
  ScriptSpec& on_failure(FailurePolicy p);
  /// Replace policy: how long (virtual ticks) a crashed role may await
  /// a replacement before the performance falls back. Default 64.
  ScriptSpec& takeover_deadline(std::uint64_t ticks);
  /// Replace policy: what happens when the deadline expires with no
  /// replacement (Abort or Degrade — never Replace). Default Abort.
  ScriptSpec& takeover_fallback(FailurePolicy p);
  /// Replace policy: restrict takeover to the named roles. A role is
  /// replaceable only if its body can be re-run against partners that
  /// may already hold messages from its previous incarnation (stateless,
  /// or replayable from a log — see docs/SEMANTICS.md §10). Crashes of
  /// roles NOT listed here fall back immediately (no takeover window).
  /// Default: empty, meaning every role is replaceable.
  ScriptSpec& takeover_roles(std::vector<std::string> names);
  /// SLO thresholds for health monitoring (virtual ticks; 0 disables a
  /// check). Takes effect when the instance calls enable_health().
  ScriptSpec& slo(obs::SloConfig cfg);
  /// Execution budgets enforced per admitted role (default: unlimited).
  ScriptSpec& budget(ExecutionBudget b);
  /// Backpressure / circuit-breaker tuning (default: Block, no breaker).
  ScriptSpec& overload(OverloadConfig cfg);

  // ---- Queries ----

  const std::string& name() const { return name_; }
  Initiation initiation() const { return initiation_; }
  Termination termination() const { return termination_; }
  bool contention_is_nondeterministic() const {
    return nondet_contention_;
  }
  FailurePolicy failure_policy() const { return failure_policy_; }
  std::uint64_t takeover_deadline() const { return takeover_deadline_; }
  FailurePolicy takeover_fallback() const { return takeover_fallback_; }
  /// Whether a crash of `r` opens a takeover window (Replace policy).
  bool takeover_allowed(const RoleId& r) const;
  const obs::SloConfig& slo() const { return slo_; }
  const ExecutionBudget& budget() const { return budget_; }
  const OverloadConfig& overload() const { return overload_; }
  const std::vector<RoleDecl>& roles() const { return roles_; }

  bool has_role(const std::string& role_name) const;
  const RoleDecl& decl(const std::string& role_name) const;
  /// Validity of a concrete RoleId against the declarations (open
  /// families accept any index >= 0).
  bool valid(const RoleId& id) const;

  /// All concrete roles of the fixed part (families expanded; open
  /// families contribute no fixed members).
  std::vector<RoleId> fixed_roles() const;

  /// The critical sets in force: the declared ones, or the implicit
  /// "everything" set when none were declared. Cached; the reference
  /// stays valid until the next builder call.
  const std::vector<CriticalSet>& critical_sets() const;

  /// Inverted critical index: role name → the critical sets that
  /// mention it and how many members each needs. Cached alongside
  /// critical_sets(); set indices refer into that vector.
  const std::map<std::string, std::vector<CriticalNeed>>& critical_needs()
      const;

  /// Number of (role, count) requirements in each critical set, indexed
  /// like critical_sets(). A set is met once that many of its
  /// requirements are individually met.
  const std::vector<std::size_t>& critical_set_sizes() const;

 private:
  void build_critical_cache() const;

  std::string name_;
  std::vector<RoleDecl> roles_;
  std::vector<CriticalSet> criticals_;
  Initiation initiation_ = Initiation::Delayed;
  Termination termination_ = Termination::Delayed;
  bool nondet_contention_ = false;
  FailurePolicy failure_policy_ = FailurePolicy::Abort;
  std::uint64_t takeover_deadline_ = 64;
  FailurePolicy takeover_fallback_ = FailurePolicy::Abort;
  std::vector<std::string> takeover_roles_;  // empty: all replaceable
  obs::SloConfig slo_;
  ExecutionBudget budget_;
  OverloadConfig overload_;

  // Lazily built, invalidated by the builder methods above.
  mutable bool critical_cache_built_ = false;
  mutable std::vector<CriticalSet> critical_cache_;
  mutable std::map<std::string, std::vector<CriticalNeed>> critical_needs_;
  mutable std::vector<std::size_t> critical_set_sizes_;
};

}  // namespace script::core
