#include "script/matching.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace script::core::detail {

namespace {

/// Intersect `allowed[r]` with `pids`. Recording an empty intersection
/// is legal: it means nobody can fill r this performance.
void restrict_allowed(MatchState& st, const RoleId& r,
                      const std::vector<ProcessId>& pids) {
  auto it = st.allowed.find(r);
  if (it == st.allowed.end()) {
    st.allowed.emplace(r, std::set<ProcessId>(pids.begin(), pids.end()));
    return;
  }
  std::set<ProcessId> next;
  for (const ProcessId p : pids)
    if (it->second.count(p)) next.insert(p);
  it->second = std::move(next);
}

/// First-time fill of a state's critical fill counters from its current
/// bindings; afterwards try_admit keeps them current incrementally.
void init_critical_counters(const ScriptSpec& spec, const MatchState& st) {
  const auto& sets = spec.critical_sets();
  st.cs_met.assign(sets.size(), 0);
  st.cs_satisfied = 0;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    for (const auto& [role_name, needed] : sets[i])
      if (st.bound_count(role_name) >= needed) ++st.cs_met[i];
    if (st.cs_met[i] == sets[i].size()) ++st.cs_satisfied;
  }
  st.cs_ready = true;
}

}  // namespace

std::size_t MatchState::bound_count(const std::string& role_name) const {
  const auto it = bound_by_name.find(role_name);
  return it == bound_by_name.end() ? 0 : it->second;
}

bool MatchState::permits(const RoleId& r, ProcessId pid) const {
  const auto it = allowed.find(r);
  return it == allowed.end() || it->second.count(pid) > 0;
}

std::optional<RoleId> resolve_index(const ScriptSpec& spec,
                                    const MatchState& st,
                                    const std::set<RoleId>& excluded,
                                    const RoleId& requested,
                                    ProcessId pid) {
  if (!requested.is_any_index()) return requested;
  const RoleDecl& d = spec.decl(requested.name);
  SCRIPT_ASSERT(d.indexed, "any-index enrollment into singleton role " +
                               requested.name);
  if (d.open_ended) {
    const auto it = st.open_sizes.find(requested.name);
    const std::size_t next = it == st.open_sizes.end() ? 0 : it->second;
    return RoleId(requested.name, static_cast<int>(next));
  }
  // Lowest free index whose accumulated naming constraints accept this
  // process (an index pinned to someone else by an earlier member's
  // PartnerSpec must be left for them). Start at the family's scan
  // floor — bindings are monotone, so indices below it stay bound
  // forever and never need re-checking.
  std::size_t& floor = st.index_floor[requested.name];
  while (floor < d.count &&
         st.is_bound(RoleId(requested.name, static_cast<int>(floor))))
    ++floor;
  for (std::size_t i = floor; i < d.count; ++i) {
    RoleId r(requested.name, static_cast<int>(i));
    if (!st.is_bound(r) && !excluded.count(r) && st.permits(r, pid))
      return r;
  }
  return std::nullopt;
}

std::optional<RoleId> try_admit(const ScriptSpec& spec, MatchState& st,
                                const std::set<RoleId>& excluded,
                                const RequestView& req) {
  SCRIPT_ASSERT(spec.valid(req.requested),
                "enrollment names unknown role " + req.requested.str());
  const auto resolved =
      resolve_index(spec, st, excluded, req.requested, req.pid);
  if (!resolved) return std::nullopt;
  const RoleId r = *resolved;
  if (st.is_bound(r) || excluded.count(r)) return std::nullopt;
  // Every current member must accept this process for this role...
  if (!st.permits(r, req.pid)) return std::nullopt;
  // ...and this request's own naming must not contradict agreed
  // bindings — including the binding this admission would create (a
  // request may constrain the very role it enrolls into, e.g. "I play
  // fam[1] and fam[1] must be me-or-A").
  if (req.partners != nullptr) {
    for (const auto& [partner_role, pids] : req.partners->constraints()) {
      ProcessId bound_to = kNoProcess;
      if (partner_role == r) {
        bound_to = req.pid;
      } else {
        const auto bound = st.bindings.find(partner_role);
        if (bound != st.bindings.end()) bound_to = bound->second;
      }
      if (bound_to != kNoProcess &&
          std::find(pids.begin(), pids.end(), bound_to) == pids.end())
        return std::nullopt;
    }
  }

  // Commit.
  st.bindings.emplace(r, req.pid);
  const std::size_t now_bound = ++st.bound_by_name[r.name];
  if (st.cs_ready) {
    // Keep the per-set fill counters current: this binding may push a
    // requirement over its threshold (crossing exactly `needed`).
    const auto& needs = spec.critical_needs();
    const auto it = needs.find(r.name);
    if (it != needs.end()) {
      const auto& sizes = spec.critical_set_sizes();
      for (const CriticalNeed& need : it->second)
        if (now_bound == need.needed &&
            ++st.cs_met[need.set_index] == sizes[need.set_index])
          ++st.cs_satisfied;
    }
  }
  if (req.partners != nullptr)
    for (const auto& [partner_role, pids] : req.partners->constraints())
      restrict_allowed(st, partner_role, pids);
  const RoleDecl& d = spec.decl(r.name);
  if (d.open_ended) {
    auto& size = st.open_sizes[r.name];
    size = std::max(size, static_cast<std::size_t>(r.index) + 1);
  }
  return r;
}

bool critical_satisfied(const ScriptSpec& spec, const MatchState& st) {
  if (!st.cs_ready) init_critical_counters(spec, st);
  return st.cs_satisfied > 0;
}

namespace {

struct Former {
  const ScriptSpec& spec;
  const std::vector<RequestView>& queue;
  const std::set<RoleId> no_excluded;  // formation has no closed roles
  // suffix_avail[i][name]: how many requests at positions >= i ask for
  // role `name` — an optimistic bound used to prune hopeless branches
  // (otherwise a failed formation costs 2^queue explorations on EVERY
  // enrollment while a cast assembles).
  std::vector<std::map<std::string, std::size_t>> suffix_avail;
  std::uint64_t nodes = 0;
  static constexpr std::uint64_t kNodeCap = 1u << 20;

  void build_suffix_bounds() {
    suffix_avail.assign(queue.size() + 1, {});
    for (std::size_t i = queue.size(); i-- > 0;) {
      suffix_avail[i] = suffix_avail[i + 1];
      ++suffix_avail[i][queue[i].requested.name];
    }
  }

  bool reachable(std::size_t i, const MatchState& st) const {
    for (const CriticalSet& cs : spec.critical_sets()) {
      bool ok = true;
      for (const auto& [name, needed] : cs) {
        const auto it = suffix_avail[i].find(name);
        const std::size_t avail =
            it == suffix_avail[i].end() ? 0 : it->second;
        if (st.bound_count(name) + avail < needed) {
          ok = false;
          break;
        }
      }
      if (ok) return true;
    }
    return false;
  }

  /// Candidate concrete roles for a request at this state. A specific
  /// request has one candidate; an any-index request into a FIXED
  /// family may need a non-lowest index to satisfy later members'
  /// constraints (en-bloc naming), so every feasible index is a branch.
  std::vector<RoleId> candidates(const MatchState& st,
                                 const RequestView& req) const {
    if (!req.requested.is_any_index()) return {req.requested};
    const RoleDecl& d = spec.decl(req.requested.name);
    if (d.open_ended) {
      const auto it = st.open_sizes.find(req.requested.name);
      const std::size_t next = it == st.open_sizes.end() ? 0 : it->second;
      return {RoleId(req.requested.name, static_cast<int>(next))};
    }
    std::vector<RoleId> out;
    for (std::size_t i = 0; i < d.count; ++i) {
      RoleId r(req.requested.name, static_cast<int>(i));
      if (!st.is_bound(r) && st.permits(r, req.pid)) out.push_back(r);
    }
    return out;
  }

  std::optional<FormResult> dfs(std::size_t i, MatchState st,
                                std::vector<std::pair<std::size_t, RoleId>>
                                    admitted) {
    if (++nodes >= kNodeCap) return std::nullopt;  // search budget spent
    if (critical_satisfied(spec, st)) {
      // Maximal extension: greedily admit the rest in arrival order.
      for (std::size_t j = i; j < queue.size(); ++j) {
        // Skip requests from processes already admitted (one request
        // per blocked process, but be defensive).
        if (auto r = try_admit(spec, st, no_excluded, queue[j]))
          admitted.emplace_back(j, *r);
      }
      return FormResult{std::move(st), std::move(admitted)};
    }
    if (i == queue.size()) return std::nullopt;
    if (!reachable(i, st)) return std::nullopt;

    // Include queue[i] first (prefer earlier arrivals), trying every
    // feasible concrete role for it...
    for (const RoleId& option : candidates(st, queue[i])) {
      RequestView forced = queue[i];
      forced.requested = option;
      MatchState included = st;
      if (auto r = try_admit(spec, included, no_excluded, forced)) {
        auto adm = admitted;
        adm.emplace_back(i, *r);
        if (auto res = dfs(i + 1, std::move(included), std::move(adm)))
          return res;
      }
    }
    // ...then try leaving it for a later performance.
    return dfs(i + 1, std::move(st), std::move(admitted));
  }
};

}  // namespace

std::optional<FormResult> form_delayed(const ScriptSpec& spec,
                                       const std::vector<RequestView>& queue) {
  // Counting gate: no critical set can be met unless, per role name,
  // the whole queue offers enough requests. One O(queue + sets) pass —
  // the common "cast still assembling" case stops here without touching
  // the matcher proper.
  {
    std::map<std::string, std::size_t> totals;
    for (const RequestView& req : queue) ++totals[req.requested.name];
    bool any_reachable = false;
    for (const CriticalSet& cs : spec.critical_sets()) {
      bool ok = true;
      for (const auto& [name, needed] : cs) {
        const auto it = totals.find(name);
        if ((it == totals.end() ? 0 : it->second) < needed) {
          ok = false;
          break;
        }
      }
      if (ok) {
        any_reachable = true;
        break;
      }
    }
    if (!any_reachable) return std::nullopt;
  }

  // Fast path: plain greedy admission in arrival order. This settles
  // the overwhelmingly common case (lightly-constrained casts, however
  // large) iteratively — the DFS recurses once per queued request and
  // must stay reserved for small, constraint-heavy formations.
  {
    MatchState st;
    const std::set<RoleId> no_excluded;
    std::vector<std::pair<std::size_t, RoleId>> admitted;
    for (std::size_t i = 0; i < queue.size(); ++i)
      if (auto r = try_admit(spec, st, no_excluded, queue[i]))
        admitted.emplace_back(i, *r);
    if (critical_satisfied(spec, st))
      return FormResult{std::move(st), std::move(admitted)};
  }

  // Slow path: backtracking over inclusion and index choices. Guard
  // against fiber-stack exhaustion on absurdly long queues (greedy
  // above already failed, so a consistent cast is unlikely anyway).
  // The per-position suffix bounds that prune the search are only built
  // here — the fast paths above never pay for them.
  if (queue.size() > 200) return std::nullopt;
  Former f{spec, queue, {}, {}, 0};
  f.build_suffix_bounds();
  return f.dfs(0, MatchState{}, {});
}

}  // namespace script::core::detail
