// Distributed (supervisor-free) enrollment.
//
// The paper's translations use a central supervisor process p_s, and
// §IV/§V call out the alternative as future work: "to discover
// distributed algorithms to achieve such multiple synchronization based
// on a generalization of the current distributed algorithms for binary
// handshaking."
//
// DistributedCast is such a generalization for the delayed-initiation /
// delayed-termination / fully-named case: every member knows the whole
// cast (CSP naming), and a performance is two symmetric all-to-all
// rounds —
//   round 1 (ENROLL): member i tells everyone "I am in generation g";
//     having heard all n-1 others, it knows the cast is complete and
//     starts its role — no coordinator ever existed;
//   round 2 (DONE): members exchange completion marks; having heard
//     all, generation g is over and g+1 may begin (the successive-
//     activations rule, enforced pairwise).
//
// Message cost is O(n^2) per performance against the supervisor's O(n)
// — but with no extra process and no serialization point. Bench C4
// measures exactly this trade.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "csp/net.hpp"

namespace script::core {

class DistributedCast {
 public:
  /// `members[i]` is the process playing role i. All members must be
  /// declared before any enrolls.
  DistributedCast(csp::Net& net, std::vector<csp::ProcessId> members,
                  std::string name);

  /// Called by member `my_index`: announces this member for the next
  /// generation and blocks until every other member has announced too
  /// (delayed initiation). Returns the generation number.
  std::uint64_t enroll(std::size_t my_index);

  /// Called by member `my_index` after its role work: exchanges
  /// completion marks and blocks until everyone has completed
  /// (delayed termination + successive-activations gate).
  void complete(std::size_t my_index);

  std::size_t members() const { return members_.size(); }
  /// Total protocol messages exchanged so far (for bench C4).
  std::uint64_t messages() const { return messages_; }

 private:
  void all_to_all(std::size_t my_index, const std::string& phase,
                  std::uint64_t generation);

  csp::Net* net_;
  std::vector<csp::ProcessId> members_;
  std::string name_;
  std::vector<std::uint64_t> generation_;  // per member
  std::uint64_t messages_ = 0;
};

}  // namespace script::core
