// Distributed (supervisor-free) enrollment.
//
// The paper's translations use a central supervisor process p_s, and
// §IV/§V call out the alternative as future work: "to discover
// distributed algorithms to achieve such multiple synchronization based
// on a generalization of the current distributed algorithms for binary
// handshaking."
//
// DistributedCast is such a generalization for the delayed-initiation /
// delayed-termination / fully-named case: every member knows the whole
// cast (CSP naming), and a performance is two symmetric all-to-all
// rounds —
//   round 1 (ENROLL): member i tells everyone "I am in generation g";
//     having heard all n-1 others, it knows the cast is complete and
//     starts its role — no coordinator ever existed;
//   round 2 (DONE): members exchange completion marks; having heard
//     all, generation g is over and g+1 may begin (the successive-
//     activations rule, enforced pairwise).
//
// Message cost is O(n^2) per performance against the supervisor's O(n)
// — but with no extra process and no serialization point. Bench C4
// measures exactly this trade.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "csp/net.hpp"

namespace script::core {

/// Retry/backoff parameters for crash-tolerant rounds. All in virtual
/// ticks, so a fixed seed + fault plan gives identical suspicions.
struct CastFaultOptions {
  std::uint64_t timeout_ticks = 50;  // first wait per peer exchange
  unsigned max_attempts = 3;         // timed tries before suspicion
  std::uint64_t backoff_factor = 2;  // wait multiplier per retry
};

class DistributedCast {
 public:
  /// `members[i]` is the process playing role i. All members must be
  /// declared before any enrolls.
  DistributedCast(csp::Net& net, std::vector<csp::ProcessId> members,
                  std::string name);

  /// Called by member `my_index`: announces this member for the next
  /// generation and blocks until every other member has announced too
  /// (delayed initiation). Returns the generation number.
  std::uint64_t enroll(std::size_t my_index);

  /// Called by member `my_index` after its role work: exchanges
  /// completion marks and blocks until everyone has completed
  /// (delayed termination + successive-activations gate).
  void complete(std::size_t my_index);

  std::size_t members() const { return members_.size(); }
  /// Total protocol messages exchanged so far (for bench C4).
  std::uint64_t messages() const { return messages_; }

  /// Switch to crash-tolerant rounds: every exchange is timed, retried
  /// with exponential backoff, and a peer that stays silent (or is
  /// known dead) is SUSPECTED and skipped by everyone from then on.
  /// Without this, a member death aborts the program (bench-grade
  /// strict mode, zero timeout bookkeeping on the hot path).
  void set_fault_options(CastFaultOptions opts);
  bool is_suspected(std::size_t index) const { return suspected_[index]; }
  std::size_t suspected_count() const;

 private:
  void all_to_all(std::size_t my_index, const std::string& phase,
                  std::uint64_t generation);
  /// One timed exchange with peer j (tolerant mode). Returns false
  /// if j became suspected instead of completing the exchange.
  bool exchange(std::size_t my_index, std::size_t j, bool sending,
                const std::string& tag);
  void suspect(std::size_t j, const std::string& tag);

  csp::Net* net_;
  std::vector<csp::ProcessId> members_;
  std::string name_;
  std::vector<std::uint64_t> generation_;  // per member
  std::uint64_t messages_ = 0;
  bool tolerant_ = false;
  CastFaultOptions fault_;
  std::vector<bool> suspected_;
};

}  // namespace script::core
