// Role identifiers.
//
// A script's roles are "formal process parameters" (paper §II). A role
// is either a singleton (`sender`) or a member of an indexed family
// (`recipient[3]`, paper: "we also permit indexed families of roles").
#pragma once

#include <compare>
#include <string>

#include "runtime/fiber.hpp"

namespace script::core {

using runtime::ProcessId;
using runtime::kNoProcess;

/// Index value meaning "this is a singleton role".
inline constexpr int kSingleton = -1;
/// Index value meaning "any free member of the family" in an enrollment.
inline constexpr int kAnyIndex = -2;

struct RoleId {
  std::string name;
  int index = kSingleton;

  RoleId() = default;
  RoleId(std::string n) : name(std::move(n)) {}  // NOLINT: implicit by design
  RoleId(const char* n) : name(n) {}             // NOLINT: implicit by design
  RoleId(std::string n, int i) : name(std::move(n)), index(i) {}

  bool is_family_member() const { return index >= 0; }
  bool is_any_index() const { return index == kAnyIndex; }

  std::string str() const {
    if (index == kSingleton) return name;
    if (index == kAnyIndex) return name + "[*]";
    return name + "[" + std::to_string(index) + "]";
  }

  friend auto operator<=>(const RoleId&, const RoleId&) = default;
};

/// `role(name, i)` — the i-th member of a role family.
inline RoleId role(std::string name, int index) {
  return RoleId(std::move(name), index);
}
/// `any_member(name)` — enroll into any free index of the family.
inline RoleId any_member(std::string name) {
  return RoleId(std::move(name), kAnyIndex);
}

}  // namespace script::core
