// PartnerSpec: the naming part of an enrollment (paper §II).
//
//   ENROLL IN broadcast AS transmitter(exp)
//     WITH [P AS recipient[1], Q AS recipient[2]]
//
// * partners-named   — `with(role, pid)` pins a role to one process;
// * alternatives     — `with_any_of(role, {A, B})` is the paper's "more
//                      elaborate naming convention ... a given role
//                      should be fulfilled by either process A or B";
// * partners-unnamed — an empty PartnerSpec;
// * partial naming   — constrain only some roles ("P may specify the
//                      transmitter T, but not care about the others").
//
// Joint enrollment requires all specifications to agree on the binding
// of processes to roles; disagreeing enrollments wait for a later
// performance.
#pragma once

#include <map>
#include <vector>

#include "script/ids.hpp"

namespace script::core {

class PartnerSpec {
 public:
  PartnerSpec() = default;

  /// Require `r` to be played by exactly `pid`.
  PartnerSpec& with(RoleId r, ProcessId pid) {
    want_[std::move(r)] = {pid};
    return *this;
  }

  /// Require `r` to be played by one of `pids`.
  PartnerSpec& with_any_of(RoleId r, std::vector<ProcessId> pids) {
    want_[std::move(r)] = std::move(pids);
    return *this;
  }

  /// En-bloc naming (the paper's "suggestive idea is to allow the en
  /// bloc enrollment of an array of processes to an array of roles"):
  /// pins family member `name[i]` to `pids[i]` for every i.
  PartnerSpec& with_family(const std::string& name,
                           const std::vector<ProcessId>& pids) {
    for (std::size_t i = 0; i < pids.size(); ++i)
      want_[RoleId(name, static_cast<int>(i))] = {pids[i]};
    return *this;
  }

  bool empty() const { return want_.empty(); }
  const std::map<RoleId, std::vector<ProcessId>>& constraints() const {
    return want_;
  }

 private:
  std::map<RoleId, std::vector<ProcessId>> want_;
};

}  // namespace script::core
