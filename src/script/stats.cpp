#include "script/stats.hpp"

namespace script::core {

ScriptStats::ScriptStats(ScriptInstance& inst) {
  inst.observe([this](const ScriptEvent& e) { on_event(e); });
}

void ScriptStats::on_event(const ScriptEvent& e) {
  switch (e.kind) {
    case ScriptEvent::Kind::EnrollAttempt:
      attempt_at_[e.pid] = e.time;
      break;
    case ScriptEvent::Kind::Enrolled: {
      ++enrollments_;
      const auto it = attempt_at_.find(e.pid);
      if (it != attempt_at_.end()) {
        enroll_wait_.add(static_cast<double>(e.time - it->second));
        attempt_at_.erase(it);
      }
      admitted_at_[e.pid] = e.time;
      break;
    }
    case ScriptEvent::Kind::RoleBegan:
      began_at_[e.pid] = e.time;
      break;
    case ScriptEvent::Kind::RoleFinished: {
      const auto it = began_at_.find(e.pid);
      if (it != began_at_.end()) {
        role_duration_.add(static_cast<double>(e.time - it->second));
        began_at_.erase(it);
      }
      break;
    }
    case ScriptEvent::Kind::Released: {
      const auto it = admitted_at_.find(e.pid);
      if (it != admitted_at_.end()) {
        in_script_.add(static_cast<double>(e.time - it->second));
        admitted_at_.erase(it);
      }
      break;
    }
    case ScriptEvent::Kind::PerformanceBegan:
      break;
    case ScriptEvent::Kind::PerformanceEnded:
      ++performances_;
      break;
  }
}

}  // namespace script::core
