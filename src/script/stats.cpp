#include "script/stats.hpp"

namespace script::core {

ScriptStats::ScriptStats(ScriptInstance& inst)
    : bus_(&inst.scheduler().bus()), lane_(inst.obs_lane()) {
  sub_ = bus_->subscribe(
      obs::EventBus::mask_of(obs::Subsystem::Script),
      [this](const obs::Event& e) {
        if (e.lane == lane_) on_event(e);
      });
}

ScriptStats::~ScriptStats() { bus_->unsubscribe(sub_); }

void ScriptStats::on_event(const obs::Event& e) {
  // Vocabulary: see docs/OBSERVABILITY.md. Every "enroll.attempt*"
  // variant (plain, guarded, timed) starts the wait clock.
  if (e.name.compare(0, 14, "enroll.attempt") == 0) {
    attempt_at_[e.pid] = e.time;
  } else if (e.name == "enroll.ok") {
    ++enrollments_;
    const auto it = attempt_at_.find(e.pid);
    if (it != attempt_at_.end()) {
      enroll_wait_.add(static_cast<double>(e.time - it->second));
      attempt_at_.erase(it);
    }
    admitted_at_[e.pid] = e.time;
  } else if (e.name == "role") {
    if (e.kind == obs::EventKind::SpanBegin) {
      began_at_[e.pid] = e.time;
    } else {
      const auto it = began_at_.find(e.pid);
      if (it != began_at_.end()) {
        role_duration_.add(static_cast<double>(e.time - it->second));
        began_at_.erase(it);
      }
    }
  } else if (e.name == "release") {
    const auto it = admitted_at_.find(e.pid);
    if (it != admitted_at_.end()) {
      in_script_.add(static_cast<double>(e.time - it->second));
      admitted_at_.erase(it);
    }
  } else if (e.name == "performance") {
    if (e.kind == obs::EventKind::SpanEnd) ++performances_;
  }
}

}  // namespace script::core
