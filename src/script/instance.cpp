#include "script/instance.hpp"

#include <algorithm>

#include "obs/health.hpp"
#include "obs/inspector.hpp"
#include "obs/json.hpp"
#include "obs/timeline.hpp"
#include "support/panic.hpp"

namespace script::core {

using detail::MatchState;
using detail::RequestView;

ScriptInstance::ScriptInstance(csp::Net& net, ScriptSpec spec,
                               std::string instance_name)
    : net_(&net),
      sched_(&net.scheduler()),
      spec_(std::move(spec)),
      name_(std::move(instance_name)) {
  // A crashed enrollee's role fails. The hook runs after the fiber has
  // fully unwound (and after the Net's own hook has failed its parked
  // rendezvous), so the instance sees consistent state.
  crash_hook_id_ = scheduler().add_crash_hook(
      [this](ProcessId pid) { on_process_crashed(pid); });
  report_section_id_ =
      scheduler().add_report_section([this] { return report(); });
}

ScriptInstance::ScriptInstance(csp::Net& net, ScriptSpec spec)
    : ScriptInstance(net, std::move(spec), "") {
  name_ = spec_.name();
}

ScriptInstance::~ScriptInstance() {
  if (health_ != nullptr && obs_lane_ != obs::kNoLane)
    health_->unwatch_script(obs_lane_);
  scheduler().remove_report_section(report_section_id_);
  scheduler().remove_crash_hook(crash_hook_id_);
}

std::string ScriptInstance::report() const {
  std::string breaker_line;
  if (breaker_ != BreakerState::Closed) {
    // Why admission is closed — the deadlock/health report's answer to
    // "my enrollments keep coming back shed".
    breaker_line = "script " + name_ + " admission breaker " +
                   (breaker_ == BreakerState::Open
                        ? "OPEN (probes at t=" +
                              std::to_string(breaker_open_until_) + ")"
                        : "HALF-OPEN (" +
                              std::to_string(breaker_probes_left_) +
                              " probe(s) left)") +
                   ", " + std::to_string(shed_count_) + " shed so far";
  }
  if (active_ == nullptr || active_->done) return breaker_line;
  const Performance& p = *active_;
  if (p.awaiting_takeover.empty() && !p.aborted) return breaker_line;
  std::string out = breaker_line.empty() ? "" : breaker_line + "\n";
  out += "script " + name_ + " perf#" + std::to_string(p.number);
  if (p.aborted) out += " (aborted, winding down)";
  for (const auto& [r, st] : p.awaiting_takeover)
    out += "\n  awaiting takeover of " + r.str() + " (was " +
           sched_->name_of(st.old_pid) + ", deadline t=" +
           std::to_string(st.deadline) + ")";
  out += "\n  queued requests: " + std::to_string(queue_.size());
  return out;
}

std::string ScriptInstance::snapshot_json() const {
  obs::json::Writer w;
  w.object();
  w.key("script").value(name_);
  w.key("completed").value(completed_perfs_);
  w.key("aborted").value(aborted_perfs_);
  w.key("queue_length").value(static_cast<std::uint64_t>(queue_.size()));
  // Overload state appears only once the admission controller has acted
  // (keeps pinned snapshots of unconfigured scripts byte-stable).
  if (shed_count_ > 0) w.key("sheds").value(shed_count_);
  if (breaker_trips_ > 0 || breaker_ != BreakerState::Closed) {
    w.key("breaker").object();
    w.key("state").value(breaker_ == BreakerState::Open       ? "open"
                         : breaker_ == BreakerState::HalfOpen ? "half_open"
                                                              : "closed");
    if (breaker_ == BreakerState::Open)
      w.key("open_until").value(breaker_open_until_);
    if (breaker_ == BreakerState::HalfOpen)
      w.key("probes_left")
          .value(static_cast<std::uint64_t>(breaker_probes_left_));
    w.key("trips").value(breaker_trips_);
    w.end();
  }
  w.key("waiting").array();
  for (const auto& [role, queued] : queued_by_role_) {
    w.object();
    w.key("role").value(role);
    w.key("queued").value(static_cast<std::uint64_t>(queued));
    w.end();
  }
  w.end();
  w.key("performance");
  if (active_ == nullptr || active_->done) {
    w.null();
  } else {
    const Performance& p = *active_;
    w.object();
    w.key("number").value(p.number);
    if (spec_.budget().any()) w.key("started_at").value(p.started_at);
    w.key("roles").array();
    for (const auto& [r, pid] : p.state.bindings) {
      w.object();
      w.key("role").value(r.str());
      w.key("pid").value(static_cast<std::uint64_t>(pid));
      w.key("process").value(sched_->name_of(pid));
      w.key("done").value(p.completed.count(r) > 0);
      const auto inc = p.incarnations.find(r);
      if (inc != p.incarnations.end())
        w.key("incarnation").value(inc->second);
      w.end();
    }
    w.end();
    w.key("out").array();
    for (const RoleId& r : p.out) w.value(r.str());
    w.end();
    w.key("failed").array();
    for (const RoleId& r : p.failed) w.value(r.str());
    w.end();
    if (p.aborted) w.key("aborted").value(true);
    w.key("awaiting_takeover").array();
    for (const auto& [r, st] : p.awaiting_takeover) {
      w.object();
      w.key("role").value(r.str());
      w.key("old_pid").value(static_cast<std::uint64_t>(st.old_pid));
      w.key("deadline").value(st.deadline);
      w.end();
    }
    w.end();
    w.end();
  }
  w.end();
  return w.str();
}

std::size_t ScriptInstance::attach_inspector(obs::Inspector& inspector) {
  return inspector.attach("script", [this] { return snapshot_json(); });
}

void ScriptInstance::enable_health(obs::HealthMonitor& monitor) {
  if (health_ != nullptr) return;
  health_ = &monitor;
  monitor.watch_script(obs_lane(), name_, spec_.slo(),
                       [this] { return queue_.size(); });
}

void ScriptInstance::enqueue(Request& req) {
  req.queue_pos = queue_.insert(queue_.end(), &req);
  req.queued = true;
  ++queued_by_role_[req.requested.name];
}

void ScriptInstance::dequeue(Request& req) {
  if (!req.queued) return;
  queue_.erase(req.queue_pos);
  req.queued = false;
  const auto it = queued_by_role_.find(req.requested.name);
  SCRIPT_ASSERT(it != queued_by_role_.end() && it->second > 0,
                "waiter index out of sync for role " + req.requested.name);
  if (--it->second == 0) queued_by_role_.erase(it);
}

bool ScriptInstance::queued_covers_critical() const {
  for (const CriticalSet& cs : spec_.critical_sets()) {
    bool ok = true;
    for (const auto& [name, needed] : cs) {
      const auto it = queued_by_role_.find(name);
      if ((it == queued_by_role_.end() ? 0 : it->second) < needed) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

bool ScriptInstance::admission_possible() const {
  if (queued_by_role_.empty()) return false;
  // Out roles consume capacity just like bound ones: an admission into
  // them is excluded. Count them per family once.
  std::map<std::string, std::size_t> out_by_name;
  for (const RoleId& r : active_->out) ++out_by_name[r.name];
  for (const auto& [name, waiting] : queued_by_role_) {
    const RoleDecl& d = spec_.decl(name);
    if (d.open_ended) return true;  // open families always have room
    const auto out_it = out_by_name.find(name);
    const std::size_t used =
        active_->state.bound_count(name) +
        (out_it == out_by_name.end() ? 0 : out_it->second);
    if (used < d.count) return true;
  }
  return false;
}

ScriptInstance& ScriptInstance::on_role(const std::string& role_name,
                                        RoleBody body) {
  SCRIPT_ASSERT(spec_.has_role(role_name),
                "on_role for unknown role " + role_name);
  bodies_[role_name] = std::move(body);
  return *this;
}

EnrollResult ScriptInstance::enroll(const RoleId& role,
                                    const PartnerSpec& partners,
                                    Params params) {
  runtime::Scheduler& sched = scheduler();
  SCRIPT_ASSERT(spec_.valid(role), "enrollment names invalid role " +
                                       role.str() + " in " + name_);
  SCRIPT_ASSERT(bodies_.count(role.name),
                "role " + role.name + " has no body attached");

  Request req;
  req.pid = sched.current();
  req.requested = role;
  req.partners = &partners;
  enqueue(req);
  publish(obs::EventKind::Instant, req.pid, "enroll.attempt", role.str());
  emit(ScriptEvent::Kind::EnrollAttempt, req.pid, role, 0);
  if (auto refused = shed_check(role, req.pid)) {
    dequeue(req);
    return *refused;
  }

  try_advance();
  try {
    while (!req.admitted && !req.shed)
      sched.block("enrolling in " + name_ + " as " + role.str());
  } catch (...) {
    // Crashed while queued: withdraw so the matcher never binds a dead
    // process. (A crash after admission is the crash hook's business.)
    dequeue(req);
    throw;
  }
  if (req.shed)  // evicted by a later arrival under ShedOldest
    return shed_result(role, req.pid, spec_.overload().shed_retry_after);

  return run_admitted(req, params);
}

std::optional<EnrollResult> ScriptInstance::try_enroll(
    const RoleId& role, const PartnerSpec& partners, Params params) {
  runtime::Scheduler& sched = scheduler();
  SCRIPT_ASSERT(spec_.valid(role), "enrollment names invalid role " +
                                       role.str() + " in " + name_);
  SCRIPT_ASSERT(bodies_.count(role.name),
                "role " + role.name + " has no body attached");

  Request req;
  req.pid = sched.current();
  req.requested = role;
  req.partners = &partners;
  enqueue(req);
  publish(obs::EventKind::Instant, req.pid, "enroll.attempt.guarded",
          role.str());
  emit(ScriptEvent::Kind::EnrollAttempt, req.pid, role, 0);
  if (shed_check(role, req.pid)) {  // counted + published; guard just fails
    dequeue(req);
    return std::nullopt;
  }

  try_advance();
  if (!req.admitted) {
    dequeue(req);
    publish(obs::EventKind::Instant, req.pid, "enroll.fail.guarded",
            role.str());
    return std::nullopt;
  }
  return run_admitted(req, params);
}

std::optional<EnrollResult> ScriptInstance::enroll_for(
    const RoleId& role, std::uint64_t ticks, const PartnerSpec& partners,
    Params params) {
  runtime::Scheduler& sched = scheduler();
  SCRIPT_ASSERT(spec_.valid(role), "enrollment names invalid role " +
                                       role.str() + " in " + name_);
  SCRIPT_ASSERT(bodies_.count(role.name),
                "role " + role.name + " has no body attached");

  Request req;
  req.pid = sched.current();
  req.requested = role;
  req.partners = &partners;
  enqueue(req);
  publish(obs::EventKind::Instant, req.pid, "enroll.attempt.timed",
          role.str());
  emit(ScriptEvent::Kind::EnrollAttempt, req.pid, role, 0);
  if (auto refused = shed_check(role, req.pid)) {
    dequeue(req);
    return *refused;
  }

  try_advance();
  const std::uint64_t deadline = sched.now() + ticks;
  // The request self-cleans when the timeout fires: the scheduler runs
  // the hook at the firing instant, before any other fiber can admit a
  // request that is no longer waiting.
  const auto withdraw = [this, &req] { dequeue(req); };
  while (!req.admitted && !req.shed) {
    const std::uint64_t now = sched.now();
    const bool timed_out =
        now >= deadline ||
        sched.block_with_timeout(
            "timed enrollment in " + name_ + " as " + role.str(),
            deadline - now, withdraw);
    if (timed_out && !req.admitted && !req.shed) {
      withdraw();  // covers the already-past-deadline fast path
      publish(obs::EventKind::Instant, req.pid, "enroll.fail.timed",
              role.str());
      return std::nullopt;
    }
  }
  if (req.shed)  // evicted by a later arrival under ShedOldest
    return shed_result(role, req.pid, spec_.overload().shed_retry_after);
  return run_admitted(req, params);
}

EnrollResult ScriptInstance::enroll_with_retry(const RoleId& role,
                                               const PartnerSpec& partners,
                                               Params params,
                                               RetryOptions retry) {
  SCRIPT_ASSERT(retry.max_attempts > 0, "enroll_with_retry needs attempts");
  std::uint64_t backoff = retry.backoff;
  for (std::size_t attempt = 1;; ++attempt) {
    Params copy = params;  // each attempt gets pristine parameters
    EnrollResult r = enroll(role, partners, std::move(copy));
    if (!r.aborted && !r.shed) return r;
    const std::uint64_t wait = std::max<std::uint64_t>(r.retry_after, backoff);
    if (attempt >= retry.max_attempts) {
      // Gave up on a transient failure: keep the final attempt's hint
      // (floored to the backoff this loop would have slept) so callers
      // can tell "gave up, retry later" from "infeasible" via
      // EnrollResult::retryable().
      r.retry_after = wait;
      return r;
    }
    scheduler().sleep_for(wait);
    backoff = std::min<std::uint64_t>(
        retry.max_backoff,
        static_cast<std::uint64_t>(static_cast<double>(backoff) *
                                   retry.factor));
  }
}

std::optional<EnrollResult> ScriptInstance::shed_check(const RoleId& role,
                                                       ProcessId pid) {
  const OverloadConfig& cfg = spec_.overload();
  if (cfg.breaker_enabled()) {
    const std::uint64_t now = sched_->now();
    if (breaker_ == BreakerState::Open && now >= breaker_open_until_) {
      // Cooldown over: probe. Deterministic — the transition happens at
      // the first arrival past breaker_open_until_, a pure function of
      // the virtual clock and arrival order.
      breaker_ = BreakerState::HalfOpen;
      breaker_probes_left_ = cfg.half_open_probes;
      publish_overload("overload.breaker.half_open", pid, name_,
                       static_cast<double>(breaker_probes_left_));
    }
    switch (breaker_) {
      case BreakerState::Open:
        return shed_result(role, pid, breaker_open_until_ - now);
      case BreakerState::HalfOpen:
        if (breaker_probes_left_ == 0) {
          // Every probe is in flight and none has completed a
          // performance yet: still no proven progress. Re-open.
          trip_breaker("half-open probes exhausted");
          return shed_result(role, pid, cfg.breaker_cooldown);
        }
        --breaker_probes_left_;
        break;
      case BreakerState::Closed:
        // The arrival is already queued, so "depth reached" reads as
        // strictly-greater. The health watchdogs latching (queue depth
        // over SLO, a supervised child near its restart budget) trips
        // the breaker too — admission follows the script's health.
        if (queue_.size() > cfg.breaker_queue_depth ||
            (health_ != nullptr && (health_->queue_latched(obs_lane_) ||
                                    health_->restart_pressure()))) {
          trip_breaker(queue_.size() > cfg.breaker_queue_depth
                           ? "queue depth"
                           : "health watchdog latched");
          return shed_result(role, pid, cfg.breaker_cooldown);
        }
        break;
    }
  }
  const std::size_t cap = spec_.budget().max_queue_depth;
  if (cap != 0 && queue_.size() > cap) {
    switch (cfg.overflow) {
      case OverflowPolicy::Block:
        break;  // classic unbounded behavior: queue and wait
      case OverflowPolicy::ShedNewest:
        return shed_result(role, pid, cfg.shed_retry_after);
      case OverflowPolicy::ShedOldest:
        shed_oldest();  // evict the head; this arrival keeps its spot
        break;
    }
  }
  return std::nullopt;
}

EnrollResult ScriptInstance::shed_result(const RoleId& role, ProcessId pid,
                                         std::uint64_t retry_after) {
  ++shed_count_;
  publish_overload("overload.shed", pid, role.str(),
                   static_cast<double>(retry_after));
  emit(ScriptEvent::Kind::EnrollShed, pid, role, 0);
  EnrollResult r;
  r.played = role;
  r.shed = true;
  r.retry_after = retry_after;
  return r;
}

void ScriptInstance::shed_oldest() {
  SCRIPT_ASSERT(!queue_.empty(), "shed_oldest on an empty queue");
  Request* victim = queue_.front();
  dequeue(*victim);
  victim->shed = true;
  // The victim's own wait loop exits on `shed` and reports the refusal
  // (so the shed event carries its pid at the eviction instant).
  if (sched_->state_of(victim->pid) == runtime::FiberState::Blocked)
    sched_->unblock(victim->pid);
}

void ScriptInstance::trip_breaker(const char* why) {
  breaker_ = BreakerState::Open;
  breaker_open_until_ = sched_->now() + spec_.overload().breaker_cooldown;
  breaker_probes_left_ = 0;
  ++breaker_trips_;
  publish_overload("overload.breaker.open", kNoProcess, why,
                   static_cast<double>(breaker_open_until_));
}

void ScriptInstance::breaker_note_progress() {
  if (breaker_ == BreakerState::Closed) return;
  breaker_ = BreakerState::Closed;
  breaker_probes_left_ = 0;
  publish_overload("overload.breaker.close", kNoProcess, name_);
}

EnrollResult ScriptInstance::run_admitted(Request& req, Params& params) {
  runtime::Scheduler& sched = scheduler();
  // Admitted: this fiber now IS the role (logical continuation).
  SCRIPT_ASSERT(req.perf != nullptr, "admitted without a performance");
  Performance& perf = *req.perf;
  publish(obs::EventKind::SpanBegin, req.pid, "role", req.assigned.str(),
          static_cast<double>(perf.number));
  emit(ScriptEvent::Kind::RoleBegan, req.pid, req.assigned, perf.number);
  Params* effective = &params;
  if (spec_.failure_policy() == FailurePolicy::Replace) {
    // Keep the role's parameters off the enroller's stack so a crash
    // (which unwinds that stack) cannot dangle them; a replacement then
    // inherits the previous incarnation's values (writers dropped by
    // begin_takeover, so nothing writes into the dead frame).
    if (req.resumed) params.adopt_missing(perf.params_store[req.assigned]);
    perf.params_store[req.assigned] = std::move(params);
    effective = &perf.params_store[req.assigned];
  }
  RoleContext ctx(this, &perf, req.assigned, effective, req.resumed);
  bool unwound = false;
  {
    // Arm the spec's execution budgets for the span of the role body
    // (the delayed-termination hold is not billed). The guard runs on
    // every exit — return, crash, abort, cancellation — and also clears
    // a role-installed deadline so it cannot leak onto the process's
    // next activity.
    struct BudgetGuard {
      runtime::Scheduler& sched;
      ProcessId pid;
      RoleContext& ctx;
      ~BudgetGuard() {
        sched.clear_step_budget(pid);
        sched.clear_tick_budget(pid);
        if (ctx.deadline_installed_) sched.clear_deadline(pid);
      }
    } guard{sched, req.pid, ctx};
    const ExecutionBudget& budget = spec_.budget();
    if (budget.max_dispatch_steps != 0)
      sched.set_step_budget(req.pid, budget.max_dispatch_steps);
    if (budget.max_virtual_ticks != 0)
      sched.set_tick_budget(req.pid, sched.now() + budget.max_virtual_ticks,
                            budget.max_virtual_ticks);
    try {
      bodies_.at(req.assigned.name)(ctx);
    } catch (const PerformanceAborted&) {
      unwound = true;  // a partner crashed; this role survives, undone
    } catch (...) {
      // This process is dying (FiberKilled, an uncaught cancellation)
      // or the body itself threw: the role will never finish. The
      // scheduler's crash hook does the failure bookkeeping after the
      // fiber has fully unwound.
      publish(obs::EventKind::SpanEnd, req.pid, "role",
              req.assigned.str() + " (crashed)",
              static_cast<double>(perf.number));
      throw;
    }
  }
  if (unwound) {
    publish(obs::EventKind::SpanEnd, req.pid, "role",
            req.assigned.str() + " (aborted)",
            static_cast<double>(perf.number));
    mark_role_unwound(perf, req.assigned);
  } else {
    publish(obs::EventKind::SpanEnd, req.pid, "role", req.assigned.str(),
            static_cast<double>(perf.number));
    emit(ScriptEvent::Kind::RoleFinished, req.pid, req.assigned,
         perf.number);
    role_done(req.assigned);
  }

  if (spec_.termination() == Termination::Delayed) {
    while (!perf.done) {
      end_waiters_.push_back(req.pid);
      sched.block("delayed termination of " + name_);
    }
  }
  publish(obs::EventKind::Instant, req.pid, "release", "",
          static_cast<double>(perf.number));
  emit(ScriptEvent::Kind::Released, req.pid, req.assigned, perf.number);
  EnrollResult result{perf.number, req.assigned, unwound || perf.aborted};
  result.resumed = req.resumed;
  if (result.aborted) result.retry_after = 1;  // next generation can form
  return result;
}

void ScriptInstance::try_advance() {
  if (active_ != nullptr && !active_->done) {
    // No admissions into a performance that is winding down after an
    // abort; new requests queue for the next generation.
    if (!active_->aborted) {
      takeover_pass();  // no-op unless roles await replacement
      if (spec_.initiation() == Initiation::Immediate) {
        admission_pass();
        after_state_change();
      }
    }
    return;
  }

  if (queue_.empty()) return;

  if (spec_.initiation() == Initiation::Immediate) {
    active_ = std::make_unique<Performance>();
    active_->number = next_perf_number_++;
    active_->started_at = sched_->now();
    publish(obs::EventKind::SpanBegin, kNoProcess, "performance", "",
            static_cast<double>(active_->number));
    emit(ScriptEvent::Kind::PerformanceBegan, kNoProcess, RoleId(),
         active_->number);
    admission_pass();
    after_state_change();
    return;
  }

  // Delayed initiation: joint formation via the backtracking matcher.
  // The waiter index gates the attempt first — while a cast is still
  // assembling, no critical set's per-role counts are covered and the
  // matcher (and the view materialization) is skipped outright.
  // (The matcher prefers earlier positions, so shuffling the view order
  // realizes the paper's nondeterministic choice among contenders.)
  const bool nondet = spec_.contention_is_nondeterministic();
  if (!nondet && !queued_covers_critical()) {
    ++matcher_index_hits_;
    return;
  }
  std::vector<Request*> order(queue_.begin(), queue_.end());
  if (nondet) {
    // Shuffle BEFORE gating so the seeded rng stream is identical
    // whether or not the gate fires (replay stability).
    scheduler().rng().shuffle(order);
    if (!queued_covers_critical()) {
      ++matcher_index_hits_;
      return;
    }
  }
  ++matcher_runs_;
  std::vector<RequestView> views;
  views.reserve(order.size());
  for (const Request* r : order)
    views.push_back(RequestView{r->pid, r->requested, r->partners});
  auto formed = detail::form_delayed(spec_, views);
  if (!formed) return;

  active_ = std::make_unique<Performance>();
  active_->number = next_perf_number_++;
  active_->started_at = sched_->now();
  active_->state = std::move(formed->state);
  // Delayed initiation freezes the cast: unfilled roles are out.
  for (const RoleId& r : spec_.fixed_roles())
    if (!active_->state.is_bound(r)) active_->out.insert(r);
  active_->critical_hit = true;
  publish(obs::EventKind::SpanBegin, kNoProcess, "performance", "",
          static_cast<double>(active_->number));
  emit(ScriptEvent::Kind::PerformanceBegan, kNoProcess, RoleId(),
       active_->number);

  // Mark the admitted requests (formed->admitted indexes `views`, which
  // parallels `order`) and release their fibers.
  std::vector<Request*> admitted;
  for (const auto& [qi, concrete] : formed->admitted) {
    Request* r = order[qi];
    r->admitted = true;
    r->assigned = concrete;
    r->perf = active_.get();
    admitted.push_back(r);
    publish(obs::EventKind::Instant, r->pid, "enroll.ok", concrete.str(),
            static_cast<double>(active_->number));
    emit(ScriptEvent::Kind::Enrolled, r->pid, concrete, active_->number);
  }
  for (Request* r : admitted) {
    dequeue(*r);
    if (scheduler().state_of(r->pid) == runtime::FiberState::Blocked)
      scheduler().unblock(r->pid);
  }
  after_state_change();
}

void ScriptInstance::admission_pass() {
  SCRIPT_ASSERT(active_ != nullptr, "admission pass without performance");
  // Capacity gate from the waiter index: when every queued role name is
  // already full (bound + out) in the active performance, the pass
  // cannot admit anyone — skip the per-request matcher work.
  const bool nondet = spec_.contention_is_nondeterministic();
  if (!nondet && !admission_possible()) {
    ++matcher_index_hits_;
    return;
  }
  // Arrival order by default; a single pass suffices because admission
  // is monotone (bindings only accumulate, constraints only tighten).
  // Under nondeterministic contention the pass order is shuffled
  // (seeded), so competing requests for one role win randomly — the
  // paper's §II choice rule.
  std::vector<Request*> order(queue_.begin(), queue_.end());
  if (nondet) {
    // Shuffle before gating: keeps the rng stream identical either way.
    scheduler().rng().shuffle(order);
    if (!admission_possible()) {
      ++matcher_index_hits_;
      return;
    }
  }
  ++matcher_runs_;
  std::vector<Request*> admitted;
  for (Request* r : order) {
    const RequestView view{r->pid, r->requested, r->partners};
    if (auto concrete =
            detail::try_admit(spec_, active_->state, active_->out, view)) {
      r->admitted = true;
      r->assigned = *concrete;
      r->perf = active_.get();
      admitted.push_back(r);
      publish(obs::EventKind::Instant, r->pid, "enroll.ok",
              concrete->str(), static_cast<double>(active_->number));
      emit(ScriptEvent::Kind::Enrolled, r->pid, *concrete,
           active_->number);
    }
  }
  for (Request* r : admitted) {
    dequeue(*r);
    if (scheduler().state_of(r->pid) == runtime::FiberState::Blocked)
      scheduler().unblock(r->pid);
  }
  if (!admitted.empty()) notify_state_change();
}

void ScriptInstance::after_state_change() {
  if (active_ == nullptr || active_->done) return;

  if (!active_->critical_hit &&
      detail::critical_satisfied(spec_, active_->state)) {
    active_->critical_hit = true;
    // "Once the critical set is filled, all unfilled roles have
    // r.terminated set to true."
    for (const RoleId& r : spec_.fixed_roles())
      if (!active_->state.is_bound(r)) active_->out.insert(r);
    notify_state_change();
  }

  if (performance_can_end()) finish_performance();
}

bool ScriptInstance::performance_can_end() const {
  const Performance& p = *active_;
  if (p.state.bindings.empty()) return false;
  if (!p.critical_hit) return false;  // more roles must still arrive
  for (const auto& [r, pid] : p.state.bindings)
    if (!p.completed.count(r) && !p.failed.count(r)) return false;
  // All bound roles completed (or failed — a crashed role can never
  // finish) and all fixed unbound roles are out (implied by
  // critical_hit); open families may have stragglers, who will go to
  // the next performance.
  return true;
}

void ScriptInstance::finish_performance() {
  Performance& p = *active_;
  p.done = true;
  // Stored parameters outlive their enrollers' frames; make sure no
  // writer can fire into a popped stack after the performance ends.
  for (auto& [r, stored] : p.params_store) stored.drop_writers();
  if (!p.aborted) {
    ++completed_perfs_;
    breaker_note_progress();  // a completed performance is real progress
  }
  publish(obs::EventKind::SpanEnd, kNoProcess, "performance",
          p.aborted ? "(aborted)" : "", static_cast<double>(p.number));
  emit(ScriptEvent::Kind::PerformanceEnded, kNoProcess, RoleId(), p.number);
  // Free delayed-termination holdees. A holdee that crashed while
  // parked here is Done, not Blocked — skip it.
  std::vector<ProcessId> holdees;
  holdees.swap(end_waiters_);
  for (const ProcessId pid : holdees)
    if (scheduler().state_of(pid) == runtime::FiberState::Blocked)
      scheduler().unblock(pid);
  notify_state_change();
  // The Performance object must outlive returning enrollees; they hold
  // pointers to it. Detach it; the last reference dies with their
  // frames (we keep it alive via shared ownership below).
  finished_.push_back(std::move(active_));
  active_.reset();
  try_advance();
}

void ScriptInstance::role_done(const RoleId& r) {
  SCRIPT_ASSERT(active_ != nullptr && active_->state.is_bound(r),
                "role_done for unbound role " + r.str());
  const ProcessId pid = active_->state.bindings.find(r)->second;
  active_->completed.insert(r);
  if (spec_.failure_policy() == FailurePolicy::Replace) {
    // A replacement incarnation may have re-posted an exchange this role
    // already concluded with its predecessor; the done role will never
    // answer, so retire its pid from the performance's namespace.
    net_->retire_peer(pid,
                      name_ + "#" + std::to_string(active_->number) + "/");
  }
  notify_state_change();
  after_state_change();
}

void ScriptInstance::on_process_crashed(ProcessId pid) {
  if (active_ == nullptr || active_->done) return;
  const auto it = active_->find_role(pid);
  if (it == active_->state.bindings.end()) return;
  const RoleId r = it->first;
  if (active_->completed.count(r) || active_->failed.count(r)) return;
  handle_role_crash(*active_, r, pid);
}

void ScriptInstance::handle_role_crash(Performance& perf, const RoleId& r,
                                       ProcessId pid) {
  const bool takeover = spec_.failure_policy() == FailurePolicy::Replace &&
                        spec_.takeover_allowed(r) && !perf.aborted &&
                        &perf == active_.get();
  if (!takeover) perf.failed.insert(r);
  publish(obs::EventKind::Instant, pid, "role.crashed", r.str(),
          static_cast<double>(perf.number));
  emit(ScriptEvent::Kind::RoleCrashed, pid, r, perf.number);
  if (takeover) {
    begin_takeover(perf, r, pid);
    return;
  }
  // A Replace script whose crashed role is not replaceable skips the
  // window and applies the fallback policy directly.
  const FailurePolicy effective =
      spec_.failure_policy() == FailurePolicy::Replace
          ? spec_.takeover_fallback()
          : spec_.failure_policy();
  if (!perf.aborted && effective == FailurePolicy::Abort)
    abort_performance(perf);
  notify_state_change();
  if (&perf == active_.get()) after_state_change();
}

void ScriptInstance::abort_performance(Performance& perf) {
  perf.aborted = true;
  ++aborted_perfs_;
  cancel_takeovers(perf);
  if (!perf.critical_hit) {
    // The cast will never complete: stop waiting for more enrollees.
    perf.critical_hit = true;
    for (const RoleId& r : spec_.fixed_roles())
      if (!perf.state.is_bound(r)) perf.out.insert(r);
  }
  publish(obs::EventKind::Instant, kNoProcess, "performance.abort", "",
          static_cast<double>(perf.number));
  emit(ScriptEvent::Kind::PerformanceAborted, kNoProcess, RoleId(),
       perf.number);
  // Survivors parked in a rendezvous of THIS performance wake with a
  // failed op and unwind via check_abort(); survivors parked on state
  // changes are woken by the caller's notify_state_change().
  net_->fail_tagged(name_ + "#" + std::to_string(perf.number) + "/");
}

void ScriptInstance::mark_role_unwound(Performance& perf, const RoleId& r) {
  if (perf.done || perf.completed.count(r) || perf.failed.count(r)) return;
  perf.failed.insert(r);
  notify_state_change();
  if (&perf == active_.get()) after_state_change();
}

// ---- Role takeover (FailurePolicy::Replace) ----

void ScriptInstance::begin_takeover(Performance& perf, const RoleId& r,
                                    ProcessId pid) {
  const std::uint64_t deadline = sched_->now() + spec_.takeover_deadline();
  perf.awaiting_takeover[r] = TakeoverState{pid, deadline, kNoProcess};
  // The crashed incarnation's out-writers point into its unwound stack;
  // the stored values survive for the replacement, the writers must not.
  const auto stored = perf.params_store.find(r);
  if (stored != perf.params_store.end()) stored->second.drop_writers();
  publish(obs::EventKind::Instant, pid, "takeover.begin", r.str(),
          static_cast<double>(perf.number));
  publish_recovery("takeover.begin", pid,
                   name_ + " " + r.str() + " deadline=" +
                       std::to_string(deadline));
  emit(ScriptEvent::Kind::TakeoverBegan, pid, r, perf.number);
  // A deadline watcher keeps virtual time moving even when every
  // survivor is parked on the awaiting role, and bounds the window.
  Performance* p = &perf;  // stable: performances live in unique_ptrs
  sched_->spawn(name_ + ".takeover." + r.str(), [this, p, r] {
    for (;;) {
      if (p->done) return;
      const auto it = p->awaiting_takeover.find(r);
      if (it == p->awaiting_takeover.end()) return;  // resolved
      const std::uint64_t now = sched_->now();
      if (it->second.deadline <= now) {
        takeover_timeout(*p, r);
        return;
      }
      it->second.watcher = sched_->current();
      (void)sched_->block_with_timeout(
          "takeover window for " + r.str() + " in " + name_,
          it->second.deadline - now);
    }
  });
  notify_state_change();
  takeover_pass();  // a queued request may already fit the role
}

void ScriptInstance::takeover_pass() {
  if (active_ == nullptr || active_->done || active_->aborted) return;
  Performance& perf = *active_;
  if (perf.awaiting_takeover.empty() || queue_.empty()) return;
  std::vector<RoleId> waiting;
  waiting.reserve(perf.awaiting_takeover.size());
  for (const auto& [r, st] : perf.awaiting_takeover) waiting.push_back(r);
  std::vector<Request*> admitted;
  for (const RoleId& r : waiting) {
    if (queued_by_role_.find(r.name) == queued_by_role_.end()) continue;
    // First compatible queued request takes over (FIFO — deterministic).
    for (Request* q : queue_) {
      if (q->admitted) continue;  // claimed by an earlier role this pass
      if (!takeover_compatible(perf, r, *q)) continue;
      complete_takeover(perf, r, *q);
      admitted.push_back(q);
      break;
    }
  }
  for (Request* q : admitted) {
    dequeue(*q);
    if (sched_->state_of(q->pid) == runtime::FiberState::Blocked)
      sched_->unblock(q->pid);
  }
  if (!admitted.empty()) notify_state_change();
}

bool ScriptInstance::takeover_compatible(const Performance& perf,
                                         const RoleId& r,
                                         const Request& req) const {
  if (req.requested.is_any_index()) {
    if (req.requested.name != r.name) return false;
  } else if (req.requested != r) {
    return false;
  }
  // Existing members' accumulated partner constraints on this role.
  if (!perf.state.permits(r, req.pid)) return false;
  // The newcomer's own constraints against what is already bound. (They
  // are checked, not persisted: roles bound after the takeover are not
  // re-restricted by a replacement's WITH clause.)
  if (req.partners != nullptr) {
    for (const auto& [role_id, pids] : req.partners->constraints()) {
      if (role_id == r) continue;
      const auto b = perf.state.bindings.find(role_id);
      if (b == perf.state.bindings.end()) continue;  // unbound: vacuous
      if (std::find(pids.begin(), pids.end(), b->second) == pids.end())
        return false;
    }
  }
  return true;
}

void ScriptInstance::complete_takeover(Performance& perf, const RoleId& r,
                                       Request& req) {
  const auto it = perf.awaiting_takeover.find(r);
  SCRIPT_ASSERT(it != perf.awaiting_takeover.end(),
                "takeover completion for a role not awaiting one");
  const ProcessId old_pid = it->second.old_pid;
  const ProcessId watcher = it->second.watcher;
  perf.awaiting_takeover.erase(it);
  // Rebind IN PLACE: the monotone match-state counters (bound_by_name,
  // critical fills) describe the role, not the process, and stay valid.
  perf.state.bindings[r] = req.pid;
  req.admitted = true;
  req.resumed = true;
  req.assigned = r;
  req.perf = &perf;
  ++takeovers_completed_;
  ++perf.incarnations[r];
  // Survivors parked in a rendezvous addressed at the dead process are
  // repointed at the replacement — their posted ops complete normally.
  net_->rebind_peer(old_pid, req.pid,
                    name_ + "#" + std::to_string(perf.number) + "/");
  sched_->causal_edge(old_pid, req.pid, "takeover");
  publish(obs::EventKind::Instant, req.pid, "takeover.complete", r.str(),
          static_cast<double>(perf.number));
  publish_recovery("takeover.complete", req.pid,
                   name_ + " " + r.str() + " from " +
                       sched_->name_of(old_pid));
  emit(ScriptEvent::Kind::RoleTakenOver, req.pid, r, perf.number);
  if (watcher != kNoProcess &&
      sched_->state_of(watcher) == runtime::FiberState::Blocked)
    sched_->unblock(watcher);
}

void ScriptInstance::takeover_timeout(Performance& perf, const RoleId& r) {
  const auto it = perf.awaiting_takeover.find(r);
  if (it == perf.awaiting_takeover.end() || perf.done) return;
  const ProcessId old_pid = it->second.old_pid;
  perf.awaiting_takeover.erase(it);
  perf.failed.insert(r);
  ++takeovers_failed_;
  publish(obs::EventKind::Instant, old_pid, "takeover.timeout", r.str(),
          static_cast<double>(perf.number));
  publish_recovery("takeover.timeout", old_pid, name_ + " " + r.str());
  emit(ScriptEvent::Kind::TakeoverFailed, old_pid, r, perf.number);
  if (!perf.aborted && spec_.takeover_fallback() == FailurePolicy::Abort)
    abort_performance(perf);
  notify_state_change();
  if (&perf == active_.get()) after_state_change();
}

void ScriptInstance::cancel_takeovers(Performance& perf) {
  while (!perf.awaiting_takeover.empty()) {
    const auto it = perf.awaiting_takeover.begin();
    const RoleId r = it->first;
    const ProcessId old_pid = it->second.old_pid;
    const ProcessId watcher = it->second.watcher;
    perf.awaiting_takeover.erase(it);
    perf.failed.insert(r);
    ++takeovers_failed_;
    emit(ScriptEvent::Kind::TakeoverFailed, old_pid, r, perf.number);
    if (watcher != kNoProcess &&
        sched_->state_of(watcher) == runtime::FiberState::Blocked)
      sched_->unblock(watcher);
  }
}

void ScriptInstance::publish_recovery(const char* name, ProcessId pid,
                                      std::string detail, double value) {
  obs::EventBus& bus = scheduler().bus();
  if (!bus.wants(obs::Subsystem::Recovery)) return;
  bus.publish({obs::EventKind::Instant, obs::Subsystem::Recovery,
               obs::kAutoTime, static_cast<obs::Pid>(pid), obs_lane(), name,
               std::move(detail), value});
}

void ScriptInstance::publish_overload(const char* name, ProcessId pid,
                                      std::string detail, double value) {
  obs::EventBus& bus = scheduler().bus();
  if (!bus.wants(obs::Subsystem::Overload)) return;
  bus.publish({obs::EventKind::Instant, obs::Subsystem::Overload,
               obs::kAutoTime, static_cast<obs::Pid>(pid), obs_lane(), name,
               std::move(detail), value});
}

void ScriptInstance::wait_state_change(const std::string& why) {
  const ProcessId me = scheduler().current();
  state_waiters_.push_back(me);
  try {
    scheduler().block(why);
  } catch (...) {
    // Crashed while parked: deregister so notify never sees a stale pid.
    const auto it =
        std::find(state_waiters_.begin(), state_waiters_.end(), me);
    if (it != state_waiters_.end()) state_waiters_.erase(it);
    throw;
  }
}

void ScriptInstance::notify_state_change() {
  std::vector<ProcessId> waiters;
  waiters.swap(state_waiters_);
  for (const ProcessId pid : waiters)
    if (scheduler().state_of(pid) == runtime::FiberState::Blocked)
      scheduler().unblock(pid);
}

std::int32_t ScriptInstance::obs_lane() {
  if (obs_lane_ == obs::kNoLane) {
    obs_lane_ = scheduler().bus().add_lane(name_);
    // Announce the lane as a timeline series identity, so an armed
    // timeline shows this script (idle or not) from the moment it
    // exists rather than from its first event.
    if (obs::Timeline* tl = scheduler().timeline())
      tl->declare_lane(obs_lane_);
  }
  return obs_lane_;
}

void ScriptInstance::publish(obs::EventKind kind, ProcessId pid,
                             const char* name, std::string detail,
                             double value) {
  obs::EventBus& bus = scheduler().bus();
  if (!bus.wants(obs::Subsystem::Script)) return;  // bridge keeps it hot
  bus.publish({kind, obs::Subsystem::Script, obs::kAutoTime,
               static_cast<obs::Pid>(pid), obs_lane(), name,
               std::move(detail), value});
}

void ScriptInstance::emit(ScriptEvent::Kind kind, ProcessId pid,
                          const RoleId& role, std::uint64_t performance) {
  if (observers_.empty()) return;
  const ScriptEvent event{kind, scheduler().now(), pid, role, performance};
  for (const auto& fn : observers_) fn(event);
}

std::map<RoleId, ProcessId>::const_iterator
ScriptInstance::Performance::find_role(ProcessId pid) const {
  for (auto it = state.bindings.begin(); it != state.bindings.end(); ++it)
    if (it->second == pid) return it;
  return state.bindings.end();
}

// ---- RoleContext ----

std::uint64_t RoleContext::performance() const { return perf_->number; }

bool RoleContext::terminated(const RoleId& r) const {
  if (perf_->completed.count(r)) return true;
  if (perf_->failed.count(r)) return true;
  return perf_->out.count(r) > 0;
}

bool RoleContext::failed(const RoleId& r) const {
  return perf_->failed.count(r) > 0;
}

void RoleContext::check_abort() const {
  if (perf_->aborted) throw PerformanceAborted{perf_->number};
}

bool RoleContext::filled(const RoleId& r) const {
  return perf_->state.is_bound(r);
}

std::size_t RoleContext::family_size(const std::string& role_name) const {
  const RoleDecl& d = inst_->spec_.decl(role_name);
  if (!d.open_ended) return d.count;
  const auto it = perf_->state.open_sizes.find(role_name);
  return it == perf_->state.open_sizes.end() ? 0 : it->second;
}

void RoleContext::deadline(std::uint64_t ticks) {
  runtime::Scheduler& sched = inst_->scheduler();
  sched.set_deadline(sched.current(), sched.now() + ticks);
  deadline_installed_ = true;
}

std::uint64_t RoleContext::deadline_at() const {
  runtime::Scheduler& sched = inst_->scheduler();
  return sched.deadline_of(sched.current());
}

std::uint64_t RoleContext::remaining_deadline() const {
  runtime::Scheduler& sched = inst_->scheduler();
  const std::uint64_t at = sched.deadline_of(sched.current());
  if (at == runtime::kNoDeadline) return runtime::kNoDeadline;
  const std::uint64_t now = sched.now();
  return at <= now ? 0 : at - now;
}

void RoleContext::clear_deadline() {
  runtime::Scheduler& sched = inst_->scheduler();
  sched.clear_deadline(sched.current());
  deadline_installed_ = false;
}

RoleResult<ProcessId> RoleContext::await_role(const RoleId& r) {
  SCRIPT_ASSERT(inst_->spec_.valid(r) && !r.is_any_index(),
                "communication names invalid role " + r.str());
  for (;;) {
    check_abort();
    if (perf_->completed.count(r) || perf_->out.count(r) ||
        perf_->failed.count(r))
      return support::make_unexpected(RoleCommError::Unavailable);
    if (perf_->awaiting_takeover.count(r)) {
      // Bound to a dead process until a replacement rebinds it; park
      // rather than hand out the stale pid.
      inst_->wait_state_change("role " + self_.str() +
                               " awaiting takeover of " + r.str() + " in " +
                               inst_->name_);
      continue;
    }
    const auto it = perf_->state.bindings.find(r);
    if (it != perf_->state.bindings.end()) return it->second;
    if (perf_->done)
      return support::make_unexpected(RoleCommError::Unavailable);
    inst_->wait_state_change("role " + self_.str() + " awaiting partner " +
                             r.str() + " in " + inst_->name_);
  }
}

bool RoleContext::await_takeover(const RoleId& r) {
  for (;;) {
    // "Gone for good" outranks the abort: when the fallback policy voids
    // the performance, the caller still learns the takeover failed and
    // can clean up; the abort surfaces at its next communication.
    if (perf_->completed.count(r) || perf_->out.count(r) ||
        perf_->failed.count(r))
      return false;
    check_abort();
    if (!perf_->awaiting_takeover.count(r)) return true;
    inst_->wait_state_change("role " + self_.str() +
                             " awaiting takeover of " + r.str() + " in " +
                             inst_->name_);
  }
}

std::string RoleContext::scoped_tag(const RoleId& to,
                                    const std::string& tag) const {
  return inst_->name_ + "#" + std::to_string(perf_->number) + "/" +
         to.str() + "/" + tag;
}

RoleId RoleContext::role_of(ProcessId pid) const {
  const auto it = perf_->find_role(pid);
  SCRIPT_ASSERT(it != perf_->state.bindings.end(),
                "message from a process playing no role");
  return it->first;
}

}  // namespace script::core
