// Structured script events, for observers (metrics, runtime
// verification). The TraceLog keeps the human-readable Figure-1-style
// timeline; observers get the same milestones as typed values.
#pragma once

#include <cstdint>

#include "script/ids.hpp"

namespace script::core {

struct ScriptEvent {
  enum class Kind : std::uint8_t {
    EnrollAttempt,      // request queued (role = requested, maybe any-index)
    Enrolled,           // request admitted (role = concrete)
    RoleBegan,          // body starts on the enroller's fiber
    RoleFinished,       // body returned
    Released,           // enroll() returns to the process
    PerformanceBegan,   // pid is kNoProcess
    PerformanceEnded,   // pid is kNoProcess
    RoleCrashed,        // the enrolled process died mid-performance
    PerformanceAborted, // a crash voided the performance (pid kNoProcess)
    TakeoverBegan,      // Replace: role awaits a replacement (pid = dead)
    RoleTakenOver,      // a replacement was admitted (pid = replacement)
    TakeoverFailed,     // deadline expired; fell back to Abort/Degrade
    EnrollShed,         // admission control refused the request (overload)
  };

  Kind kind;
  std::uint64_t time = 0;         // virtual time
  ProcessId pid = kNoProcess;     // acting process (if any)
  RoleId role;                    // affected role (if any)
  std::uint64_t performance = 0;  // 0 when not yet known
};

}  // namespace script::core
