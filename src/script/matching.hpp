// The joint-enrollment matcher.
//
// Partner-named enrollment (paper §II): "the processes will jointly
// enroll in the script only when their enrollment specifications match,
// that is they all agree on the binding of processes to roles."
//
// MatchState tracks, for one performance, the agreed bindings plus the
// *accumulated* naming constraints: every admitted member's PartnerSpec
// intersects into `allowed`, so a role can only ever be bound to a
// process every current member accepts. Constraints over roles that end
// up unfilled are vacuous (they constrain who COULD fill the role, not
// whether it must be filled).
//
// Two entry points:
//   * try_admit       — incremental admission (immediate initiation, and
//                       extension of a formed performance);
//   * form_delayed    — backtracking search over the queued requests for
//                       a mutually-consistent subset satisfying a
//                       critical set (delayed initiation). Greedy
//                       admission is not enough: with requests
//                       C(q), B(q, wants p=A), A(p, wants q=B), only the
//                       assignment {A->p, B->q} starts the performance.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "script/partner_spec.hpp"
#include "script/spec.hpp"

namespace script::core::detail {

/// A queued enrollment, as the matcher sees it.
struct RequestView {
  ProcessId pid = kNoProcess;
  RoleId requested;  // may be any_member(...) for families
  const PartnerSpec* partners = nullptr;
};

struct MatchState {
  std::map<RoleId, ProcessId> bindings;
  /// Accumulated naming constraints: role -> processes still acceptable
  /// to every member. Absent key = unconstrained. An empty set means the
  /// role can no longer be filled this performance.
  std::map<RoleId, std::set<ProcessId>> allowed;
  /// Current size of each open-ended family.
  std::map<std::string, std::size_t> open_sizes;

  bool is_bound(const RoleId& r) const { return bindings.count(r) > 0; }
  std::size_t bound_count(const std::string& role_name) const;
  bool permits(const RoleId& r, ProcessId pid) const;

  // ---- Role-indexed bookkeeping, maintained by try_admit ----
  // Bindings are only ever ADDED to a MatchState (backtracking copies
  // states instead of undoing), which is what makes the caches below
  // monotone and cheap to keep.

  /// Members bound per role name; bound_count() reads this instead of
  /// rescanning `bindings`.
  std::map<std::string, std::size_t> bound_by_name;
  /// Per-family scan floor for resolve_index: every index below the
  /// floor is bound, so filling a family costs O(count) total rather
  /// than O(count) per admission. mutable: advancing the floor is a
  /// cache refresh, not a state change.
  mutable std::map<std::string, std::size_t> index_floor;
  /// Per-critical-set fill counters (indexed like
  /// ScriptSpec::critical_sets()): how many of each set's requirements
  /// are met, and how many sets are fully met. Initialized lazily on
  /// the first critical_satisfied() call, then kept current by
  /// try_admit, making the satisfaction test O(1) on the hot path.
  mutable std::vector<std::size_t> cs_met;
  mutable std::size_t cs_satisfied = 0;
  mutable bool cs_ready = false;
};

/// Resolve an any-index request to a concrete role: the lowest unbound,
/// non-excluded index whose accumulated constraints permit `pid`
/// (fixed family), or the next fresh index (open family). `excluded`
/// holds roles closed for this performance.
std::optional<RoleId> resolve_index(const ScriptSpec& spec,
                                    const MatchState& st,
                                    const std::set<RoleId>& excluded,
                                    const RoleId& requested, ProcessId pid);

/// Try to admit one request into `st`. On success, commits the binding
/// and the request's constraints, and returns the concrete role.
/// `excluded` holds roles closed for this performance (out or not
/// joinable). Fails — leaving `st` untouched — when the request's role
/// is taken/closed, when an existing member's constraint rejects this
/// process, or when this request's constraint contradicts a binding.
std::optional<RoleId> try_admit(const ScriptSpec& spec, MatchState& st,
                                const std::set<RoleId>& excluded,
                                const RequestView& req);

/// Does `st` satisfy one of the spec's critical sets?
bool critical_satisfied(const ScriptSpec& spec, const MatchState& st);

/// Result of forming a performance: which queued requests are admitted
/// (indices into the input vector) and the concrete role of each.
struct FormResult {
  MatchState state;
  std::vector<std::pair<std::size_t, RoleId>> admitted;
};

/// Backtracking formation for delayed initiation: find a subset of the
/// queued requests, mutually consistent, that satisfies a critical set;
/// then extend it greedily (arrival order) with every other consistent
/// request. Prefers earlier arrivals. Returns nullopt if no subset
/// works.
std::optional<FormResult> form_delayed(const ScriptSpec& spec,
                                       const std::vector<RequestView>& queue);

}  // namespace script::core::detail
