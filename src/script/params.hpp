// Data parameters of a role (paper §II: "ordinary formal parameters ...
// bound at enrollment time to the corresponding actual parameters
// supplied by the enrolling process").
//
// Modes follow the paper's usage:
//   * in      — a value the enroller supplies (Fig 3 `sender(data)`);
//   * out     — a location the role body assigns (Fig 3 recipients'
//               `VAR data`); because the role body executes on the
//               enrolling process's own fiber, out-parameters write
//               straight through to the enroller's variable
//               (call-by-reference, as in the paper's CSP translation).
#pragma once

#include <any>
#include <functional>
#include <map>
#include <string>

#include "support/panic.hpp"

namespace script::core {

class Params {
 public:
  /// Supply an in-parameter value.
  template <typename T>
  Params& in(const std::string& name, T value) {
    SCRIPT_ASSERT(!slots_.count(name), "duplicate parameter " + name);
    Slot s;
    s.value = std::move(value);
    slots_.emplace(name, std::move(s));
    return *this;
  }

  /// Register an out-parameter: the role body's set() writes to *target.
  template <typename T>
  Params& out(const std::string& name, T* target) {
    SCRIPT_ASSERT(!slots_.count(name), "duplicate parameter " + name);
    Slot s;
    s.writer = [target](const std::any& v) {
      *target = std::any_cast<T>(v);
    };
    slots_.emplace(name, std::move(s));
    return *this;
  }

  /// In-out: supplies a value AND writes the final value back.
  template <typename T>
  Params& inout(const std::string& name, T* target) {
    SCRIPT_ASSERT(!slots_.count(name), "duplicate parameter " + name);
    Slot s;
    s.value = *target;
    s.writer = [target](const std::any& v) {
      *target = std::any_cast<T>(v);
    };
    slots_.emplace(name, std::move(s));
    return *this;
  }

  // ---- Used by the role body (via RoleContext) ----

  template <typename T>
  T get(const std::string& name) const {
    const Slot& s = slot(name);
    SCRIPT_ASSERT(s.value.has_value(), "parameter " + name + " has no value");
    return std::any_cast<T>(s.value);
  }

  template <typename T>
  void set(const std::string& name, T value) {
    Slot& s = slot(name);
    s.value = value;  // keep readable (in-out semantics)
    if (s.writer) s.writer(s.value);
  }

  bool has(const std::string& name) const { return slots_.count(name) > 0; }

  // ---- Role takeover support (FailurePolicy::Replace) ----

  /// Null every out-writer. A crashed enroller's writers point into its
  /// unwound stack frame; the stored copy of its parameters keeps the
  /// VALUES for the replacement but must never write back.
  void drop_writers() {
    for (auto& [name, s] : slots_) s.writer = nullptr;
  }

  /// Copy from `donor` every slot this Params lacks. A replacement
  /// enrollment inherits the crashed incarnation's data parameters
  /// (current values included — set_param updates the stored copy) while
  /// its own slots, writers included, take precedence.
  void adopt_missing(const Params& donor) {
    for (const auto& [name, s] : donor.slots_)
      slots_.emplace(name, s);
  }

 private:
  struct Slot {
    std::any value;
    std::function<void(const std::any&)> writer;
  };

  Slot& slot(const std::string& name) {
    auto it = slots_.find(name);
    SCRIPT_ASSERT(it != slots_.end(), "unknown parameter " + name);
    return it->second;
  }
  const Slot& slot(const std::string& name) const {
    auto it = slots_.find(name);
    SCRIPT_ASSERT(it != slots_.end(), "unknown parameter " + name);
    return it->second;
  }

  std::map<std::string, Slot> slots_;
};

}  // namespace script::core
