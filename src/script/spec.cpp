#include "script/spec.hpp"

#include "support/panic.hpp"

namespace script::core {

ScriptSpec& ScriptSpec::role(const std::string& role_name) {
  SCRIPT_ASSERT(!has_role(role_name), "duplicate role " + role_name);
  roles_.push_back(RoleDecl{role_name, 1, false, false, 0});
  return *this;
}

ScriptSpec& ScriptSpec::role_family(const std::string& role_name,
                                    std::size_t count) {
  SCRIPT_ASSERT(!has_role(role_name), "duplicate role " + role_name);
  SCRIPT_ASSERT(count > 0, "empty role family " + role_name);
  roles_.push_back(RoleDecl{role_name, count, true, false, 0});
  return *this;
}

ScriptSpec& ScriptSpec::open_role_family(const std::string& role_name,
                                         std::size_t min_count) {
  SCRIPT_ASSERT(!has_role(role_name), "duplicate role " + role_name);
  roles_.push_back(RoleDecl{role_name, 0, true, true, min_count});
  return *this;
}

ScriptSpec& ScriptSpec::initiation(Initiation i) {
  initiation_ = i;
  return *this;
}

ScriptSpec& ScriptSpec::termination(Termination t) {
  termination_ = t;
  return *this;
}

ScriptSpec& ScriptSpec::nondeterministic_contention(bool on) {
  nondet_contention_ = on;
  return *this;
}

ScriptSpec& ScriptSpec::on_failure(FailurePolicy p) {
  failure_policy_ = p;
  return *this;
}

ScriptSpec& ScriptSpec::critical(CriticalSet set) {
  for (const auto& [role_name, count] : set) {
    SCRIPT_ASSERT(has_role(role_name),
                  "critical set names unknown role " + role_name);
    const RoleDecl& d = decl(role_name);
    SCRIPT_ASSERT(d.open_ended || count <= d.count,
                  "critical count exceeds family size for " + role_name);
  }
  criticals_.push_back(std::move(set));
  return *this;
}

bool ScriptSpec::has_role(const std::string& role_name) const {
  for (const auto& d : roles_)
    if (d.name == role_name) return true;
  return false;
}

const RoleDecl& ScriptSpec::decl(const std::string& role_name) const {
  for (const auto& d : roles_)
    if (d.name == role_name) return d;
  SCRIPT_PANIC("unknown role " + role_name + " in script " + name_);
}

bool ScriptSpec::valid(const RoleId& id) const {
  if (!has_role(id.name)) return false;
  const RoleDecl& d = decl(id.name);
  if (!d.indexed) return id.index == kSingleton;
  if (id.index == kAnyIndex) return true;
  if (id.index < 0) return false;
  return d.open_ended || static_cast<std::size_t>(id.index) < d.count;
}

std::vector<RoleId> ScriptSpec::fixed_roles() const {
  std::vector<RoleId> out;
  for (const auto& d : roles_) {
    if (d.open_ended) continue;
    if (!d.indexed) {
      out.emplace_back(d.name);
    } else {
      for (std::size_t i = 0; i < d.count; ++i)
        out.emplace_back(d.name, static_cast<int>(i));
    }
  }
  return out;
}

std::vector<CriticalSet> ScriptSpec::critical_sets() const {
  if (!criticals_.empty()) return criticals_;
  CriticalSet everything;
  for (const auto& d : roles_)
    everything[d.name] = d.open_ended ? d.min_count : d.count;
  return {everything};
}

}  // namespace script::core
