#include "script/spec.hpp"

#include "support/panic.hpp"

namespace script::core {

ScriptSpec& ScriptSpec::role(const std::string& role_name) {
  SCRIPT_ASSERT(!has_role(role_name), "duplicate role " + role_name);
  roles_.push_back(RoleDecl{role_name, 1, false, false, 0});
  critical_cache_built_ = false;
  return *this;
}

ScriptSpec& ScriptSpec::role_family(const std::string& role_name,
                                    std::size_t count) {
  SCRIPT_ASSERT(!has_role(role_name), "duplicate role " + role_name);
  SCRIPT_ASSERT(count > 0, "empty role family " + role_name);
  roles_.push_back(RoleDecl{role_name, count, true, false, 0});
  critical_cache_built_ = false;
  return *this;
}

ScriptSpec& ScriptSpec::open_role_family(const std::string& role_name,
                                         std::size_t min_count) {
  SCRIPT_ASSERT(!has_role(role_name), "duplicate role " + role_name);
  roles_.push_back(RoleDecl{role_name, 0, true, true, min_count});
  critical_cache_built_ = false;
  return *this;
}

ScriptSpec& ScriptSpec::initiation(Initiation i) {
  initiation_ = i;
  return *this;
}

ScriptSpec& ScriptSpec::termination(Termination t) {
  termination_ = t;
  return *this;
}

ScriptSpec& ScriptSpec::nondeterministic_contention(bool on) {
  nondet_contention_ = on;
  return *this;
}

ScriptSpec& ScriptSpec::on_failure(FailurePolicy p) {
  failure_policy_ = p;
  return *this;
}

ScriptSpec& ScriptSpec::takeover_deadline(std::uint64_t ticks) {
  SCRIPT_ASSERT(ticks > 0, "takeover deadline must be positive");
  takeover_deadline_ = ticks;
  return *this;
}

ScriptSpec& ScriptSpec::takeover_fallback(FailurePolicy p) {
  SCRIPT_ASSERT(p != FailurePolicy::Replace,
                "takeover fallback cannot itself be Replace");
  takeover_fallback_ = p;
  return *this;
}

ScriptSpec& ScriptSpec::takeover_roles(std::vector<std::string> names) {
  for (const auto& n : names)
    SCRIPT_ASSERT(has_role(n), "takeover_roles names unknown role " + n);
  takeover_roles_ = std::move(names);
  return *this;
}

ScriptSpec& ScriptSpec::slo(obs::SloConfig cfg) {
  slo_ = cfg;
  return *this;
}

ScriptSpec& ScriptSpec::budget(ExecutionBudget b) {
  budget_ = b;
  return *this;
}

ScriptSpec& ScriptSpec::overload(OverloadConfig cfg) {
  SCRIPT_ASSERT(!cfg.breaker_enabled() || cfg.breaker_cooldown > 0,
                "breaker cooldown must be positive");
  SCRIPT_ASSERT(!cfg.breaker_enabled() || cfg.half_open_probes > 0,
                "half-open probe count must be positive");
  overload_ = std::move(cfg);
  return *this;
}

bool ScriptSpec::takeover_allowed(const RoleId& r) const {
  if (takeover_roles_.empty()) return true;
  for (const auto& n : takeover_roles_)
    if (n == r.name) return true;
  return false;
}

ScriptSpec& ScriptSpec::critical(CriticalSet set) {
  for (const auto& [role_name, count] : set) {
    SCRIPT_ASSERT(has_role(role_name),
                  "critical set names unknown role " + role_name);
    const RoleDecl& d = decl(role_name);
    SCRIPT_ASSERT(d.open_ended || count <= d.count,
                  "critical count exceeds family size for " + role_name);
  }
  criticals_.push_back(std::move(set));
  critical_cache_built_ = false;
  return *this;
}

bool ScriptSpec::has_role(const std::string& role_name) const {
  for (const auto& d : roles_)
    if (d.name == role_name) return true;
  return false;
}

const RoleDecl& ScriptSpec::decl(const std::string& role_name) const {
  for (const auto& d : roles_)
    if (d.name == role_name) return d;
  SCRIPT_PANIC("unknown role " + role_name + " in script " + name_);
}

bool ScriptSpec::valid(const RoleId& id) const {
  if (!has_role(id.name)) return false;
  const RoleDecl& d = decl(id.name);
  if (!d.indexed) return id.index == kSingleton;
  if (id.index == kAnyIndex) return true;
  if (id.index < 0) return false;
  return d.open_ended || static_cast<std::size_t>(id.index) < d.count;
}

std::vector<RoleId> ScriptSpec::fixed_roles() const {
  std::vector<RoleId> out;
  for (const auto& d : roles_) {
    if (d.open_ended) continue;
    if (!d.indexed) {
      out.emplace_back(d.name);
    } else {
      for (std::size_t i = 0; i < d.count; ++i)
        out.emplace_back(d.name, static_cast<int>(i));
    }
  }
  return out;
}

void ScriptSpec::build_critical_cache() const {
  critical_cache_.clear();
  critical_needs_.clear();
  critical_set_sizes_.clear();
  if (!criticals_.empty()) {
    critical_cache_ = criticals_;
  } else {
    // "It is taken to mean that the entire collection of roles is
    // critical" (§II).
    CriticalSet everything;
    for (const auto& d : roles_)
      everything[d.name] = d.open_ended ? d.min_count : d.count;
    critical_cache_.push_back(std::move(everything));
  }
  for (std::size_t i = 0; i < critical_cache_.size(); ++i) {
    critical_set_sizes_.push_back(critical_cache_[i].size());
    for (const auto& [role_name, needed] : critical_cache_[i])
      critical_needs_[role_name].push_back(CriticalNeed{i, needed});
  }
  critical_cache_built_ = true;
}

const std::vector<CriticalSet>& ScriptSpec::critical_sets() const {
  if (!critical_cache_built_) build_critical_cache();
  return critical_cache_;
}

const std::map<std::string, std::vector<CriticalNeed>>&
ScriptSpec::critical_needs() const {
  if (!critical_cache_built_) build_critical_cache();
  return critical_needs_;
}

const std::vector<std::size_t>& ScriptSpec::critical_set_sizes() const {
  if (!critical_cache_built_) build_critical_cache();
  return critical_set_sizes_;
}

}  // namespace script::core
