// ScriptInstance — one instance of a script, managing enrollments,
// performances, and inter-role communication (paper §II).
//
// Key semantic commitments (see DESIGN.md §5):
//
// * A role body executes ON THE ENROLLING PROCESS'S FIBER — "the
//   execution of the role is a logical continuation of the enrolling
//   process". enroll() returns when the role (and, under delayed
//   termination, the whole performance) is finished.
// * Successive activations: "all of the roles of a given performance
//   must terminate before a subsequent performance of the same script
//   can begin" (Figure 1). Enrollments that cannot join the current
//   performance queue for the next one.
// * Critical role sets: once a critical set is filled, every unfilled
//   role is marked out; `terminated(r)` turns true for it and
//   communication with it yields a distinguished value (§II).
// * Inter-role communication rides the CSP substrate with tags scoped
//   by (instance, performance, destination role), so distinct
//   performances can never exchange messages (Figure 2's u=x, y=v).
#pragma once

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "csp/net.hpp"
#include "obs/event_bus.hpp"
#include "script/events.hpp"
#include "script/matching.hpp"
#include "script/params.hpp"
#include "script/partner_spec.hpp"
#include "script/spec.hpp"
#include "support/expected.hpp"

namespace script::obs {
class Inspector;
}  // namespace script::obs

namespace script::core {

class RoleContext;
class ScriptInstance;

/// Distinguished value for communication with a role that is out,
/// completed, or whose process is gone (paper §II: "attempting to
/// communicate with an unfilled role could return a distinguished
/// value").
enum class RoleCommError : std::uint8_t { Unavailable };

template <typename T>
using RoleResult = support::Expected<T, RoleCommError>;

/// Thrown through a surviving role body when a partner's crash voids the
/// performance (FailurePolicy::Abort). Deliberately NOT derived from
/// std::exception: an abort is not a role-level failure, and role bodies
/// that catch std::exception must not swallow the unwinding. enroll()
/// absorbs it and reports `aborted` in the EnrollResult.
struct PerformanceAborted {
  std::uint64_t performance = 0;
};

using RoleBody = std::function<void(RoleContext&)>;

struct EnrollResult {
  std::uint64_t performance = 0;
  RoleId played;  // concrete role (index resolved for families)
  bool aborted = false;  // a partner crashed and the performance was voided
  /// This enrollment refilled a crashed role mid-performance
  /// (FailurePolicy::Replace); the body saw ctx.resumed() == true.
  bool resumed = false;
  /// The admission controller refused this enrollment (bounded queue
  /// overflow or an open circuit breaker — see ScriptSpec::overload).
  /// The role body never ran; retry_after says when to come back.
  bool shed = false;
  /// Hint for retry loops: how many virtual ticks to wait before
  /// re-enrolling makes sense (0 when there is nothing to wait out).
  std::uint64_t retry_after = 0;

  /// The enrollment neither played nor can ever play as-is: aborted or
  /// shed with no retry hint means only a caller-level change (fewer
  /// partners, later epoch) could help — "infeasible", as opposed to
  /// "gave up, retry later" (retry_after > 0).
  bool retryable() const { return (aborted || shed) && retry_after > 0; }
};

/// Backoff schedule for ScriptInstance::enroll_with_retry.
struct RetryOptions {
  std::size_t max_attempts = 4;
  std::uint64_t backoff = 8;  // ticks before the second attempt
  double factor = 2.0;
  std::uint64_t max_backoff = 256;
};

class ScriptInstance {
 public:
  /// `instance_name` distinguishes multiple instances of one generic
  /// script (paper §II "Successive Activations": separate instances may
  /// perform concurrently and independently).
  ScriptInstance(csp::Net& net, ScriptSpec spec, std::string instance_name);
  ScriptInstance(csp::Net& net, ScriptSpec spec);
  ~ScriptInstance();

  ScriptInstance(const ScriptInstance&) = delete;
  ScriptInstance& operator=(const ScriptInstance&) = delete;

  /// Attach the body for a role (family members share one body and
  /// learn their index from the context). Must be set before enrolling.
  ScriptInstance& on_role(const std::string& role_name, RoleBody body);

  /// ENROLL IN <this> AS role(params) WITH partners.
  /// Blocks per the initiation policy, runs the role body on the
  /// calling fiber, returns per the termination policy.
  EnrollResult enroll(const RoleId& role, const PartnerSpec& partners = {},
                      Params params = {});

  /// Enrollment as a guard (paper §II: "this distinction is crucial if
  /// script enrollment is to be allowed to act as a guard"): attempt
  /// enrollment WITHOUT waiting — succeeds only if the role can be
  /// joined right now (an active performance admits it, or a new one
  /// can form from the already-queued requests). On success the role
  /// runs exactly as with enroll(); on failure nothing is queued and
  /// std::nullopt returns immediately. An admission-control refusal
  /// (see ScriptSpec::overload) also yields nullopt — it still counts
  /// as a shed and publishes overload.shed.
  std::optional<EnrollResult> try_enroll(const RoleId& role,
                                         const PartnerSpec& partners = {},
                                         Params params = {});

  /// Enrollment with a deadline: like enroll(), but if no performance
  /// has admitted this request within `ticks` of virtual time, the
  /// request is withdrawn and nullopt returns. Once admitted, the role
  /// runs to completion regardless of the deadline (an accepted
  /// enrollment, like a started Ada rendezvous, cannot time out). An
  /// admission-control refusal returns an ENGAGED result with
  /// shed = true, distinguishing "shed, retry later" from "timed out".
  std::optional<EnrollResult> enroll_for(const RoleId& role,
                                         std::uint64_t ticks,
                                         const PartnerSpec& partners = {},
                                         Params params = {});

  /// enroll() with bounded-backoff retry on `aborted` and `shed`
  /// results, so a client racing an aborting performance (or a tripped
  /// admission breaker) doesn't hand-roll the loop. Each attempt
  /// enrolls with a fresh copy of `params`; between attempts the fiber
  /// sleeps max(retry_after hint, current backoff). Returns the last
  /// attempt's result — on give-up it carries that final attempt's
  /// retry_after hint (floored to the backoff it would have slept), so
  /// callers can tell "gave up, retry later" (retry_after > 0) from
  /// "infeasible" (see EnrollResult::retryable).
  EnrollResult enroll_with_retry(const RoleId& role,
                                 const PartnerSpec& partners = {},
                                 Params params = {},
                                 RetryOptions retry = {});

  /// Register an observer for structured lifecycle events (metrics,
  /// runtime verification). Observers run synchronously at the event
  /// site and must not block.
  ScriptInstance& observe(std::function<void(const ScriptEvent&)> fn) {
    observers_.push_back(std::move(fn));
    return *this;
  }

  // ---- Introspection ----
  const ScriptSpec& spec() const { return spec_; }
  const std::string& instance_name() const { return name_; }
  std::uint64_t performances_completed() const { return completed_perfs_; }
  std::uint64_t performances_aborted() const { return aborted_perfs_; }
  /// Requests waiting for a future performance.
  std::size_t queue_length() const { return queue_.size(); }
  /// How often the per-role waiter index let the instance skip the
  /// matcher outright (formation impossible / no admission capacity).
  std::uint64_t matcher_index_hits() const { return matcher_index_hits_; }
  /// How often the matcher actually ran (formation or admission pass).
  std::uint64_t matcher_runs() const { return matcher_runs_; }
  /// Role takeovers (FailurePolicy::Replace) completed / fallen back.
  std::uint64_t takeovers_completed() const { return takeovers_completed_; }
  std::uint64_t takeovers_failed() const { return takeovers_failed_; }

  // ---- Overload / admission control (ScriptSpec::overload) ----
  /// Admission circuit breaker: Closed admits, Open sheds until the
  /// cooldown elapses, HalfOpen admits a few probes — a completed
  /// performance closes it, exhausted probes re-open it. Runs entirely
  /// on virtual time, so trips and recoveries replay byte-identically.
  enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };
  BreakerState breaker_state() const { return breaker_; }
  /// Virtual time at which an Open breaker starts probing again.
  std::uint64_t breaker_open_until() const { return breaker_open_until_; }
  std::uint64_t breaker_trips() const { return breaker_trips_; }
  /// Enrollments refused by the admission controller (queue overflow +
  /// breaker sheds).
  std::uint64_t sheds() const { return shed_count_; }
  /// Diagnostic line(s) for deadlock reports: aborted state and roles
  /// awaiting takeover of the active performance; "" when unremarkable.
  /// Registered with the scheduler's report sections automatically.
  std::string report() const;
  /// Structured snapshot: queue, waiting roles, and the performance in
  /// flight with its cast, completions, and open takeover windows.
  std::string snapshot_json() const;
  /// Register the snapshot as a "script" Inspector section.
  std::size_t attach_inspector(obs::Inspector& inspector);
  /// Start SLO/watchdog tracking of this instance under the spec's
  /// slo() config (plus the queue-depth probe). Unregistered in the
  /// destructor, so the monitor must outlive this instance.
  void enable_health(obs::HealthMonitor& monitor);
  /// Cached at construction rather than read through net_: the
  /// scheduler is the root object here (the Net holds a reference to
  /// it), so the destructor can deregister its crash hook even when the
  /// instance's last owner happens to outlive the Net's (e.g. a fiber
  /// body's captures being torn down in an unlucky order).
  runtime::Scheduler& scheduler() { return *sched_; }
  csp::Net& net() { return *net_; }

  /// This instance's lane on the scheduler's EventBus (registered on
  /// first use). Every script event the instance publishes carries it,
  /// so subscribers (ScriptStats, exporters) can tell instances apart.
  std::int32_t obs_lane();

 private:
  friend class RoleContext;

  /// A crashed role waiting for a replacement (FailurePolicy::Replace).
  struct TakeoverState {
    ProcessId old_pid = kNoProcess;
    std::uint64_t deadline = 0;       // virtual time of fallback
    ProcessId watcher = kNoProcess;   // deadline-watcher fiber, once parked
  };

  struct Performance {
    std::uint64_t number = 0;
    std::uint64_t started_at = 0;  // virtual time of formation
    bool done = false;
    detail::MatchState state;
    std::set<RoleId> out;        // declared never-filled
    std::set<RoleId> completed;  // role bodies that returned
    std::set<RoleId> failed;     // roles whose process crashed / unwound
    bool critical_hit = false;   // outs have been marked
    bool aborted = false;        // a crash voided this performance
    /// Replace policy: crashed roles whose takeover window is open.
    /// Such a role is neither failed nor usable — bindings still hold
    /// the dead pid until a replacement rebinds it.
    std::map<RoleId, TakeoverState> awaiting_takeover;
    /// Replace policy: each role's data parameters, moved off the
    /// enroller's stack so they survive its crash. A replacement
    /// adopts the previous incarnation's values (writers dropped).
    std::map<RoleId, Params> params_store;
    /// Replace policy: how many takeovers each role has been through
    /// (absent = 0, the original cast). Partners compare this across
    /// an exchange to learn they now face a different incarnation.
    std::map<RoleId, std::uint64_t> incarnations;
    std::map<RoleId, ProcessId>::const_iterator find_role(ProcessId) const;
  };

  struct Request {
    ProcessId pid = kNoProcess;
    RoleId requested;
    const PartnerSpec* partners = nullptr;
    bool admitted = false;
    RoleId assigned;
    Performance* perf = nullptr;  // set at admission
    bool queued = false;
    bool resumed = false;  // admitted as a takeover replacement
    bool shed = false;     // evicted by ShedOldest; wait loops must exit
    std::list<Request*>::iterator queue_pos;  // valid while queued
  };

  /// Append to the waiter queue (FIFO) and the per-role-name index.
  void enqueue(Request& req);
  /// O(1) removal via the request's stored queue position. Safe to call
  /// on an already-dequeued request (withdraw paths can race admission).
  void dequeue(Request& req);
  /// Necessary condition for delayed formation: SOME critical set has,
  /// per role name, enough queued requests. O(critical sets) from the
  /// waiter index — no queue scan, no matcher call.
  bool queued_covers_critical() const;
  /// Necessary condition for an admission pass to admit anything: some
  /// queued role name still has free capacity in the active performance.
  bool admission_possible() const;

  // ---- Admission control (ScriptSpec::overload) ----
  /// Admission gate, run right after the request is enqueued (so the
  /// queue sizes it reads include the arrival): consult the circuit
  /// breaker and the queue bound. Returns an engaged shed result when
  /// the arrival must be refused — the caller dequeues it. ShedOldest
  /// instead evicts the longest-queued request and keeps this one.
  std::optional<EnrollResult> shed_check(const RoleId& role, ProcessId pid);
  /// Build the shed result + overload.shed event for one refusal.
  EnrollResult shed_result(const RoleId& role, ProcessId pid,
                           std::uint64_t retry_after);
  /// Evict the oldest queued request (ShedOldest): mark it shed, wake it.
  void shed_oldest();
  /// Breaker transition helpers; publish overload.breaker.* events.
  void trip_breaker(const char* why);
  void breaker_note_progress();

  /// Run the matching machinery: form a performance if none is active,
  /// admit queued requests into an active one (immediate initiation),
  /// then mark outs / detect performance end.
  EnrollResult run_admitted(Request& req, Params& params);
  void try_advance();
  void admission_pass();
  void after_state_change();
  bool performance_can_end() const;
  void finish_performance();
  void role_done(const RoleId& r);

  // ---- Failure semantics (docs/ROBUSTNESS.md) ----
  /// Scheduler crash hook: a process died; if it plays a live role of
  /// the active performance, the role has failed.
  void on_process_crashed(ProcessId pid);
  /// Record a role failure and apply the spec's FailurePolicy.
  void handle_role_crash(Performance& perf, const RoleId& r, ProcessId pid);
  /// FailurePolicy::Abort: void the performance — fail every parked
  /// rendezvous in its scoped-tag namespace so survivors unwind.
  void abort_performance(Performance& perf);
  /// A surviving role unwound via PerformanceAborted: count its role as
  /// failed (not completed) so the performance can still end.
  void mark_role_unwound(Performance& perf, const RoleId& r);

  // ---- Role takeover (FailurePolicy::Replace, docs/SEMANTICS.md §10) ----
  /// Open a takeover window for a crashed role: park survivors, start a
  /// deadline watcher, and try the queue for an immediate replacement.
  void begin_takeover(Performance& perf, const RoleId& r, ProcessId pid);
  /// Match queued requests against roles awaiting takeover (FIFO).
  void takeover_pass();
  /// May `req` refill awaiting role `r` without violating the existing
  /// members' partner constraints or the request's own?
  bool takeover_compatible(const Performance& perf, const RoleId& r,
                           const Request& req) const;
  /// Rebind `r` to req.pid in place (monotone match-state preserved),
  /// repoint parked rendezvous at the replacement, record causality.
  void complete_takeover(Performance& perf, const RoleId& r, Request& req);
  /// Deadline expired with no replacement: the role is failed after all;
  /// apply the spec's takeover fallback (Abort or Degrade).
  void takeover_timeout(Performance& perf, const RoleId& r);
  /// Abort while windows are open: awaiting roles become failed, their
  /// watchers are released.
  void cancel_takeovers(Performance& perf);
  /// Publish on the Recovery subsystem (takeover milestones).
  void publish_recovery(const char* name, ProcessId pid, std::string detail,
                        double value = 0);
  /// Publish on the Overload subsystem (sheds, breaker transitions).
  void publish_overload(const char* name, ProcessId pid, std::string detail,
                        double value = 0);

  /// Block the calling fiber until the instance's state changes
  /// (binding, out, completion, performance end).
  void wait_state_change(const std::string& why);
  void notify_state_change();

  /// Publish a Script-subsystem event on the scheduler's bus. The prose
  /// TraceLog wording is reconstructed by obs::install_script_log_bridge.
  void publish(obs::EventKind kind, ProcessId pid, const char* name,
               std::string detail, double value = 0);
  void emit(ScriptEvent::Kind kind, ProcessId pid, const RoleId& role,
            std::uint64_t performance);

  csp::Net* net_;
  runtime::Scheduler* sched_;  // == net_->scheduler(); see scheduler()
  ScriptSpec spec_;
  std::string name_;
  std::map<std::string, RoleBody> bodies_;
  // Requests live on enrollers' stacks; a list gives O(1) withdrawal
  // via the iterator stored in each Request while keeping FIFO order.
  std::list<Request*> queue_;
  /// Waiter index: queued requests per role name (families counted
  /// under their family name). The formation/admission gates read this.
  std::map<std::string, std::size_t> queued_by_role_;
  std::uint64_t matcher_index_hits_ = 0;
  std::uint64_t matcher_runs_ = 0;
  std::unique_ptr<Performance> active_;
  // Finished performances are kept: returning enrollees and contexts
  // still reference them (cheap — bookkeeping only, no payloads).
  std::vector<std::unique_ptr<Performance>> finished_;
  std::uint64_t next_perf_number_ = 1;
  std::uint64_t completed_perfs_ = 0;
  std::uint64_t aborted_perfs_ = 0;
  std::uint64_t crash_hook_id_ = 0;
  std::uint64_t report_section_id_ = 0;
  std::uint64_t takeovers_completed_ = 0;
  std::uint64_t takeovers_failed_ = 0;
  BreakerState breaker_ = BreakerState::Closed;
  std::uint64_t breaker_open_until_ = 0;
  std::size_t breaker_probes_left_ = 0;
  std::uint64_t breaker_trips_ = 0;
  std::uint64_t shed_count_ = 0;
  std::vector<ProcessId> end_waiters_;    // delayed-termination holdees
  std::vector<ProcessId> state_waiters_;  // fibers awaiting state changes
  std::vector<std::function<void(const ScriptEvent&)>> observers_;
  std::int32_t obs_lane_ = obs::kNoLane;
  obs::HealthMonitor* health_ = nullptr;
};

/// Handle given to a running role body: identity, data parameters,
/// partner probes, and role-addressed communication.
class RoleContext {
 public:
  const RoleId& self() const { return self_; }
  /// Family index of this role (kSingleton for singleton roles).
  int index() const { return self_.index; }
  std::uint64_t performance() const;

  // ---- Data parameters ----
  template <typename T>
  T param(const std::string& name) const {
    return params_->get<T>(name);
  }
  template <typename T>
  void set_param(const std::string& name, T value) {
    params_->set(name, std::move(value));
  }
  bool has_param(const std::string& name) const {
    return params_->has(name);
  }

  // ---- Partner probes ----
  /// The paper's `r.terminated`: true once the role has finished its
  /// part, or once it is known the role will not be filled this
  /// performance. Before the critical role set fills, unfilled roles
  /// report false.
  bool terminated(const RoleId& r) const;
  bool filled(const RoleId& r) const;
  /// True once the role's process is known to have crashed this
  /// performance (always also `terminated`).
  bool failed(const RoleId& r) const;
  /// True once a partner's crash voided the performance (Abort policy).
  /// Communication calls made after this point throw PerformanceAborted.
  bool aborted() const { return perf_->aborted; }
  /// True when this body refilled a crashed role (Replace policy): the
  /// previous incarnation may have already exchanged messages and
  /// updated parameters — resync the protocol instead of starting over.
  bool resumed() const { return resumed_; }
  /// True while role `r` has crashed and awaits a replacement.
  bool takeover_pending(const RoleId& r) const {
    return perf_->awaiting_takeover.count(r) > 0;
  }
  /// How many takeovers role `r` has been through in this performance
  /// (0 = original cast). Reading it before and after an exchange
  /// tells a partner whether it now faces a different incarnation.
  std::uint64_t incarnation(const RoleId& r) const {
    const auto it = perf_->incarnations.find(r);
    return it == perf_->incarnations.end() ? 0 : it->second;
  }
  /// Park until role `r`'s takeover window resolves. Returns true when
  /// the role is (again) played by a live process — retry the failed
  /// exchange; false when it is gone for good (failed/out/completed).
  /// Returns true immediately if no window is open. Throws
  /// PerformanceAborted if the fallback voided the performance.
  bool await_takeover(const RoleId& r);
  /// Current member count of a role family this performance.
  std::size_t family_size(const std::string& role_name) const;

  // ---- Deadlines (runtime/overload.hpp) ----
  /// Install a deadline `ticks` from now for the remainder of this role.
  /// It propagates across every blocking edge the body crosses — CSP
  /// rendezvous, Ada entries, monitor waits, nested enrolls, lock
  /// round-trips — because all of them park through the scheduler's
  /// blocking primitives, each a cancellation point. Expiry raises the
  /// catchable runtime::DeadlineExceeded; uncaught, it unwinds the role
  /// like a crash and feeds the spec's FailurePolicy. Replaces any
  /// earlier deadline; cleared automatically when the role ends.
  void deadline(std::uint64_t ticks);
  /// The absolute deadline in force (the role's, or one the enrolling
  /// process installed before enrolling), or runtime::kNoDeadline.
  std::uint64_t deadline_at() const;
  /// Ticks left before the deadline (kNoDeadline when none, 0 when due).
  std::uint64_t remaining_deadline() const;
  void clear_deadline();

  // ---- Role-addressed communication ----
  template <typename T>
  RoleResult<void> send(const RoleId& to, T value,
                        const std::string& tag = "") {
    check_abort();
    auto pid = await_role(to);
    if (!pid) return support::make_unexpected(pid.error());
    auto r = inst_->net_->send(*pid, scoped_tag(to, tag), std::move(value));
    if (!r) {
      check_abort();  // woken by abort_performance's fail_tagged
      return support::make_unexpected(RoleCommError::Unavailable);
    }
    return {};
  }

  template <typename T>
  RoleResult<T> recv(const RoleId& from, const std::string& tag = "") {
    check_abort();
    auto pid = await_role(from);
    if (!pid) return support::make_unexpected(pid.error());
    auto r = inst_->net_->recv<T>(*pid, scoped_tag(self_, tag));
    if (!r) {
      check_abort();
      return support::make_unexpected(RoleCommError::Unavailable);
    }
    return std::move(*r);
  }

  /// Receive from whichever partner role sends first (host-language
  /// anonymous communication, as in the paper's Ada embedding).
  template <typename T>
  RoleResult<std::pair<RoleId, T>> recv_any(const std::string& tag = "") {
    check_abort();
    auto r = inst_->net_->recv_any<T>(scoped_tag(self_, tag));
    if (!r) {
      check_abort();
      return support::make_unexpected(RoleCommError::Unavailable);
    }
    return std::pair<RoleId, T>{role_of(r->first), std::move(r->second)};
  }

  /// Selective receive over a set of partner roles: takes the first
  /// message any of them sends; returns the distinguished value once
  /// EVERY listed role is terminated (out or completed). Roles still
  /// unbound when the wait starts are re-examined as they bind.
  /// Limitation (documented in docs/SEMANTICS.md §7): once this call
  /// parks on the currently-bound candidates, a message from a role
  /// that binds later is only noticed on the next call.
  template <typename T>
  RoleResult<std::pair<RoleId, T>> recv_from_roles(
      const std::vector<RoleId>& froms, const std::string& tag = "") {
    for (;;) {
      check_abort();
      std::vector<ProcessId> candidates;
      bool might_bind = false;
      for (const RoleId& r : froms) {
        if (perf_->completed.count(r) || perf_->out.count(r) ||
            perf_->failed.count(r))
          continue;
        if (perf_->awaiting_takeover.count(r)) {
          // Bound to a dead pid until a replacement rebinds it — treat
          // like an unbound role that may still fill.
          might_bind = true;
          continue;
        }
        const auto it = perf_->state.bindings.find(r);
        if (it != perf_->state.bindings.end())
          candidates.push_back(it->second);
        else if (!perf_->done)
          might_bind = true;
      }
      if (candidates.empty()) {
        if (!might_bind)
          return support::make_unexpected(RoleCommError::Unavailable);
        inst_->wait_state_change("role " + self_.str() +
                                 " awaiting any partner binding");
        continue;
      }
      auto r = inst_->net_->recv_from<T>(std::move(candidates),
                                         scoped_tag(self_, tag));
      if (!r) {
        check_abort();
        return support::make_unexpected(RoleCommError::Unavailable);
      }
      return std::pair<RoleId, T>{role_of(r->first), std::move(r->second)};
    }
  }

  /// Non-blocking poll for a message from any partner role.
  template <typename T>
  std::optional<std::pair<RoleId, T>> try_recv_any(
      const std::string& tag = "") {
    check_abort();
    auto r = inst_->net_->try_recv_any<T>(scoped_tag(self_, tag));
    if (!r) return std::nullopt;
    return std::pair<RoleId, T>{role_of(r->first), std::move(r->second)};
  }

  runtime::Scheduler& scheduler() { return inst_->scheduler(); }
  ScriptInstance& instance() { return *inst_; }

 private:
  friend class ScriptInstance;
  RoleContext(ScriptInstance* inst, ScriptInstance::Performance* perf,
              RoleId self, Params* params, bool resumed = false)
      : inst_(inst),
        perf_(perf),
        self_(std::move(self)),
        params_(params),
        resumed_(resumed) {}

  /// Resolve a partner role to its process, blocking while the role is
  /// unbound but might still be filled. Distinguished error once the
  /// role is out/completed/failed.
  RoleResult<ProcessId> await_role(const RoleId& r);
  /// Unwind this role body if the performance has been aborted.
  void check_abort() const;
  std::string scoped_tag(const RoleId& to, const std::string& tag) const;
  RoleId role_of(ProcessId pid) const;

  ScriptInstance* inst_;
  ScriptInstance::Performance* perf_;
  RoleId self_;
  Params* params_;
  bool resumed_ = false;
  // The role installed its own deadline; run_admitted clears it when
  // the body ends so it cannot leak onto the process's next activity.
  bool deadline_installed_ = false;
};

}  // namespace script::core
