// WireCast — DistributedCast's two-round protocol over the Transport
// seam.
//
// DistributedCast synchronizes roles INSIDE one scheduler (members are
// csp::ProcessIds, exchanges are rendezvous). WireCast is the same
// supervisor-free generalization of §IV/§V between SCHEDULERS: each
// member is a peer — another OS process over TcpTransport, or another
// SimTransport endpoint in the CI twin — and the two all-to-all rounds
// ride tagged Wire messages instead of rendezvous:
//
//   ENROLL: post "cast.<name>.e<g>" to all, await one from each —
//     having heard all n-1, the cast of generation g is complete;
//   DONE:   post "cast.<name>.d<g>" to all, await all — generation g
//     is over, g+1 may begin (successive-activations, pairwise).
//
// The generation number lives in the TAG, so a straggler's re-send of
// an old round can never satisfy a new round's wait.
//
// Fault tolerance mirrors CastFaultOptions: every await is timed and
// retried with exponential backoff; a peer that stays silent is
// SUSPECTED and skipped from then on — the surviving majority degrades
// rather than hangs (the Degrade policy; callers wanting Abort check
// suspected_count() and panic). Incarnation hygiene — making sure a
// suspect that flaps back cannot rejoin mid-generation — is the
// PeerSupervisor layer's job, not re-implemented here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/wire.hpp"
#include "script/distributed.hpp"

namespace script::core {

class WireCast {
 public:
  /// `members[i]` is the PeerId playing role i; `my_index` is ours.
  /// All members run the same constructor arguments (same order).
  WireCast(runtime::Wire& wire, std::vector<runtime::PeerId> members,
           std::size_t my_index, std::string name);

  /// Announce for the next generation; block until every unsuspected
  /// member has announced too. Returns the generation number.
  std::uint64_t enroll();

  /// Exchange completion marks; block until all unsuspected members
  /// completed generation `generation`.
  void complete();

  std::size_t members() const { return members_.size(); }
  std::uint64_t messages() const { return messages_; }
  std::uint64_t generation() const { return generation_; }

  /// Crash-tolerant rounds (see CastFaultOptions). Without this, a
  /// silent peer blocks enroll()/complete() forever — strict mode.
  void set_fault_options(CastFaultOptions opts);
  bool is_suspected(std::size_t index) const { return suspected_[index]; }
  std::size_t suspected_count() const;

  /// Externally-learned death (PeerSupervisor on_suspect/on_gone):
  /// skip `peer` in all future rounds without waiting out a timeout.
  void suspect_peer(runtime::PeerId peer);

 private:
  void all_to_all(char phase);

  runtime::Wire* wire_;
  std::vector<runtime::PeerId> members_;
  std::size_t my_index_;
  std::string name_;
  std::uint64_t generation_ = 0;
  std::uint64_t messages_ = 0;
  bool tolerant_ = false;
  CastFaultOptions fault_;
  std::vector<bool> suspected_;
};

}  // namespace script::core
