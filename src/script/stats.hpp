// ScriptStats: per-instance metrics collected from the EventBus.
//
// Attach to any ScriptInstance to measure what the paper's figures
// discuss qualitatively: how long processes wait to enroll, how long
// roles spend in the script, and performance throughput.
//
//   ScriptStats stats(instance);
//   ... run ...
//   stats.enroll_wait().mean();    // ticks from attempt to admission
//   stats.time_in_script().mean(); // ticks from admission to release
//   stats.performances();
//
// Implementation: a subscriber on the scheduler's obs::EventBus,
// filtered to this instance's lane. The instance publishes each
// lifecycle milestone exactly once; stats, the prose TraceLog, and the
// Chrome-trace exporter all consume the same stream.
#pragma once

#include <cstdint>
#include <map>

#include "obs/event_bus.hpp"
#include "script/instance.hpp"
#include "support/stats.hpp"

namespace script::core {

class ScriptStats {
 public:
  /// Subscribes to the instance's bus; the instance (and its
  /// scheduler) must outlive this object.
  explicit ScriptStats(ScriptInstance& inst);
  ~ScriptStats();

  ScriptStats(const ScriptStats&) = delete;
  ScriptStats& operator=(const ScriptStats&) = delete;

  /// Virtual ticks between an enrollment attempt and its admission.
  const support::Summary& enroll_wait() const { return enroll_wait_; }
  /// Virtual ticks between admission and release (the paper's
  /// "time spent in the script", the Fig 3 vs Fig 4 axis).
  const support::Summary& time_in_script() const { return in_script_; }
  /// Virtual ticks each role body ran (begin -> finish).
  const support::Summary& role_duration() const { return role_duration_; }

  std::uint64_t performances() const { return performances_; }
  std::uint64_t enrollments() const { return enrollments_; }

 private:
  void on_event(const obs::Event& e);

  obs::EventBus* bus_;
  obs::EventBus::SubId sub_;
  std::int32_t lane_;

  // Keyed by process: a fiber has at most one in-flight enrollment in
  // a given instance at a time.
  std::map<obs::Pid, std::uint64_t> attempt_at_;
  std::map<obs::Pid, std::uint64_t> admitted_at_;
  std::map<obs::Pid, std::uint64_t> began_at_;
  support::Summary enroll_wait_;
  support::Summary in_script_;
  support::Summary role_duration_;
  std::uint64_t performances_ = 0;
  std::uint64_t enrollments_ = 0;
};

}  // namespace script::core
