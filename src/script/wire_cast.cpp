#include "script/wire_cast.hpp"

#include "support/panic.hpp"

namespace script::core {

WireCast::WireCast(runtime::Wire& wire, std::vector<runtime::PeerId> members,
                   std::size_t my_index, std::string name)
    : wire_(&wire),
      members_(std::move(members)),
      my_index_(my_index),
      name_(std::move(name)),
      suspected_(members_.size(), false) {
  SCRIPT_ASSERT(my_index_ < members_.size(),
                "WireCast my_index out of range");
}

void WireCast::set_fault_options(CastFaultOptions opts) {
  tolerant_ = true;
  fault_ = opts;
}

std::size_t WireCast::suspected_count() const {
  std::size_t n = 0;
  for (bool s : suspected_)
    if (s) ++n;
  return n;
}

void WireCast::suspect_peer(runtime::PeerId peer) {
  for (std::size_t i = 0; i < members_.size(); ++i)
    if (members_[i] == peer) suspected_[i] = true;
}

void WireCast::all_to_all(char phase) {
  // The generation rides in the tag: a straggler re-sending round g
  // can never satisfy a waiter in round g+1.
  const std::string tag =
      "cast." + name_ + "." + phase + std::to_string(generation_);
  // Round trip 1/2: tell everyone (posts are async; order is free).
  for (std::size_t j = 0; j < members_.size(); ++j) {
    if (j == my_index_ || suspected_[j]) continue;
    wire_->post(members_[j], tag, std::to_string(my_index_));
    ++messages_;
  }
  // Round trip 2/2: hear everyone (any arrival order; tag matching
  // parks us until the right message lands).
  for (std::size_t j = 0; j < members_.size(); ++j) {
    if (j == my_index_ || suspected_[j]) continue;
    runtime::Wire::Msg m;
    if (!tolerant_) {
      if (!wire_->recv(tag, &m, runtime::Wire::kNoTimeout, members_[j]))
        SCRIPT_PANIC("WireCast: wire shut down mid-round");
      continue;
    }
    std::uint64_t wait = fault_.timeout_ticks;
    bool heard = false;
    for (unsigned attempt = 0; attempt < fault_.max_attempts; ++attempt) {
      if (wire_->recv(tag, &m, wait, members_[j])) {
        heard = true;
        break;
      }
      // Re-post before the next, longer wait: our original announcement
      // may have been the casualty (chaos drop, reconnect shed).
      wire_->post(members_[j], tag, std::to_string(my_index_));
      ++messages_;
      wait *= fault_.backoff_factor;
    }
    if (!heard) suspected_[j] = true;
  }
}

std::uint64_t WireCast::enroll() {
  ++generation_;
  all_to_all('e');
  return generation_;
}

void WireCast::complete() { all_to_all('d'); }

}  // namespace script::core
