#include "script/distributed.hpp"

#include "support/panic.hpp"

namespace script::core {

DistributedCast::DistributedCast(csp::Net& net,
                                 std::vector<csp::ProcessId> members,
                                 std::string name)
    : net_(&net),
      members_(std::move(members)),
      name_(std::move(name)),
      generation_(members_.size(), 0),
      suspected_(members_.size(), false) {
  SCRIPT_ASSERT(members_.size() >= 2, "distributed cast needs >= 2 members");
}

void DistributedCast::set_fault_options(CastFaultOptions opts) {
  SCRIPT_ASSERT(opts.timeout_ticks > 0 && opts.max_attempts > 0 &&
                    opts.backoff_factor > 0,
                "cast fault options must be positive");
  tolerant_ = true;
  fault_ = opts;
}

std::size_t DistributedCast::suspected_count() const {
  std::size_t n = 0;
  for (const bool s : suspected_)
    if (s) ++n;
  return n;
}

void DistributedCast::suspect(std::size_t j, const std::string& tag) {
  if (suspected_[j]) return;
  suspected_[j] = true;
  obs::EventBus& bus = net_->scheduler().bus();
  if (bus.wants(obs::Subsystem::Fault))
    bus.publish({obs::EventKind::Instant, obs::Subsystem::Fault,
                 obs::kAutoTime, net_->scheduler().current(), obs::kNoLane,
                 "cast.suspect", tag, static_cast<double>(members_[j])});
}

bool DistributedCast::exchange(std::size_t my_index, std::size_t j,
                               bool sending, const std::string& tag) {
  // Timed tries with exponential backoff; a peer that answers none of
  // them — or is already known dead — is suspected. Waits are virtual
  // ticks, so the suspicion instant is deterministic per seed + plan.
  std::uint64_t wait = fault_.timeout_ticks;
  for (unsigned attempt = 0; attempt < fault_.max_attempts; ++attempt) {
    if (suspected_[j]) return false;  // someone else condemned j meanwhile
    if (sending) {
      auto r = net_->send_for(members_[j], tag, my_index, wait);
      if (r.has_value()) {
        ++messages_;
        return true;
      }
      if (r.error() == csp::CommError::PeerTerminated) break;
    } else {
      auto r = net_->recv_for<std::size_t>(members_[j], tag, wait);
      if (r.has_value()) return true;
      if (r.error() == csp::CommError::PeerTerminated) break;
    }
    wait *= fault_.backoff_factor;
  }
  suspect(j, tag);
  return false;
}

void DistributedCast::all_to_all(std::size_t my_index,
                                 const std::string& phase,
                                 std::uint64_t generation) {
  const std::string tag =
      name_ + "/" + phase + "#" + std::to_string(generation);
  // Send to every LOWER index first, then receive from everyone, then
  // send to every HIGHER index. The asymmetry breaks the cycle that
  // would deadlock a naive send-all-then-receive-all with synchronous
  // messages: member 0 receives first, member n-1 sends first.
  //
  // (Equivalent to the classic ordered handshake generalizing the
  // binary case: the pair (i, j), i<j, always rendezvouses with j as
  // sender first.)
  auto hop = [&](std::size_t j) {
    obs::EventBus& bus = net_->scheduler().bus();
    if (bus.wants(obs::Subsystem::Link))
      bus.publish({obs::EventKind::Instant, obs::Subsystem::Link,
                   obs::kAutoTime, net_->scheduler().current(),
                   obs::kNoLane, "hop", tag,
                   static_cast<double>(members_[j])});
  };
  if (tolerant_) {
    // Same ordered handshake, but every exchange is timed and a silent
    // peer is eventually suspected and skipped — by this member now,
    // and by everyone else on their next exchange with it.
    for (std::size_t j = 0; j < my_index; ++j) {
      if (suspected_[j]) continue;
      hop(j);
      exchange(my_index, j, /*sending=*/true, tag);
    }
    for (std::size_t j = 0; j < members_.size(); ++j) {
      if (j == my_index || suspected_[j]) continue;
      exchange(my_index, j, /*sending=*/false, tag);
    }
    for (std::size_t j = my_index + 1; j < members_.size(); ++j) {
      if (suspected_[j]) continue;
      hop(j);
      exchange(my_index, j, /*sending=*/true, tag);
    }
    return;
  }

  for (std::size_t j = 0; j < my_index; ++j) {
    hop(j);
    auto r = net_->send(members_[j], tag, my_index);
    SCRIPT_ASSERT(r.has_value(), "distributed cast: member died");
    ++messages_;
  }
  for (std::size_t j = 0; j < members_.size(); ++j) {
    if (j == my_index) continue;
    auto r = net_->recv<std::size_t>(members_[j], tag);
    SCRIPT_ASSERT(r.has_value(), "distributed cast: member died");
  }
  for (std::size_t j = my_index + 1; j < members_.size(); ++j) {
    hop(j);
    auto r = net_->send(members_[j], tag, my_index);
    SCRIPT_ASSERT(r.has_value(), "distributed cast: member died");
    ++messages_;
  }
}

std::uint64_t DistributedCast::enroll(std::size_t my_index) {
  SCRIPT_ASSERT(my_index < members_.size(), "bad cast member index");
  const std::uint64_t g = ++generation_[my_index];
  all_to_all(my_index, "enroll", g);
  return g;
}

void DistributedCast::complete(std::size_t my_index) {
  SCRIPT_ASSERT(my_index < members_.size(), "bad cast member index");
  all_to_all(my_index, "done", generation_[my_index]);
}

}  // namespace script::core
