#include "script/distributed.hpp"

#include "support/panic.hpp"

namespace script::core {

DistributedCast::DistributedCast(csp::Net& net,
                                 std::vector<csp::ProcessId> members,
                                 std::string name)
    : net_(&net),
      members_(std::move(members)),
      name_(std::move(name)),
      generation_(members_.size(), 0) {
  SCRIPT_ASSERT(members_.size() >= 2, "distributed cast needs >= 2 members");
}

void DistributedCast::all_to_all(std::size_t my_index,
                                 const std::string& phase,
                                 std::uint64_t generation) {
  const std::string tag =
      name_ + "/" + phase + "#" + std::to_string(generation);
  // Send to every LOWER index first, then receive from everyone, then
  // send to every HIGHER index. The asymmetry breaks the cycle that
  // would deadlock a naive send-all-then-receive-all with synchronous
  // messages: member 0 receives first, member n-1 sends first.
  //
  // (Equivalent to the classic ordered handshake generalizing the
  // binary case: the pair (i, j), i<j, always rendezvouses with j as
  // sender first.)
  auto hop = [&](std::size_t j) {
    obs::EventBus& bus = net_->scheduler().bus();
    if (bus.wants(obs::Subsystem::Link))
      bus.publish({obs::EventKind::Instant, obs::Subsystem::Link,
                   obs::kAutoTime, net_->scheduler().current(),
                   obs::kNoLane, "hop", tag,
                   static_cast<double>(members_[j])});
  };
  for (std::size_t j = 0; j < my_index; ++j) {
    hop(j);
    auto r = net_->send(members_[j], tag, my_index);
    SCRIPT_ASSERT(r.has_value(), "distributed cast: member died");
    ++messages_;
  }
  for (std::size_t j = 0; j < members_.size(); ++j) {
    if (j == my_index) continue;
    auto r = net_->recv<std::size_t>(members_[j], tag);
    SCRIPT_ASSERT(r.has_value(), "distributed cast: member died");
  }
  for (std::size_t j = my_index + 1; j < members_.size(); ++j) {
    hop(j);
    auto r = net_->send(members_[j], tag, my_index);
    SCRIPT_ASSERT(r.has_value(), "distributed cast: member died");
    ++messages_;
  }
}

std::uint64_t DistributedCast::enroll(std::size_t my_index) {
  SCRIPT_ASSERT(my_index < members_.size(), "bad cast member index");
  const std::uint64_t g = ++generation_[my_index];
  all_to_all(my_index, "enroll", g);
  return g;
}

void DistributedCast::complete(std::size_t my_index) {
  SCRIPT_ASSERT(my_index < members_.size(), "bad cast member index");
  all_to_all(my_index, "done", generation_[my_index]);
}

}  // namespace script::core
