// The Ada selective-wait statement:
//
//   select
//     when G1 => accept E1(..) do .. end;
//   or
//     when G2 => accept E2(..) do .. end;
//   or
//     delay D; ..
//   else
//     ..
//   end select;
//
// Guards are evaluated once at select time (Ada rule). With no open
// alternative and no else part, Ada raises Program_Error — we panic.
// The choice among several ready accepts is nondeterministic (seeded).
#pragma once

#include <functional>
#include <vector>

#include "ada/entry.hpp"

namespace script::ada {

class Select {
 public:
  static constexpr int kNone = -1;

  explicit Select(runtime::Scheduler& sched) : sched_(&sched) {}

  /// `when guard => accept entry do body end`.
  template <typename In, typename Out>
  int accept_case(Entry<In, Out>& entry, std::function<Out(In&)> body,
                  bool guard = true) {
    cases_.push_back(Case{
        &entry,
        [&entry, body = std::move(body)] { entry.accept_ready(body); },
        guard});
    return static_cast<int>(cases_.size()) - 1;
  }

  /// `else body` — taken immediately when no accept is ready.
  int or_else(std::function<void()> body);

  /// `or delay ticks; body` — taken when no caller arrives in time.
  int or_delay(std::uint64_t ticks, std::function<void()> body);

  /// Execute the select; returns the index of the taken alternative
  /// (accept cases first, then else/delay in registration order).
  int run();

 private:
  struct Case {
    EntryBase* entry;
    std::function<void()> fire;
    bool guard;
  };

  int pick_ready(const std::vector<int>& open);

  runtime::Scheduler* sched_;
  std::vector<Case> cases_;
  std::function<void()> else_body_;
  std::function<void()> delay_body_;
  bool has_else_ = false;
  bool has_delay_ = false;
  std::uint64_t delay_ticks_ = 0;
  int else_index_ = kNone;
  int delay_index_ = kNone;
};

}  // namespace script::ada
