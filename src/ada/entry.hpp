// Ada entries and the accept statement.
//
// An Entry<In, Out> is one entry of a server task: callers block in a
// FIFO queue (Ada servicing order); the owning task executes `accept`,
// which runs the accept body during the rendezvous and releases the
// caller with the out-parameters. Entry families (Figure 9's
// `start(1..m)`) are EntryFamily — an indexed vector of entries.
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <optional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "support/panic.hpp"

namespace script::ada {

using runtime::kNoProcess;
using runtime::ProcessId;

/// Placeholder for "no in-parameters" / "no out-parameters".
struct Unit {};

/// Ada's TASKING_ERROR: raised in a caller whose entry call can never
/// complete — the owning task crashed (before or during the rendezvous).
class TaskingError : public std::runtime_error {
 public:
  explicit TaskingError(const std::string& entry)
      : std::runtime_error("tasking error: entry " + entry +
                           " of a dead task") {}
};

class Select;

/// Type-independent part of an entry: the caller queue and its
/// integration with accept/select.
class EntryBase {
 public:
  EntryBase(runtime::Scheduler& sched, std::string name);
  ~EntryBase();

  EntryBase(const EntryBase&) = delete;
  EntryBase& operator=(const EntryBase&) = delete;

  /// Declare which task owns (accepts) this entry. When that task
  /// crashes, queued and future callers raise TaskingError — Ada's
  /// "entry call on an abnormal task" rule.
  void owned_by(ProcessId owner) { owner_ = owner; }
  bool owner_crashed() const { return owner_crashed_; }

  /// Ada's E'COUNT: callers currently queued.
  std::size_t count() const { return calls_.size(); }
  bool ready() const { return !calls_.empty(); }
  const std::string& name() const { return name_; }
  std::uint64_t completed() const { return completed_; }

 protected:
  friend class Select;

  struct PendingCall {
    ProcessId caller;
    void* in;    // caller-stack storage
    void* out;   // caller-stack storage
    bool taken = false;  // an acceptor is executing the rendezvous
    bool done = false;
    bool failed = false;  // acceptor task died; caller raises TaskingError
  };

  /// A caller queued a call: wake whoever is waiting to accept.
  void on_call_arrived();
  /// Park the owning task until a caller arrives (plain accept).
  void wait_for_caller();
  PendingCall* take_head();
  void finish(PendingCall* pc);
  /// Is some task committed to accepting this entry right now?
  bool acceptor_committed() const;
  /// Remove a not-yet-taken call from the queue (timed-call withdrawal).
  void withdraw(PendingCall* pc);
  /// Wake `pc`'s caller with TaskingError (acceptor died mid-rendezvous).
  void fail_call(PendingCall* pc);
  /// Crash unwinding through a parked entry call: withdraw a queued
  /// call, or ride out a started rendezvous (Ada: a taken rendezvous
  /// cannot be abandoned — the caller's stack holds the parameters).
  void unwind_call(PendingCall* pc);

  runtime::Scheduler* sched_;
  std::string name_;
  std::deque<PendingCall*> calls_;
  ProcessId waiting_acceptor_ = kNoProcess;
  std::vector<ProcessId> select_waiters_;  // tasks blocked in Select
  std::uint64_t completed_ = 0;
  ProcessId owner_ = kNoProcess;
  bool owner_crashed_ = false;
  std::uint64_t crash_hook_id_ = 0;
};

template <typename In = Unit, typename Out = Unit>
class Entry : public EntryBase {
 public:
  using EntryBase::EntryBase;

  /// Entry call: `server.e(arg)`. Blocks until the rendezvous completes.
  /// Raises TaskingError if the owning task has crashed (or crashes
  /// before completing the rendezvous).
  Out call(In arg) {
    if (owner_crashed_) throw TaskingError(name_);
    Out out{};
    PendingCall pc{sched_->current(), &arg, &out, false};
    calls_.push_back(&pc);
    on_call_arrived();
    try {
      sched_->block("entry call " + name_, owner_);
    } catch (...) {
      unwind_call(&pc);
      throw;
    }
    if (pc.failed) throw TaskingError(name_);
    SCRIPT_ASSERT(pc.done, "entry caller woken before rendezvous end");
    return out;
  }

  Out call() requires std::is_same_v<In, Unit> { return call(Unit{}); }

  /// Ada conditional entry call (`select server.e(..); else ...`):
  /// performed only if an acceptor is ALREADY committed to this entry
  /// (a plain accept or a parked selective wait); otherwise returns
  /// nullopt immediately without queuing.
  std::optional<Out> try_call(In arg) {
    if (!acceptor_committed()) return std::nullopt;
    return call(std::move(arg));
  }
  std::optional<Out> try_call() requires std::is_same_v<In, Unit> {
    return try_call(Unit{});
  }

  /// Ada timed entry call (`select server.e(..); or delay T; ...`):
  /// gives up after `ticks` if the rendezvous has not STARTED by then.
  /// Once an acceptor takes the call, it always runs to completion
  /// (Ada: a started rendezvous cannot be timed out).
  std::optional<Out> call_with_timeout(In arg, std::uint64_t ticks) {
    if (owner_crashed_) throw TaskingError(name_);
    Out out{};
    PendingCall pc{sched_->current(), &arg, &out, false, false};
    calls_.push_back(&pc);
    on_call_arrived();
    // The queued call self-cleans if the deadline fires before an
    // acceptor takes it; a call taken at the firing instant stays.
    bool timed_out = false;
    try {
      timed_out = sched_->block_with_timeout(
          "timed entry call " + name_, ticks,
          [this, &pc] {
            if (!pc.taken) withdraw(&pc);
          },
          owner_);
      while (timed_out && pc.taken && !pc.done && !pc.failed) {
        // Accepted just as the timer fired: the rendezvous must finish.
        timed_out = false;
        sched_->block("entry call " + name_ + " (rendezvous in progress)",
                      owner_);
      }
    } catch (...) {
      unwind_call(&pc);
      throw;
    }
    if (pc.failed) throw TaskingError(name_);
    if (pc.done) return out;
    SCRIPT_ASSERT(timed_out, "timed entry call woke in impossible state");
    return std::nullopt;
  }

  /// Accept statement: blocks for a caller, runs `body` as the
  /// rendezvous (in the acceptor's context), releases the caller.
  void accept(const std::function<Out(In&)>& body) {
    if (calls_.empty()) wait_for_caller();
    accept_ready(body);
  }

  /// Accept with a caller known to be queued (used by Select).
  void accept_ready(const std::function<Out(In&)>& body) {
    PendingCall* pc = take_head();
    try {
      *static_cast<Out*>(pc->out) = body(*static_cast<In*>(pc->in));
    } catch (...) {
      // Acceptor died mid-rendezvous: the caller raises TaskingError
      // (Ada 9.5: abnormal completion of the called task).
      fail_call(pc);
      throw;
    }
    finish(pc);
  }
};

/// An indexed family of entries sharing one name: `start(i)`.
template <typename In = Unit, typename Out = Unit>
class EntryFamily {
 public:
  EntryFamily(runtime::Scheduler& sched, const std::string& name,
              std::size_t n) {
    entries_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      entries_.push_back(std::make_unique<Entry<In, Out>>(
          sched, name + "(" + std::to_string(i) + ")"));
  }

  Entry<In, Out>& operator[](std::size_t i) {
    SCRIPT_ASSERT(i < entries_.size(), "entry family index out of range");
    return *entries_[i];
  }
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::unique_ptr<Entry<In, Out>>> entries_;
};

}  // namespace script::ada
