#include "ada/task.hpp"

namespace script::ada {

Task::Task(runtime::Scheduler& sched, std::string name,
           std::function<void()> body)
    : pid_(sched.spawn(name, std::move(body))), name_(std::move(name)) {}

void Task::await(runtime::Scheduler& sched) const { sched.join(pid_); }

}  // namespace script::ada
