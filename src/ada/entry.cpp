#include "ada/entry.hpp"

#include <algorithm>

namespace script::ada {

EntryBase::EntryBase(runtime::Scheduler& sched, std::string name)
    : sched_(&sched), name_(std::move(name)) {
  // When the owning task crashes, every queued caller — and every later
  // one — raises TaskingError instead of waiting forever.
  crash_hook_id_ = sched_->add_crash_hook([this](ProcessId pid) {
    if (owner_ == kNoProcess || pid != owner_) return;
    owner_crashed_ = true;
    const std::deque<PendingCall*> doomed = std::move(calls_);
    calls_.clear();
    for (PendingCall* pc : doomed) {
      pc->failed = true;
      if (sched_->state_of(pc->caller) == runtime::FiberState::Blocked)
        sched_->unblock(pc->caller);
    }
  });
}

EntryBase::~EntryBase() { sched_->remove_crash_hook(crash_hook_id_); }

void EntryBase::on_call_arrived() {
  if (sched_->bus().wants(obs::Subsystem::Ada))
    sched_->bus().publish({obs::EventKind::Instant, obs::Subsystem::Ada,
                           obs::kAutoTime, sched_->current(), obs::kNoLane,
                           "entry.call", name_,
                           static_cast<double>(calls_.size())});
  if (waiting_acceptor_ != kNoProcess) {
    const ProcessId acceptor = waiting_acceptor_;
    waiting_acceptor_ = kNoProcess;
    sched_->unblock(acceptor);
    return;
  }
  // Wake the first select still parked on this entry. A waiter that was
  // already woken (by another entry or a timeout) is skipped — it will
  // rescan and deregister itself.
  for (const ProcessId w : select_waiters_) {
    if (sched_->state_of(w) == runtime::FiberState::Blocked) {
      sched_->unblock(w);
      return;
    }
  }
}

void EntryBase::wait_for_caller() {
  SCRIPT_ASSERT(waiting_acceptor_ == kNoProcess,
                "two tasks accepting the same entry " + name_);
  waiting_acceptor_ = sched_->current();
  try {
    sched_->block("accept " + name_);
  } catch (...) {
    // Crashed while committed to this accept: withdraw the commitment
    // so a later caller does not try to wake a dead acceptor.
    if (waiting_acceptor_ == sched_->current())
      waiting_acceptor_ = kNoProcess;
    throw;
  }
}

EntryBase::PendingCall* EntryBase::take_head() {
  SCRIPT_ASSERT(!calls_.empty(), "accept_ready on empty entry " + name_);
  PendingCall* pc = calls_.front();
  calls_.pop_front();
  pc->taken = true;
  // The caller's in-parameters flow into the acceptor here — a
  // happens-before edge the eventual finish() wake does not cover.
  sched_->causal_edge(pc->caller, sched_->current(), "entry");
  if (sched_->bus().wants(obs::Subsystem::Ada))
    sched_->bus().publish({obs::EventKind::SpanBegin, obs::Subsystem::Ada,
                           obs::kAutoTime, sched_->current(), obs::kNoLane,
                           "rendezvous", name_});
  return pc;
}

void EntryBase::finish(PendingCall* pc) {
  pc->done = true;
  ++completed_;
  if (sched_->bus().wants(obs::Subsystem::Ada))
    sched_->bus().publish({obs::EventKind::SpanEnd, obs::Subsystem::Ada,
                           obs::kAutoTime, sched_->current(), obs::kNoLane,
                           "rendezvous", name_});
  // A timed caller whose deadline fired during the rendezvous is
  // already awake; it will observe `done` and take the result.
  if (sched_->state_of(pc->caller) == runtime::FiberState::Blocked)
    sched_->unblock(pc->caller);
}

bool EntryBase::acceptor_committed() const {
  if (waiting_acceptor_ != kNoProcess) return true;
  for (const ProcessId w : select_waiters_)
    if (sched_->state_of(w) == runtime::FiberState::Blocked) return true;
  return false;
}

void EntryBase::withdraw(PendingCall* pc) {
  const auto it = std::find(calls_.begin(), calls_.end(), pc);
  SCRIPT_ASSERT(it != calls_.end(),
                "withdraw: call not queued on entry " + name_);
  calls_.erase(it);
}

void EntryBase::fail_call(PendingCall* pc) {
  pc->failed = true;
  if (sched_->bus().wants(obs::Subsystem::Ada))
    sched_->bus().publish({obs::EventKind::SpanEnd, obs::Subsystem::Ada,
                           obs::kAutoTime, sched_->current(), obs::kNoLane,
                           "rendezvous", name_ + " (failed)"});
  if (sched_->state_of(pc->caller) == runtime::FiberState::Blocked)
    sched_->unblock(pc->caller);
}

void EntryBase::unwind_call(PendingCall* pc) {
  const auto it = std::find(calls_.begin(), calls_.end(), pc);
  if (it != calls_.end()) {
    calls_.erase(it);  // still queued: withdraw and die
    return;
  }
  // Taken (or being failed): the acceptor is using our stack slots. A
  // started rendezvous runs to completion — park until it has finished,
  // then resume dying. The scheduler tolerates this deferred death.
  while (pc->taken && !pc->done && !pc->failed)
    sched_->block("entry call " + name_ + " (finishing rendezvous)",
                  owner_);
}

}  // namespace script::ada
