#include "ada/entry.hpp"

#include <algorithm>

namespace script::ada {

void EntryBase::on_call_arrived() {
  if (sched_->bus().wants(obs::Subsystem::Ada))
    sched_->bus().publish({obs::EventKind::Instant, obs::Subsystem::Ada,
                           obs::kAutoTime, sched_->current(), obs::kNoLane,
                           "entry.call", name_,
                           static_cast<double>(calls_.size())});
  if (waiting_acceptor_ != kNoProcess) {
    const ProcessId acceptor = waiting_acceptor_;
    waiting_acceptor_ = kNoProcess;
    sched_->unblock(acceptor);
    return;
  }
  // Wake the first select still parked on this entry. A waiter that was
  // already woken (by another entry or a timeout) is skipped — it will
  // rescan and deregister itself.
  for (const ProcessId w : select_waiters_) {
    if (sched_->state_of(w) == runtime::FiberState::Blocked) {
      sched_->unblock(w);
      return;
    }
  }
}

void EntryBase::wait_for_caller() {
  SCRIPT_ASSERT(waiting_acceptor_ == kNoProcess,
                "two tasks accepting the same entry " + name_);
  waiting_acceptor_ = sched_->current();
  sched_->block("accept " + name_);
}

EntryBase::PendingCall* EntryBase::take_head() {
  SCRIPT_ASSERT(!calls_.empty(), "accept_ready on empty entry " + name_);
  PendingCall* pc = calls_.front();
  calls_.pop_front();
  pc->taken = true;
  if (sched_->bus().wants(obs::Subsystem::Ada))
    sched_->bus().publish({obs::EventKind::SpanBegin, obs::Subsystem::Ada,
                           obs::kAutoTime, sched_->current(), obs::kNoLane,
                           "rendezvous", name_});
  return pc;
}

void EntryBase::finish(PendingCall* pc) {
  pc->done = true;
  ++completed_;
  if (sched_->bus().wants(obs::Subsystem::Ada))
    sched_->bus().publish({obs::EventKind::SpanEnd, obs::Subsystem::Ada,
                           obs::kAutoTime, sched_->current(), obs::kNoLane,
                           "rendezvous", name_});
  // A timed caller whose deadline fired during the rendezvous is
  // already awake; it will observe `done` and take the result.
  if (sched_->state_of(pc->caller) == runtime::FiberState::Blocked)
    sched_->unblock(pc->caller);
}

bool EntryBase::acceptor_committed() const {
  if (waiting_acceptor_ != kNoProcess) return true;
  for (const ProcessId w : select_waiters_)
    if (sched_->state_of(w) == runtime::FiberState::Blocked) return true;
  return false;
}

void EntryBase::withdraw(PendingCall* pc) {
  const auto it = std::find(calls_.begin(), calls_.end(), pc);
  SCRIPT_ASSERT(it != calls_.end(),
                "withdraw: call not queued on entry " + name_);
  calls_.erase(it);
}

}  // namespace script::ada
