// Ada-style tasks — thin identities over runtime fibers.
//
// The Ada host language of the paper's §IV differs from CSP in exactly
// the ways the paper exploits: a task's *entries* can be called by
// anyone (callers name the callee, acceptors stay anonymous), and
// "repeated enrollments are serviced in order of arrival" (FIFO entry
// queues). Those two properties live in Entry/Select; Task adds naming
// and lifetime.
#pragma once

#include <functional>
#include <string>

#include "runtime/scheduler.hpp"

namespace script::ada {

using runtime::ProcessId;

class Task {
 public:
  /// Spawns the task body immediately (Ada tasks activate at elaboration).
  Task(runtime::Scheduler& sched, std::string name,
       std::function<void()> body);

  ProcessId id() const { return pid_; }
  const std::string& name() const { return name_; }

  /// Block the calling fiber until this task completes.
  void await(runtime::Scheduler& sched) const;

 private:
  ProcessId pid_;
  std::string name_;
};

}  // namespace script::ada
