#include "ada/select.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace script::ada {

int Select::or_else(std::function<void()> body) {
  SCRIPT_ASSERT(!has_else_, "select: two else parts");
  SCRIPT_ASSERT(!has_delay_, "select: else and delay are exclusive in Ada");
  has_else_ = true;
  else_body_ = std::move(body);
  else_index_ = static_cast<int>(cases_.size());
  return else_index_;
}

int Select::or_delay(std::uint64_t ticks, std::function<void()> body) {
  SCRIPT_ASSERT(!has_delay_, "select: two delay alternatives");
  SCRIPT_ASSERT(!has_else_, "select: else and delay are exclusive in Ada");
  has_delay_ = true;
  delay_ticks_ = ticks;
  delay_body_ = std::move(body);
  delay_index_ = static_cast<int>(cases_.size());
  return delay_index_;
}

int Select::pick_ready(const std::vector<int>& open) {
  std::vector<int> ready;
  for (const int i : open)
    if (cases_[static_cast<std::size_t>(i)].entry->ready()) ready.push_back(i);
  if (ready.empty()) return kNone;
  return ready.size() == 1
             ? ready[0]
             : ready[sched_->rng().pick_index(ready.size())];
}

int Select::run() {
  std::vector<int> open;
  for (std::size_t i = 0; i < cases_.size(); ++i)
    if (cases_[i].guard) open.push_back(static_cast<int>(i));

  if (open.empty()) {
    if (has_else_) {
      if (else_body_) else_body_();
      return else_index_;
    }
    if (has_delay_) {
      sched_->sleep_for(delay_ticks_);
      if (delay_body_) delay_body_();
      return delay_index_;
    }
    SCRIPT_PANIC("select with no open alternative and no else/delay "
                 "(Ada Program_Error)");
  }

  const int immediate = pick_ready(open);
  if (immediate != kNone) {
    cases_[static_cast<std::size_t>(immediate)].fire();
    return immediate;
  }
  if (has_else_) {
    if (else_body_) else_body_();
    return else_index_;
  }

  // Park on every open entry until a caller shows up (or the delay
  // expires). A caller's on_call_arrived() wakes us; we then rescan.
  const ProcessId me = sched_->current();
  for (const int i : open)
    cases_[static_cast<std::size_t>(i)].entry->select_waiters_.push_back(me);
  // Idempotent; also installed as the timeout hook so the registrations
  // self-clean the instant the delay expires.
  const auto deregister = [this, me, &open] {
    for (const int i : open) {
      auto& ws = cases_[static_cast<std::size_t>(i)].entry->select_waiters_;
      ws.erase(std::remove(ws.begin(), ws.end(), me), ws.end());
    }
  };

  int chosen = kNone;
  bool timed_out = false;
  const std::uint64_t deadline = sched_->now() + delay_ticks_;
  try {
    for (;;) {
      if (has_delay_) {
        const std::uint64_t now = sched_->now();
        if (now >= deadline) {
          timed_out = true;
        } else {
          timed_out = sched_->block_with_timeout(
              "select (delay)", deadline - now, deregister);
        }
      } else {
        sched_->block("select on " +
                      std::to_string(open.size()) + " entries");
      }
      chosen = pick_ready(open);
      if (chosen != kNone || timed_out) break;
      // Spurious wake (a caller was consumed by someone else): park again.
    }
  } catch (...) {
    deregister();  // crashed while parked: no dangling select waiters
    throw;
  }

  deregister();

  if (chosen != kNone) {
    cases_[static_cast<std::size_t>(chosen)].fire();
    return chosen;
  }
  SCRIPT_ASSERT(timed_out, "select woke with nothing ready and no timeout");
  if (delay_body_) delay_body_();
  return delay_index_;
}

}  // namespace script::ada
