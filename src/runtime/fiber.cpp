#include "runtime/fiber.hpp"

#include <cstdint>

#include "runtime/fault.hpp"
#include "runtime/overload.hpp"
#include "runtime/sanitizer_fiber.hpp"
#include "runtime/scheduler.hpp"
#include "support/panic.hpp"

namespace script::runtime {

Fiber::~Fiber() { sanitizer::tsan_destroy_context(tsan_ctx_); }

Fiber::Fiber(ProcessId id, std::string name, std::function<void()> body,
             Stack stack)
    : id_(id),
      name_(std::move(name)),
      body_(std::move(body)),
      stack_(std::move(stack)) {
  if (getcontext(&context_) != 0) SCRIPT_PANIC("getcontext failed");
  context_.uc_stack.ss_sp = stack_.base();
  context_.uc_stack.ss_size = stack_.size();
  context_.uc_link = nullptr;  // fibers return via explicit swapcontext
  // makecontext only passes ints, so the `this` pointer travels as two
  // 32-bit halves.
  const auto ptr = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xffffffffu));
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto ptr = (static_cast<std::uintptr_t>(hi) << 32) |
                   static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(ptr)->run_body();
  SCRIPT_PANIC("fiber resumed after completion");
}

void Fiber::run_body() {
  SCRIPT_ASSERT(scheduler_ != nullptr, "fiber dispatched without a scheduler");
  scheduler_->fiber_entered(*this);
  try {
    if (kill_pending_) {
      // Killed before ever being dispatched: the body never starts.
      kill_pending_ = false;
      crashed_ = true;
    } else if (cancel_pending_ != PendingCancel::None) {
      // Cancelled before ever being dispatched (a step budget of zero,
      // or a deadline already past at spawn): the body never starts.
      cancel_pending_ = PendingCancel::None;
      crashed_ = true;
      cancelled_ = true;
    } else {
      body_();
    }
  } catch (const FiberKilled&) {
    crashed_ = true;  // a crash is not a failure; nothing to rethrow
  } catch (const DeadlineExceeded&) {
    // An uncaught cancellation terminates the fiber as a crash (the
    // hooks and FailurePolicy machinery react identically); cancelled_
    // records the distinction for reports and snapshots.
    crashed_ = true;
    cancelled_ = true;
  } catch (const BudgetExceeded&) {
    crashed_ = true;
    cancelled_ = true;
  } catch (...) {
    failure_ = std::current_exception();
  }
  set_state(FiberState::Done);
  SCRIPT_ASSERT(scheduler_ != nullptr, "fiber ran without a scheduler");
  scheduler_->on_fiber_done(*this);
  // Final switch back to the dispatching context; never returns.
  scheduler_->switch_out(*this);
}

}  // namespace script::runtime
