// A Fiber is one lightweight process context (ucontext-based).
//
// The paper assumes CSP/Ada-style language-level processes; C++ offers
// none, so fibers are our substitute. A role body executes *on the
// enrolling process's fiber* — the paper's "logical continuation of the
// enrolling process" — which is why fibers, not helper threads, are the
// right substrate.
#pragma once

#include <ucontext.h>

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "runtime/stack.hpp"

namespace script::runtime {

/// Stable identity of a process in the simulated system.
using ProcessId = std::uint32_t;
inline constexpr ProcessId kNoProcess = static_cast<ProcessId>(-1);

/// A scheduling group: the unit of placement and stealing in the
/// parallel mode (one performance / script instance / csp::Net per
/// group). The deterministic mode ignores groups entirely, so one
/// program runs unchanged in both modes.
using GroupId = std::uint32_t;
/// "No explicit group": spawn inherits the spawner's group (dynamic
/// spawn from a fiber) or the default group 0 (spawn from outside).
inline constexpr GroupId kInheritGroup = static_cast<GroupId>(-1);

namespace parallel_detail {
struct Group;
}

/// One resumable scheduler-side execution context: the deterministic
/// scheduler loop owns one, each parallel worker thread owns one. A
/// fiber switching out returns to the context that dispatched it
/// (`Fiber::resume_`), which in the parallel mode may be a different
/// worker every time its group is stolen.
struct ExecContext {
  ucontext_t ctx{};
  // ASan fake-stack handle saved while this context is switched out.
  void* asan_fake_stack = nullptr;
  // Bounds of this context's native stack, learned at first fiber entry
  // (they never change; the loop that owns the context stays put).
  const void* stack_bottom = nullptr;
  std::size_t stack_size = 0;
  // TSan context of the owning thread (sanitizer_fiber.hpp).
  void* tsan_ctx = nullptr;
};

enum class FiberState : std::uint8_t {
  Ready,     // runnable, waiting for the scheduler to pick it
  Running,   // currently executing
  Blocked,   // parked on a wait queue / rendezvous
  Sleeping,  // parked on the virtual-time timer heap
  Done,      // body returned (or threw)
};

inline const char* fiber_state_name(FiberState s) {
  switch (s) {
    case FiberState::Ready: return "Ready";
    case FiberState::Running: return "Running";
    case FiberState::Blocked: return "Blocked";
    case FiberState::Sleeping: return "Sleeping";
    case FiberState::Done: return "Done";
  }
  return "?";
}

class Scheduler;

class Fiber {
 public:
  /// Takes ownership of `stack` (typically from the scheduler's
  /// StackPool; the scheduler reclaims it after the fiber finishes).
  Fiber(ProcessId id, std::string name, std::function<void()> body,
        Stack stack);
  /// Releases the TSan fiber context if the scheduler didn't already
  /// (fibers alive at scheduler teardown).
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  ProcessId id() const { return id_; }
  const std::string& name() const { return name_; }
  /// Relaxed atomic: parallel-mode snapshots (describe, snapshot_json)
  /// may read a fiber's state cross-thread; all state *transitions* are
  /// still serialized by the owning group's mutex (or, in deterministic
  /// mode, by there being one thread).
  FiberState state() const { return state_.load(std::memory_order_relaxed); }
  void set_state(FiberState s) { state_.store(s, std::memory_order_relaxed); }

  /// Why this fiber is blocked — surfaced in deadlock reports.
  const std::string& block_reason() const { return block_reason_; }
  void set_block_reason(std::string r) { block_reason_ = std::move(r); }

  /// Exception that escaped the body, if any (rethrown by Scheduler::run).
  std::exception_ptr failure() const { return failure_; }

  /// True when the last block_with_timeout() expired rather than being
  /// unblocked.
  bool timed_out() const { return timed_out_; }

  /// True once a FaultPlan killed this fiber (its body was unwound by
  /// FiberKilled; never reported through failure()).
  bool crashed() const { return crashed_; }

  /// True once a deadline or budget cancellation unwound this fiber's
  /// body (DeadlineExceeded / BudgetExceeded escaped uncaught). Such a
  /// fiber also reads as crashed() — cancellation feeds the same crash
  /// hooks and FailurePolicy — but cancelled() says *why*.
  bool cancelled() const { return cancelled_; }

  /// Absolute virtual-time deadline installed on this fiber, or
  /// kNoDeadline (runtime/overload.hpp) when none.
  std::uint64_t deadline() const { return deadline_; }

  /// Virtual time at which this fiber last ran (dispatch instant).
  std::uint64_t last_progress() const { return last_progress_; }

  /// Total virtual time this fiber has spent Blocked (closed spans only;
  /// a currently-blocked fiber's open span is not yet counted). Always
  /// maintained — the cost is two assignments per park — so wait-time
  /// attribution has a ground truth to check against.
  std::uint64_t blocked_ticks() const { return blocked_ticks_; }

  /// Total virtual time spent Sleeping (timer parks), closed spans
  /// only — the other half of the wait ledger. A fiber killed mid-sleep
  /// accrues the elapsed part, so causal attribution and this ledger
  /// agree on kill paths too.
  std::uint64_t slept_ticks() const { return slept_ticks_; }

  /// Who this fiber is blocked on, when the call site knows (the CSP
  /// peer, the Ada entry owner, the monitor holder, a join target).
  /// kNoProcess when unknown or not blocked. Drives the wait-for chains
  /// in deadlock reports.
  ProcessId waiting_on() const { return waiting_on_; }

 private:
  friend class Scheduler;
  friend class ParallelRuntime;

  static void trampoline(unsigned hi, unsigned lo);
  void run_body();
  /// Hand the stack back for pooling. Only valid once the fiber is Done
  /// AND control is back on the scheduler's own stack.
  Stack release_stack() { return std::move(stack_); }

  ProcessId id_;
  std::string name_;
  std::function<void()> body_;
  Stack stack_;
  ucontext_t context_{};
  // ASan fake-stack handle saved while this fiber is switched out
  // (runtime/sanitizer_fiber.hpp); stays null outside sanitized builds.
  void* asan_fake_stack_ = nullptr;
  // TSan per-fiber context, created lazily at first dispatch in TSan
  // builds; null otherwise.
  void* tsan_ctx_ = nullptr;
  // The execution context (deterministic loop / parallel worker) that
  // dispatched this fiber; switch_out returns control to it. Set at
  // every dispatch, so a stolen group's fibers resume the stealing
  // worker, not the one that parked them.
  ExecContext* resume_ = nullptr;
  // Fibers joined on this one; woken when it finishes. (Both modes —
  // moved here from the scheduler so the parallel mode can guard them
  // with the owning group's mutex.)
  std::vector<ProcessId> joiners_;
  // ---- Parallel-mode placement & park-commit protocol ----
  // Owning group (parallel_detail::Group), fixed at spawn; null in
  // deterministic mode. A fiber never migrates between groups.
  parallel_detail::Group* pgroup_ = nullptr;
  // Set (under the group mutex) by the parking fiber just before it
  // switches out; cleared by the worker once the context is fully saved.
  // A cross-group waker that sees it pending leaves p_wake_pending_
  // instead of touching the not-yet-saved context.
  bool p_commit_pending_ = false;
  // Deferred wake: the fiber was woken while Running or mid-park; the
  // worker converts it to a real wake at commit time. Handles join's
  // wake-before-park race.
  bool p_wake_pending_ = false;
  // Timer request carried through the park: the worker pushes it on the
  // global timer heap after the commit, so a timer can never fire for a
  // fiber whose context is not yet saved.
  bool p_timer_req_ = false;
  std::uint64_t p_timer_due_ = 0;
  // Done-processing completed (joiners drained, stack reclaimed) under
  // the group mutex. join()'s fast path keys off this, not state_: only
  // the mutex gives the joiner a happens-before edge with the body.
  bool retired_ = false;
  std::atomic<FiberState> state_{FiberState::Ready};
  std::string block_reason_;
  std::exception_ptr failure_;
  Scheduler* scheduler_ = nullptr;  // set when first scheduled
  // Wake generation: bumped on every wake so a timer armed for an
  // earlier block/sleep can be recognized as stale and ignored.
  std::uint64_t wake_gen_ = 0;
  // An armed heap timer references the current wake_gen_. The scheduler
  // uses this to count how many heap entries went stale (lazy purge).
  bool timer_armed_ = false;
  // Intrusive ready-queue membership flag: lets kill paths skip the
  // queue scan entirely when the fiber is not queued (the common case).
  bool in_ready_ = false;
  bool timed_out_ = false;
  // ---- Fault-injection state (runtime/fault.hpp) ----
  bool kill_pending_ = false;   // next switch-in throws FiberKilled
  bool crashed_ = false;        // body unwound by FiberKilled
  bool crash_notified_ = false;  // crash hooks already ran
  // ---- Overload-protection state (runtime/overload.hpp) ----
  // A due deadline/budget sets a pending cancel; the next switch-in (or
  // the next blocking-primitive entry, for a fiber that was Ready when
  // it fired) throws the matching typed exception.
  enum class PendingCancel : std::uint8_t {
    None,
    Deadline,    // throws DeadlineExceeded
    StepBudget,  // throws BudgetExceeded{DispatchSteps}
    TickBudget,  // throws BudgetExceeded{VirtualTicks}
  };
  PendingCancel cancel_pending_ = PendingCancel::None;
  std::uint64_t cancel_payload_ = 0;  // expired deadline / blown limit
  bool cancelled_ = false;  // body unwound by DeadlineExceeded/BudgetExceeded
  std::uint64_t deadline_ = static_cast<std::uint64_t>(-1);      // kNoDeadline
  std::uint64_t tick_budget_due_ = static_cast<std::uint64_t>(-1);
  std::uint64_t tick_budget_limit_ = 0;  // configured ticks (for the payload)
  std::uint64_t steps_left_ = static_cast<std::uint64_t>(-1);  // step budget
  std::uint64_t step_limit_ = 0;         // configured steps (for the payload)
  std::uint64_t pending_stall_ticks_ = 0;  // consumed at next dispatch
  std::uint64_t last_progress_ = 0;        // virtual time last dispatched
  // ---- Causal accounting (always on; plain arithmetic per park) ----
  std::uint64_t blocked_ticks_ = 0;  // closed Blocked spans, summed
  std::uint64_t block_start_ = 0;    // entry time of the open Blocked span
  std::uint64_t slept_ticks_ = 0;    // closed Sleeping spans, summed
  std::uint64_t sleep_start_ = 0;    // entry time of the open Sleeping span
  ProcessId waiting_on_ = kNoProcess;  // wait-for hint for deadlock chains
  // Deregistration hook for block_with_timeout: runs at the moment the
  // timeout fires (before any other fiber can observe the stale wait
  // entry), so wakers self-clean instead of every call site doing it.
  std::function<void()> timeout_cleanup_;
};

}  // namespace script::runtime
