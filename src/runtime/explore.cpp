#include "runtime/explore.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace script::runtime {

namespace {

// One node of the decision path: which ready-index was chosen out of
// how many options.
struct Decision {
  std::size_t chosen;
  std::size_t options;
};

}  // namespace

ExploreStats explore_interleavings(
    const std::function<void(Scheduler&)>& build,
    const std::function<void(Scheduler&, const RunResult&)>& check,
    ExploreOptions opts) {
  ExploreStats stats;
  std::vector<Decision> prefix;  // decisions to replay verbatim

  for (;;) {
    if (stats.interleavings >= opts.max_runs) return stats;

    // Execute one run: follow `prefix`, then always take index 0,
    // recording every decision point actually encountered.
    std::vector<Decision> path;
    std::size_t step = 0;
    SchedulerOptions sopts;
    sopts.policy = SchedulePolicy::Scripted;
    sopts.stack_bytes = opts.stack_bytes;
    sopts.max_steps_per_run = opts.max_steps_per_run;
    sopts.chooser = [&](std::size_t n_ready) {
      const std::size_t pick =
          step < prefix.size() ? prefix[step].chosen : 0;
      SCRIPT_ASSERT(pick < n_ready,
                    "explore: replay diverged (program not repeatable?)");
      path.push_back({pick, n_ready});
      ++step;
      return pick;
    };
    Scheduler sched(sopts);
    build(sched);
    const RunResult result = sched.run();
    ++stats.interleavings;
    if (result.outcome == RunResult::Outcome::StepLimit)
      ++stats.truncated_runs;
    stats.max_decision_depth =
        std::max(stats.max_decision_depth,
                 static_cast<std::uint64_t>(path.size()));
    check(sched, result);

    // Backtrack: advance the last decision that still has an untried
    // sibling; drop everything after it.
    while (!path.empty() && path.back().chosen + 1 >= path.back().options)
      path.pop_back();
    if (path.empty()) {
      stats.complete = true;
      return stats;
    }
    ++path.back().chosen;
    prefix = std::move(path);
  }
}

FaultExploreStats explore_fault_schedules(
    const std::function<void(Scheduler&)>& build,
    const std::function<void(Scheduler&, const RunResult&, const FaultPlan&)>&
        check,
    FaultExploreOptions opts) {
  FaultExploreStats stats;
  stats.complete = true;

  const auto explore_one = [&](const FaultPlan& plan) {
    const ExploreStats s = explore_interleavings(
        [&](Scheduler& sched) {
          if (!plan.empty()) sched.install_fault_plan(plan);
          build(sched);
        },
        [&](Scheduler& sched, const RunResult& result) {
          check(sched, result, plan);
        },
        opts.base);
    ++stats.schedules;
    stats.interleavings += s.interleavings;
    stats.truncated_runs += s.truncated_runs;
    if (!s.complete) stats.complete = false;
  };

  if (opts.include_fault_free) explore_one(FaultPlan{});
  for (const ProcessId pid : opts.candidate_pids)
    for (std::uint64_t step = 1; step <= opts.max_crash_step; ++step)
      explore_one(FaultPlan{}.crash_at_step(pid, step));
  return stats;
}

}  // namespace script::runtime
