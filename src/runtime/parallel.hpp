// ParallelRuntime — the M:N work-stealing execution mode behind the
// Scheduler API (SchedulerOptions::workers > 0).
//
// Design, in one breath: fibers are pinned to *groups* (a group ≈ one
// performance / script instance / csp::Net — the paper's unit of
// isolation), each group has its own mutex and local ready queue, and
// groups — never individual fibers — migrate between per-worker shard
// queues when a worker runs dry and steals. Intra-group rendezvous
// therefore never crosses a core mid-conversation: both parties of a
// CSP exchange are dispatched back-to-back by whichever worker holds
// the group, which is precisely the cache-locality win the ISSUE's C7
// numbers ask for (round-robin over 4000 fibers thrashes; depth-first
// per-group execution does not).
//
// What stays on the deterministic backend (asserted at run()): golden
// traces / explore() (Scripted policy), FaultPlan injection, deadlines
// and execution budgets, causal tracking, per-fiber event history,
// health polling. The flight recorder, timeline, and debug endpoint
// remain available — the EventBus runs in its locked mode and the
// endpoint is serviced at run() boundaries only.
//
// Synchronization protocol (the part worth reading twice):
//   * Group mutex guards the group's ready queue and every member
//     fiber's scheduling fields (state transitions, wake_gen_, block
//     ledger, joiners).
//   * Park-commit: a parking fiber sets its state and p_commit_pending_
//     under the group mutex, then switches out. The worker clears the
//     pending flag — again under the mutex — only after swapcontext has
//     fully saved the fiber's context. A cross-group waker that catches
//     the window (or catches the fiber still Running, join's wake-
//     before-park race) sets p_wake_pending_ instead of touching the
//     half-saved context; the commit converts it into a real wake.
//   * Timers live in one global heap (virtual time is global); a timed
//     park carries its request through the commit so a timer can never
//     fire for an uncommitted context. The clock advances only at
//     quiescence — every worker idle, no queued groups — which is also
//     where termination and deadlock are decided.
//   * Stacks: per-worker free lists, refilled from / drained to the
//     scheduler's (locked) StackPool at run boundaries.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/fiber.hpp"
#include "runtime/fiber_table.hpp"
#include "runtime/ready_queue.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/stack.hpp"
#include "support/rng.hpp"

namespace script::runtime {

namespace parallel_detail {

/// The unit of placement and stealing. All scheduling state of member
/// fibers is guarded by `mu`.
struct Group {
  explicit Group(GroupId id_, std::uint32_t home_) : id(id_), home(home_) {}

  const GroupId id;
  std::mutex mu;
  /// Runnable member fibers, FIFO (same container as the deterministic
  /// ready queue, so per-group ordering matches the Fifo policy).
  ReadyQueueT<ProcessId, kNoProcess> ready;
  /// A worker is currently draining this group's queue. Wakes that land
  /// while active do not enqueue the group; the draining worker either
  /// picks them up or requeues on exit.
  bool active = false;
  /// Sitting on some shard's runnable queue (at most one entry ever).
  bool queued = false;
  /// Shard whose queue the group was last pushed to / run from; updated
  /// on steal so subsequent wakes chase the group's new home. Atomic
  /// (relaxed) because push_shard reads it without the group mutex — a
  /// stale read just pushes to the previous shard, where steals find it.
  std::atomic<std::uint32_t> home;
};

/// One OS thread of the M:N runtime. Lives here (not nested) so the
/// implementation file can hold a `thread_local Worker*` at namespace
/// scope — the key that maps "which fiber is current" per thread.
/// (`ParallelRuntime` is forward-declared by scheduler.hpp.)
struct Worker {
  ParallelRuntime* rt = nullptr;
  std::uint32_t index = 0;
  ExecContext exec;
  ProcessId current = kNoProcess;
  std::uint64_t steps = 0;
  /// Per-worker stack free list (ISSUE: per-worker free lists). Hot
  /// spawn/retire cycles stay off the pool mutex; drained into the
  /// shared StackPool between runs so cross-run spawns reuse too.
  std::vector<Stack> stack_cache;
  support::Rng rng{1};
};

}  // namespace parallel_detail

class ParallelRuntime {
 public:
  ParallelRuntime(Scheduler& sched, std::size_t workers,
                  std::size_t group_quantum);
  ~ParallelRuntime();

  ParallelRuntime(const ParallelRuntime&) = delete;
  ParallelRuntime& operator=(const ParallelRuntime&) = delete;

  std::size_t workers() const { return nworkers_; }

  /// Create a new scheduling group (initial home = round-robin shard).
  GroupId new_group();
  GroupId group_of(ProcessId pid) const;
  std::size_t group_count() const { return groups_.size(); }

  ProcessId spawn(GroupId gid, std::string name,
                  std::function<void()> body);
  RunResult run();

  // ---- Fiber-side primitives (worker threads, fiber stacks) ----
  void yield(Fiber& f);
  void block(Fiber& f, const std::string& reason, ProcessId waiting_on);
  void sleep_for(Fiber& f, std::uint64_t ticks);
  bool block_with_timeout(Fiber& f, const std::string& reason,
                          std::uint64_t ticks,
                          std::function<void()> on_timeout,
                          ProcessId waiting_on);
  void join(Fiber& f, ProcessId target);

  // ---- Callable from any fiber ----
  void unblock(ProcessId pid);
  void wake_at(ProcessId pid, std::uint64_t ticks_from_now);

  /// Fiber running on the calling worker thread, or kNoProcess when the
  /// caller is not one of this runtime's workers (the main thread).
  ProcessId current_on_this_thread() const;

  /// Lifetime count of groups taken from a foreign shard (a steal).
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  using Group = parallel_detail::Group;
  using Worker = parallel_detail::Worker;

  friend struct parallel_detail::Worker;

  struct Shard {
    std::mutex mu;
    StealQueueT<Group*> runnable;
  };

  static void worker_main(Worker* w);

  Group& group(GroupId gid) const { return groups_[gid]; }
  /// Group transitions to "needs a worker" — call under g.mu. Returns
  /// true when the caller must push_shard(g) after unlocking.
  bool mark_queued(Group& g);
  /// Put g on its home shard's runnable queue and poke an idle worker.
  /// Never called with any group/shard mutex held.
  void push_shard(Group* g);
  /// Same, but for the quiescence path (idle_mu_ already held — skip
  /// the idle-notify; the quiescing worker broadcasts afterwards).
  void push_shard_locked_idle(Group* g);
  /// Own shard first (pop_front), then sweep the others (steal_back).
  Group* acquire_group(Worker& w);
  void run_group(Worker& w, Group* g);
  void dispatch(Worker& w, Fiber& f);
  /// After a dispatch returned: retire / requeue / commit the park.
  void post_step(Worker& w, Fiber& f);
  void commit_park(Worker& w, Fiber& f);
  void finish_done(Worker& w, Fiber& f);
  /// Blocked→Ready bookkeeping under g.mu (ledger, stale timer note,
  /// wake_gen bump, push on the group queue).
  void wake_locked(Fiber& f, Group& g);
  /// A timer fired for f (under g.mu): Sleeping→Ready or Blocked→Ready
  /// with timed_out_ + self-clean, mirroring the deterministic path.
  void fire_timer_locked(Fiber& f, bool* was_sleeping);
  /// All workers idle, nothing queued: advance the virtual clock to the
  /// next live timer and wake its fibers. idle_mu_ held. Returns true
  /// when new work was created, false when the run is over.
  bool quiesce();
  void purge_timers_locked();

  Stack acquire_stack(Worker* w, std::size_t bytes);
  void reclaim_stack(Worker& w, Fiber& f);
  void start_threads();

  Scheduler& sched_;
  const std::size_t nworkers_;
  const std::size_t quantum_;

  // Group / spawn state. spawn_mu_ serializes table growth (fiber and
  // group tables are lock-free for readers).
  mutable std::mutex spawn_mu_;
  FiberTableT<Group> groups_;
  std::uint32_t next_home_ = 0;  // round-robin initial shard for groups

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Groups currently sitting on some shard queue. The release
  /// increment (before any idle check) pairs with idle workers'
  /// acquire re-check, closing the lost-wakeup window.
  std::atomic<std::size_t> queued_groups_{0};
  std::atomic<std::uint64_t> steals_{0};

  // Global virtual-time heap (Scheduler's Timer/TimerHeap, by
  // friendship): pushes from workers under timer_mu_, pops only at
  // quiescence.
  std::mutex timer_mu_;
  Scheduler::TimerHeap timers_;
  std::uint64_t timer_seq_ = 0;  // guarded by timer_mu_
  /// Stale heap entries. Atomic because wakers note staleness under the
  /// *group* mutex (taking timer_mu_ there would invert the quiescence
  /// order timer_mu_ → group.mu); consumed/reset under timer_mu_.
  std::atomic<std::size_t> stale_timers_{0};

  // Run/idle coordination.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;  // workers: work available / run start
  std::condition_variable main_cv_;  // main: run finished
  std::size_t idlers_ = 0;           // workers waiting inside an active run
  bool run_active_ = false;
  bool run_done_ = false;
  bool shutdown_ = false;
  std::atomic<bool> stop_{false};  // failure: wind the run down
  std::exception_ptr first_failure_;

  std::vector<std::unique_ptr<Worker>> workers_store_;
  std::vector<std::thread> threads_;
};

}  // namespace script::runtime
