#include "runtime/chaos_link.hpp"

#include <algorithm>

namespace script::runtime {

ChaosLink::ChaosLink(Transport& inner, ChaosOptions opts)
    : inner_(&inner), opts_(opts), rng_(opts.seed) {}

bool ChaosLink::partitioned(PeerId peer) const {
  return std::find(partitioned_.begin(), partitioned_.end(), peer) !=
         partitioned_.end();
}

void ChaosLink::partition(PeerId peer) {
  if (!partitioned(peer)) {
    partitioned_.push_back(peer);
    publish("chaos.partition", "peer=" + std::to_string(peer));
  }
}

void ChaosLink::heal(PeerId peer) {
  const auto it = std::find(partitioned_.begin(), partitioned_.end(), peer);
  if (it != partitioned_.end()) {
    partitioned_.erase(it);
    publish("chaos.heal", "peer=" + std::to_string(peer));
  }
}

void ChaosLink::slow_close(PeerId peer) {
  ++stats_.chaos_slow_closes;
  publish("chaos.slow_close", "peer=" + std::to_string(peer));
  inner_->slow_close(peer);
}

bool ChaosLink::send(PeerId to, std::string frame) {
  // One Rng draw per configured rate, in a fixed order, whether or not
  // an earlier fault already consumed the frame — the draw sequence
  // must depend only on the send sequence, or two runs that differ in
  // one drop diverge everywhere after it.
  const bool drop = opts_.drop_rate > 0 && rng_.chance(opts_.drop_rate);
  const bool dup = opts_.dup_rate > 0 && rng_.chance(opts_.dup_rate);
  const bool delay = opts_.delay_rate > 0 && rng_.chance(opts_.delay_rate);

  if (partitioned(to)) {
    ++stats_.chaos_partitioned;
    publish("chaos.eat", "peer=" + std::to_string(to));
    return true;  // blackholed, like a real partition: sender sees "sent"
  }
  if (drop) {
    ++stats_.chaos_dropped;
    publish("chaos.drop", "peer=" + std::to_string(to));
    return true;
  }
  if (delay) {
    ++stats_.chaos_delayed;
    publish("chaos.delay", "peer=" + std::to_string(to),
            static_cast<double>(opts_.delay_ticks));
    delayed_.push_back(
        Delayed{clock_now() + opts_.delay_ticks, to, std::move(frame)});
    return true;
  }
  if (dup) {
    ++stats_.chaos_duplicated;
    publish("chaos.duplicate", "peer=" + std::to_string(to));
    inner_->send(to, frame);  // copy; original forwarded below
  }
  stats_.frames_sent += 1;
  stats_.bytes_sent += frame.size();
  return inner_->send(to, std::move(frame));
}

std::size_t ChaosLink::poll(const PollFn& fn) {
  std::size_t delivered = 0;
  inner_->poll([&](PeerId from, std::string&& frame) {
    if (partitioned(from)) {
      // The partition eats inbound traffic too: a one-sided install
      // still isolates this endpoint completely.
      ++stats_.chaos_partitioned;
      publish("chaos.eat", "peer=" + std::to_string(from) + " in");
      return;
    }
    stats_.frames_received += 1;
    stats_.bytes_received += frame.size();
    ++delivered;
    fn(from, std::move(frame));
  });
  return delivered;
}

void ChaosLink::service() {
  bump_fallback_clock();
  const std::uint64_t now = clock_now();
  // Forward held frames whose delay has elapsed, preserving send order
  // among those due at the same instant.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < delayed_.size(); ++i) {
    if (delayed_[i].due <= now) {
      inner_->send(delayed_[i].to, std::move(delayed_[i].bytes));
    } else {
      if (kept != i) delayed_[kept] = std::move(delayed_[i]);
      ++kept;
    }
  }
  delayed_.resize(kept);
  inner_->service();
}

}  // namespace script::runtime
