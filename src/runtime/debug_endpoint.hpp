// DebugEndpoint — an opt-in, line-oriented debug protocol over a
// Unix-domain socket.
//
// This is the runtime's first piece of real I/O: `scriptctl top` and
// `scriptctl watch` attach to a *running* scheduler instead of reading
// post-mortem files. The determinism story survives because the
// endpoint is passive: the socket is non-blocking end to end and is
// only serviced from scheduler safepoints (loop entry/exit, clock
// advances, every N dispatches). An unarmed scheduler pays one null
// check; an armed one with no client pays one accept() probe per
// safepoint. Nothing the endpoint does feeds back into scheduling
// decisions, so golden traces and explore() are untouched either way —
// requests only ever *read* snapshots.
//
// Protocol (line oriented, text):
//   request:   <command> [args]\n
//   response:  ok <nbytes>\n<nbytes of payload>
//          or: err <reason>\n
// Payloads are complete JSON or Prometheus-text documents; the byte
// count makes framing trivial for clients (read the header line, then
// exactly nbytes).
#pragma once

#include <sys/socket.h>
#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "support/io.hpp"

namespace script::runtime {

class DebugEndpoint {
 public:
  /// Handles one request line: `args` is everything after the command
  /// word (may be empty). Returns the response payload; returning
  /// nullopt-style failure is signalled by filling *err instead.
  using Handler =
      std::function<std::string(const std::string& args, std::string* err)>;

  DebugEndpoint() = default;
  ~DebugEndpoint();

  DebugEndpoint(const DebugEndpoint&) = delete;
  DebugEndpoint& operator=(const DebugEndpoint&) = delete;

  /// Bind and listen on `path` (an existing stale socket file is
  /// unlinked first). Returns false (with errno intact) on failure.
  bool listen(const std::string& path);
  bool listening() const { return listen_fd_ >= 0; }
  const std::string& path() const { return path_; }
  void close();

  /// Register `cmd` (a single word). Later registrations win.
  void register_handler(const std::string& cmd, Handler fn);

  /// One safepoint's worth of work: accept pending connections, read
  /// whatever bytes are available, run handlers for complete request
  /// lines, flush whatever output the sockets will take. Never blocks.
  /// Returns the number of requests served.
  std::size_t service();

  std::uint64_t requests_served() const { return requests_; }
  std::size_t connection_count() const { return conns_.size(); }
  /// Connections dropped because a stalled reader let the outbound
  /// buffer exceed kMaxOut (the overload-shedding taxonomy's counted
  /// shed, applied to the debug path).
  std::uint64_t connections_shed() const { return sheds_; }

  /// Test seam: the raw socket calls, overridable so unit tests can
  /// inject EINTR and short writes without arranging real signal
  /// delivery. This is the shared support/io hook table (the TCP
  /// transport goes through the same one, so a single interposer
  /// covers every syscall site in the process); the member reference
  /// survives for source compatibility with older tests.
  using IoHooks = support::IoHooks;
  static IoHooks& io;

 private:
  struct Conn {
    int fd = -1;
    std::string in;
    std::string out;
    // Read side closed (one-shot clients shutdown(SHUT_WR) after the
    // request); the connection stays until `out` drains.
    bool eof = false;
  };

  void handle_line(Conn& c, const std::string& line);
  static bool flush(Conn& c);  // false => connection dead

  /// Guard against a client streaming garbage without a newline.
  static constexpr std::size_t kMaxLine = 4096;
  /// Cap on per-connection buffered output. A client that stops reading
  /// (a wedged `scriptctl watch`) would otherwise grow `out` by one
  /// payload per safepoint, without bound; past the cap the connection
  /// is shed instead.
  static constexpr std::size_t kMaxOut = 1u << 20;  // 1 MiB

  int listen_fd_ = -1;
  std::string path_;
  std::map<std::string, Handler> handlers_;
  std::vector<Conn> conns_;
  std::uint64_t requests_ = 0;
  std::uint64_t sheds_ = 0;
};

}  // namespace script::runtime
