// Wire — tagged fiber messaging over a Transport.
//
// csp::Net gives fibers synchronous rendezvous INSIDE one scheduler;
// Wire gives them asynchronous tagged messages BETWEEN schedulers
// (other processes over TcpTransport, other SimTransport endpoints in
// the CI twin). A fiber posts `(peer, tag, payload)` and parks in
// recv(tag) until a matching message arrives — the blocking shape of
// an entry call, the delivery guarantees of a datagram over TCP.
//
// The bridge between real sockets and virtual time is the PUMP FIBER:
//
//   while (!stopping) {
//     supervisor.tick();            // heartbeats, suspicion (virtual)
//     transport.service();          // non-blocking I/O pump
//     if (transport.poll(deliver) == 0)
//       transport.wait_io(tick_us); // idle: real-block in epoll_wait
//     sched.sleep_for(1);           // advance the virtual clock
//   }
//
// Over TCP the wait_io call paces the virtual clock at >= tick_us real
// time per tick when idle (and full speed under load), so heartbeat
// and suspicion intervals written in ticks mean real time too. Over
// the sim backend wait_io is a no-op and the same loop is a pure
// discrete-event process — the scheduler stays deterministic because
// nothing the pump observes feeds back into dispatch order, exactly
// the DebugEndpoint argument.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "runtime/scheduler.hpp"
#include "runtime/peer_supervisor.hpp"
#include "runtime/transport.hpp"

namespace script::runtime {

struct WireOptions {
  int tick_us = 500;  // real-time floor per idle virtual tick (TCP)
  std::size_t max_mailbox_bytes = 1u << 20;  // undrained-message cap
};

class Wire {
 public:
  using Options = WireOptions;

  static constexpr std::uint64_t kNoTimeout = static_cast<std::uint64_t>(-1);

  struct Msg {
    PeerId from = kNoPeer;
    std::string tag;
    std::string payload;
  };

  /// `sup` (optional) gets tick() called from the pump loop; pass the
  /// PeerSupervisor that `transport` stacks over.
  Wire(Scheduler& sched, Transport& transport,
       PeerSupervisor* sup = nullptr, Options opts = Options());
  ~Wire();

  /// Spawn the pump fiber. The transport's clock is pointed at the
  /// scheduler's.
  void start();
  /// Ask the pump fiber to exit at its next iteration (the scheduler
  /// only finishes a run() when every fiber does).
  void stop();

  /// Fire-and-forget: send `payload` under `tag` to `to`. False when
  /// the transport shed the frame (bounded queue / gone peer).
  bool post(PeerId to, const std::string& tag, const std::string& payload);

  /// Park until a message tagged `tag` arrives (from `from`, or from
  /// anyone when kNoPeer). Returns false on timeout or wire shutdown.
  bool recv(const std::string& tag, Msg* out,
            std::uint64_t timeout_ticks = kNoTimeout,
            PeerId from = kNoPeer);

  /// Messages accepted but not yet recv()'d (for drain assertions).
  std::size_t queued() const { return queued_; }
  std::uint64_t messages_shed() const { return shed_; }
  bool running() const { return pump_ != kNoProcess && !stopping_; }

  /// Tag codec for one frame: [u32 tag_len][tag][payload].
  static std::string encode(const std::string& tag,
                            const std::string& payload);
  static bool decode(const std::string& frame, std::string* tag,
                     std::string* payload);

 private:
  struct Waiter {
    std::string tag;
    PeerId from;
    Msg* out;
    ProcessId pid;
    bool filled = false;
  };

  void deliver(PeerId from, std::string&& frame);
  void pump();

  Scheduler* sched_;
  Transport* transport_;
  PeerSupervisor* sup_;
  Options opts_;
  ProcessId pump_ = kNoProcess;
  bool stopping_ = false;
  std::deque<Msg> mailbox_;
  std::size_t mailbox_bytes_ = 0;
  std::size_t queued_ = 0;
  std::uint64_t shed_ = 0;
  std::deque<Waiter*> waiters_;
};

}  // namespace script::runtime
