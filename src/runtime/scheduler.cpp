#include "runtime/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include <unistd.h>

#include "obs/causal.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/inspector.hpp"
#include "obs/json.hpp"
#include "obs/log_bridge.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_export.hpp"
#include "runtime/debug_endpoint.hpp"
#include "runtime/parallel.hpp"
#include "runtime/sanitizer_fiber.hpp"
#include "support/panic.hpp"

namespace script::runtime {

std::string describe(const RunResult& result, const Scheduler& sched) {
  std::string out;
  switch (result.outcome) {
    case RunResult::Outcome::AllDone:
      out = "all fibers completed";
      break;
    case RunResult::Outcome::Deadlock:
      out = "DEADLOCK";
      break;
    case RunResult::Outcome::StepLimit:
      out = "stopped at step limit";
      break;
  }
  out += " (steps=" + std::to_string(result.steps) +
         ", virtual time=" + std::to_string(result.final_time) + ")";
  for (const auto& [pid, reason] : result.blocked) {
    out += "\n  blocked: " + sched.name_of(pid) + " — " + reason +
           " (last progress t=" + std::to_string(sched.last_progress(pid)) +
           ")";
    // The wait-for chain: who this fiber waits on, who THAT fiber waits
    // on, and so forth — the causal explanation of the deadlock, not a
    // flat event dump. A repeated fiber closes the chain as a cycle.
    std::vector<ProcessId> seen{pid};
    ProcessId at = sched.waiting_on(pid);
    while (at != kNoProcess) {
      const bool cycle =
          std::find(seen.begin(), seen.end(), at) != seen.end();
      out += "\n    waits for " + sched.name_of(at);
      if (cycle) {
        out += "  [cycle]";
        break;
      }
      if (sched.state_of(at) == FiberState::Blocked) {
        const ProcessId next = sched.waiting_on(at);
        if (next == kNoProcess) break;
        seen.push_back(at);
        at = next;
      } else {
        break;
      }
    }
  }
  if (result.outcome != RunResult::Outcome::AllDone) {
    const std::string sections = sched.report_sections();
    if (!sections.empty()) {
      // Indent each section line under the report body.
      out += "\n  ";
      for (const char c : sections) {
        out += c;
        if (c == '\n') out += "  ";
      }
    }
  }
  return out;
}

Scheduler::Scheduler(SchedulerOptions opts)
    : opts_(opts), rng_(opts.seed), stack_pool_(opts.stack_pool_max_idle) {
  bus_.set_clock([this] { return static_cast<std::uint64_t>(now_); });
  // The prose TraceLog is a bus subscriber: script-layer milestones are
  // published once and worded here, keeping log and exporters in sync.
  obs::install_script_log_bridge(
      bus_, trace_, [this](obs::Pid p) { return name_of(p); });
  if (opts_.event_history != 0) bus_.set_history(opts_.event_history);
  if (opts_.workers > 0) {
    // M:N work-stealing backend. Workers publish and recycle stacks
    // concurrently, so the bus and pool switch to their locked modes.
    bus_.set_threaded(true);
    stack_pool_.set_threaded(true);
    parallel_ = std::make_unique<ParallelRuntime>(
        *this, opts_.workers,
        opts_.group_quantum == 0 ? 128 : opts_.group_quantum);
  }
  if (const char* path = std::getenv("SCRIPT_TRACE");
      path != nullptr && *path != '\0' && opts_.workers == 0) {
    // Tracing needs causal tracking, which the parallel mode rejects —
    // env-armed tracing quietly stays off there.
    enable_tracing();
    trace_path_ = path;
  }
  if (const char* base = std::getenv("SCRIPT_FLIGHT");
      base != nullptr && *base != '\0') {
    // Parallel test shards share the env var: suffix the dump base with
    // pid and a per-process sequence so artifacts never collide.
    static int flight_seq = 0;
    obs::FlightRecorderOptions fopts;
    fopts.dump_path = std::string(base) + "-" + std::to_string(getpid()) +
                      "-" + std::to_string(flight_seq++);
    arm_flight_recorder(std::move(fopts));
  }
  if (const char* base = std::getenv("SCRIPT_TIMELINE");
      base != nullptr && *base != '\0') {
    // Same collision discipline as SCRIPT_FLIGHT. Dumps fire only on
    // failure escalations, so a green test run leaves no files behind.
    static int timeline_seq = 0;
    obs::TimelineOptions topts;
    topts.dump_path = std::string(base) + "-" + std::to_string(getpid()) +
                      "-" + std::to_string(timeline_seq++);
    arm_timeline(std::move(topts));
  }
  if (const char* path = std::getenv("SCRIPT_DEBUG_SOCK");
      path != nullptr && *path != '\0') {
    // First scheduler in the process gets the exact path (the common
    // case a human attaches to); later ones get numbered siblings.
    static int sock_seq = 0;
    const int n = sock_seq++;
    const std::string p =
        n == 0 ? std::string(path)
               : std::string(path) + "." + std::to_string(n);
    if (!arm_debug_endpoint(p))
      std::fprintf(stderr, "SCRIPT_DEBUG_SOCK: could not bind %s\n",
                   p.c_str());
  }
}

Scheduler::~Scheduler() {
  if (exporter_ != nullptr && !trace_path_.empty()) {
    // Several schedulers in one process (tests) get numbered files.
    static int seq = 0;
    const int n = seq++;
    const std::string path =
        n == 0 ? trace_path_ : trace_path_ + "." + std::to_string(n);
    if (!write_trace(path))
      std::fprintf(stderr, "SCRIPT_TRACE: could not write %s\n",
                   path.c_str());
  }
  // Stop the worker threads before anything they might touch goes away.
  parallel_.reset();
  // Destroy fibers before implicit member teardown: a fiber body may own
  // the last reference to an object whose destructor calls back into the
  // scheduler (csp::Net deregisters its crash hook), and crash_hooks_ —
  // declared after fibers_ — would otherwise already be gone.
  fibers_.clear();
}

obs::TraceExporter& Scheduler::enable_tracing() {
  if (exporter_ == nullptr) {
    // A timeline without happens-before arrows is half a timeline:
    // tracing implies causal tracking.
    enable_causal_tracking();
    exporter_ = std::make_unique<obs::TraceExporter>(bus_);
    exporter_->set_fiber_namer(
        [this](obs::Pid p) { return name_of(p); });
  }
  return *exporter_;
}

void Scheduler::enable_causal_tracking() {
  if (causal_ != nullptr) return;
  causal_ = std::make_unique<obs::CausalTracker>(bus_);
  bus_.set_stamper([this](obs::Event& e) { causal_->stamp(e); });
}

void Scheduler::causal_edge(ProcessId from, ProcessId to,
                            const char* what) {
  if (causal_ != nullptr) causal_->on_edge(from, to, what);
}

obs::FlightRecorder& Scheduler::arm_flight_recorder() {
  return arm_flight_recorder(obs::FlightRecorderOptions{});
}

obs::FlightRecorder& Scheduler::arm_flight_recorder(
    obs::FlightRecorderOptions opts) {
  if (flight_ == nullptr) {
    flight_ = std::make_unique<obs::FlightRecorder>(bus_, std::move(opts));
    flight_->set_fiber_namer([this](obs::Pid p) { return name_of(p); });
  }
  return *flight_;
}

obs::HealthMonitor& Scheduler::enable_health() {
  if (health_ == nullptr) {
    health_ = std::make_unique<obs::HealthMonitor>(bus_);
    add_report_section([this] { return health_->report(); });
    // Burn-rate windows live on the timeline; wire it in whichever
    // order the two were enabled.
    if (timeline_ != nullptr) health_->set_timeline(timeline_.get());
  }
  return *health_;
}

obs::Timeline& Scheduler::arm_timeline() {
  return arm_timeline(obs::TimelineOptions{});
}

obs::Timeline& Scheduler::arm_timeline(obs::TimelineOptions opts) {
  if (timeline_ == nullptr) {
    timeline_ = std::make_unique<obs::Timeline>(bus_, std::move(opts));
    timeline_->set_clock([this] { return static_cast<std::uint64_t>(now_); });
    timeline_->set_lane_namer(
        [this](std::int32_t lane) { return bus_.lane_name(lane); });
    if (health_ != nullptr) health_->set_timeline(timeline_.get());
  }
  return *timeline_;
}

bool Scheduler::write_timeline(const std::string& path) const {
  return timeline_ != nullptr && timeline_->write(path);
}

obs::Inspector& Scheduler::inspector() {
  if (inspector_ == nullptr) {
    inspector_ = std::make_unique<obs::Inspector>();
    attach_inspector(*inspector_);
  }
  return *inspector_;
}

void Scheduler::service_debug() {
  if (debug_ != nullptr) debug_->service();
}

bool Scheduler::arm_debug_endpoint(const std::string& path) {
  if (debug_ != nullptr) return debug_->listening();
  arm_timeline();  // `timeline`/`events` requests need it recording
  debug_ = std::make_unique<DebugEndpoint>();
  if (!debug_->listen(path)) {
    debug_.reset();
    return false;
  }
  register_debug_handlers();
  return true;
}

void Scheduler::register_debug_handlers() {
  debug_->register_handler(
      "ping", [](const std::string&, std::string*) -> std::string {
        return "pong\n";
      });
  debug_->register_handler(
      "inspect", [this](const std::string&, std::string*) {
        return inspector().snapshot_json();
      });
  debug_->register_handler(
      "timeline", [this](const std::string&, std::string*) {
        return timeline_->dump_json();
      });
  debug_->register_handler(
      "events", [this](const std::string& args, std::string* err) {
        std::size_t n = 64;
        if (!args.empty()) {
          char* end = nullptr;
          const unsigned long v = std::strtoul(args.c_str(), &end, 10);
          if (end == nullptr || *end != '\0') {
            *err = "usage: events [count]";
            return std::string();
          }
          n = static_cast<std::size_t>(v);
        }
        return timeline_->recent_json(n);
      });
  debug_->register_handler(
      "metrics", [this](const std::string&, std::string*) {
        // Assembled on demand — an armed-but-unscraped endpoint keeps
        // zero metrics machinery running between requests.
        obs::MetricsRegistry reg;
        reg.gauge("scheduler.virtual_time", static_cast<double>(now_));
        reg.gauge("scheduler.steps", static_cast<double>(steps_));
        reg.gauge("scheduler.live_fibers", static_cast<double>(live_));
        reg.gauge("scheduler.ready", static_cast<double>(ready_.size()));
        reg.gauge("scheduler.timers", static_cast<double>(timers_.size()));
        if (parallel_ != nullptr) {
          reg.gauge("scheduler.workers",
                    static_cast<double>(parallel_->workers()));
          reg.gauge("scheduler.steals",
                    static_cast<double>(parallel_->steals()));
        }
        auto& served = reg.counter("debug.requests_served");
        if (debug_->requests_served() > served.value())
          served.inc(debug_->requests_served() - served.value());
        if (debug_->connections_shed() != 0) {
          auto& shed = reg.counter("debug.connections_shed");
          shed.inc(debug_->connections_shed() - shed.value());
        }
        if (timeline_ != nullptr) timeline_->export_metrics(reg);
        if (flight_ != nullptr) flight_->export_metrics(reg);
        if (health_ != nullptr) {
          auto& c = reg.counter("health.violations");
          const std::uint64_t v = health_->violations();
          if (v > c.value()) c.inc(v - c.value());
        }
        reg.import_tracelog_truncation(trace_);
        return reg.expose_prometheus();
      });
  debug_->register_handler(
      "health", [this](const std::string&, std::string*) {
        if (health_ == nullptr) return std::string("health monitor off\n");
        const std::string report = health_->report();
        return report.empty() ? std::string("healthy\n") : report + "\n";
      });
}

std::string Scheduler::snapshot_json() const {
  obs::json::Writer w;
  w.object();
  w.key("now").value(static_cast<std::uint64_t>(now_));
  w.key("steps").value(static_cast<std::uint64_t>(steps_));
  w.key("spawned").value(static_cast<std::uint64_t>(fibers_.size()));
  w.key("live").value(static_cast<std::uint64_t>(live_));
  w.key("ready").value(static_cast<std::uint64_t>(ready_.size()));
  w.key("timers").value(static_cast<std::uint64_t>(timers_.size()));
  w.key("stale_timers").value(static_cast<std::uint64_t>(stale_timers_));
  // Overload counters appear only once the machinery has fired, so
  // snapshots of runs that never arm it are unchanged.
  if (deadline_cancels_ != 0)
    w.key("deadline_cancels").value(deadline_cancels_);
  if (budget_cancels_ != 0) w.key("budget_cancels").value(budget_cancels_);
  if (parallel_ != nullptr) {
    w.key("workers").value(static_cast<std::uint64_t>(parallel_->workers()));
    w.key("steals").value(parallel_->steals());
  }
  w.key("fibers").array();
  const std::size_t fiber_count = fibers_.size();
  for (std::size_t i = 0; i < fiber_count; ++i) {
    const Fiber& f = fibers_[i];
    // Finished fibers say nothing about what the system is doing now —
    // except crashed ones, which are exactly what an inspector wants.
    if (f.state() == FiberState::Done && !f.crashed()) continue;
    w.object();
    w.key("pid").value(static_cast<std::uint64_t>(f.id()));
    w.key("name").value(f.name());
    w.key("state").value(fiber_state_name(f.state()));
    if (!f.block_reason().empty()) w.key("reason").value(f.block_reason());
    if (f.waiting_on() != kNoProcess)
      w.key("waiting_on").value(static_cast<std::uint64_t>(f.waiting_on()));
    w.key("last_progress").value(f.last_progress());
    w.key("blocked_ticks").value(f.blocked_ticks());
    w.key("slept_ticks").value(f.slept_ticks());
    if (f.crashed()) w.key("crashed").value(true);
    if (f.cancelled()) w.key("cancelled").value(true);
    if (f.deadline() != kNoDeadline) w.key("deadline").value(f.deadline());
    // Remaining budgets, present only while armed (run_admitted clears
    // them when the role body ends).
    if (f.steps_left_ != kNoDeadline)
      w.key("steps_left").value(f.steps_left_);
    if (f.tick_budget_due_ != kNoDeadline)
      w.key("tick_budget_due").value(f.tick_budget_due_);
    w.end();
  }
  w.end().end();
  return w.str();
}

std::size_t Scheduler::attach_inspector(obs::Inspector& inspector) {
  inspector.set_clock([this] { return static_cast<std::uint64_t>(now_); });
  return inspector.attach("scheduler",
                          [this] { return snapshot_json(); });
}

bool Scheduler::write_trace(const std::string& path) const {
  if (exporter_ == nullptr) return false;
  // Stamp provenance metadata at write time (set_metadata upserts, so
  // repeated writes stay consistent). truncated_events > 0 flags that
  // the prose TraceLog's ring dropped entries — the exported timeline
  // itself is complete, but the companion log is not.
  exporter_->set_metadata("truncated_events",
                          static_cast<double>(trace_.evicted()));
  exporter_->set_metadata("virtual_time", static_cast<double>(now_));
  return exporter_->write(path);
}

ProcessId Scheduler::spawn(std::string name, std::function<void()> body) {
  return spawn_in_group(kInheritGroup, std::move(name), std::move(body));
}

GroupId Scheduler::new_group() {
  if (parallel_ != nullptr) return parallel_->new_group();
  return det_next_group_++;
}

ProcessId Scheduler::spawn_in_group(GroupId gid, std::string name,
                                    std::function<void()> body) {
  if (parallel_ != nullptr)
    return parallel_->spawn(gid, std::move(name), std::move(body));
  const auto pid = static_cast<ProcessId>(fibers_.size());
  auto f = std::make_unique<Fiber>(pid, std::move(name), std::move(body),
                                   stack_pool_.acquire(opts_.stack_bytes));
  f->scheduler_ = this;
  fibers_.push(std::move(f));
  // Deterministic mode records the placement (so group_of answers the
  // same in both modes) but schedules globally, as it always has.
  if (gid == kInheritGroup)
    gid = current_ != kNoProcess ? det_group_of_[current_] : 0;
  SCRIPT_ASSERT(gid < det_next_group_, "spawn_in_group: unknown group");
  det_group_of_.push_back(gid);
  ++live_;
  ready_push(fiber(pid));
  if (bus_.wants(obs::Subsystem::Scheduler))
    bus_.publish({obs::EventKind::Instant, obs::Subsystem::Scheduler,
                  obs::kAutoTime, pid, obs::kNoLane, "spawn",
                  fiber(pid).name()});
  return pid;
}

GroupId Scheduler::group_of(ProcessId pid) const {
  if (parallel_ != nullptr) return parallel_->group_of(pid);
  SCRIPT_ASSERT(pid < det_group_of_.size(), "unknown process id");
  return det_group_of_[pid];
}

std::size_t Scheduler::worker_count() const {
  return parallel_ != nullptr ? parallel_->workers() : 0;
}

std::uint64_t Scheduler::steal_count() const {
  return parallel_ != nullptr ? parallel_->steals() : 0;
}

RunResult Scheduler::run() {
  if (parallel_ != nullptr) return parallel_->run();
  SCRIPT_ASSERT(!running_, "Scheduler::run is not reentrant");
  running_ = true;
  // The deterministic loop's TSan identity, for fiber-switch
  // annotations (no-op outside TSan builds).
  if (main_exec_.tsan_ctx == nullptr)
    main_exec_.tsan_ctx = sanitizer::tsan_current_context();
  RunResult result;
  std::uint64_t dispatched = 0;
  service_debug();  // safepoint: catch up with clients before dispatching

  for (;;) {
    // Safepoint: a busy loop that never parks (so the clock never
    // advances) still answers `scriptctl top` every few dozen steps.
    if ((dispatched & 63) == 0) service_debug();
    // Same-instant ordering: deadlines before faults ("cancel beats
    // crash"); timers already beat both because advance_clock pops them
    // before firing either.
    if (!deadlines_.empty()) fire_due_deadlines();
    if (fault_plan_ != nullptr) fire_due_faults();
    if (opts_.max_steps_per_run != 0 &&
        dispatched >= opts_.max_steps_per_run) {
      result.outcome = RunResult::Outcome::StepLimit;
      break;
    }
    if (ready_.empty() && !advance_clock()) break;
    if (ready_.empty()) continue;  // clock advance may wake sleepers only

    const ProcessId pid = pick_next();
    Fiber& f = fiber(pid);
    SCRIPT_ASSERT(f.state() == FiberState::Ready,
                  "scheduled fiber not ready: " + f.name());
    if (f.pending_stall_ticks_ > 0) {
      // An injected stall: the fiber loses its turn and freezes for the
      // stall duration (virtual time), then becomes runnable again.
      const std::uint64_t ticks = f.pending_stall_ticks_;
      f.pending_stall_ticks_ = 0;
      f.set_state(FiberState::Sleeping);
      f.sleep_start_ = now_;
      arm_timer(f, now_ + ticks);
      // Open the sleeping span (its SpanEnd was already published on
      // wake, leaving stall spans unbalanced before this).
      if (bus_.wants(obs::Subsystem::Scheduler))
        bus_.publish({obs::EventKind::SpanBegin, obs::Subsystem::Scheduler,
                      obs::kAutoTime, pid, obs::kNoLane, "sleeping",
                      "(stalled)", static_cast<double>(ticks)});
      continue;
    }
    if (f.steps_left_ != kNoDeadline) {
      if (f.steps_left_ == 0) {
        // Step budget spent: this dispatch delivers BudgetExceeded
        // (thrown from switch_out on the fiber's own stack) instead of
        // running the body.
        f.steps_left_ = kNoDeadline;
        f.cancel_pending_ = Fiber::PendingCancel::StepBudget;
        f.cancel_payload_ = f.step_limit_;
        note_cancel_fired(f, Fiber::PendingCancel::StepBudget,
                          f.step_limit_);
      } else {
        --f.steps_left_;
      }
    }
    f.set_state(FiberState::Running);
    f.last_progress_ = now_;
    current_ = pid;
    ++steps_;
    ++dispatched;
    if (causal_ != nullptr) causal_->on_dispatch(pid);
    if (bus_.wants(obs::Subsystem::Scheduler))
      bus_.publish({obs::EventKind::Instant, obs::Subsystem::Scheduler,
                    obs::kAutoTime, pid, obs::kNoLane, "dispatch", "",
                    static_cast<double>(steps_)});
    switch_to(f);
    current_ = kNoProcess;
    if (causal_ != nullptr) causal_->on_scheduler_loop();

    if (f.state() == FiberState::Done) {
      if (f.crashed()) finish_crash(f);
      // Back on the scheduler stack: the fiber's stack is no longer in
      // use and can be recycled for the next spawn.
      reclaim_stack(f);
      if (f.failure()) {
        running_ = false;
        std::rethrow_exception(f.failure());
      }
    }
  }

  running_ = false;
  result.final_time = now_;
  result.steps = steps_;
  if (result.outcome == RunResult::Outcome::StepLimit) return result;
  const std::size_t fiber_count = fibers_.size();
  for (std::size_t i = 0; i < fiber_count; ++i) {
    const Fiber& f = fibers_[i];
    if (f.state() == FiberState::Blocked)
      result.blocked.emplace_back(f.id(), f.block_reason());
    SCRIPT_ASSERT(f.state() != FiberState::Sleeping,
                  "sleeper left behind after clock drained");
  }
  result.outcome = result.blocked.empty() ? RunResult::Outcome::AllDone
                                          : RunResult::Outcome::Deadlock;
  if (result.outcome == RunResult::Outcome::Deadlock) {
    // Announce before dumping so the marker lands in the black box.
    if (bus_.wants(obs::Subsystem::Scheduler))
      bus_.publish({obs::EventKind::Instant, obs::Subsystem::Scheduler,
                    obs::kAutoTime, obs::kNoPid, obs::kNoLane, "deadlock",
                    "", static_cast<double>(result.blocked.size())});
    if (flight_ != nullptr) flight_->trigger_dump("deadlock");
    if (timeline_ != nullptr) timeline_->trigger_dump("deadlock");
  }
  service_debug();  // safepoint: drain any last requests before returning
  return result;
}

void Scheduler::yield() {
  Fiber& f = fiber(current());
  if (parallel_ != nullptr) {
    parallel_->yield(f);
    return;
  }
  f.set_state(FiberState::Ready);
  ready_push(f);
  switch_out(f);
}

void Scheduler::block(const std::string& reason, ProcessId waiting_on) {
  Fiber& f = fiber(current());
  if (parallel_ != nullptr) {
    parallel_->block(f, reason, waiting_on);
    return;
  }
  check_cancel(f);  // blocking primitives are cancellation points
  f.set_state(FiberState::Blocked);
  f.set_block_reason(reason);
  f.block_start_ = now_;
  f.waiting_on_ = waiting_on;
  if (bus_.wants(obs::Subsystem::Scheduler))
    bus_.publish({obs::EventKind::SpanBegin, obs::Subsystem::Scheduler,
                  obs::kAutoTime, f.id(), obs::kNoLane, "blocked", reason});
  switch_out(f);
}

void Scheduler::sleep_for(std::uint64_t ticks) {
  Fiber& f = fiber(current());
  if (parallel_ != nullptr) {
    parallel_->sleep_for(f, ticks);
    return;
  }
  check_cancel(f);
  if (ticks == 0) {
    yield();
    return;
  }
  f.set_state(FiberState::Sleeping);
  f.sleep_start_ = now_;
  arm_timer(f, now_ + ticks);
  if (bus_.wants(obs::Subsystem::Scheduler))
    bus_.publish({obs::EventKind::SpanBegin, obs::Subsystem::Scheduler,
                  obs::kAutoTime, f.id(), obs::kNoLane, "sleeping", "",
                  static_cast<double>(ticks)});
  switch_out(f);
}

bool Scheduler::block_with_timeout(const std::string& reason,
                                   std::uint64_t ticks,
                                   std::function<void()> on_timeout,
                                   ProcessId waiting_on) {
  Fiber& f = fiber(current());
  if (parallel_ != nullptr)
    return parallel_->block_with_timeout(f, reason, ticks,
                                         std::move(on_timeout), waiting_on);
  if (f.cancel_pending_ != Fiber::PendingCancel::None ||
      now_ >= f.deadline_ || now_ >= f.tick_budget_due_) {
    // Cancelling at entry: run the caller's self-clean hook first, just
    // as a timeout or kill firing an instant after the park would, so
    // the wait-list registration never outlives the wait.
    if (on_timeout) on_timeout();
    check_cancel(f);  // throws
  }
  f.set_state(FiberState::Blocked);
  f.set_block_reason(reason);
  f.block_start_ = now_;
  f.waiting_on_ = waiting_on;
  f.timed_out_ = false;
  f.timeout_cleanup_ = std::move(on_timeout);
  arm_timer(f, now_ + ticks);
  if (bus_.wants(obs::Subsystem::Scheduler))
    bus_.publish({obs::EventKind::SpanBegin, obs::Subsystem::Scheduler,
                  obs::kAutoTime, f.id(), obs::kNoLane, "blocked", reason,
                  static_cast<double>(ticks)});
  switch_out(f);
  return f.timed_out_;
}

void Scheduler::join(ProcessId pid) {
  SCRIPT_ASSERT(pid < fibers_.size(), "join: unknown process");
  if (parallel_ != nullptr) {
    parallel_->join(fiber(current()), pid);
    return;
  }
  if (fiber(pid).state() == FiberState::Done) return;
  // Cancel before registering: a joiner that unwound at block() entry
  // would leave a joiners_ entry behind, and a caught cancellation
  // could re-block the fiber elsewhere before the target finishes.
  check_cancel(fiber(current()));
  fiber(pid).joiners_.push_back(current());
  block("joining " + fiber(pid).name(), pid);
}

void Scheduler::unblock(ProcessId pid) {
  if (parallel_ != nullptr) {
    parallel_->unblock(pid);
    return;
  }
  Fiber& f = fiber(pid);
  SCRIPT_ASSERT(f.state() == FiberState::Blocked,
                "unblock on non-blocked fiber " + f.name());
  f.set_state(FiberState::Ready);
  f.set_block_reason("");
  f.blocked_ticks_ += now_ - f.block_start_;
  f.waiting_on_ = kNoProcess;
  f.timed_out_ = false;
  f.timeout_cleanup_ = nullptr;  // woken normally: waker consumed the entry
  note_stale_timer(f);
  ++f.wake_gen_;  // any timeout timer armed for this block is now stale
  ready_push(f);
  // Every wake that flows through here — CSP rendezvous, Ada hand-off,
  // monitor admission, wait-queue notify, enrollment release — is a
  // happens-before edge from the running fiber to the woken one.
  if (causal_ != nullptr && current_ != kNoProcess && current_ != pid)
    causal_->on_edge(current_, pid);
  if (bus_.wants(obs::Subsystem::Scheduler))
    bus_.publish({obs::EventKind::SpanEnd, obs::Subsystem::Scheduler,
                  obs::kAutoTime, pid, obs::kNoLane, "blocked", ""});
}

void Scheduler::wake_at(ProcessId pid, std::uint64_t ticks_from_now) {
  if (parallel_ != nullptr) {
    parallel_->wake_at(pid, ticks_from_now);
    return;
  }
  if (ticks_from_now == 0) {
    unblock(pid);
    return;
  }
  Fiber& f = fiber(pid);
  SCRIPT_ASSERT(f.state() == FiberState::Blocked,
                "wake_at on non-blocked fiber " + f.name());
  f.set_state(FiberState::Sleeping);
  f.set_block_reason("");
  f.blocked_ticks_ += now_ - f.block_start_;
  f.sleep_start_ = now_;
  f.waiting_on_ = kNoProcess;
  f.timeout_cleanup_ = nullptr;  // woken normally: waker consumed the entry
  note_stale_timer(f);
  ++f.wake_gen_;  // invalidate any timeout armed for the old block
  arm_timer(f, now_ + ticks_from_now);
  // The edge is recorded at SEND time: the latency sleep that follows is
  // the message in flight, already caused by the sender.
  if (causal_ != nullptr && current_ != kNoProcess && current_ != pid)
    causal_->on_edge(current_, pid);
  if (bus_.wants(obs::Subsystem::Scheduler)) {
    bus_.publish({obs::EventKind::SpanEnd, obs::Subsystem::Scheduler,
                  obs::kAutoTime, pid, obs::kNoLane, "blocked", ""});
    bus_.publish({obs::EventKind::SpanBegin, obs::Subsystem::Scheduler,
                  obs::kAutoTime, pid, obs::kNoLane, "sleeping", "",
                  static_cast<double>(ticks_from_now)});
  }
}

ProcessId Scheduler::current() const {
  const ProcessId pid = parallel_ != nullptr
                            ? parallel_->current_on_this_thread()
                            : current_;
  SCRIPT_ASSERT(pid != kNoProcess, "operation requires a running fiber");
  return pid;
}

bool Scheduler::in_fiber() const {
  return (parallel_ != nullptr ? parallel_->current_on_this_thread()
                               : current_) != kNoProcess;
}

const std::string& Scheduler::name_of(ProcessId pid) const {
  return fiber(pid).name();
}

FiberState Scheduler::state_of(ProcessId pid) const {
  return fiber(pid).state();
}

std::size_t Scheduler::live_count() const { return live_; }

void Scheduler::trace_event(ProcessId subject, std::string what) {
  trace_.record(now_, name_of(subject), std::move(what));
}

Fiber& Scheduler::fiber(ProcessId pid) {
  SCRIPT_ASSERT(pid < fibers_.size(), "unknown process id");
  return fibers_[pid];
}

const Fiber& Scheduler::fiber(ProcessId pid) const {
  SCRIPT_ASSERT(pid < fibers_.size(), "unknown process id");
  return fibers_[pid];
}

void Scheduler::switch_to(ExecContext& from, Fiber& f) {
  // The fiber returns control to whoever dispatched it — in parallel
  // mode a stolen group's fibers resume the *stealing* worker.
  f.resume_ = &from;
  // TSan must learn about the stack change or it reports every
  // fiber-to-fiber data hand-off as a race (no-ops outside TSan).
  if (f.tsan_ctx_ == nullptr)
    f.tsan_ctx_ = sanitizer::tsan_create_context();
  sanitizer::tsan_switch(f.tsan_ctx_);
  sanitizer::start_switch(&from.asan_fake_stack, f.stack_.base(),
                          f.stack_.size());
  swapcontext(&from.ctx, &f.context_);
  sanitizer::finish_switch(from.asan_fake_stack, nullptr, nullptr);
}

void Scheduler::fiber_entered(Fiber& f) {
  // First entry has no saved fake stack (null); resumptions restore the
  // one saved at the matching start_switch in switch_out. Either way the
  // "from" bounds are the dispatching context's own stack — record them
  // for the switch back (per-context they never change; each dispatching
  // loop stays put on its own thread).
  sanitizer::finish_switch(f.asan_fake_stack_, &f.resume_->stack_bottom,
                           &f.resume_->stack_size);
}

void Scheduler::switch_out(Fiber& f) {
  ExecContext& to = *f.resume_;
  sanitizer::tsan_switch(to.tsan_ctx);
  // A Done fiber will never run again: hand ASan a null save slot so it
  // retires the fiber's fake stack instead of keeping it for a resume.
  sanitizer::start_switch(
      f.state() == FiberState::Done ? nullptr : &f.asan_fake_stack_,
      to.stack_bottom, to.stack_size);
  swapcontext(&f.context_, &to.ctx);
  sanitizer::finish_switch(f.asan_fake_stack_, nullptr, nullptr);
  if (f.kill_pending_) {
    // A FaultPlan crash fired while we were parked: unwind this fiber's
    // stack so every RAII registration guard deregisters.
    f.kill_pending_ = false;
    throw FiberKilled{f.id()};
  }
  if (f.cancel_pending_ != Fiber::PendingCancel::None) {
    // A deadline/budget cancellation fired while we were parked (or a
    // step budget expired at this dispatch): unwind like a kill, but
    // with the catchable typed exception.
    throw_cancel(f);
  }
}

void Scheduler::on_fiber_done(Fiber& f) {
  --live_;
  // Parallel mode: the worker drains joiners under the group mutex when
  // it retires the fiber (ParallelRuntime::finish_done) — doing it here,
  // on the dying fiber's own stack, would race the joiner's fast path.
  if (parallel_ != nullptr) return;
  for (const ProcessId waiter : f.joiners_)
    if (fiber(waiter).state() == FiberState::Blocked) unblock(waiter);
  f.joiners_.clear();
}

void Scheduler::ready_push(Fiber& f) {
  SCRIPT_ASSERT(!f.in_ready_, "fiber already on the ready queue");
  f.in_ready_ = true;
  ready_.push(f.id());
}

void Scheduler::arm_timer(Fiber& f, std::uint64_t due) {
  maybe_purge_timers();
  timers_.push(Timer{due, timer_seq_++, f.id(), f.wake_gen_});
  f.timer_armed_ = true;
}

void Scheduler::note_stale_timer(Fiber& f) {
  if (!f.timer_armed_) return;
  f.timer_armed_ = false;
  ++stale_timers_;
}

void Scheduler::maybe_purge_timers() {
  // Purge only once stale entries both exceed a floor (small heaps are
  // cheap to carry) and dominate the heap, so the rebuild amortizes to
  // O(1) per armed timer. Runs only from arm sites — never inside the
  // advance_clock pop loop.
  if (stale_timers_ <= 64 || stale_timers_ * 2 <= timers_.size()) return;
  std::vector<Timer>& raw = timers_.raw();
  raw.erase(std::remove_if(raw.begin(), raw.end(),
                           [this](const Timer& t) {
                             return t.gen != fiber(t.pid).wake_gen_;
                           }),
            raw.end());
  std::make_heap(raw.begin(), raw.end(), std::greater<>{});
  stale_timers_ = 0;
}

void Scheduler::reclaim_stack(Fiber& f) {
  SCRIPT_ASSERT(current_ == kNoProcess,
                "stack reclaim must run from the scheduler loop");
  sanitizer::tsan_destroy_context(f.tsan_ctx_);
  f.tsan_ctx_ = nullptr;
  if (f.stack_.valid()) stack_pool_.release(f.release_stack());
}

void Scheduler::install_fault_plan(FaultPlan plan) {
  fault_plan_ = std::make_unique<FaultPlan>(std::move(plan));
}

std::uint64_t Scheduler::add_crash_hook(std::function<void(ProcessId)> fn) {
  const std::uint64_t id = next_crash_hook_id_++;
  crash_hooks_.emplace_back(id, std::move(fn));
  return id;
}

void Scheduler::remove_crash_hook(std::uint64_t id) {
  for (auto it = crash_hooks_.begin(); it != crash_hooks_.end(); ++it) {
    if (it->first == id) {
      crash_hooks_.erase(it);
      return;
    }
  }
}

std::uint64_t Scheduler::add_report_section(
    std::function<std::string()> fn) {
  const std::uint64_t id = next_report_section_id_++;
  report_sections_.emplace_back(id, std::move(fn));
  return id;
}

void Scheduler::remove_report_section(std::uint64_t id) {
  for (auto it = report_sections_.begin(); it != report_sections_.end();
       ++it) {
    if (it->first == id) {
      report_sections_.erase(it);
      return;
    }
  }
}

std::string Scheduler::report_sections() const {
  std::string out;
  for (const auto& [id, fn] : report_sections_) {
    std::string text = fn();
    if (text.empty()) continue;
    if (!out.empty()) out += "\n";
    out += text;
  }
  return out;
}

bool Scheduler::fire_due_faults() {
  if (fault_plan_ == nullptr) return false;
  bool fired_any = false;
  for (FaultPlan::ProcessFault& pf : fault_plan_->process_faults()) {
    if (pf.fired) continue;
    if (pf.by_time ? now_ < pf.at : steps_ < pf.at) continue;
    pf.fired = true;
    fired_any = true;
    Fiber& f = fiber(pf.pid);
    if (f.state() == FiberState::Done) continue;  // beat the fault to exit
    if (pf.kind == FaultPlan::ProcessFault::Kind::Crash) {
      if (bus_.wants(obs::Subsystem::Fault))
        bus_.publish({obs::EventKind::Instant, obs::Subsystem::Fault,
                      obs::kAutoTime, pf.pid, obs::kNoLane, "fault.crash",
                      f.name()});
      kill_now(f);
    } else {
      if (bus_.wants(obs::Subsystem::Fault))
        bus_.publish({obs::EventKind::Instant, obs::Subsystem::Fault,
                      obs::kAutoTime, pf.pid, obs::kNoLane, "fault.stall",
                      f.name(), static_cast<double>(pf.ticks)});
      f.pending_stall_ticks_ += pf.ticks;
    }
  }
  return fired_any;
}

void Scheduler::kill_now(Fiber& f) {
  SCRIPT_ASSERT(current_ == kNoProcess,
                "kill_now must run from the scheduler loop");
  if (f.in_ready_) {
    ready_.remove(f.id());
    f.in_ready_ = false;
  }
  // Self-clean any timed-wait registration exactly as a timeout would.
  if (f.timeout_cleanup_) {
    auto cleanup = std::move(f.timeout_cleanup_);
    f.timeout_cleanup_ = nullptr;
    cleanup();
  }
  // Close the victim's open park span before unwinding it, so causal
  // graphs never see a dangling blocked/sleeping span for a killed
  // fiber (the unwind below emits the layer-level close events; this is
  // the scheduler-level one). The elapsed part of the cut-short park
  // accrues to the matching ledger, so scheduler and causal attribution
  // agree on kill paths too.
  if (f.state() == FiberState::Blocked) {
    f.blocked_ticks_ += now_ - f.block_start_;
    if (bus_.wants(obs::Subsystem::Scheduler))
      bus_.publish({obs::EventKind::SpanEnd, obs::Subsystem::Scheduler,
                    obs::kAutoTime, f.id(), obs::kNoLane, "blocked",
                    "(killed)"});
  } else if (f.state() == FiberState::Sleeping) {
    f.slept_ticks_ += now_ - f.sleep_start_;
    if (bus_.wants(obs::Subsystem::Scheduler))
      bus_.publish({obs::EventKind::SpanEnd, obs::Subsystem::Scheduler,
                    obs::kAutoTime, f.id(), obs::kNoLane, "sleeping",
                    "(killed)"});
  }
  f.waiting_on_ = kNoProcess;
  note_stale_timer(f);
  ++f.wake_gen_;  // any armed timer is now stale
  f.set_block_reason("");
  f.kill_pending_ = true;
  f.set_state(FiberState::Running);
  current_ = f.id();
  // The unwind counts as a dispatch of the victim: events its RAII
  // guards publish while unwinding are stamped with the victim's clock.
  if (causal_ != nullptr) causal_->on_dispatch(f.id());
  // Switch in so the victim unwinds NOW — before any other fiber can
  // observe (and trip over) its stale rendezvous registrations.
  switch_to(f);
  current_ = kNoProcess;
  if (causal_ != nullptr) causal_->on_scheduler_loop();
  if (f.state() == FiberState::Done) {
    if (f.crashed()) finish_crash(f);
    reclaim_stack(f);
  }
  // else: death deferred — the victim re-parked mid-rendezvous (an Ada
  // caller whose call was already taken must wait out the acceptor);
  // the run loop finishes the crash when the fiber reaches Done.
}

void Scheduler::finish_crash(Fiber& f) {
  if (f.crash_notified_) return;
  f.crash_notified_ = true;
  if (bus_.wants(obs::Subsystem::Fault))
    bus_.publish({obs::EventKind::Instant, obs::Subsystem::Fault,
                  obs::kAutoTime, f.id(), obs::kNoLane, "fault.crashed",
                  f.name()});
  // Hooks may add/remove hooks (their own or each other's) while
  // running — e.g. an instance torn down inside one hook deregisters
  // another. Walk a snapshot by stable id and skip any hook that is no
  // longer registered when its turn comes: nothing is skipped by index
  // shifts and nothing runs twice. Hooks registered DURING the walk
  // deliberately don't see this crash (they did not exist when it
  // happened).
  const auto snapshot = crash_hooks_;
  for (const auto& [id, fn] : snapshot) {
    const bool still_registered =
        std::any_of(crash_hooks_.begin(), crash_hooks_.end(),
                    [id = id](const auto& h) { return h.first == id; });
    if (still_registered) fn(f.id());
  }
}

void Scheduler::set_deadline(ProcessId pid, std::uint64_t when) {
  Fiber& f = fiber(pid);
  f.deadline_ = when;
  // Clearing (or replacing) leaves any older heap entry stale; it is
  // discarded when it surfaces, like a stale timer.
  if (when != kNoDeadline)
    deadlines_.push(DeadlineEntry{when, deadline_seq_++, pid, false});
}

void Scheduler::set_step_budget(ProcessId pid, std::uint64_t steps) {
  SCRIPT_ASSERT(steps != kNoDeadline, "set_step_budget: reserved sentinel");
  Fiber& f = fiber(pid);
  f.steps_left_ = steps;
  f.step_limit_ = steps;
}

void Scheduler::clear_step_budget(ProcessId pid) {
  Fiber& f = fiber(pid);
  f.steps_left_ = kNoDeadline;
  f.step_limit_ = 0;
}

void Scheduler::set_tick_budget(ProcessId pid, std::uint64_t when,
                                std::uint64_t limit) {
  Fiber& f = fiber(pid);
  f.tick_budget_due_ = when;
  f.tick_budget_limit_ = limit;
  if (when != kNoDeadline)
    deadlines_.push(DeadlineEntry{when, deadline_seq_++, pid, true});
}

void Scheduler::clear_tick_budget(ProcessId pid) {
  Fiber& f = fiber(pid);
  f.tick_budget_due_ = kNoDeadline;
  f.tick_budget_limit_ = 0;
}

bool Scheduler::deadline_entry_live(const DeadlineEntry& e) const {
  const Fiber& f = fiber(e.pid);
  if (f.state() == FiberState::Done) return false;
  return (e.tick_budget ? f.tick_budget_due_ : f.deadline_) == e.due;
}

std::uint64_t Scheduler::next_deadline_due() {
  // Purge stale tops BEFORE reporting a due time: advancing the clock
  // to a cleared deadline would perturb health polls and virtual_time
  // events, breaking replay identity.
  while (!deadlines_.empty() && !deadline_entry_live(deadlines_.top()))
    deadlines_.pop();
  return deadlines_.empty() ? kNoTrigger : deadlines_.top().due;
}

bool Scheduler::fire_due_deadlines() {
  bool fired_any = false;
  while (!deadlines_.empty()) {
    const DeadlineEntry e = deadlines_.top();
    if (!deadline_entry_live(e)) {
      deadlines_.pop();
      continue;
    }
    if (e.due > now_) break;
    deadlines_.pop();
    Fiber& f = fiber(e.pid);
    if (f.state() == FiberState::Blocked ||
        f.state() == FiberState::Sleeping) {
      const auto kind = e.tick_budget ? Fiber::PendingCancel::TickBudget
                                      : Fiber::PendingCancel::Deadline;
      const std::uint64_t payload =
          e.tick_budget ? f.tick_budget_limit_ : e.due;
      if (e.tick_budget)
        f.tick_budget_due_ = kNoDeadline;
      else
        f.deadline_ = kNoDeadline;  // consumed
      note_cancel_fired(f, kind, payload);
      cancel_now(f, kind, payload);
      fired_any = true;
    }
    // else Ready: a same-instant wake (e.g. a rendezvous commit) beat
    // the deadline — the committed work wins. The fiber's slot stays
    // armed, so its next blocking-primitive entry delivers the
    // cancellation instead (exactly-one-winner, deterministically).
  }
  return fired_any;
}

void Scheduler::cancel_now(Fiber& f, Fiber::PendingCancel kind,
                           std::uint64_t payload) {
  SCRIPT_ASSERT(current_ == kNoProcess,
                "cancel_now must run from the scheduler loop");
  SCRIPT_ASSERT(f.state() == FiberState::Blocked ||
                    f.state() == FiberState::Sleeping,
                "cancel_now on a non-parked fiber");
  // Self-clean any timed-wait registration exactly as a timeout would.
  if (f.timeout_cleanup_) {
    auto cleanup = std::move(f.timeout_cleanup_);
    f.timeout_cleanup_ = nullptr;
    cleanup();
  }
  // Close the open park span and accrue its elapsed part to the wait
  // ledger, so causal attribution agrees on cancel paths (the kill_now
  // discipline with a "(cancelled)" marker).
  if (f.state() == FiberState::Blocked) {
    f.blocked_ticks_ += now_ - f.block_start_;
    if (bus_.wants(obs::Subsystem::Scheduler))
      bus_.publish({obs::EventKind::SpanEnd, obs::Subsystem::Scheduler,
                    obs::kAutoTime, f.id(), obs::kNoLane, "blocked",
                    "(cancelled)"});
  } else {
    f.slept_ticks_ += now_ - f.sleep_start_;
    if (bus_.wants(obs::Subsystem::Scheduler))
      bus_.publish({obs::EventKind::SpanEnd, obs::Subsystem::Scheduler,
                    obs::kAutoTime, f.id(), obs::kNoLane, "sleeping",
                    "(cancelled)"});
  }
  f.waiting_on_ = kNoProcess;
  note_stale_timer(f);
  ++f.wake_gen_;  // any armed timer is now stale
  f.set_block_reason("");
  f.cancel_pending_ = kind;
  f.cancel_payload_ = payload;
  f.set_state(FiberState::Running);
  current_ = f.id();
  if (causal_ != nullptr) causal_->on_dispatch(f.id());
  // Switch in so the victim unwinds (or catches) NOW — before any other
  // fiber can observe its stale rendezvous registrations.
  switch_to(f);
  current_ = kNoProcess;
  if (causal_ != nullptr) causal_->on_scheduler_loop();
  if (f.state() == FiberState::Done) {
    if (f.crashed()) finish_crash(f);
    reclaim_stack(f);
  }
  // else: the fiber caught the cancellation and re-parked (or went
  // Ready); it simply continues.
}

void Scheduler::check_cancel(Fiber& f) {
  if (f.cancel_pending_ != Fiber::PendingCancel::None) throw_cancel(f);
  if (now_ >= f.deadline_) {
    const std::uint64_t due = f.deadline_;
    f.deadline_ = kNoDeadline;  // consumed; heap entry goes stale
    f.cancel_pending_ = Fiber::PendingCancel::Deadline;
    f.cancel_payload_ = due;
    note_cancel_fired(f, Fiber::PendingCancel::Deadline, due);
    throw_cancel(f);
  }
  if (now_ >= f.tick_budget_due_) {
    const std::uint64_t limit = f.tick_budget_limit_;
    f.tick_budget_due_ = kNoDeadline;
    f.cancel_pending_ = Fiber::PendingCancel::TickBudget;
    f.cancel_payload_ = limit;
    note_cancel_fired(f, Fiber::PendingCancel::TickBudget, limit);
    throw_cancel(f);
  }
}

void Scheduler::throw_cancel(Fiber& f) {
  const auto kind = f.cancel_pending_;
  const std::uint64_t payload = f.cancel_payload_;
  f.cancel_pending_ = Fiber::PendingCancel::None;
  f.cancel_payload_ = 0;
  switch (kind) {
    case Fiber::PendingCancel::Deadline:
      throw DeadlineExceeded{f.id(), payload};
    case Fiber::PendingCancel::StepBudget:
      throw BudgetExceeded{BudgetKind::DispatchSteps, f.id(), payload};
    case Fiber::PendingCancel::TickBudget:
      throw BudgetExceeded{BudgetKind::VirtualTicks, f.id(), payload};
    case Fiber::PendingCancel::None:
      break;
  }
  SCRIPT_PANIC("throw_cancel without a pending cancel");
}

void Scheduler::note_cancel_fired(const Fiber& f, Fiber::PendingCancel kind,
                                  std::uint64_t payload) {
  const bool is_deadline = kind == Fiber::PendingCancel::Deadline;
  if (is_deadline)
    ++deadline_cancels_;
  else
    ++budget_cancels_;
  if (!bus_.wants(obs::Subsystem::Overload)) return;
  bus_.publish(
      {obs::EventKind::Instant, obs::Subsystem::Overload, obs::kAutoTime,
       f.id(), obs::kNoLane,
       is_deadline ? "overload.deadline" : "overload.budget",
       is_deadline ? f.name()
                   : std::string(budget_kind_name(
                         kind == Fiber::PendingCancel::StepBudget
                             ? BudgetKind::DispatchSteps
                             : BudgetKind::VirtualTicks)),
       static_cast<double>(payload)});
}

ProcessId Scheduler::pick_next() {
  SCRIPT_ASSERT(!ready_.empty(), "pick_next on empty ready queue");
  ProcessId pid = kNoProcess;
  switch (opts_.policy) {
    case SchedulePolicy::Fifo:
      // Exact arrival order — golden traces pin this.
      pid = ready_.pop_front();
      break;
    case SchedulePolicy::Random:
      pid = ready_.pop_at(rng_.pick_index(ready_.size()));
      break;
    case SchedulePolicy::Scripted: {
      SCRIPT_ASSERT(opts_.chooser != nullptr,
                    "Scripted policy requires a chooser");
      const std::size_t i = opts_.chooser(ready_.size());
      SCRIPT_ASSERT(i < ready_.size(), "chooser index out of range");
      pid = ready_.pop_at(i);
      break;
    }
  }
  fiber(pid).in_ready_ = false;
  return pid;
}

bool Scheduler::advance_clock() {
  bool woke_any = false;
  while (!woke_any) {
    // Lazily drop stale entries at the heap top so an already-woken
    // (or cancelled) fiber's abandoned timer can't drag the clock —
    // and the trace's virtual_time — past the end of real work.
    while (!timers_.empty() &&
           timers_.top().gen != fiber(timers_.top().pid).wake_gen_) {
      SCRIPT_ASSERT(stale_timers_ > 0, "stale-timer count out of sync");
      --stale_timers_;
      timers_.pop();
    }
    const std::uint64_t timer_due =
        timers_.empty() ? kNoTrigger : timers_.top().due;
    const std::uint64_t deadline_due =
        deadlines_.empty() ? kNoTrigger : next_deadline_due();
    const std::uint64_t fault_due =
        fault_plan_ != nullptr ? fault_plan_->next_time_trigger() : kNoTrigger;
    const std::uint64_t due =
        std::min(std::min(timer_due, deadline_due), fault_due);
    if (due == kNoTrigger) break;
    const std::uint64_t before = now_;
    if (due > before) now_ = due;
    if (now_ != before && bus_.wants(obs::Subsystem::Scheduler))
      bus_.publish({obs::EventKind::Counter, obs::Subsystem::Scheduler,
                    now_, obs::kNoPid, obs::kNoLane, "virtual_time", "",
                    static_cast<double>(now_)});
    if (now_ != before && health_ != nullptr) health_->poll(now_);
    // Safepoint: virtual-time progress is when a paced (throttled)
    // workload has something new to show a live dashboard.
    if (now_ != before) service_debug();
    while (!timers_.empty() && timers_.top().due <= now_) {
      const Timer t = timers_.top();
      timers_.pop();
      Fiber& f = fiber(t.pid);
      if (t.gen != f.wake_gen_) {  // stale: fiber woke another way
        SCRIPT_ASSERT(stale_timers_ > 0, "stale-timer count out of sync");
        --stale_timers_;
        continue;
      }
      f.timer_armed_ = false;  // consuming the live timer, not stale
      ++f.wake_gen_;
      const bool was_sleeping = f.state() == FiberState::Sleeping;
      if (was_sleeping) {
        f.set_state(FiberState::Ready);
        f.slept_ticks_ += now_ - f.sleep_start_;
      } else {
        SCRIPT_ASSERT(f.state() == FiberState::Blocked,
                      "live timer fired for non-parked fiber");
        f.set_state(FiberState::Ready);
        f.set_block_reason("");
        f.blocked_ticks_ += now_ - f.block_start_;
        f.waiting_on_ = kNoProcess;
        f.timed_out_ = true;
        // Self-clean the fiber's wait-list registration NOW, before any
        // other fiber can run and hand work to a waiter that is no
        // longer waiting (the old footgun every call site worked
        // around by hand).
        if (f.timeout_cleanup_) {
          auto cleanup = std::move(f.timeout_cleanup_);
          f.timeout_cleanup_ = nullptr;
          cleanup();
        }
      }
      ready_push(f);
      woke_any = true;
      if (bus_.wants(obs::Subsystem::Scheduler))
        bus_.publish({obs::EventKind::SpanEnd, obs::Subsystem::Scheduler,
                      obs::kAutoTime, t.pid, obs::kNoLane,
                      was_sleeping ? "sleeping" : "blocked",
                      was_sleeping ? "" : "timeout"});
    }
    // Same-instant ordering: timers fired above, deadlines next, faults
    // last — "timeout beats cancel beats crash" (satellite regressions
    // pin both halves).
    if (!deadlines_.empty() && fire_due_deadlines()) woke_any = true;
    if (fault_plan_ != nullptr && fire_due_faults()) woke_any = true;
  }
  if (woke_any || !timers_.empty()) return true;
  // Unfired deadlines and time-triggered faults keep the clock alive on
  // their own.
  if (next_deadline_due() != kNoTrigger) return true;
  return fault_plan_ != nullptr &&
         fault_plan_->next_time_trigger() != kNoTrigger;
}

}  // namespace script::runtime
