#include "runtime/scheduler.hpp"

#include <utility>

#include "support/panic.hpp"

namespace script::runtime {

std::string describe(const RunResult& result, const Scheduler& sched) {
  std::string out;
  switch (result.outcome) {
    case RunResult::Outcome::AllDone:
      out = "all fibers completed";
      break;
    case RunResult::Outcome::Deadlock:
      out = "DEADLOCK";
      break;
    case RunResult::Outcome::StepLimit:
      out = "stopped at step limit";
      break;
  }
  out += " (steps=" + std::to_string(result.steps) +
         ", virtual time=" + std::to_string(result.final_time) + ")";
  for (const auto& [pid, reason] : result.blocked)
    out += "\n  blocked: " + sched.name_of(pid) + " — " + reason;
  return out;
}

Scheduler::Scheduler(SchedulerOptions opts)
    : opts_(opts), rng_(opts.seed) {}

Scheduler::~Scheduler() = default;

ProcessId Scheduler::spawn(std::string name, std::function<void()> body) {
  const auto pid = static_cast<ProcessId>(fibers_.size());
  auto f = std::make_unique<Fiber>(pid, std::move(name), std::move(body),
                                   opts_.stack_bytes);
  f->scheduler_ = this;
  fibers_.push_back(std::move(f));
  joiners_.emplace_back();
  ready_.push_back(pid);
  return pid;
}

RunResult Scheduler::run() {
  SCRIPT_ASSERT(!running_, "Scheduler::run is not reentrant");
  running_ = true;
  RunResult result;
  std::uint64_t dispatched = 0;

  for (;;) {
    if (opts_.max_steps_per_run != 0 &&
        dispatched >= opts_.max_steps_per_run) {
      result.outcome = RunResult::Outcome::StepLimit;
      break;
    }
    if (ready_.empty() && !advance_clock()) break;
    if (ready_.empty()) continue;  // clock advance may wake sleepers only

    const ProcessId pid = pick_next();
    Fiber& f = fiber(pid);
    SCRIPT_ASSERT(f.state() == FiberState::Ready,
                  "scheduled fiber not ready: " + f.name());
    f.set_state(FiberState::Running);
    current_ = pid;
    ++steps_;
    ++dispatched;
    swapcontext(&main_context_, &f.context_);
    current_ = kNoProcess;

    if (f.state() == FiberState::Done && f.failure()) {
      running_ = false;
      std::rethrow_exception(f.failure());
    }
  }

  running_ = false;
  result.final_time = now_;
  result.steps = steps_;
  if (result.outcome == RunResult::Outcome::StepLimit) return result;
  for (const auto& f : fibers_) {
    if (f->state() == FiberState::Blocked)
      result.blocked.emplace_back(f->id(), f->block_reason());
    SCRIPT_ASSERT(f->state() != FiberState::Sleeping,
                  "sleeper left behind after clock drained");
  }
  result.outcome = result.blocked.empty() ? RunResult::Outcome::AllDone
                                          : RunResult::Outcome::Deadlock;
  return result;
}

void Scheduler::yield() {
  Fiber& f = fiber(current());
  f.set_state(FiberState::Ready);
  ready_.push_back(f.id());
  switch_out();
}

void Scheduler::block(const std::string& reason) {
  Fiber& f = fiber(current());
  f.set_state(FiberState::Blocked);
  f.set_block_reason(reason);
  switch_out();
}

void Scheduler::sleep_for(std::uint64_t ticks) {
  Fiber& f = fiber(current());
  if (ticks == 0) {
    yield();
    return;
  }
  f.set_state(FiberState::Sleeping);
  timers_.push(Timer{now_ + ticks, timer_seq_++, f.id(), f.wake_gen_});
  switch_out();
}

bool Scheduler::block_with_timeout(const std::string& reason,
                                   std::uint64_t ticks) {
  Fiber& f = fiber(current());
  f.set_state(FiberState::Blocked);
  f.set_block_reason(reason);
  f.timed_out_ = false;
  timers_.push(Timer{now_ + ticks, timer_seq_++, f.id(), f.wake_gen_});
  switch_out();
  return f.timed_out_;
}

void Scheduler::join(ProcessId pid) {
  SCRIPT_ASSERT(pid < fibers_.size(), "join: unknown process");
  if (fiber(pid).state() == FiberState::Done) return;
  joiners_[pid].push_back(current());
  block("joining " + fiber(pid).name());
}

void Scheduler::unblock(ProcessId pid) {
  Fiber& f = fiber(pid);
  SCRIPT_ASSERT(f.state() == FiberState::Blocked,
                "unblock on non-blocked fiber " + f.name());
  f.set_state(FiberState::Ready);
  f.set_block_reason("");
  f.timed_out_ = false;
  ++f.wake_gen_;  // any timeout timer armed for this block is now stale
  ready_.push_back(pid);
}

void Scheduler::wake_at(ProcessId pid, std::uint64_t ticks_from_now) {
  if (ticks_from_now == 0) {
    unblock(pid);
    return;
  }
  Fiber& f = fiber(pid);
  SCRIPT_ASSERT(f.state() == FiberState::Blocked,
                "wake_at on non-blocked fiber " + f.name());
  f.set_state(FiberState::Sleeping);
  f.set_block_reason("");
  ++f.wake_gen_;  // invalidate any timeout armed for the old block
  timers_.push(Timer{now_ + ticks_from_now, timer_seq_++, pid, f.wake_gen_});
}

ProcessId Scheduler::current() const {
  SCRIPT_ASSERT(current_ != kNoProcess,
                "operation requires a running fiber");
  return current_;
}

const std::string& Scheduler::name_of(ProcessId pid) const {
  return fiber(pid).name();
}

FiberState Scheduler::state_of(ProcessId pid) const {
  return fiber(pid).state();
}

std::size_t Scheduler::live_count() const {
  std::size_t n = 0;
  for (const auto& f : fibers_)
    if (f->state() != FiberState::Done) ++n;
  return n;
}

void Scheduler::trace_event(ProcessId subject, std::string what) {
  trace_.record(now_, name_of(subject), std::move(what));
}

Fiber& Scheduler::fiber(ProcessId pid) {
  SCRIPT_ASSERT(pid < fibers_.size(), "unknown process id");
  return *fibers_[pid];
}

const Fiber& Scheduler::fiber(ProcessId pid) const {
  SCRIPT_ASSERT(pid < fibers_.size(), "unknown process id");
  return *fibers_[pid];
}

void Scheduler::switch_out() {
  Fiber& f = fiber(current_);
  swapcontext(&f.context_, &main_context_);
}

void Scheduler::on_fiber_done(Fiber& f) {
  for (const ProcessId waiter : joiners_[f.id()]) unblock(waiter);
  joiners_[f.id()].clear();
}

ProcessId Scheduler::pick_next() {
  SCRIPT_ASSERT(!ready_.empty(), "pick_next on empty ready queue");
  std::size_t i = 0;
  switch (opts_.policy) {
    case SchedulePolicy::Fifo:
      break;
    case SchedulePolicy::Random:
      i = rng_.pick_index(ready_.size());
      break;
    case SchedulePolicy::Scripted:
      SCRIPT_ASSERT(opts_.chooser != nullptr,
                    "Scripted policy requires a chooser");
      i = opts_.chooser(ready_.size());
      SCRIPT_ASSERT(i < ready_.size(), "chooser index out of range");
      break;
  }
  const ProcessId pid = ready_[i];
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(i));
  return pid;
}

bool Scheduler::advance_clock() {
  bool woke_any = false;
  while (!timers_.empty() && !woke_any) {
    now_ = std::max(now_, timers_.top().due);
    while (!timers_.empty() && timers_.top().due <= now_) {
      const Timer t = timers_.top();
      timers_.pop();
      Fiber& f = fiber(t.pid);
      if (t.gen != f.wake_gen_) continue;  // stale: fiber woke another way
      ++f.wake_gen_;
      if (f.state() == FiberState::Sleeping) {
        f.set_state(FiberState::Ready);
      } else {
        SCRIPT_ASSERT(f.state() == FiberState::Blocked,
                      "live timer fired for non-parked fiber");
        f.set_state(FiberState::Ready);
        f.set_block_reason("");
        f.timed_out_ = true;
      }
      ready_.push_back(t.pid);
      woke_any = true;
    }
  }
  return woke_any || !timers_.empty();
}

}  // namespace script::runtime
