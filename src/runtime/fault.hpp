// Deterministic fault injection.
//
// A FaultPlan is a seeded-run's failure script: crash fiber 3 after the
// 17th dispatch, stall fiber 1 for 40 ticks at t=100, drop the 2nd
// message whose tag contains "vote". The Scheduler fires process faults
// at exact dispatch-step or virtual-time triggers; csp::Net consults the
// plan at each rendezvous for message faults. Because every trigger is
// keyed to the deterministic virtual clock / dispatch counter (never
// wall time), a fixed seed plus a fixed plan reproduces the identical
// failing run — the property the fault-schedule explorer and the
// fault-matrix regression suite are built on.
//
// Crash semantics: the victim fiber is unwound *synchronously* at the
// firing instant with a FiberKilled exception, so every RAII guard on
// its stack (parked CSP offers, wait-queue entries, monitor holds, Ada
// call registrations) deregisters before any other fiber can observe
// stale state. After the unwind, registered crash hooks run (csp::Net
// uses one to fail the peers of the dead process like PeerTerminated).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "runtime/fiber.hpp"

namespace script::runtime {

inline constexpr std::uint64_t kNoTrigger =
    std::numeric_limits<std::uint64_t>::max();

/// Thrown inside a fiber the FaultPlan kills. Deliberately NOT derived
/// from std::exception: a crash is not a program failure (the scheduler
/// records the fiber as crashed, not failed), and user-level catch(...)
/// blocks in role bodies are expected to rethrow it untouched.
struct FiberKilled {
  ProcessId pid = kNoProcess;
};

class FaultPlan {
 public:
  // ---- Process faults (fired by the Scheduler) ----

  /// Kill `pid` once the scheduler has performed `step` dispatches
  /// (step 0 = before the first dispatch).
  FaultPlan& crash_at_step(ProcessId pid, std::uint64_t step);
  /// Kill `pid` at virtual time `when` (the clock advances to `when`
  /// even if no timer is due then).
  FaultPlan& crash_at_time(ProcessId pid, std::uint64_t when);
  /// Freeze `pid` for `ticks` of virtual time starting at its first
  /// dispatch after the trigger.
  FaultPlan& stall_at_step(ProcessId pid, std::uint64_t step,
                           std::uint64_t ticks);
  FaultPlan& stall_at_time(ProcessId pid, std::uint64_t when,
                           std::uint64_t ticks);

  // ---- Message faults (consulted by csp::Net at transfer instants) ----
  // Rules are one-shot and count *completed transfer opportunities*: the
  // nth rendezvous whose tag contains `tag_substr` is affected.

  /// Lose the message: the sender believes it delivered (and pays
  /// latency); the receiver keeps waiting.
  FaultPlan& drop_message(std::string tag_substr, std::uint64_t nth = 1);
  /// Deliver the message, then deliver a spare copy to the receiver's
  /// next matching receive (an in-flight duplicate).
  FaultPlan& duplicate_message(std::string tag_substr, std::uint64_t nth = 1);
  /// Charge `extra_ticks` on top of the LatencyModel for one transfer.
  FaultPlan& delay_message(std::string tag_substr, std::uint64_t nth,
                           std::uint64_t extra_ticks);

  bool empty() const { return process_.empty() && msgs_.empty(); }
  bool has_message_faults() const { return !msgs_.empty(); }

  // ---- Scheduler-side queries ----

  struct ProcessFault {
    enum class Kind : std::uint8_t { Crash, Stall };
    Kind kind = Kind::Crash;
    ProcessId pid = kNoProcess;
    bool by_time = false;    // trigger on virtual time, else dispatch step
    std::uint64_t at = 0;    // step count or virtual time
    std::uint64_t ticks = 0;  // stall duration
    bool fired = false;
  };
  std::vector<ProcessFault>& process_faults() { return process_; }
  /// Earliest unfired virtual-time trigger, or kNoTrigger. The clock
  /// advances to it like a timer deadline.
  std::uint64_t next_time_trigger() const;

  // ---- Net-side queries (each call advances the rule counters; call
  //      exactly once per transfer decision) ----

  bool should_drop(const std::string& tag);
  bool should_duplicate(const std::string& tag);
  /// Extra ticks to charge this transfer (0 when no delay rule fires).
  std::uint64_t extra_delay(const std::string& tag);

 private:
  enum class MsgKind : std::uint8_t { Drop, Duplicate, Delay };
  struct MsgRule {
    MsgKind kind;
    std::string substr;
    std::uint64_t nth;    // fire on the nth matching transfer
    std::uint64_t extra;  // Delay only
    std::uint64_t seen = 0;
    bool fired = false;
  };

  /// Advance counters of every unfired `kind` rule matching `tag`;
  /// true (with the rule's `extra`) if one fires.
  bool fire_rule(MsgKind kind, const std::string& tag, std::uint64_t* extra);

  std::vector<ProcessFault> process_;
  std::vector<MsgRule> msgs_;
};

}  // namespace script::runtime
