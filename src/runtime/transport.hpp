// runtime::Transport — the frame seam between the runtime and a network.
//
// ROADMAP item 1: csp::Net/DistributedCast have only ever run over
// virtual-time sim links; proving the fault-tolerance stack (suspicion
// timeouts, lease reaping, takeover, WAL'd 2PC) requires a real network
// whose failure modes — partial writes, disconnects, reconnect
// flapping, partitions — are first-class. This header is the seam both
// worlds share:
//
//   * SimTransport (here): deterministic in-process delivery on the
//     virtual clock — the byte-identical CI twin of every distributed
//     test;
//   * TcpTransport (runtime/transport_tcp.hpp): epoll-based
//     length-prefixed frames over real sockets, serviced at scheduler
//     safepoints like DebugEndpoint;
//   * ChaosLink (runtime/chaos_link.hpp): a frame-level interposer
//     (drop/delay/duplicate/partition/slow-close, seeded) stacked
//     between an application layer and either backend, so the PR 2
//     fault matrices run identically against both;
//   * PeerSupervisor (runtime/peer_supervisor.hpp): heartbeats,
//     reconnect backoff, sticky per-incarnation suspicion.
//
// A Transport moves opaque byte frames between numbered peers. Frames
// are fire-and-forget: send() queues (bounded, counted shedding — the
// overload taxonomy's rule that buffering without bound is the real
// failure), poll() drains arrivals, service() pumps whatever I/O is
// ready without ever blocking. Synchronous rendezvous semantics stay
// INSIDE a process (csp::Net, §IV); between processes the runtime
// speaks frames, exactly like the paper's network of CSP machines.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/event_bus.hpp"

namespace script::runtime {

/// A node in a transport cluster (NOT a ProcessId: one peer hosts a
/// whole scheduler full of fibers).
using PeerId = std::uint32_t;
inline constexpr PeerId kNoPeer = static_cast<PeerId>(-1);

/// Link-level view of one peer.
enum class LinkState : std::uint8_t {
  Down,        // no connection (never connected, or lost and not retrying)
  Connecting,  // connect in flight
  Backoff,     // lost; reconnect timer armed (capped exponential)
  Up,          // frames flow
  Gone,        // declared permanently gone (PeerSupervisor escalation)
};

const char* link_state_name(LinkState s);

/// Counted-never-silent accounting. Every injected fault and every shed
/// frame lands in one of these, so a test (or an operator) can see each
/// fault kind happen rather than infer it from downstream symptoms.
struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_shed = 0;      // bounded outbound queue overflow
  std::uint64_t torn_frames = 0;      // partial frame at connection death
  std::uint64_t disconnects = 0;      // link went down
  std::uint64_t reconnects = 0;       // link came back up
  std::uint64_t stale_frames = 0;     // dropped: stale incarnation
  // Chaos-link injections (zero on a plain backend):
  std::uint64_t chaos_dropped = 0;
  std::uint64_t chaos_delayed = 0;
  std::uint64_t chaos_duplicated = 0;
  std::uint64_t chaos_partitioned = 0;  // frames eaten by a partition
  std::uint64_t chaos_slow_closes = 0;
};

class Transport {
 public:
  using PollFn = std::function<void(PeerId from, std::string&& frame)>;

  virtual ~Transport() = default;

  /// This endpoint's peer id.
  virtual PeerId self() const = 0;

  /// Queue `frame` toward `to`. Returns false when the frame was shed
  /// (bounded queue full, or the peer is Gone); false is a *counted*
  /// refusal, never a silent drop.
  virtual bool send(PeerId to, std::string frame) = 0;

  /// Drain every deliverable received frame into `fn`; returns how
  /// many were delivered.
  virtual std::size_t poll(const PollFn& fn) = 0;

  /// Pump I/O: accept/connect/read/write whatever is ready. Never
  /// blocks. Safe to call at scheduler safepoints (like DebugEndpoint).
  virtual void service() = 0;

  /// Block the CALLING THREAD until I/O is ready or `timeout_us`
  /// elapses — the real-time pacing point of a serving loop. The sim
  /// backend returns immediately (virtual time has no idle waiting).
  virtual void wait_io(int timeout_us) { (void)timeout_us; }

  /// Force the link to `peer` down (chaos slow-close, tests). The
  /// backend's reconnect machinery may bring it back.
  virtual void kick(PeerId peer) { (void)peer; }

  /// Tear the link down MID-FRAME: the peer receives a partial frame
  /// (counted there as torn_frames, never surfaced as data) and then
  /// sees the link drop. The nastiest real-socket failure mode, made
  /// injectable on both backends. Default: plain kick.
  virtual void slow_close(PeerId peer) { kick(peer); }

  virtual LinkState link_state(PeerId peer) const = 0;
  virtual std::vector<PeerId> peers() const = 0;

  const TransportStats& stats() const { return stats_; }

  /// Virtual-time source for delivery ordering, reconnect backoff, and
  /// chaos delays. Defaults to a counter bumped per service() call so
  /// bench loops work without a scheduler; wire the scheduler's clock
  /// in (`[&]{ return sched.now(); }`) for real use.
  void set_clock(std::function<std::uint64_t()> clock) {
    clock_ = std::move(clock);
  }
  std::uint64_t clock_now() const {
    return clock_ ? clock_() : fallback_clock_;
  }

  /// Publish wire.* / chaos.* events (Subsystem::Link) on `bus`;
  /// nullptr detaches. Unobserved costs one branch per event site.
  void attach_bus(obs::EventBus* bus) { bus_ = bus; }

 protected:
  void publish(const char* name, std::string detail, double value = 0);
  void bump_fallback_clock() { ++fallback_clock_; }

  TransportStats stats_;
  obs::EventBus* bus_ = nullptr;

 private:
  std::function<std::uint64_t()> clock_;
  std::uint64_t fallback_clock_ = 0;
};

class SimTransport;

/// The shared medium of a simulated cluster: frames in flight between
/// the SimTransports attached to it, delivered on the virtual clock in
/// deterministic (due, sequence) order. Peer death is modelled with
/// set_down(): in-flight frames to a down peer are lost (a real socket
/// loses them too), new sends queue at the sender until set_up() — the
/// same observable contract as TcpTransport's reconnect machinery.
class SimNetwork {
 public:
  /// Virtual ticks a frame spends in flight (charged on delivery).
  explicit SimNetwork(std::uint64_t latency_ticks = 1)
      : latency_(latency_ticks) {}

  void set_down(PeerId peer);
  void set_up(PeerId peer);
  bool is_down(PeerId peer) const;

  std::uint64_t latency_ticks() const { return latency_; }

 private:
  friend class SimTransport;

  struct InFlight {
    std::uint64_t due;
    std::uint64_t seq;  // tie-break: network-wide send order
    PeerId from;
    std::string bytes;
    bool torn = false;  // chaos slow-close: arrives unparseable
  };

  void attach(PeerId id, SimTransport* t);
  void detach(PeerId id, SimTransport* t);
  SimTransport* endpoint(PeerId id) const;

  std::uint64_t latency_;
  std::uint64_t seq_ = 0;
  std::vector<SimTransport*> endpoints_;   // indexed by PeerId
  std::vector<bool> down_;                 // indexed by PeerId
};

/// Deterministic in-process backend: every frame is delivered through
/// the shared SimNetwork after its virtual-time latency. The CI twin:
/// a distributed test written against Transport runs here byte-
/// identically under a fixed seed.
class SimTransport final : public Transport {
 public:
  SimTransport(SimNetwork& net, PeerId self);
  ~SimTransport() override;

  PeerId self() const override { return self_; }
  bool send(PeerId to, std::string frame) override;
  std::size_t poll(const PollFn& fn) override;
  void service() override;
  void kick(PeerId peer) override;
  void slow_close(PeerId peer) override;
  LinkState link_state(PeerId peer) const override;
  std::vector<PeerId> peers() const override;

  /// Bytes a sender may queue toward one down peer before shedding.
  void set_max_pending_bytes(std::size_t n) { max_pending_ = n; }

  /// Frames queued toward down peers (all of them), for tests.
  std::size_t pending_frames() const;

 private:
  friend class SimNetwork;

  struct Pending {
    PeerId to;
    std::string bytes;
  };

  /// Deliver into this endpoint's inbox (called by the sender's side).
  void deposit(SimNetwork::InFlight f);
  void flush_pending();

  SimNetwork* net_;
  PeerId self_;
  std::vector<SimNetwork::InFlight> inbox_;  // kept sorted (due, seq)
  std::vector<Pending> pending_;             // sends to down peers
  std::size_t pending_bytes_ = 0;
  std::size_t max_pending_ = 1u << 20;  // 1 MiB, like the TCP backend
};

}  // namespace script::runtime
