#include "runtime/wait_queue.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace script::runtime {

void WaitQueue::park(const std::string& reason, ProcessId waiting_on) {
  const ProcessId pid = sched_->current();
  waiters_.push_back(pid);
  try {
    sched_->block(reason, waiting_on);
  } catch (...) {
    // FaultPlan crash while parked: leave no dangling waiter entry.
    // (park_for needs no guard — kill runs its timeout hook.)
    const auto it = std::find(waiters_.begin(), waiters_.end(), pid);
    if (it != waiters_.end()) waiters_.erase(it);
    throw;
  }
}

bool WaitQueue::park_for(const std::string& reason, std::uint64_t ticks,
                         ProcessId waiting_on) {
  const ProcessId pid = sched_->current();
  waiters_.push_back(pid);
  return sched_->block_with_timeout(
      reason, ticks,
      [this, pid] {
        const auto it = std::find(waiters_.begin(), waiters_.end(), pid);
        if (it != waiters_.end()) waiters_.erase(it);
      },
      waiting_on);
}

bool WaitQueue::notify_one() {
  if (waiters_.empty()) return false;
  const ProcessId pid = waiters_.front();
  waiters_.pop_front();
  sched_->unblock(pid);
  return true;
}

void WaitQueue::notify_all() {
  while (notify_one()) {
  }
}

ProcessId WaitQueue::front() const {
  SCRIPT_ASSERT(!waiters_.empty(), "WaitQueue::front on empty queue");
  return waiters_.front();
}

}  // namespace script::runtime
