#include "runtime/sim_link.hpp"

#include <deque>
#include <limits>

#include "support/panic.hpp"

namespace script::runtime {

std::uint64_t JitterLatency::latency(ProcessId, ProcessId) {
  if (jitter_ == 0) return base_;
  return base_ + rng_.below(2 * jitter_ + 1) - jitter_;
}

Topology::Topology(std::size_t nodes, std::uint64_t ticks_per_hop)
    : n_(nodes), per_hop_(ticks_per_hop), adj_(nodes) {
  SCRIPT_ASSERT(nodes > 0, "Topology needs at least one node");
}

void Topology::add_edge(std::size_t a, std::size_t b) {
  SCRIPT_ASSERT(a < n_ && b < n_, "Topology edge out of range");
  SCRIPT_ASSERT(!frozen_, "Topology::add_edge after freeze");
  adj_[a].push_back(b);
  adj_[b].push_back(a);
}

void Topology::freeze() {
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();
  dist_.assign(n_, std::vector<std::uint32_t>(n_, kInf));
  for (std::size_t src = 0; src < n_; ++src) {
    auto& d = dist_[src];
    d[src] = 0;
    std::deque<std::size_t> q{src};
    while (!q.empty()) {
      const std::size_t u = q.front();
      q.pop_front();
      for (const std::size_t v : adj_[u]) {
        if (d[v] == kInf) {
          d[v] = d[u] + 1;
          q.push_back(v);
        }
      }
    }
  }
  frozen_ = true;
}

std::uint64_t Topology::latency(ProcessId from, ProcessId to) {
  SCRIPT_ASSERT(frozen_, "Topology::latency before freeze");
  return hops(from % n_, to % n_) * per_hop_;
}

std::uint64_t Topology::hops(std::size_t a, std::size_t b) const {
  SCRIPT_ASSERT(frozen_, "Topology::hops before freeze");
  const std::uint32_t h = dist_[a][b];
  SCRIPT_ASSERT(h != std::numeric_limits<std::uint32_t>::max(),
                "Topology: unreachable pair");
  return h;
}

Topology Topology::ring(std::size_t nodes, std::uint64_t ticks_per_hop) {
  Topology t(nodes, ticks_per_hop);
  for (std::size_t i = 0; i < nodes; ++i) t.add_edge(i, (i + 1) % nodes);
  t.freeze();
  return t;
}

Topology Topology::star(std::size_t nodes, std::uint64_t ticks_per_hop) {
  Topology t(nodes, ticks_per_hop);
  for (std::size_t i = 1; i < nodes; ++i) t.add_edge(0, i);
  t.freeze();
  return t;
}

Topology Topology::line(std::size_t nodes, std::uint64_t ticks_per_hop) {
  Topology t(nodes, ticks_per_hop);
  for (std::size_t i = 0; i + 1 < nodes; ++i) t.add_edge(i, i + 1);
  t.freeze();
  return t;
}

Topology Topology::complete(std::size_t nodes, std::uint64_t ticks_per_hop) {
  Topology t(nodes, ticks_per_hop);
  for (std::size_t i = 0; i < nodes; ++i)
    for (std::size_t j = i + 1; j < nodes; ++j) t.add_edge(i, j);
  t.freeze();
  return t;
}

}  // namespace script::runtime
