#include "runtime/wire.hpp"

#include <algorithm>

namespace script::runtime {

Wire::Wire(Scheduler& sched, Transport& transport, PeerSupervisor* sup,
           Options opts)
    : sched_(&sched), transport_(&transport), sup_(sup), opts_(opts) {}

Wire::~Wire() { stop(); }

std::string Wire::encode(const std::string& tag, const std::string& payload) {
  std::string out;
  out.reserve(4 + tag.size() + payload.size());
  const auto n = static_cast<std::uint32_t>(tag.size());
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((n >> (8 * i)) & 0xff));
  out += tag;
  out += payload;
  return out;
}

bool Wire::decode(const std::string& frame, std::string* tag,
                  std::string* payload) {
  if (frame.size() < 4) return false;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i)
    n |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(frame[i]))
         << (8 * i);
  if (frame.size() < 4 + static_cast<std::size_t>(n)) return false;
  tag->assign(frame, 4, n);
  payload->assign(frame, 4 + n, frame.size() - 4 - n);
  return true;
}

void Wire::start() {
  if (pump_ != kNoProcess) return;
  stopping_ = false;
  // Transport timing (delivery latencies, backoff, suspicion) runs on
  // the scheduler's virtual clock from here on.
  transport_->set_clock([s = sched_] { return s->now(); });
  pump_ = sched_->spawn("wire.pump", [this] { pump(); });
}

void Wire::stop() {
  stopping_ = true;
  // Waiters parked in recv() would never be woken once the pump exits;
  // fail them out now (recv returns false).
  for (Waiter* w : waiters_) sched_->unblock(w->pid);
  waiters_.clear();
}

void Wire::pump() {
  while (!stopping_) {
    if (sup_ != nullptr) sup_->tick();
    transport_->service();
    const std::size_t n =
        transport_->poll([this](PeerId from, std::string&& frame) {
          deliver(from, std::move(frame));
        });
    // Idle over a real backend: block this OS thread in epoll_wait so
    // the virtual clock ticks at most once per tick_us of real time.
    // (Sim backend: wait_io is a no-op; this loop is pure virtual time.)
    if (n == 0) transport_->wait_io(opts_.tick_us);
    sched_->sleep_for(1);
  }
  pump_ = kNoProcess;
}

void Wire::deliver(PeerId from, std::string&& frame) {
  Msg m;
  m.from = from;
  if (!decode(frame, &m.tag, &m.payload)) {
    ++shed_;  // unparseable: counted, never surfaced
    return;
  }
  // Hand to the first parked waiter that matches; FIFO among waiters
  // keeps delivery order deterministic.
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    Waiter* w = *it;
    if (w->tag != m.tag) continue;
    if (w->from != kNoPeer && w->from != from) continue;
    *w->out = std::move(m);
    w->filled = true;
    waiters_.erase(it);
    sched_->unblock(w->pid);
    return;
  }
  const std::size_t sz = m.tag.size() + m.payload.size();
  if (mailbox_bytes_ + sz > opts_.max_mailbox_bytes) {
    // Nobody is reading and the backlog is at the cap: shed, counted —
    // the same bounded-buffer discipline as every other queue here.
    ++shed_;
    return;
  }
  mailbox_bytes_ += sz;
  mailbox_.push_back(std::move(m));
  queued_ = mailbox_.size();
}

bool Wire::recv(const std::string& tag, Msg* out,
                std::uint64_t timeout_ticks, PeerId from) {
  // Mailbox first: oldest matching message.
  for (auto it = mailbox_.begin(); it != mailbox_.end(); ++it) {
    if (it->tag != tag) continue;
    if (from != kNoPeer && it->from != from) continue;
    mailbox_bytes_ -= it->tag.size() + it->payload.size();
    *out = std::move(*it);
    mailbox_.erase(it);
    queued_ = mailbox_.size();
    return true;
  }
  if (stopping_) return false;

  Waiter w{tag, from, out, sched_->current(), false};
  waiters_.push_back(&w);
  const std::string reason = "wire recv " + tag;
  if (timeout_ticks == kNoTimeout) {
    sched_->block(reason);
  } else {
    sched_->block_with_timeout(reason, timeout_ticks, [this, &w] {
      // Timeout fired before delivery: self-clean the registration so
      // the pump never fills a dead stack frame.
      waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), &w),
                     waiters_.end());
    });
  }
  if (!w.filled) {
    // Shutdown path (stop() unblocked us): drop the registration.
    waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), &w),
                   waiters_.end());
  }
  return w.filled;
}

bool Wire::post(PeerId to, const std::string& tag,
                const std::string& payload) {
  return transport_->send(to, encode(tag, payload));
}

}  // namespace script::runtime
