// PeerSupervisor — connection supervision over any Transport.
//
// runtime::Supervisor supervises FIBERS (restart a crashed child, capped
// backoff, escalation); this decorator supervises PEERS: remote
// endpoints that can crash, hang, restart, or sit behind a partition.
// It stacks over a backend (optionally through a ChaosLink) and speaks
// a 9-byte supervision header in front of every application payload:
//
//   [u8 type][u64 incarnation, little-endian]
//
//   Data(0)          app payload follows
//   Hello(1)         "peer `from` is alive as incarnation k"
//   Heartbeat(2)     liveness keep-alive, sent every heartbeat_every
//   SuspectNotice(3) "I have declared incarnation k of you dead"
//
// The incarnation number is the heart of the suspicion-flap fix
// (ISSUE satellite 2). Suspicion is STICKY PER INCARNATION:
//
//   * frames with a stale incarnation are dropped and counted — a
//     zombie that was declared dead cannot leak old-world traffic into
//     the new world, even if its TCP connection flaps back;
//   * frames with the suspected incarnation stay dropped forever, and
//     each one is answered with a SuspectNotice so the zombie learns
//     of its own funeral;
//   * only a HIGHER incarnation — a genuine restart — re-admits the
//     peer, via the on_reenroll callback (new world, no stale state).
//
// A peer that receives SuspectNotice(k >= its own incarnation) adopts
// k+1 and re-hellos: a false suspicion (slow network, not dead peer)
// resolves by forced re-enrollment, never by silent resurrection.
//
// All timing is on the virtual clock (set_clock), so every suspicion
// schedule replays byte-identically over the sim backend.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "runtime/transport.hpp"

namespace script::runtime {

enum class WireFrameType : std::uint8_t {
  Data = 0,
  Hello = 1,
  Heartbeat = 2,
  SuspectNotice = 3,
};

struct PeerSupervisorOptions {
  std::uint64_t heartbeat_every = 50;  // ticks between heartbeats
  std::uint64_t suspect_after = 200;   // silence before suspicion
  std::uint64_t gone_after = 1000;     // suspicion before Gone (0 = never)
};

class PeerSupervisor final : public Transport {
 public:
  /// `incarnation` identifies THIS process-lifetime; a restarted
  /// process must come back with a strictly higher one (the lockdb
  /// harness passes it via argv, tests bump it by hand).
  PeerSupervisor(Transport& inner, std::uint64_t incarnation,
                 PeerSupervisorOptions opts = {});

  PeerId self() const override { return inner_->self(); }
  /// Wraps `frame` in a Data header. Refused (false, counted) when the
  /// peer is Gone — the caller must degrade, not queue into a void.
  bool send(PeerId to, std::string frame) override;
  /// Delivers only Data payloads of the current, unsuspected
  /// incarnation; supervision frames are consumed internally.
  std::size_t poll(const PollFn& fn) override;
  void service() override;
  void wait_io(int timeout_us) override { inner_->wait_io(timeout_us); }
  void kick(PeerId peer) override { inner_->kick(peer); }
  void slow_close(PeerId peer) override { inner_->slow_close(peer); }
  LinkState link_state(PeerId peer) const override;
  std::vector<PeerId> peers() const override { return inner_->peers(); }

  /// Announce ourselves to `peer` and start expecting heartbeats back.
  /// Until the first frame arrives the peer is not suspect-eligible
  /// (suspicion needs a baseline, or startup order becomes a flap).
  void watch(PeerId peer);

  /// Heartbeat/suspicion timers; call once per pump iteration.
  void tick();

  std::uint64_t self_incarnation() const { return self_inc_; }
  std::uint64_t incarnation_of(PeerId peer) const;
  bool suspected(PeerId peer) const;
  bool gone(PeerId peer) const;

  // ---- Escalation callbacks (all optional) ----
  /// Incarnation `inc` of `peer` declared dead (suspect_after silence).
  std::function<void(PeerId, std::uint64_t inc)> on_suspect;
  /// `peer` came back with a higher incarnation — re-enroll it.
  std::function<void(PeerId, std::uint64_t inc)> on_reenroll;
  /// `peer` stayed suspected for gone_after: degrade or abort.
  std::function<void(PeerId, std::uint64_t inc)> on_gone;
  /// Someone declared US dead; we adopted a new incarnation and
  /// re-helloed. The app layer must re-enroll its own state.
  std::function<void(std::uint64_t new_inc)> on_self_suspected;

  /// Wire codec, shared with tests and WireCast.
  static std::string encode(WireFrameType t, std::uint64_t inc,
                            const std::string& payload);
  static bool decode(const std::string& frame, WireFrameType* t,
                     std::uint64_t* inc, std::string* payload);

 private:
  struct Peer {
    std::uint64_t inc = 0;         // highest incarnation seen
    std::uint64_t last_heard = 0;  // tick of last frame (any type)
    std::uint64_t last_sent = 0;   // tick of last heartbeat out
    std::uint64_t suspected_at = 0;
    bool heard_once = false;
    bool suspected = false;  // sticky for `inc`
    bool gone = false;
  };

  void raw_send(PeerId to, WireFrameType t, std::string payload);
  void on_frame(PeerId from, std::string&& frame, const PollFn& fn);
  Peer& peer(PeerId id) { return peers_[id]; }

  Transport* inner_;
  std::uint64_t self_inc_;
  PeerSupervisorOptions opts_;
  std::map<PeerId, Peer> peers_;  // ordered: deterministic tick() sweep
};

}  // namespace script::runtime
