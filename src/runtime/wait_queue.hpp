// FIFO queue of parked fibers. The building block for monitors, Ada entry
// queues, and the script enrollment gates.
#pragma once

#include <deque>
#include <string>

#include "runtime/scheduler.hpp"

namespace script::runtime {

class WaitQueue {
 public:
  explicit WaitQueue(Scheduler& sched) : sched_(&sched) {}

  /// Park the calling fiber at the tail. Returns when notified.
  /// `waiting_on` is the wait-for hint for deadlock chains (e.g. the
  /// monitor holder the queue is gated on), when the owner knows it.
  void park(const std::string& reason,
            ProcessId waiting_on = kNoProcess);

  /// Park at the tail for at most `ticks` of virtual time. Returns true
  /// on timeout. The queue entry self-cleans when the timeout fires, so
  /// a later notify_one() can never wake a fiber that already gave up.
  bool park_for(const std::string& reason, std::uint64_t ticks,
                ProcessId waiting_on = kNoProcess);

  /// Wake the fiber at the head, if any. Returns true if one was woken.
  bool notify_one();

  /// Wake every parked fiber (in FIFO order).
  void notify_all();

  bool empty() const { return waiters_.empty(); }
  std::size_t size() const { return waiters_.size(); }

  /// Peek at the head waiter without waking it.
  ProcessId front() const;

 private:
  Scheduler* sched_;
  std::deque<ProcessId> waiters_;
};

}  // namespace script::runtime
