#include "runtime/parallel.hpp"

#include <algorithm>
#include <utility>

#include "obs/event_bus.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/timeline.hpp"
#include "runtime/sanitizer_fiber.hpp"
#include "support/panic.hpp"

namespace script::runtime {

namespace {
// Worker identity for current()/spawn-inheritance. Tagged with the
// owning runtime so several parallel schedulers can coexist in one
// process (each owns its threads; a worker of scheduler A reads as
// "not a fiber" to scheduler B).
thread_local parallel_detail::Worker* t_worker = nullptr;
}  // namespace

ParallelRuntime::ParallelRuntime(Scheduler& sched, std::size_t workers,
                                 std::size_t group_quantum)
    : sched_(sched),
      nworkers_(std::min<std::size_t>(workers, 256)),
      quantum_(group_quantum == 0 ? 1 : group_quantum) {
  SCRIPT_ASSERT(nworkers_ > 0, "parallel mode needs at least one worker");
  shards_.reserve(nworkers_);
  for (std::size_t i = 0; i < nworkers_; ++i)
    shards_.push_back(std::make_unique<Shard>());
  // Group 0 exists from the start: plain spawn() from outside a fiber
  // lands here, so a program that never opts into groups runs exactly
  // like the deterministic mode, just on a worker thread.
  new_group();
}

ParallelRuntime::~ParallelRuntime() {
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    shutdown_ = true;
  }
  idle_cv_.notify_all();
  for (auto& t : threads_) t.join();
  for (auto& w : workers_store_) {
    for (Stack& s : w->stack_cache) sched_.stack_pool_.release(std::move(s));
    w->stack_cache.clear();
  }
}

GroupId ParallelRuntime::new_group() {
  std::lock_guard<std::mutex> lk(spawn_mu_);
  const auto gid = static_cast<GroupId>(groups_.size());
  const auto home =
      static_cast<std::uint32_t>(next_home_++ % nworkers_);
  groups_.push(std::make_unique<Group>(gid, home));
  return gid;
}

GroupId ParallelRuntime::group_of(ProcessId pid) const {
  return sched_.fiber(pid).pgroup_->id;
}

ProcessId ParallelRuntime::current_on_this_thread() const {
  return (t_worker != nullptr && t_worker->rt == this) ? t_worker->current
                                                       : kNoProcess;
}

Stack ParallelRuntime::acquire_stack(Worker* w, std::size_t bytes) {
  if (w != nullptr) {
    while (!w->stack_cache.empty()) {
      Stack s = std::move(w->stack_cache.back());
      w->stack_cache.pop_back();
      // Cached stacks are NOT decommitted — their pages stay hot, which
      // is the per-worker free list's whole advantage under churn.
      if (s.size() >= bytes) return s;
      sched_.stack_pool_.release(std::move(s));
    }
  }
  return sched_.stack_pool_.acquire(bytes);
}

void ParallelRuntime::reclaim_stack(Worker& w, Fiber& f) {
  if (!f.stack_.valid()) return;
  if (w.stack_cache.size() < 64) {
    w.stack_cache.push_back(f.release_stack());
    return;
  }
  sched_.stack_pool_.release(f.release_stack());
}

ProcessId ParallelRuntime::spawn(GroupId gid, std::string name,
                                 std::function<void()> body) {
  Worker* w =
      (t_worker != nullptr && t_worker->rt == this) ? t_worker : nullptr;
  if (gid == kInheritGroup) {
    // Dynamic spawn from a fiber stays in the spawner's group (its
    // performance); spawns from outside land in group 0.
    gid = (w != nullptr && w->current != kNoProcess)
              ? sched_.fiber(w->current).pgroup_->id
              : 0;
  }
  Group& g = group(gid);
  Stack stack = acquire_stack(w, sched_.opts_.stack_bytes);
  ProcessId pid;
  {
    std::lock_guard<std::mutex> lk(spawn_mu_);
    pid = static_cast<ProcessId>(sched_.fibers_.size());
    auto f = std::make_unique<Fiber>(pid, std::move(name), std::move(body),
                                     std::move(stack));
    f->scheduler_ = &sched_;
    f->pgroup_ = &g;
    sched_.fibers_.push(std::move(f));
  }
  ++sched_.live_;
  Fiber& f = sched_.fiber(pid);
  bool enq = false;
  {
    std::lock_guard<std::mutex> gl(g.mu);
    f.in_ready_ = true;
    g.ready.push(pid);
    enq = mark_queued(g);
  }
  if (enq) push_shard(&g);
  if (sched_.bus_.wants(obs::Subsystem::Scheduler))
    sched_.bus_.publish({obs::EventKind::Instant, obs::Subsystem::Scheduler,
                         obs::kAutoTime, pid, obs::kNoLane, "spawn",
                         f.name()});
  return pid;
}

bool ParallelRuntime::mark_queued(Group& g) {
  if (g.active || g.queued || g.ready.empty()) return false;
  g.queued = true;
  return true;
}

void ParallelRuntime::push_shard(Group* g) {
  const std::uint32_t home = g->home.load(std::memory_order_relaxed);
  {
    Shard& s = *shards_[home];
    std::lock_guard<std::mutex> lk(s.mu);
    s.runnable.push(g);
  }
  // Publish the work BEFORE checking for sleepers: an idle worker that
  // misses this increment in its unlocked scan re-checks it after
  // incrementing idlers_ under idle_mu_, and our notify below waits on
  // that same mutex — one side always sees the other.
  queued_groups_.fetch_add(1, std::memory_order_release);
  std::lock_guard<std::mutex> lk(idle_mu_);
  if (idlers_ > 0) idle_cv_.notify_one();
}

void ParallelRuntime::push_shard_locked_idle(Group* g) {
  const std::uint32_t home = g->home.load(std::memory_order_relaxed);
  {
    Shard& s = *shards_[home];
    std::lock_guard<std::mutex> lk(s.mu);
    s.runnable.push(g);
  }
  queued_groups_.fetch_add(1, std::memory_order_release);
  // idle_mu_ already held by the quiescing worker; it broadcasts once
  // the clock advance is complete.
}

ParallelRuntime::Group* ParallelRuntime::acquire_group(Worker& w) {
  const std::size_t n = shards_.size();
  {
    Shard& own = *shards_[w.index];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.runnable.empty()) {
      Group* g = own.runnable.pop_front();
      queued_groups_.fetch_sub(1, std::memory_order_relaxed);
      return g;
    }
  }
  if (n == 1) return nullptr;
  // Steal sweep from a random victim offset: randomized steal timing
  // (the TSan stress leans on this) and no convoy on shard 0.
  const auto r = static_cast<std::size_t>(w.rng.below(n));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t si = (r + i) % n;
    if (si == w.index) continue;
    Shard& s = *shards_[si];
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.runnable.empty()) continue;
    Group* g = s.runnable.steal_back();
    queued_groups_.fetch_sub(1, std::memory_order_relaxed);
    steals_.fetch_add(1, std::memory_order_relaxed);
    return g;
  }
  return nullptr;
}

void ParallelRuntime::run_group(Worker& w, Group* g) {
  {
    std::lock_guard<std::mutex> lk(g->mu);
    g->queued = false;
    g->active = true;
    // The group now lives on this worker's shard: wakes it generates
    // requeue it here, keeping its working set on this core.
    g->home.store(w.index, std::memory_order_relaxed);
  }
  std::size_t quantum = quantum_;
  while (!stop_.load(std::memory_order_relaxed)) {
    Fiber* f = nullptr;
    {
      std::lock_guard<std::mutex> lk(g->mu);
      if (quantum > 0 && !g->ready.empty()) {
        const ProcessId pid = g->ready.pop_front();
        f = &sched_.fiber(pid);
        f->in_ready_ = false;
        f->set_state(FiberState::Running);
      }
    }
    if (f == nullptr) break;
    --quantum;
    dispatch(w, *f);
  }
  bool requeue = false;
  {
    std::lock_guard<std::mutex> lk(g->mu);
    g->active = false;
    // Quantum expired with runnable fibers left (or a wake landed while
    // active): back on the shard for any worker to continue.
    requeue = mark_queued(*g);
  }
  if (requeue) push_shard(g);
}

void ParallelRuntime::dispatch(Worker& w, Fiber& f) {
  f.last_progress_ = sched_.now_;
  w.current = f.id();
  ++w.steps;
  if (sched_.bus_.wants(obs::Subsystem::Scheduler))
    sched_.bus_.publish({obs::EventKind::Instant, obs::Subsystem::Scheduler,
                         obs::kAutoTime, f.id(), obs::kNoLane, "dispatch",
                         "", static_cast<double>(w.steps)});
  sched_.switch_to(w.exec, f);
  w.current = kNoProcess;
  post_step(w, f);
}

void ParallelRuntime::post_step(Worker& w, Fiber& f) {
  // Reading f's state without the group mutex is same-thread-safe here:
  // the fiber wrote it on this very thread before switching out, and
  // remote wakers never mutate state while p_commit_pending_ is up.
  switch (f.state()) {
    case FiberState::Done:
      finish_done(w, f);
      break;
    case FiberState::Ready: {
      // A yield: requeue on the (active) group. A wake token left by an
      // early cross-group unblock rides through untouched — it pays for
      // the fiber's NEXT park, not for a mere yield.
      Group& g = *f.pgroup_;
      std::lock_guard<std::mutex> lk(g.mu);
      SCRIPT_ASSERT(!f.in_ready_, "yielding fiber already queued");
      f.in_ready_ = true;
      g.ready.push(f.id());
      break;
    }
    case FiberState::Blocked:
    case FiberState::Sleeping:
      commit_park(w, f);
      break;
    case FiberState::Running:
      SCRIPT_PANIC("fiber switched out while still Running");
  }
}

void ParallelRuntime::commit_park(Worker& w, Fiber& f) {
  (void)w;
  Group& g = *f.pgroup_;
  bool arm = false;
  std::uint64_t due = 0;
  std::uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lk(g.mu);
    SCRIPT_ASSERT(f.p_commit_pending_, "park without a pending commit");
    f.p_commit_pending_ = false;
    if (f.p_wake_pending_) {
      // Woken before the context was even saved (cross-group unblock,
      // or join's wake-before-park): the park dissolves into a wake.
      f.p_wake_pending_ = false;
      f.p_timer_req_ = false;
      if (f.state() == FiberState::Sleeping) {
        // sleep_for raced a wake: account the (zero-length) sleep span.
        f.set_state(FiberState::Blocked);
        f.block_start_ = f.sleep_start_;
      }
      wake_locked(f, g);  // group is quiescent-for-us: queue push only
    } else if (f.p_timer_req_) {
      f.p_timer_req_ = false;
      f.timer_armed_ = true;
      arm = true;
      due = f.p_timer_due_;
      gen = f.wake_gen_;
    }
  }
  if (arm) {
    std::lock_guard<std::mutex> lk(timer_mu_);
    timers_.push(Scheduler::Timer{due, timer_seq_++, f.id(), gen});
  }
}

void ParallelRuntime::wake_locked(Fiber& f, Group& g) {
  f.set_state(FiberState::Ready);
  f.set_block_reason("");
  f.blocked_ticks_ += sched_.now_ - f.block_start_;
  f.waiting_on_ = kNoProcess;
  f.timed_out_ = false;
  f.timeout_cleanup_ = nullptr;  // woken normally: waker consumed the entry
  if (f.timer_armed_) {
    f.timer_armed_ = false;
    stale_timers_.fetch_add(1, std::memory_order_relaxed);
  }
  ++f.wake_gen_;
  SCRIPT_ASSERT(!f.in_ready_, "woken fiber already queued");
  f.in_ready_ = true;
  g.ready.push(f.id());
}

void ParallelRuntime::finish_done(Worker& w, Fiber& f) {
  Group& g = *f.pgroup_;
  std::vector<ProcessId> joiners;
  {
    std::lock_guard<std::mutex> lk(g.mu);
    f.retired_ = true;
    joiners.swap(f.joiners_);
  }
  // Wake joiners AFTER releasing our group mutex — they may live in
  // other groups, and two group locks are never held at once.
  for (const ProcessId j : joiners) unblock(j);
  reclaim_stack(w, f);
  sanitizer::tsan_destroy_context(f.tsan_ctx_);
  f.tsan_ctx_ = nullptr;
  if (f.failure() != nullptr) {
    bool expected = false;
    if (stop_.compare_exchange_strong(expected, true)) {
      std::lock_guard<std::mutex> lk(idle_mu_);
      first_failure_ = f.failure();
    }
    idle_cv_.notify_all();  // idle workers re-evaluate stop_
  }
}

void ParallelRuntime::yield(Fiber& f) {
  f.set_state(FiberState::Ready);
  sched_.switch_out(f);
}

void ParallelRuntime::block(Fiber& f, const std::string& reason,
                            ProcessId waiting_on) {
  Group& g = *f.pgroup_;
  {
    std::lock_guard<std::mutex> lk(g.mu);
    f.set_state(FiberState::Blocked);
    f.set_block_reason(reason);
    f.block_start_ = sched_.now_;
    f.waiting_on_ = waiting_on;
    f.p_commit_pending_ = true;
  }
  if (sched_.bus_.wants(obs::Subsystem::Scheduler))
    sched_.bus_.publish({obs::EventKind::SpanBegin, obs::Subsystem::Scheduler,
                         obs::kAutoTime, f.id(), obs::kNoLane, "blocked",
                         reason});
  sched_.switch_out(f);
}

void ParallelRuntime::sleep_for(Fiber& f, std::uint64_t ticks) {
  if (ticks == 0) {
    yield(f);
    return;
  }
  Group& g = *f.pgroup_;
  {
    std::lock_guard<std::mutex> lk(g.mu);
    f.set_state(FiberState::Sleeping);
    f.sleep_start_ = sched_.now_;
    f.p_timer_req_ = true;
    f.p_timer_due_ = sched_.now_ + ticks;
    f.p_commit_pending_ = true;
  }
  if (sched_.bus_.wants(obs::Subsystem::Scheduler))
    sched_.bus_.publish({obs::EventKind::SpanBegin, obs::Subsystem::Scheduler,
                         obs::kAutoTime, f.id(), obs::kNoLane, "sleeping",
                         "", static_cast<double>(ticks)});
  sched_.switch_out(f);
}

bool ParallelRuntime::block_with_timeout(Fiber& f, const std::string& reason,
                                         std::uint64_t ticks,
                                         std::function<void()> on_timeout,
                                         ProcessId waiting_on) {
  Group& g = *f.pgroup_;
  {
    std::lock_guard<std::mutex> lk(g.mu);
    f.set_state(FiberState::Blocked);
    f.set_block_reason(reason);
    f.block_start_ = sched_.now_;
    f.waiting_on_ = waiting_on;
    f.timed_out_ = false;
    f.timeout_cleanup_ = std::move(on_timeout);
    f.p_timer_req_ = true;
    f.p_timer_due_ = sched_.now_ + ticks;
    f.p_commit_pending_ = true;
  }
  if (sched_.bus_.wants(obs::Subsystem::Scheduler))
    sched_.bus_.publish({obs::EventKind::SpanBegin, obs::Subsystem::Scheduler,
                         obs::kAutoTime, f.id(), obs::kNoLane, "blocked",
                         reason, static_cast<double>(ticks)});
  sched_.switch_out(f);
  return f.timed_out_;  // own fiber resumed: safe to read plainly
}

void ParallelRuntime::join(Fiber& f, ProcessId target) {
  Fiber& t = sched_.fiber(target);
  Group& gt = *t.pgroup_;
  {
    std::lock_guard<std::mutex> lk(gt.mu);
    // retired_, not state_: only the mutex hand-off gives the joiner a
    // happens-before edge with the target's body. A Done-but-unretired
    // target is still being processed by its worker — register and let
    // its retire drain us (possibly via the wake-before-park flag).
    if (t.retired_) return;
    t.joiners_.push_back(f.id());
  }
  block(f, "joining " + t.name(), target);
}

void ParallelRuntime::unblock(ProcessId pid) {
  Fiber& f = sched_.fiber(pid);
  Group& g = *f.pgroup_;
  bool enq = false;
  {
    std::lock_guard<std::mutex> lk(g.mu);
    const FiberState st = f.state();
    if (st == FiberState::Blocked && !f.p_commit_pending_) {
      wake_locked(f, g);
      enq = mark_queued(g);
    } else {
      // Not yet parked from this thread's point of view: the target is
      // Running (join's wake-before-park), mid-commit (context not yet
      // saved), or still Ready because its group has not been
      // dispatched since the protocol decided it is about to block —
      // orderings the deterministic FIFO makes impossible but parallel
      // groups allow. Leave a wake token; the park commit (the park
      // this unblock pairs with, by the caller's protocol) consumes it.
      SCRIPT_ASSERT(st != FiberState::Done,
                    "unblock on finished fiber " + f.name());
      f.p_wake_pending_ = true;
    }
  }
  if (enq) push_shard(&g);
  if (sched_.bus_.wants(obs::Subsystem::Scheduler))
    sched_.bus_.publish({obs::EventKind::SpanEnd, obs::Subsystem::Scheduler,
                         obs::kAutoTime, pid, obs::kNoLane, "blocked", ""});
}

void ParallelRuntime::wake_at(ProcessId pid, std::uint64_t ticks_from_now) {
  if (ticks_from_now == 0) {
    unblock(pid);
    return;
  }
  Fiber& f = sched_.fiber(pid);
  Group& g = *f.pgroup_;
  std::uint64_t due = 0;
  std::uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lk(g.mu);
    // wake_at charges latency to a parked rendezvous peer — same net,
    // hence same group, hence the park is committed (this worker
    // committed it before dispatching us).
    SCRIPT_ASSERT(f.state() == FiberState::Blocked && !f.p_commit_pending_,
                  "wake_at on non-blocked fiber " + f.name());
    f.set_state(FiberState::Sleeping);
    f.set_block_reason("");
    f.blocked_ticks_ += sched_.now_ - f.block_start_;
    f.sleep_start_ = sched_.now_;
    f.waiting_on_ = kNoProcess;
    f.timeout_cleanup_ = nullptr;
    if (f.timer_armed_) {
      f.timer_armed_ = false;
      stale_timers_.fetch_add(1, std::memory_order_relaxed);
    }
    ++f.wake_gen_;
    f.timer_armed_ = true;
    due = sched_.now_ + ticks_from_now;
    gen = f.wake_gen_;
  }
  {
    std::lock_guard<std::mutex> lk(timer_mu_);
    timers_.push(Scheduler::Timer{due, timer_seq_++, pid, gen});
  }
  if (sched_.bus_.wants(obs::Subsystem::Scheduler)) {
    sched_.bus_.publish({obs::EventKind::SpanEnd, obs::Subsystem::Scheduler,
                         obs::kAutoTime, pid, obs::kNoLane, "blocked", ""});
    sched_.bus_.publish({obs::EventKind::SpanBegin, obs::Subsystem::Scheduler,
                         obs::kAutoTime, pid, obs::kNoLane, "sleeping", "",
                         static_cast<double>(ticks_from_now)});
  }
}

void ParallelRuntime::fire_timer_locked(Fiber& f, bool* was_sleeping) {
  SCRIPT_ASSERT(!f.p_commit_pending_,
                "timer fired for an uncommitted park");
  f.timer_armed_ = false;
  ++f.wake_gen_;
  *was_sleeping = f.state() == FiberState::Sleeping;
  if (*was_sleeping) {
    f.set_state(FiberState::Ready);
    f.slept_ticks_ += sched_.now_ - f.sleep_start_;
  } else {
    SCRIPT_ASSERT(f.state() == FiberState::Blocked,
                  "live timer fired for non-parked fiber");
    f.set_state(FiberState::Ready);
    f.set_block_reason("");
    f.blocked_ticks_ += sched_.now_ - f.block_start_;
    f.waiting_on_ = kNoProcess;
    f.timed_out_ = true;
    if (f.timeout_cleanup_) {
      auto cleanup = std::move(f.timeout_cleanup_);
      f.timeout_cleanup_ = nullptr;
      cleanup();  // group-confined by contract: touches no other locks
    }
  }
  SCRIPT_ASSERT(!f.in_ready_, "timer-woken fiber already queued");
  f.in_ready_ = true;
  f.pgroup_->ready.push(f.id());
}

void ParallelRuntime::purge_timers_locked() {
  std::vector<Scheduler::Timer>& raw = timers_.raw();
  raw.erase(std::remove_if(raw.begin(), raw.end(),
                           [this](const Scheduler::Timer& t) {
                             Fiber& f = sched_.fiber(t.pid);
                             std::lock_guard<std::mutex> gl(f.pgroup_->mu);
                             return t.gen != f.wake_gen_;
                           }),
            raw.end());
  std::make_heap(raw.begin(), raw.end(), std::greater<>{});
  stale_timers_.store(0, std::memory_order_relaxed);
}

bool ParallelRuntime::quiesce() {
  // idle_mu_ is held and every worker is idle: group states are stable,
  // so the lock order idle_mu_ → timer_mu_ → group.mu → shard.mu taken
  // here nests safely (no running path holds a group or shard mutex
  // while taking timer_mu_ or idle_mu_).
  std::lock_guard<std::mutex> tl(timer_mu_);
  const std::size_t stale = stale_timers_.load(std::memory_order_relaxed);
  if (stale > 64 && stale * 2 > timers_.size()) purge_timers_locked();
  for (;;) {
    while (!timers_.empty()) {
      const Scheduler::Timer t = timers_.top();
      Fiber& f = sched_.fiber(t.pid);
      bool is_stale;
      {
        std::lock_guard<std::mutex> gl(f.pgroup_->mu);
        is_stale = t.gen != f.wake_gen_;
      }
      if (!is_stale) break;
      timers_.pop();
      if (stale_timers_.load(std::memory_order_relaxed) > 0)
        stale_timers_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (timers_.empty()) return false;  // nothing can ever run again
    const std::uint64_t due = timers_.top().due;
    const std::uint64_t before = sched_.now_;
    if (due > before) sched_.now_ = due;
    bool woke = false;
    while (!timers_.empty() && timers_.top().due <= sched_.now_) {
      const Scheduler::Timer t = timers_.top();
      timers_.pop();
      Fiber& f = sched_.fiber(t.pid);
      Group& g = *f.pgroup_;
      bool enq = false;
      bool fired = false;
      bool was_sleeping = false;
      {
        std::lock_guard<std::mutex> gl(g.mu);
        if (t.gen == f.wake_gen_) {
          fire_timer_locked(f, &was_sleeping);
          enq = mark_queued(g);
          fired = true;
        } else if (stale_timers_.load(std::memory_order_relaxed) > 0) {
          stale_timers_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      if (enq) push_shard_locked_idle(&g);
      if (fired) {
        woke = true;
        if (sched_.bus_.wants(obs::Subsystem::Scheduler))
          sched_.bus_.publish(
              {obs::EventKind::SpanEnd, obs::Subsystem::Scheduler,
               obs::kAutoTime, t.pid, obs::kNoLane,
               was_sleeping ? "sleeping" : "blocked",
               was_sleeping ? "" : "timeout"});
      }
    }
    if (woke) {
      if (sched_.now_ != before &&
          sched_.bus_.wants(obs::Subsystem::Scheduler))
        sched_.bus_.publish({obs::EventKind::Counter,
                             obs::Subsystem::Scheduler, sched_.now_,
                             obs::kNoPid, obs::kNoLane, "virtual_time", "",
                             static_cast<double>(sched_.now_)});
      return true;
    }
    // Every entry at this instant was stale: advance to the next one.
  }
}

void ParallelRuntime::worker_main(Worker* w) {
  t_worker = w;
  ParallelRuntime& rt = *w->rt;
  w->exec.tsan_ctx = sanitizer::tsan_current_context();
  std::unique_lock<std::mutex> lk(rt.idle_mu_);
  for (;;) {
    if (rt.shutdown_) break;
    if (!rt.run_active_) {
      rt.idle_cv_.wait(lk);
      continue;
    }
    if (!rt.stop_.load(std::memory_order_relaxed) &&
        rt.queued_groups_.load(std::memory_order_acquire) > 0) {
      lk.unlock();
      while (!rt.stop_.load(std::memory_order_relaxed)) {
        Group* g = rt.acquire_group(*w);
        if (g == nullptr) break;
        rt.run_group(*w, g);
      }
      lk.lock();
      continue;
    }
    ++rt.idlers_;
    // A failing fiber set stop_: queued groups will never be drained,
    // so they must not keep the run (or this loop) alive.
    const bool stopping = rt.stop_.load(std::memory_order_relaxed);
    if (rt.idlers_ == rt.nworkers_ &&
        (stopping ||
         rt.queued_groups_.load(std::memory_order_acquire) == 0)) {
      // Everyone idle, nothing queued — with idle_mu_ held this is a
      // true global quiescence point (any producer's notify serializes
      // behind us). Advance the clock or declare the run over.
      if (!stopping && rt.quiesce()) {
        rt.idle_cv_.notify_all();  // timer wakes queued fresh groups
      } else {
        rt.run_active_ = false;
        rt.run_done_ = true;
        rt.main_cv_.notify_all();
        rt.idle_cv_.notify_all();
      }
      --rt.idlers_;
      continue;
    }
    if (!stopping &&
        rt.queued_groups_.load(std::memory_order_acquire) > 0) {
      // Work raced in between our scan and the idle count: retry.
      --rt.idlers_;
      continue;
    }
    rt.idle_cv_.wait(lk);
    --rt.idlers_;
  }
  t_worker = nullptr;
}

void ParallelRuntime::start_threads() {
  if (!threads_.empty()) return;
  workers_store_.reserve(nworkers_);
  for (std::size_t i = 0; i < nworkers_; ++i) {
    auto w = std::make_unique<Worker>();
    w->rt = this;
    w->index = static_cast<std::uint32_t>(i);
    w->rng = support::Rng(sched_.opts_.seed * 0x9e3779b97f4a7c15ull + i + 1);
    workers_store_.push_back(std::move(w));
  }
  threads_.reserve(nworkers_);
  for (auto& w : workers_store_)
    threads_.emplace_back(&ParallelRuntime::worker_main, w.get());
}

RunResult ParallelRuntime::run() {
  SCRIPT_ASSERT(!sched_.running_, "Scheduler::run is not reentrant");
  SCRIPT_ASSERT(sched_.opts_.policy == SchedulePolicy::Fifo,
                "parallel mode supports the Fifo policy only "
                "(Random/Scripted/explore() need the deterministic backend)");
  SCRIPT_ASSERT(sched_.opts_.max_steps_per_run == 0,
                "max_steps_per_run needs the deterministic backend");
  SCRIPT_ASSERT(sched_.fault_plan_ == nullptr,
                "FaultPlan injection needs the deterministic backend");
  SCRIPT_ASSERT(sched_.exporter_ == nullptr && sched_.causal_ == nullptr,
                "tracing/causal tracking needs the deterministic backend");
  SCRIPT_ASSERT(sched_.deadlines_.empty(),
                "deadlines/budgets need the deterministic backend");
  SCRIPT_ASSERT(sched_.health_ == nullptr,
                "health monitoring needs the deterministic backend");
  sched_.running_ = true;
  sched_.service_debug();  // safepoint: run boundary
  start_threads();
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    stop_.store(false, std::memory_order_relaxed);
    run_done_ = false;
    run_active_ = true;
  }
  idle_cv_.notify_all();
  std::exception_ptr failure;
  {
    std::unique_lock<std::mutex> lk(idle_mu_);
    main_cv_.wait(lk, [this] { return run_done_; });
    failure = first_failure_;
    first_failure_ = nullptr;
  }
  // run_done_ was set by the last idler while holding idle_mu_: every
  // worker is parked (or heading to the wait with no work in hand), and
  // the mutex hand-off makes all their writes visible here.
  sched_.running_ = false;
  for (auto& w : workers_store_) {
    sched_.steps_ += w->steps;
    w->steps = 0;
  }
  // Drain the per-worker stack caches so spawns from the main thread
  // (the churn pattern: spawn a wave, run, repeat) reuse hot stacks.
  for (auto& w : workers_store_) {
    for (Stack& s : w->stack_cache) sched_.stack_pool_.release(std::move(s));
    w->stack_cache.clear();
  }
  if (failure != nullptr) std::rethrow_exception(failure);
  RunResult result;
  result.final_time = sched_.now_;
  result.steps = sched_.steps_;
  const std::size_t n = sched_.fibers_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Fiber& f = sched_.fibers_[i];
    if (f.state() == FiberState::Blocked)
      result.blocked.emplace_back(f.id(), f.block_reason());
    SCRIPT_ASSERT(f.state() != FiberState::Sleeping,
                  "sleeper left behind after clock drained");
  }
  result.outcome = result.blocked.empty() ? RunResult::Outcome::AllDone
                                          : RunResult::Outcome::Deadlock;
  if (result.outcome == RunResult::Outcome::Deadlock) {
    if (sched_.bus_.wants(obs::Subsystem::Scheduler))
      sched_.bus_.publish({obs::EventKind::Instant,
                           obs::Subsystem::Scheduler, obs::kAutoTime,
                           obs::kNoPid, obs::kNoLane, "deadlock", "",
                           static_cast<double>(result.blocked.size())});
    if (sched_.flight_ != nullptr) sched_.flight_->trigger_dump("deadlock");
    if (sched_.timeline_ != nullptr)
      sched_.timeline_->trigger_dump("deadlock");
  }
  sched_.service_debug();  // safepoint: run boundary
  return result;
}

}  // namespace script::runtime
