// TcpTransport — the real-socket Transport backend.
//
// Epoll-driven, non-blocking end to end, length-prefixed frames:
//
//   [u32 length, little-endian][length bytes]
//
// The first frame on every connection is a link hello — payload
// "SCRW" + [u32 sender PeerId] — so the accepting side learns who
// dialed in (dialers already know whom they dialed; they send the
// hello, acceptors consume it). Everything after is opaque payload for
// the layer above (PeerSupervisor adds its own incarnation header).
//
// Discipline, shared with DebugEndpoint and enforced through the same
// support::io hook table so one EINTR/short-write interposer covers
// every syscall site in the process:
//   * EINTR: retry the call — a signal is not a dead peer;
//   * short write: advance the cursor, finish at the next safepoint;
//   * EAGAIN: stop pumping, never tear down.
//
// Outbound frames queue per peer, bounded by max_queue_bytes; past the
// bound send() refuses and counts (frames_shed) — a slow peer sheds
// load, it does not grow our heap. A connection that dies leaves its
// queue intact: frames drain after reconnect (the application layers
// above decide staleness via incarnations, not the socket layer).
//
// Reconnect is capped exponential backoff on the VIRTUAL clock — the
// same loop-multiplication arithmetic as runtime::Supervisor restart
// backoff, bit-exact on every libm, so a sim replay of a reconnect
// schedule is byte-identical. The Wire pump's wait_io pacing gives
// those virtual ticks a real-time floor.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "runtime/transport.hpp"

namespace script::runtime {

struct TcpOptions {
  std::uint64_t backoff_initial = 5;   // ticks before first retry
  double backoff_factor = 2.0;
  std::uint64_t backoff_max = 500;     // cap
  std::size_t max_queue_bytes = 1u << 20;   // per-peer outbound cap
  std::size_t max_frame_bytes = 16u << 20;  // wire sanity limit
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(PeerId self, TcpOptions opts = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Accept inbound links on 127.0.0.1:`port` (0 = ephemeral; see
  /// bound_port()). Returns false with errno intact on failure.
  bool listen(std::uint16_t port);
  std::uint16_t bound_port() const { return bound_port_; }

  /// WE dial `id` at host:port (connections open lazily at the next
  /// service()). Topologies pick one dialer per pair: the lockdb
  /// harness has drivers dial servers and replica i dial replica j>i.
  void add_peer(PeerId id, const std::string& host, std::uint16_t port);

  PeerId self() const override { return self_; }
  bool send(PeerId to, std::string frame) override;
  std::size_t poll(const PollFn& fn) override;
  void service() override;
  void wait_io(int timeout_us) override;
  void kick(PeerId peer) override;
  void slow_close(PeerId peer) override;
  LinkState link_state(PeerId peer) const override;
  std::vector<PeerId> peers() const override;

 private:
  struct Conn {
    int fd = -1;
    PeerId peer = kNoPeer;  // kNoPeer: accepted, hello not yet read
    bool connecting = false;
    bool hello_sent = false;
    bool epollout = false;  // EPOLLOUT currently armed
    std::string in;
    std::string out;  // flattened [len][bytes]... with partial-write cursor
  };

  struct Peer {
    std::string host;
    std::uint16_t port = 0;
    bool dial = false;       // we connect (vs. they dial in)
    int conn = -1;           // index into conns_, -1 = none
    bool was_up = false;     // for reconnects accounting
    std::uint64_t attempts = 0;
    std::uint64_t next_attempt = 0;  // virtual tick
    std::deque<std::string> queue;   // un-flushed frames
    std::size_t queue_bytes = 0;
  };

  struct Received {
    PeerId from;
    std::string bytes;
  };

  int conn_of(PeerId id) const;
  void start_connect(PeerId id);
  void close_conn(int ci, const char* why);
  void drop_link(PeerId id, const char* why);   // close + arm backoff
  void pump_out(int ci);
  void pump_in(int ci);
  void on_frame(int ci, std::string frame);
  void want_out(int ci, bool on);
  void feed_conn(PeerId id);  // move queued frames into conn.out

  PeerId self_;
  TcpOptions opts_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::vector<Conn> conns_;
  std::map<PeerId, Peer> peers_;  // ordered: deterministic sweeps
  std::deque<Received> received_;
};

}  // namespace script::runtime
