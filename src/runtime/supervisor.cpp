#include "runtime/supervisor.hpp"

#include <algorithm>

#include "obs/health.hpp"
#include "obs/inspector.hpp"
#include "obs/json.hpp"
#include "support/panic.hpp"

namespace script::runtime {

namespace {

const char* state_name(Supervisor::ChildState s) {
  switch (s) {
    case Supervisor::ChildState::Running: return "running";
    case Supervisor::ChildState::BackingOff: return "backing-off";
    case Supervisor::ChildState::Failed: return "FAILED";
    case Supervisor::ChildState::Done: return "done";
  }
  return "?";
}

}  // namespace

Supervisor::Supervisor(Scheduler& sched, std::string name)
    : sched_(&sched), name_(std::move(name)) {
  spawner_ = [this](std::string n, std::function<void()> body) {
    return sched_->spawn(std::move(n), std::move(body));
  };
  crash_hook_id_ =
      sched_->add_crash_hook([this](ProcessId pid) { on_crash(pid); });
  report_section_id_ =
      sched_->add_report_section([this] { return report(); });
}

Supervisor::~Supervisor() {
  if (health_ != nullptr) health_->unwatch_restarts(health_watch_id_);
  sched_->remove_report_section(report_section_id_);
  sched_->remove_crash_hook(crash_hook_id_);
}

std::uint64_t Supervisor::supervise(ProcessId pid, std::string name,
                                    Factory factory, ChildOptions opts) {
  SCRIPT_ASSERT(factory != nullptr, "supervised child needs a factory");
  const std::uint64_t id = next_child_id_++;
  Child c;
  c.id = id;
  c.name = std::move(name);
  c.factory = std::move(factory);
  c.opts = opts;
  c.pid = pid;
  children_.emplace(id, std::move(c));
  by_pid_[pid] = id;
  return id;
}

void Supervisor::forget(std::uint64_t child) {
  const auto it = children_.find(child);
  if (it == children_.end()) return;
  by_pid_.erase(it->second.pid);
  it->second.state = ChildState::Done;
}

void Supervisor::on_crash(ProcessId pid) {
  const auto by = by_pid_.find(pid);
  if (by == by_pid_.end()) return;
  Child& c = children_.at(by->second);
  by_pid_.erase(by);
  if (c.state != ChildState::Running) return;

  if (c.opts.policy == RestartPolicy::Escalate) {
    give_up(c, "policy escalates");
    return;
  }
  // Restart intensity: crashes inside the sliding window, this one
  // included. Exceeding max_restarts means the child is not recovering
  // — restarting it forever would just mask the fault.
  const std::uint64_t now = sched_->now();
  std::vector<std::uint64_t> recent;
  for (const std::uint64_t t : c.crash_times)
    if (t + c.opts.restart_window > now) recent.push_back(t);
  recent.push_back(now);
  c.crash_times = std::move(recent);
  if (c.crash_times.size() > c.opts.max_restarts) {
    give_up(c, "restart intensity exceeded");
    return;
  }
  restart_later(c, pid);
}

void Supervisor::restart_later(Child& child, ProcessId crashed) {
  // Capped exponential backoff keyed to the crash count in the current
  // window (a child that was healthy for a full window starts over at
  // the initial backoff). Loop multiplication, not pow(): bit-exact on
  // every libm, so recovery schedules replay byte-identically.
  double b = static_cast<double>(child.opts.backoff_initial);
  for (std::size_t k = 1; k < child.crash_times.size(); ++k)
    b *= child.opts.backoff_factor;
  const auto backoff = std::min(
      child.opts.backoff_max,
      static_cast<std::uint64_t>(b));
  child.state = ChildState::BackingOff;
  child.last_backoff = backoff;
  publish("supervisor.backoff", child.name, crashed,
          static_cast<double>(backoff));

  // The restart agent is a throwaway fiber: it makes virtual time
  // advance to the restart instant even when everything else is parked
  // waiting for the child to come back.
  const std::uint64_t id = child.id;
  sched_->spawn(child.name + ".restart", [this, id, crashed, backoff] {
    sched_->sleep_for(backoff);
    const auto it = children_.find(id);
    if (it == children_.end()) return;
    Child& c = it->second;
    if (c.state != ChildState::BackingOff) return;  // forgotten meanwhile
    const ProcessId fresh =
        spawner_(c.name + "#" + std::to_string(c.restarts + 1),
                 c.factory());
    c.pid = fresh;
    c.state = ChildState::Running;
    ++c.restarts;
    ++total_restarts_;
    by_pid_[fresh] = id;
    publish("supervisor.restart", c.name, fresh,
            static_cast<double>(c.restarts));
    // The new incarnation causally follows the crashed one: recovery
    // shows up as a happens-before arrow across the restart.
    sched_->causal_edge(crashed, fresh, "restart");
    for (const auto& fn : restart_callbacks_) fn(id, crashed, fresh);
  });
}

void Supervisor::give_up(Child& child, const char* why) {
  child.state = ChildState::Failed;
  ++gave_up_;
  publish("supervisor.give_up", child.name + ": " + why, child.pid,
          static_cast<double>(child.restarts));
}

void Supervisor::publish(const char* name, std::string detail,
                         ProcessId pid, double value) {
  obs::EventBus& bus = sched_->bus();
  if (!bus.wants(obs::Subsystem::Recovery)) return;
  bus.publish({obs::EventKind::Instant, obs::Subsystem::Recovery,
               obs::kAutoTime, static_cast<obs::Pid>(pid), lane(), name,
               std::move(detail), value});
}

std::int32_t Supervisor::lane() {
  if (obs_lane_ == obs::kNoLane)
    obs_lane_ = sched_->bus().add_lane(name_);
  return obs_lane_;
}

Supervisor::ChildState Supervisor::state(std::uint64_t child) const {
  return children_.at(child).state;
}

ProcessId Supervisor::pid_of(std::uint64_t child) const {
  return children_.at(child).pid;
}

std::uint64_t Supervisor::restarts(std::uint64_t child) const {
  return children_.at(child).restarts;
}

std::uint64_t Supervisor::last_backoff(std::uint64_t child) const {
  return children_.at(child).last_backoff;
}

namespace {

std::size_t crashes_in_window_at(const std::vector<std::uint64_t>& times,
                                 std::uint64_t window, std::uint64_t now) {
  std::size_t n = 0;
  for (const std::uint64_t t : times)
    if (t + window > now) ++n;
  return n;
}

}  // namespace

std::size_t Supervisor::crashes_in_window(std::uint64_t child) const {
  const Child& c = children_.at(child);
  return crashes_in_window_at(c.crash_times, c.opts.restart_window,
                              sched_->now());
}

std::string Supervisor::snapshot_json() const {
  obs::json::Writer w;
  w.object();
  w.key("supervisor").value(name_);
  w.key("total_restarts").value(total_restarts_);
  w.key("gave_up").value(gave_up_);
  w.key("children").array();
  for (const auto& [id, c] : children_) {
    w.object();
    w.key("name").value(c.name);
    w.key("state").value(state_name(c.state));
    if (c.pid != kNoProcess)
      w.key("pid").value(static_cast<std::uint64_t>(c.pid));
    w.key("restarts").value(c.restarts);
    w.key("crashes_in_window")
        .value(static_cast<std::uint64_t>(crashes_in_window_at(
            c.crash_times, c.opts.restart_window, sched_->now())));
    w.key("max_restarts")
        .value(static_cast<std::uint64_t>(c.opts.max_restarts));
    w.key("last_backoff").value(c.last_backoff);
    w.end();
  }
  w.end().end();
  return w.str();
}

std::size_t Supervisor::attach_inspector(obs::Inspector& inspector) {
  return inspector.attach("supervisor",
                          [this] { return snapshot_json(); });
}

void Supervisor::enable_health(obs::HealthMonitor& monitor) {
  if (health_ != nullptr) return;
  health_ = &monitor;
  health_watch_id_ = monitor.watch_restarts(name_, [this] {
    std::vector<obs::HealthMonitor::RestartPressure> out;
    const std::uint64_t now = sched_->now();
    for (const auto& [id, c] : children_) {
      if (c.state == ChildState::Done) continue;
      out.push_back({c.name,
                     crashes_in_window_at(c.crash_times,
                                          c.opts.restart_window, now),
                     c.opts.max_restarts});
    }
    return out;
  });
}

std::string Supervisor::report() const {
  std::string out;
  for (const auto& [id, c] : children_) {
    if (c.state == ChildState::Running && c.restarts == 0) continue;
    if (c.state == ChildState::Done) continue;
    if (!out.empty()) out += "\n";
    out += name_ + ": child " + c.name + " [" + state_name(c.state) +
           "] restarts=" + std::to_string(c.restarts) +
           " last_backoff=" + std::to_string(c.last_backoff);
  }
  return out;
}

}  // namespace script::runtime
