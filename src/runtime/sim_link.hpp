// Communication-latency models.
//
// The paper's broadcast discussion (refs [12, 14]) compares strategies —
// star, spanning tree, pipeline — whose relative merits only appear when
// message transfer has a cost. We have no multi-node testbed, so latency
// is charged in virtual time: when a rendezvous completes, both parties
// are held for the modelled link latency. The *shape* of the strategy
// comparison (hop counts × per-hop cost, blocking structure) is exactly
// what these models reproduce.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/fiber.hpp"
#include "support/rng.hpp"

namespace script::runtime {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// Virtual-time cost of one message from `from` to `to`.
  virtual std::uint64_t latency(ProcessId from, ProcessId to) = 0;
};

/// Every message costs the same number of ticks.
class UniformLatency final : public LatencyModel {
 public:
  explicit UniformLatency(std::uint64_t ticks) : ticks_(ticks) {}
  std::uint64_t latency(ProcessId, ProcessId) override { return ticks_; }

 private:
  std::uint64_t ticks_;
};

/// base ± jitter, seeded (replayable).
class JitterLatency final : public LatencyModel {
 public:
  JitterLatency(std::uint64_t base, std::uint64_t jitter, std::uint64_t seed)
      : base_(base), jitter_(jitter), rng_(seed) {}
  std::uint64_t latency(ProcessId, ProcessId) override;

 private:
  std::uint64_t base_;
  std::uint64_t jitter_;
  support::Rng rng_;
};

/// An undirected multi-hop network: latency = hop-distance × per-hop cost.
/// Nodes are ProcessIds 0..n-1 (processes beyond n are treated as node
/// id % n, letting helper fibers share their owner's node).
class Topology final : public LatencyModel {
 public:
  Topology(std::size_t nodes, std::uint64_t ticks_per_hop);

  void add_edge(std::size_t a, std::size_t b);

  /// Recompute all-pairs hop distances (BFS per node). Call after the
  /// last add_edge; latency() panics on unreachable pairs.
  void freeze();

  std::uint64_t latency(ProcessId from, ProcessId to) override;

  std::size_t nodes() const { return n_; }
  std::uint64_t hops(std::size_t a, std::size_t b) const;

  // Ready-made shapes used by the benches.
  static Topology ring(std::size_t nodes, std::uint64_t ticks_per_hop);
  static Topology star(std::size_t nodes, std::uint64_t ticks_per_hop);
  static Topology line(std::size_t nodes, std::uint64_t ticks_per_hop);
  static Topology complete(std::size_t nodes, std::uint64_t ticks_per_hop);

 private:
  std::size_t n_;
  std::uint64_t per_hop_;
  std::vector<std::vector<std::size_t>> adj_;
  std::vector<std::vector<std::uint32_t>> dist_;
  bool frozen_ = false;
};

}  // namespace script::runtime
