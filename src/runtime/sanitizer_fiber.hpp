// Sanitizer fiber-switch annotations (no-ops outside sanitized builds).
//
// ASan tracks exactly one stack per thread. A ucontext switch moves sp
// somewhere ASan has never heard of, with two consequences:
//   * stack traces and stack-bounds checks are wrong while a fiber runs;
//   * an exception unwinding on a fiber stack cannot unpoison the frames
//     it destroys (__asan_handle_no_return bails when sp is outside the
//     thread's known stack), so dead frames leave use-after-scope shadow
//     behind — and any later execution over those addresses (a recycled
//     or re-mmapped stack) trips a false positive.
// __sanitizer_start_switch_fiber / __sanitizer_finish_switch_fiber keep
// ASan's notion of "the current stack" in sync with the scheduler: call
// start_switch on the outgoing side naming the incoming stack, and
// finish_switch first thing on the incoming side.
//
// TSan has the same problem one level up: its shadow state is keyed by
// the executing "fiber" context, and ucontext switches (especially the
// parallel mode's cross-thread group migration) must be announced with
// __tsan_create_fiber / __tsan_switch_to_fiber so the race detector
// follows the control transfer and inherits its happens-before edge.
// The tsan_* helpers below are no-ops outside -fsanitize=thread builds.
#pragma once

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define SCRIPT_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SCRIPT_ASAN_FIBERS 1
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define SCRIPT_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SCRIPT_TSAN_FIBERS 1
#endif
#endif

#ifdef SCRIPT_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif
#ifdef SCRIPT_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace script::runtime::sanitizer {

/// Announce a switch away from the current stack onto [bottom, bottom+
/// size). `fake_stack_save` stores the current context's fake-stack
/// handle for its later finish_switch; pass nullptr when the current
/// context is done for good (a dying fiber) so ASan retires it instead.
inline void start_switch(void** fake_stack_save, const void* bottom,
                         std::size_t size) {
#ifdef SCRIPT_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save;
  (void)bottom;
  (void)size;
#endif
}

/// Complete a switch on the incoming side. `fake_stack_save` is the
/// handle this context saved when it last left (nullptr on first entry);
/// the out-params receive the bounds of the stack we came from.
inline void finish_switch(void* fake_stack_save, const void** bottom_old,
                          std::size_t* size_old) {
#ifdef SCRIPT_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old, size_old);
#else
  (void)fake_stack_save;
  (void)bottom_old;
  (void)size_old;
#endif
}

/// TSan context for the calling thread's implicit fiber (each worker
/// thread and the deterministic scheduler loop record theirs once).
inline void* tsan_current_context() {
#ifdef SCRIPT_TSAN_FIBERS
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

/// Create a TSan context for a fiber about to run for the first time.
inline void* tsan_create_context() {
#ifdef SCRIPT_TSAN_FIBERS
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

/// Retire a finished fiber's TSan context. Must not be the context the
/// calling thread is currently executing in.
inline void tsan_destroy_context(void* ctx) {
#ifdef SCRIPT_TSAN_FIBERS
  if (ctx != nullptr) __tsan_destroy_fiber(ctx);
#else
  (void)ctx;
#endif
}

/// Announce the upcoming swapcontext to `ctx` (call immediately before).
/// The default flags publish a happens-before edge from the switching-
/// out context to the switched-in one — exactly the edge the real
/// control transfer provides.
inline void tsan_switch(void* ctx) {
#ifdef SCRIPT_TSAN_FIBERS
  if (ctx != nullptr) __tsan_switch_to_fiber(ctx, 0);
#else
  (void)ctx;
#endif
}

}  // namespace script::runtime::sanitizer
