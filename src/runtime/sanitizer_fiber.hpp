// ASan fiber-switch annotations (no-ops outside sanitized builds).
//
// ASan tracks exactly one stack per thread. A ucontext switch moves sp
// somewhere ASan has never heard of, with two consequences:
//   * stack traces and stack-bounds checks are wrong while a fiber runs;
//   * an exception unwinding on a fiber stack cannot unpoison the frames
//     it destroys (__asan_handle_no_return bails when sp is outside the
//     thread's known stack), so dead frames leave use-after-scope shadow
//     behind — and any later execution over those addresses (a recycled
//     or re-mmapped stack) trips a false positive.
// __sanitizer_start_switch_fiber / __sanitizer_finish_switch_fiber keep
// ASan's notion of "the current stack" in sync with the scheduler: call
// start_switch on the outgoing side naming the incoming stack, and
// finish_switch first thing on the incoming side.
#pragma once

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define SCRIPT_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SCRIPT_ASAN_FIBERS 1
#endif
#endif

#ifdef SCRIPT_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace script::runtime::sanitizer {

/// Announce a switch away from the current stack onto [bottom, bottom+
/// size). `fake_stack_save` stores the current context's fake-stack
/// handle for its later finish_switch; pass nullptr when the current
/// context is done for good (a dying fiber) so ASan retires it instead.
inline void start_switch(void** fake_stack_save, const void* bottom,
                         std::size_t size) {
#ifdef SCRIPT_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save;
  (void)bottom;
  (void)size;
#endif
}

/// Complete a switch on the incoming side. `fake_stack_save` is the
/// handle this context saved when it last left (nullptr on first entry);
/// the out-params receive the bounds of the stack we came from.
inline void finish_switch(void* fake_stack_save, const void** bottom_old,
                          std::size_t* size_old) {
#ifdef SCRIPT_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old, size_old);
#else
  (void)fake_stack_save;
  (void)bottom_old;
  (void)size_old;
#endif
}

}  // namespace script::runtime::sanitizer
