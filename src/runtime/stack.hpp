// Fiber stack allocation: mmap'd regions with an inaccessible guard page
// below the stack, so a role body that overflows its stack faults loudly
// instead of silently corrupting a neighbouring fiber.
#pragma once

#include <cstddef>

namespace script::runtime {

class Stack {
 public:
  /// Allocates `usable_size` bytes (rounded up to page size) plus one
  /// guard page. Panics on allocation failure.
  explicit Stack(std::size_t usable_size);
  ~Stack();

  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;
  Stack(Stack&& other) noexcept;
  Stack& operator=(Stack&& other) noexcept;

  /// Lowest usable address (above the guard page).
  void* base() const { return usable_; }
  std::size_t size() const { return usable_size_; }
  bool valid() const { return mapping_ != nullptr; }

  /// Return the usable pages to the OS (madvise DONTNEED) while keeping
  /// the mapping and the guard page intact: the physical memory is
  /// dropped, the next touch faults in zero pages. Best effort — a
  /// pooled stack that could not be decommitted is still reusable.
  void decommit() noexcept;

 private:
  void release() noexcept;

  void* mapping_ = nullptr;       // includes the guard page
  std::size_t mapping_size_ = 0;  // total mmap'd bytes
  void* usable_ = nullptr;
  std::size_t usable_size_ = 0;
};

}  // namespace script::runtime
