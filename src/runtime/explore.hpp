// Exhaustive interleaving exploration (stateless model checking).
//
// The paper's §V: "We also intend to explore issues of specification
// and verification of concurrent programs using scripts." This module
// is that exploration for small programs: because a run is fully
// determined by the sequence of scheduler decisions (which ready fiber
// runs at each step — the RNG and virtual clock are themselves
// schedule-deterministic), we can enumerate the decision tree by
// re-executing the program from scratch along each branch (à la
// stateless model checking).
//
//   auto stats = explore_interleavings(
//       [&](Scheduler& s, Net& n) { ...spawn the program... },
//       [&](Scheduler& s, const RunResult& r) { ...assert invariants... });
//
// The checker runs after EVERY interleaving; a gtest failure or
// exception inside it surfaces with the decision path that produced it.
//
// LIMITATION: a program with an unbounded busy-wait loop has infinite
// schedules (starve the loop forever); the per-run step bound truncates
// each such schedule, but the truncated subtree can still be
// exponential. Keep explored programs loop-free or loop-bounded —
// rendezvous-based blocking (channels, enrollment) is fine, because a
// blocked fiber is not schedulable and creates no decision points.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/fault.hpp"
#include "runtime/scheduler.hpp"

namespace script::runtime {

struct ExploreStats {
  std::uint64_t interleavings = 0;
  bool complete = false;  // false: stopped at max_runs
  std::uint64_t max_decision_depth = 0;
  /// Schedules cut off by the per-run step bound (a starved busy-wait
  /// loop makes some schedules infinite; those are truncated, reported
  /// to `check` with Outcome::StepLimit, and still backtracked past).
  std::uint64_t truncated_runs = 0;
};

struct ExploreOptions {
  std::uint64_t max_runs = 100000;
  std::uint64_t max_steps_per_run = 5000;
  std::size_t stack_bytes = 128 * 1024;
};

/// Enumerate every scheduler interleaving of the program constructed by
/// `build`, running `check` after each. `build` must be repeatable:
/// it is invoked once per interleaving on a fresh Scheduler and must
/// recreate all state the program touches.
ExploreStats explore_interleavings(
    const std::function<void(Scheduler&)>& build,
    const std::function<void(Scheduler&, const RunResult&)>& check,
    ExploreOptions opts = {});

// ---- Fault-schedule exploration ----
//
// A fault schedule is WHERE a process dies: here, one crash of one
// candidate process at one dispatch step. Crossed with full
// interleaving enumeration per schedule, this checks that the
// program's failure semantics hold at every crash point — the
// fault-injection analogue of the decision-tree walk above.

struct FaultExploreOptions {
  ExploreOptions base;
  /// Crash steps tried per candidate: 1..max_crash_step. Steps past
  /// the program's natural end just never fire (still explored).
  std::uint64_t max_crash_step = 8;
  /// Processes to crash. Spawn order is deterministic, so callers know
  /// their pids (spawn returns them; first spawn is the lowest pid).
  std::vector<ProcessId> candidate_pids;
  /// Also explore the schedule with no fault at all.
  bool include_fault_free = true;
};

struct FaultExploreStats {
  std::uint64_t schedules = 0;       // fault schedules enumerated
  std::uint64_t interleavings = 0;   // total runs across all schedules
  std::uint64_t truncated_runs = 0;
  bool complete = false;  // every schedule's exploration completed
};

/// For each fault schedule (each candidate pid crashed at each step
/// 1..max_crash_step, plus optionally the fault-free run), enumerate
/// every interleaving of `build`'s program with that FaultPlan
/// installed, and run `check` after each run. `build` must be
/// repeatable, exactly as for explore_interleavings.
FaultExploreStats explore_fault_schedules(
    const std::function<void(Scheduler&)>& build,
    const std::function<void(Scheduler&, const RunResult&, const FaultPlan&)>&
        check,
    FaultExploreOptions opts);

}  // namespace script::runtime
