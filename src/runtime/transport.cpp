#include "runtime/transport.hpp"

#include <algorithm>

namespace script::runtime {

const char* link_state_name(LinkState s) {
  switch (s) {
    case LinkState::Down:
      return "down";
    case LinkState::Connecting:
      return "connecting";
    case LinkState::Backoff:
      return "backoff";
    case LinkState::Up:
      return "up";
    case LinkState::Gone:
      return "gone";
  }
  return "?";
}

void Transport::publish(const char* name, std::string detail, double value) {
  if (bus_ == nullptr || !bus_->wants(obs::Subsystem::Link)) return;
  obs::Event e;
  e.subsystem = obs::Subsystem::Link;
  e.name = name;
  e.detail = std::move(detail);
  e.value = value;
  bus_->publish(e);
}

// ---- SimNetwork ----

void SimNetwork::attach(PeerId id, SimTransport* t) {
  if (endpoints_.size() <= id) {
    endpoints_.resize(id + 1, nullptr);
    down_.resize(id + 1, false);
  }
  endpoints_[id] = t;
}

void SimNetwork::detach(PeerId id, SimTransport* t) {
  if (id < endpoints_.size() && endpoints_[id] == t) endpoints_[id] = nullptr;
}

SimTransport* SimNetwork::endpoint(PeerId id) const {
  return id < endpoints_.size() ? endpoints_[id] : nullptr;
}

void SimNetwork::set_down(PeerId peer) {
  if (down_.size() <= peer) down_.resize(peer + 1, false);
  if (down_[peer]) return;
  down_[peer] = true;
  // A dead peer loses what its kernel had buffered: everything already
  // in flight toward it evaporates, exactly like a real crash.
  if (SimTransport* t = endpoint(peer)) t->inbox_.clear();
  // Every other endpoint sees its link to `peer` drop.
  for (SimTransport* t : endpoints_) {
    if (t == nullptr || t->self() == peer) continue;
    ++t->stats_.disconnects;
    t->publish("wire.link_down", "peer=" + std::to_string(peer));
  }
}

void SimNetwork::set_up(PeerId peer) {
  if (down_.size() <= peer) down_.resize(peer + 1, false);
  if (!down_[peer]) return;
  down_[peer] = false;
  for (SimTransport* t : endpoints_) {
    if (t == nullptr || t->self() == peer) continue;
    ++t->stats_.reconnects;
    t->publish("wire.link_up", "peer=" + std::to_string(peer));
  }
}

bool SimNetwork::is_down(PeerId peer) const {
  return peer < down_.size() && down_[peer];
}

// ---- SimTransport ----

SimTransport::SimTransport(SimNetwork& net, PeerId self)
    : net_(&net), self_(self) {
  net_->attach(self_, this);
}

SimTransport::~SimTransport() { net_->detach(self_, this); }

bool SimTransport::send(PeerId to, std::string frame) {
  if (net_->is_down(to) || net_->endpoint(to) == nullptr) {
    // The link is down: queue at the sender, bounded. This mirrors the
    // TCP backend's per-peer outbound queue during reconnect — sends
    // succeed until the bound, then shed with a count.
    if (pending_bytes_ + frame.size() > max_pending_) {
      ++stats_.frames_shed;
      publish("wire.shed", "peer=" + std::to_string(to),
              static_cast<double>(frame.size()));
      return false;
    }
    pending_bytes_ += frame.size();
    pending_.push_back(Pending{to, std::move(frame)});
    return true;
  }
  stats_.frames_sent += 1;
  stats_.bytes_sent += frame.size();
  SimNetwork::InFlight f;
  f.due = clock_now() + net_->latency_ticks();
  f.seq = net_->seq_++;
  f.from = self_;
  f.bytes = std::move(frame);
  net_->endpoint(to)->deposit(std::move(f));
  return true;
}

void SimTransport::deposit(SimNetwork::InFlight f) {
  // Keep the inbox sorted by (due, seq): delivery order is a pure
  // function of virtual send time, never of host scheduling.
  const auto pos = std::upper_bound(
      inbox_.begin(), inbox_.end(), f,
      [](const SimNetwork::InFlight& a, const SimNetwork::InFlight& b) {
        return a.due != b.due ? a.due < b.due : a.seq < b.seq;
      });
  inbox_.insert(pos, std::move(f));
}

std::size_t SimTransport::poll(const PollFn& fn) {
  const std::uint64_t now = clock_now();
  std::size_t delivered = 0;
  while (!inbox_.empty() && inbox_.front().due <= now) {
    SimNetwork::InFlight f = std::move(inbox_.front());
    inbox_.erase(inbox_.begin());
    if (f.torn) {
      // A slow-close left a partial frame on the wire: it is counted
      // and discarded, never surfaced as a (corrupt) message.
      ++stats_.torn_frames;
      publish("wire.torn_frame", "peer=" + std::to_string(f.from));
      continue;
    }
    stats_.frames_received += 1;
    stats_.bytes_received += f.bytes.size();
    ++delivered;
    fn(f.from, std::move(f.bytes));
  }
  return delivered;
}

void SimTransport::flush_pending() {
  if (pending_.empty()) return;
  std::vector<Pending> still;
  for (Pending& p : pending_) {
    if (net_->is_down(p.to) || net_->endpoint(p.to) == nullptr) {
      still.push_back(std::move(p));
      continue;
    }
    pending_bytes_ -= p.bytes.size();
    send(p.to, std::move(p.bytes));
  }
  pending_ = std::move(still);
}

void SimTransport::service() {
  bump_fallback_clock();
  flush_pending();
}

void SimTransport::kick(PeerId peer) {
  // A kicked sim link flaps: down now, back up on the next service().
  // In-flight frames toward us from that peer are lost, like a RST.
  inbox_.erase(std::remove_if(inbox_.begin(), inbox_.end(),
                              [&](const SimNetwork::InFlight& f) {
                                return f.from == peer;
                              }),
               inbox_.end());
  ++stats_.disconnects;
  ++stats_.reconnects;
  publish("wire.link_down", "peer=" + std::to_string(peer) + " kick");
  publish("wire.link_up", "peer=" + std::to_string(peer) + " kick");
}

void SimTransport::slow_close(PeerId peer) {
  // Leave half a frame on the peer's wire, then flap the link: the
  // receiver must count a torn frame and carry on, never surface it.
  if (SimTransport* t = net_->endpoint(peer)) {
    // Kick first (losing whatever of ours was still in flight, like a
    // RST), then leave the torn residue that "arrived" before the close.
    t->kick(self_);
    SimNetwork::InFlight f;
    f.due = clock_now() + net_->latency_ticks();
    f.seq = net_->seq_++;
    f.from = self_;
    f.bytes = "\x00\x00";  // a prefix of a length header, nothing more
    f.torn = true;
    t->deposit(std::move(f));
  }
}

LinkState SimTransport::link_state(PeerId peer) const {
  if (net_->is_down(peer)) return LinkState::Down;
  return net_->endpoint(peer) != nullptr ? LinkState::Up : LinkState::Down;
}

std::vector<PeerId> SimTransport::peers() const {
  std::vector<PeerId> out;
  for (PeerId id = 0; id < net_->endpoints_.size(); ++id)
    if (id != self_ && net_->endpoints_[id] != nullptr) out.push_back(id);
  return out;
}

std::size_t SimTransport::pending_frames() const { return pending_.size(); }

}  // namespace script::runtime
