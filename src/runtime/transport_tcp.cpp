#include "runtime/transport_tcp.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "support/io.hpp"

namespace script::runtime {

namespace {

constexpr char kHelloMagic[4] = {'S', 'C', 'R', 'W'};

std::string encode_frame(const std::string& payload) {
  std::string out;
  out.reserve(4 + payload.size());
  const auto n = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((n >> (8 * i)) & 0xff));
  out += payload;
  return out;
}

std::uint32_t read_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  return v;
}

std::string hello_payload(PeerId self) {
  std::string h(kHelloMagic, 4);
  for (int i = 0; i < 4; ++i)
    h.push_back(static_cast<char>((self >> (8 * i)) & 0xff));
  return h;
}

}  // namespace

TcpTransport::TcpTransport(PeerId self, TcpOptions opts)
    : self_(self), opts_(opts) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
}

TcpTransport::~TcpTransport() {
  for (Conn& c : conns_)
    if (c.fd >= 0) ::close(c.fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool TcpTransport::listen(std::uint16_t port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return false;
  }
  socklen_t alen = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen);
  bound_port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = ~0ull;  // listen fd sentinel
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  return true;
}

void TcpTransport::add_peer(PeerId id, const std::string& host,
                            std::uint16_t port) {
  Peer& p = peers_[id];
  p.host = host;
  p.port = port;
  p.dial = true;
  p.next_attempt = 0;  // eligible at the next service()
}

int TcpTransport::conn_of(PeerId id) const {
  const auto it = peers_.find(id);
  return it == peers_.end() ? -1 : it->second.conn;
}

void TcpTransport::want_out(int ci, bool on) {
  Conn& c = conns_[static_cast<std::size_t>(ci)];
  if (c.fd < 0 || c.epollout == on) return;
  c.epollout = on;
  epoll_event ev{};
  ev.events = EPOLLIN | (on ? EPOLLOUT : 0u);
  ev.data.u64 = static_cast<std::uint64_t>(ci);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void TcpTransport::start_connect(PeerId id) {
  Peer& p = peers_[id];
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(p.port);
  if (::inet_pton(AF_INET, p.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return;
  }
  int rc;
  do {
    rc = support::io.connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    drop_link(id, "connect refused");
    return;
  }
  Conn c;
  c.fd = fd;
  c.peer = id;
  c.connecting = (rc != 0);
  const int ci = static_cast<int>(conns_.size());
  conns_.push_back(std::move(c));
  p.conn = ci;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;  // OUT signals connect completion
  ev.data.u64 = static_cast<std::uint64_t>(ci);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  conns_[static_cast<std::size_t>(ci)].epollout = true;
  publish("wire.connecting", "peer=" + std::to_string(id));
}

void TcpTransport::close_conn(int ci, const char* why) {
  Conn& c = conns_[static_cast<std::size_t>(ci)];
  if (c.fd < 0) return;
  if (!c.in.empty()) {
    // The link died with a partial frame buffered: counted, discarded.
    ++stats_.torn_frames;
    publish("wire.torn_frame", "peer=" + std::to_string(c.peer));
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  c.fd = -1;
  c.in.clear();
  c.out.clear();
  if (c.peer != kNoPeer) {
    const auto it = peers_.find(c.peer);
    if (it != peers_.end() && it->second.conn == ci) it->second.conn = -1;
  }
  publish("wire.closed",
          "peer=" + std::to_string(c.peer) + " " + why);
}

void TcpTransport::drop_link(PeerId id, const char* why) {
  Peer& p = peers_[id];
  if (p.conn >= 0) close_conn(p.conn, why);
  ++stats_.disconnects;
  publish("wire.link_down", "peer=" + std::to_string(id) + " " + why);
  if (!p.dial) return;  // they dialed us; they reconnect
  // Capped exponential backoff, same loop-multiplication arithmetic as
  // Supervisor::restart_later: bit-exact on every libm, so the retry
  // schedule replays identically in the sim twin.
  ++p.attempts;
  double b = static_cast<double>(opts_.backoff_initial);
  for (std::uint64_t k = 1; k < p.attempts; ++k) b *= opts_.backoff_factor;
  const std::uint64_t backoff =
      std::min(opts_.backoff_max, static_cast<std::uint64_t>(b));
  p.next_attempt = clock_now() + backoff;
  publish("wire.backoff", "peer=" + std::to_string(id),
          static_cast<double>(backoff));
}

bool TcpTransport::send(PeerId to, std::string frame) {
  if (frame.size() > opts_.max_frame_bytes) {
    ++stats_.frames_shed;
    return false;
  }
  Peer& p = peers_[to];
  if (p.queue_bytes + frame.size() > opts_.max_queue_bytes) {
    ++stats_.frames_shed;
    publish("wire.shed", "peer=" + std::to_string(to),
            static_cast<double>(frame.size()));
    return false;
  }
  stats_.frames_sent += 1;
  stats_.bytes_sent += frame.size();
  p.queue_bytes += frame.size();
  p.queue.push_back(std::move(frame));
  feed_conn(to);
  return true;
}

void TcpTransport::feed_conn(PeerId id) {
  Peer& p = peers_[id];
  if (p.conn < 0) return;
  Conn& c = conns_[static_cast<std::size_t>(p.conn)];
  if (c.fd < 0 || c.connecting) return;
  if (!c.hello_sent) {
    c.out += encode_frame(hello_payload(self_));
    c.hello_sent = true;
  }
  while (!p.queue.empty()) {
    p.queue_bytes -= p.queue.front().size();
    c.out += encode_frame(p.queue.front());
    p.queue.pop_front();
  }
  if (!c.out.empty()) want_out(p.conn, true);
}

void TcpTransport::pump_out(int ci) {
  Conn& c = conns_[static_cast<std::size_t>(ci)];
  while (!c.out.empty()) {
    const ssize_t n =
        support::io.send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c.out.erase(0, static_cast<std::size_t>(n));  // short write: advance
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // signal: retry
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (c.peer == kNoPeer)
      close_conn(ci, "send failed");
    else
      drop_link(c.peer, "send failed");
    return;
  }
  want_out(ci, !c.out.empty());
}

void TcpTransport::on_frame(int ci, std::string frame) {
  Conn& c = conns_[static_cast<std::size_t>(ci)];
  if (c.peer == kNoPeer) {
    // First frame on an accepted connection must be the link hello.
    if (frame.size() != 8 || memcmp(frame.data(), kHelloMagic, 4) != 0) {
      ++stats_.torn_frames;
      close_conn(ci, "bad hello");
      return;
    }
    const PeerId who = read_u32(frame.data() + 4);
    c.peer = who;
    Peer& p = peers_[who];  // creates an accept-side entry (dial=false)
    if (p.conn >= 0 && p.conn != ci) close_conn(p.conn, "superseded");
    p.conn = ci;
    if (p.was_up) ++stats_.reconnects;
    p.was_up = true;
    publish("wire.link_up", "peer=" + std::to_string(who) + " accepted");
    feed_conn(who);  // anything queued before they dialed in
    return;
  }
  stats_.frames_received += 1;
  stats_.bytes_received += frame.size();
  received_.push_back(Received{c.peer, std::move(frame)});
}

void TcpTransport::pump_in(int ci) {
  char buf[64 * 1024];
  for (;;) {
    Conn& c = conns_[static_cast<std::size_t>(ci)];
    if (c.fd < 0) return;
    const ssize_t n = support::io.recv(c.fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n <= 0) {
      if (c.peer == kNoPeer)
        close_conn(ci, "peer closed");
      else
        drop_link(c.peer, n == 0 ? "peer closed" : "recv failed");
      return;
    }
    c.in.append(buf, static_cast<std::size_t>(n));
    while (conns_[static_cast<std::size_t>(ci)].in.size() >= 4) {
      Conn& cc = conns_[static_cast<std::size_t>(ci)];
      const std::uint32_t len = read_u32(cc.in.data());
      if (len > opts_.max_frame_bytes) {
        ++stats_.torn_frames;
        if (cc.peer == kNoPeer)
          close_conn(ci, "oversized frame");
        else
          drop_link(cc.peer, "oversized frame");
        return;
      }
      if (cc.in.size() < 4 + static_cast<std::size_t>(len)) break;
      std::string frame = cc.in.substr(4, len);
      cc.in.erase(0, 4 + static_cast<std::size_t>(len));
      on_frame(ci, std::move(frame));  // may invalidate references
    }
  }
}

void TcpTransport::service() {
  bump_fallback_clock();
  if (epoll_fd_ < 0) return;

  // Reconnect sweep: dialed peers whose backoff has expired.
  for (auto& [id, p] : peers_) {
    if (p.dial && p.conn < 0 && clock_now() >= p.next_attempt)
      start_connect(id);
  }

  epoll_event evs[32];
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, evs, 32, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    for (int i = 0; i < n; ++i) {
      if (evs[i].data.u64 == ~0ull) {
        // Accept every pending connection; the hello identifies them.
        for (;;) {
          const int fd =
              support::io.accept(listen_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (fd < 0) {
            if (errno == EINTR) continue;
            break;
          }
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          Conn c;
          c.fd = fd;
          c.hello_sent = true;  // acceptors don't hello; dialers do
          const int ci = static_cast<int>(conns_.size());
          conns_.push_back(std::move(c));
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.u64 = static_cast<std::uint64_t>(ci);
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
        }
        continue;
      }
      const int ci = static_cast<int>(evs[i].data.u64);
      Conn& c = conns_[static_cast<std::size_t>(ci)];
      if (c.fd < 0) continue;
      if (c.connecting) {
        int err = 0;
        socklen_t elen = sizeof err;
        ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &elen);
        if ((evs[i].events & (EPOLLERR | EPOLLHUP)) != 0 || err != 0) {
          drop_link(c.peer, "connect failed");
          continue;
        }
        if ((evs[i].events & EPOLLOUT) != 0) {
          c.connecting = false;
          Peer& p = peers_[c.peer];
          p.attempts = 0;
          if (p.was_up) ++stats_.reconnects;
          p.was_up = true;
          want_out(ci, false);
          publish("wire.link_up", "peer=" + std::to_string(c.peer));
          feed_conn(c.peer);
          pump_out(ci);
        }
        continue;
      }
      if ((evs[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        if (c.peer == kNoPeer)
          close_conn(ci, "hup");
        else
          drop_link(c.peer, "hup");
        continue;
      }
      if ((evs[i].events & EPOLLIN) != 0) pump_in(ci);
      Conn& c2 = conns_[static_cast<std::size_t>(ci)];
      if (c2.fd >= 0 && (evs[i].events & EPOLLOUT) != 0) pump_out(ci);
    }
  }

  // Opportunistic flush + compaction of dead conn slots.
  for (int ci = 0; ci < static_cast<int>(conns_.size()); ++ci) {
    Conn& c = conns_[static_cast<std::size_t>(ci)];
    if (c.fd >= 0 && !c.connecting && !c.out.empty()) pump_out(ci);
  }
  while (!conns_.empty() && conns_.back().fd < 0) conns_.pop_back();
}

std::size_t TcpTransport::poll(const PollFn& fn) {
  std::size_t delivered = 0;
  while (!received_.empty()) {
    Received r = std::move(received_.front());
    received_.pop_front();
    ++delivered;
    fn(r.from, std::move(r.bytes));
  }
  return delivered;
}

void TcpTransport::wait_io(int timeout_us) {
  if (epoll_fd_ < 0 || timeout_us <= 0) return;
  epoll_event ev;
  // Wake on any readiness; the work itself happens in service().
  ::epoll_wait(epoll_fd_, &ev, 1, std::max(1, timeout_us / 1000));
}

void TcpTransport::kick(PeerId peer) {
  drop_link(peer, "kick");
}

void TcpTransport::slow_close(PeerId peer) {
  const int ci = conn_of(peer);
  if (ci >= 0) {
    Conn& c = conns_[static_cast<std::size_t>(ci)];
    if (c.fd >= 0 && !c.connecting) {
      // Half a length prefix, then the close: the peer sees a torn
      // frame, the nastiest shape a real crash leaves on the wire.
      const char torn[2] = {0x10, 0x00};
      (void)support::io.send(c.fd, torn, sizeof torn, MSG_NOSIGNAL);
    }
  }
  drop_link(peer, "slow close");
}

LinkState TcpTransport::link_state(PeerId id) const {
  const auto it = peers_.find(id);
  if (it == peers_.end()) return LinkState::Down;
  const Peer& p = it->second;
  if (p.conn >= 0) {
    const Conn& c = conns_[static_cast<std::size_t>(p.conn)];
    if (c.fd >= 0) return c.connecting ? LinkState::Connecting : LinkState::Up;
  }
  if (p.dial) return LinkState::Backoff;
  return LinkState::Down;
}

std::vector<PeerId> TcpTransport::peers() const {
  std::vector<PeerId> out;
  for (const auto& [id, p] : peers_) out.push_back(id);
  return out;
}

}  // namespace script::runtime
