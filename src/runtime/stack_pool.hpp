// StackPool — recycles mmap'd guard-paged fiber stacks.
//
// Spawning a fiber used to cost an mmap + mprotect, and retiring it a
// munmap; under fig. 2-style churn (a fresh fiber per performance) that
// is a syscall pair on every enrollment round. The pool keeps retired
// stacks, decommitted (madvise DONTNEED — physical pages dropped, guard
// page intact), and hands them back to the next fiber of the same size.
//
// The idle set is bounded: beyond `max_idle` stacks a release unmaps
// immediately, so a burst of 10k fibers does not pin 10k mappings
// forever. Decommitted idle stacks cost address space only, not RSS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "runtime/stack.hpp"

namespace script::runtime {

class StackPool {
 public:
  struct Stats {
    std::uint64_t created = 0;  // fresh mmaps
    std::uint64_t reused = 0;   // acquisitions served from the pool
    std::uint64_t dropped = 0;  // releases unmapped (pool was full)
    std::size_t idle = 0;
    std::size_t idle_high_water = 0;
    /// Fraction of acquisitions served without a syscall.
    double reuse_ratio() const {
      const std::uint64_t total = created + reused;
      return total == 0 ? 0.0 : static_cast<double>(reused) / total;
    }
  };

  static constexpr std::size_t kDefaultMaxIdle = 64;

  explicit StackPool(std::size_t max_idle = kDefaultMaxIdle)
      : max_idle_(max_idle) {}

  /// A stack of at least `usable_size` usable bytes: recycled when one
  /// of that size is idle, freshly mapped otherwise.
  Stack acquire(std::size_t usable_size);

  /// Return a stack to the pool. Decommits its pages; unmaps instead
  /// when the pool is already holding `max_idle` stacks.
  void release(Stack stack);

  void set_max_idle(std::size_t n) { max_idle_ = n; }
  std::size_t max_idle() const { return max_idle_; }
  const Stats& stats() const { return stats_; }

  /// Serialize acquire/release behind a mutex — the parallel mode's
  /// workers hit the shared pool when their local caches run dry.
  /// Deterministic mode leaves this off (zero-cost, as before).
  void set_threaded(bool on) { threaded_ = on; }

 private:
  std::unique_lock<std::mutex> maybe_lock() {
    return threaded_ ? std::unique_lock<std::mutex>(mu_)
                     : std::unique_lock<std::mutex>();
  }

  std::size_t max_idle_;
  bool threaded_ = false;
  std::mutex mu_;
  // Keyed by usable size (sizes are per-scheduler constants in
  // practice, so this map has one or two entries).
  std::map<std::size_t, std::vector<Stack>> idle_;
  Stats stats_;
};

}  // namespace script::runtime
