// Supervisor — actor-style supervised restart over the fiber runtime.
//
// Register a fiber with a body factory and a restart policy; when the
// fiber crashes (FaultPlan kill or an escaped exception turned into a
// crash), the supervisor waits out a capped exponential backoff on the
// VIRTUAL clock, then respawns the body as a fresh fiber. Restart
// intensity is bounded: more than `max_restarts` crashes inside
// `restart_window` ticks escalates to permanent failure (the child
// stays down and the report section says why). Everything is driven
// off the scheduler's crash hooks, so supervision composes with
// deterministic fault injection: a given FaultPlan yields the same
// restart schedule on every run.
//
// Observability: restarts publish typed Recovery events on the
// scheduler's bus (their own "supervisor" lane in Perfetto exports) and
// a causal restart edge old_pid -> new_pid, so traces show recovery as
// a happens-before arrow across incarnations.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"

namespace script::runtime {

/// What to do when a supervised child crashes.
enum class RestartPolicy : std::uint8_t {
  OneForOne,  // restart just this child (after backoff)
  Escalate,   // do not restart: mark the child permanently failed
};

struct ChildOptions {
  RestartPolicy policy = RestartPolicy::OneForOne;
  /// Backoff before restart attempt k (1-based) is
  /// min(backoff_initial * backoff_factor^(k-1), backoff_max) ticks.
  std::uint64_t backoff_initial = 1;
  double backoff_factor = 2.0;
  std::uint64_t backoff_max = 64;
  /// More than `max_restarts` crashes within `restart_window` ticks
  /// escalate to permanent failure (Erlang's restart intensity).
  std::size_t max_restarts = 5;
  std::uint64_t restart_window = 1000;
};

class Supervisor {
 public:
  /// A child's body per incarnation. The factory runs once per restart
  /// (fresh captures = fresh state); its result is the fiber body.
  using Factory = std::function<std::function<void()>()>;
  /// How fibers are created. Defaults to Scheduler::spawn; programs on
  /// a csp::Net pass net.spawn_process so replacement incarnations are
  /// registered with the Net (termination detection).
  using Spawner =
      std::function<ProcessId(std::string, std::function<void()>)>;

  enum class ChildState : std::uint8_t {
    Running,
    BackingOff,  // crashed; restart agent sleeping out the backoff
    Failed,      // escalated / intensity exceeded: stays down
    Done,        // detached (forget()) — no longer watched
  };

  explicit Supervisor(Scheduler& sched, std::string name = "supervisor");
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// All children are (re)spawned through `s` instead of
  /// Scheduler::spawn. Set before the first crash.
  void set_spawner(Spawner s) { spawner_ = std::move(s); }

  /// Watch `pid` (already spawned, its body made by `factory`). On
  /// crash the factory's product is respawned as "<name>#<attempt>".
  /// Returns a child id for the introspection calls below.
  std::uint64_t supervise(ProcessId pid, std::string name, Factory factory,
                          ChildOptions opts = {});

  /// Stop watching a child (e.g. it completed its mission).
  void forget(std::uint64_t child);

  /// Called after every successful restart with (child, old, fresh).
  void on_restart(
      std::function<void(std::uint64_t, ProcessId, ProcessId)> fn) {
    restart_callbacks_.push_back(std::move(fn));
  }

  // ---- Introspection ----
  ChildState state(std::uint64_t child) const;
  /// Current incarnation's pid (the crashed one while backing off).
  ProcessId pid_of(std::uint64_t child) const;
  std::uint64_t restarts(std::uint64_t child) const;
  std::uint64_t last_backoff(std::uint64_t child) const;
  std::uint64_t total_restarts() const { return total_restarts_; }
  std::uint64_t gave_up_count() const { return gave_up_; }

  /// The deadlock-report section text (also registered with the
  /// scheduler automatically): one line per non-Running child.
  std::string report() const;

  /// Crashes of `child` inside its current restart window, as of now.
  std::size_t crashes_in_window(std::uint64_t child) const;

  /// Structured snapshot: child states, pids, restart budgets.
  std::string snapshot_json() const;
  /// Register the snapshot as a "supervisor" Inspector section.
  std::size_t attach_inspector(obs::Inspector& inspector);

  /// Report every child's restart pressure to `monitor`: when a child
  /// is one in-window crash away from give-up, the monitor raises
  /// health.restart_pressure. Unregistered automatically in the dtor.
  void enable_health(obs::HealthMonitor& monitor);

 private:
  struct Child {
    std::uint64_t id = 0;
    std::string name;
    Factory factory;
    ChildOptions opts;
    ProcessId pid = kNoProcess;
    ChildState state = ChildState::Running;
    std::uint64_t restarts = 0;       // successful respawns, ever
    std::uint64_t last_backoff = 0;   // ticks slept before the last one
    std::vector<std::uint64_t> crash_times;  // within the current window
  };

  void on_crash(ProcessId pid);
  void restart_later(Child& child, ProcessId crashed);
  void give_up(Child& child, const char* why);
  void publish(const char* name, std::string detail, ProcessId pid,
               double value = 0);
  std::int32_t lane();

  Scheduler* sched_;
  std::string name_;
  Spawner spawner_;
  std::map<std::uint64_t, Child> children_;
  std::map<ProcessId, std::uint64_t> by_pid_;
  std::vector<std::function<void(std::uint64_t, ProcessId, ProcessId)>>
      restart_callbacks_;
  std::uint64_t next_child_id_ = 1;
  std::uint64_t total_restarts_ = 0;
  std::uint64_t gave_up_ = 0;
  std::uint64_t crash_hook_id_ = 0;
  std::uint64_t report_section_id_ = 0;
  std::int32_t obs_lane_ = obs::kNoLane;
  obs::HealthMonitor* health_ = nullptr;
  std::size_t health_watch_id_ = 0;
};

}  // namespace script::runtime
