#include "runtime/debug_endpoint.hpp"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>

namespace script::runtime {

DebugEndpoint::IoHooks& DebugEndpoint::io = support::io;

DebugEndpoint::~DebugEndpoint() { close(); }

bool DebugEndpoint::listen(const std::string& path) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    return false;
  }
  std::copy(path.begin(), path.end(), addr.sun_path);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return false;
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 8) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return false;
  }
  listen_fd_ = fd;
  path_ = path;
  return true;
}

void DebugEndpoint::close() {
  for (Conn& c : conns_)
    if (c.fd >= 0) ::close(c.fd);
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    path_.clear();
  }
}

void DebugEndpoint::register_handler(const std::string& cmd, Handler fn) {
  handlers_[cmd] = std::move(fn);
}

bool DebugEndpoint::flush(Conn& c) {
  while (!c.out.empty()) {
    const ssize_t n = io.send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    // EINTR is not an error: a signal (SIGCHLD, a profiler tick, a
    // resize while someone watches `scriptctl top`) interrupting the
    // send must not tear down the session. Retry the write.
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone or hard error
  }
  return true;
}

void DebugEndpoint::handle_line(Conn& c, const std::string& line) {
  std::string cmd = line;
  std::string args;
  const std::size_t sp = line.find(' ');
  if (sp != std::string::npos) {
    cmd = line.substr(0, sp);
    args = line.substr(sp + 1);
    // Trim surrounding blanks so "events   64" parses like "events 64".
    const auto b = args.find_first_not_of(" \t\r");
    const auto e = args.find_last_not_of(" \t\r");
    args = b == std::string::npos ? "" : args.substr(b, e - b + 1);
  }
  if (!cmd.empty() && cmd.back() == '\r') cmd.pop_back();
  ++requests_;

  const auto it = handlers_.find(cmd);
  if (it == handlers_.end()) {
    c.out += "err unknown command: " + cmd + "\n";
    return;
  }
  std::string err;
  const std::string payload = it->second(args, &err);
  if (!err.empty()) {
    c.out += "err " + err + "\n";
    return;
  }
  c.out += "ok " + std::to_string(payload.size()) + "\n";
  c.out += payload;
}

std::size_t DebugEndpoint::service() {
  if (listen_fd_ < 0) return 0;
  const std::uint64_t before = requests_;

  // Accept every pending connection.
  for (;;) {
    const int fd = io.accept(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;  // signal, not "no more clients"
      break;  // EAGAIN (or a transient error: try next time)
    }
    conns_.push_back(Conn{fd, {}, {}});
  }

  for (Conn& c : conns_) {
    // Read whatever is available; process complete lines.
    char buf[1024];
    if (!c.eof) {
      for (;;) {
        const ssize_t n = io.recv(c.fd, buf, sizeof buf, 0);
        if (n < 0 && errno == EINTR) continue;  // signal: keep reading
        if (n > 0) {
          c.in.append(buf, static_cast<std::size_t>(n));
          if (c.in.size() > kMaxLine && c.in.find('\n') == std::string::npos) {
            c.out += "err request line too long\n";
            c.eof = true;
          }
          continue;
        }
        if (n == 0) c.eof = true;
        break;  // n<0: EAGAIN or error — either way stop reading
      }
    }
    std::size_t nl;
    while ((nl = c.in.find('\n')) != std::string::npos) {
      const std::string line = c.in.substr(0, nl);
      c.in.erase(0, nl + 1);
      if (!line.empty()) handle_line(c, line);
    }
    if (!flush(c)) {
      ::close(c.fd);
      c.fd = -1;
      continue;
    }
    if (c.out.size() > kMaxOut) {
      // The kernel took what it would and the residue still exceeds the
      // cap: the reader has stalled while requests kept coming. Shed
      // the connection rather than buffer without bound. The queued
      // payloads are torn down; a short diagnostic goes out best-effort
      // so a merely-slow client sees *why* it was dropped.
      ++sheds_;
      c.out = "err overloaded: outbound buffer cap exceeded, shedding\n";
      flush(c);
      ::close(c.fd);
      c.fd = -1;
      continue;
    }
    if (c.eof && c.out.empty()) {
      ::close(c.fd);
      c.fd = -1;
    }
  }
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const Conn& c) { return c.fd < 0; }),
               conns_.end());
  return static_cast<std::size_t>(requests_ - before);
}

}  // namespace script::runtime
