#include "runtime/stack_pool.hpp"

#include <utility>

namespace script::runtime {

Stack StackPool::acquire(std::size_t usable_size) {
  const auto lk = maybe_lock();
  // Stacks are keyed by their page-rounded usable size; any idle stack
  // at least as large as the request serves it (schedulers use one
  // fixed size, so lower_bound is a straight hit).
  auto it = idle_.lower_bound(usable_size);
  if (it != idle_.end() && !it->second.empty()) {
    Stack s = std::move(it->second.back());
    it->second.pop_back();
    if (it->second.empty()) idle_.erase(it);
    ++stats_.reused;
    --stats_.idle;
    return s;
  }
  ++stats_.created;
  return Stack(usable_size);
}

void StackPool::release(Stack stack) {
  if (!stack.valid()) return;
  const auto lk = maybe_lock();
  if (stats_.idle >= max_idle_) {
    ++stats_.dropped;
    return;  // stack's destructor unmaps
  }
  stack.decommit();
  const std::size_t key = stack.size();
  idle_[key].push_back(std::move(stack));
  ++stats_.idle;
  if (stats_.idle > stats_.idle_high_water)
    stats_.idle_high_water = stats_.idle;
}

}  // namespace script::runtime
