// FiberTable — append-only fiber storage with lock-free readers.
//
// The deterministic scheduler kept fibers in a std::vector, which is
// perfect until the parallel mode lets worker threads spawn (push_back
// may reallocate) while other workers resolve pids (operator[]). This
// table keeps the same contract — pids are dense indices, entries never
// move — but stores fibers in fixed-size chunks behind an
// acquire/release size counter:
//   * push() allocates a chunk at most once per kChunk spawns, writes
//     the slot, then release-publishes the new size. Parallel spawns
//     serialize on the scheduler's spawn mutex; the deterministic mode
//     calls it plainly.
//   * operator[] acquire-loads the size once (the bounds assert) and
//     then reads plain memory the release store already published.
// Also carries RelaxedU64, the shared counter idiom for hot scheduler
// tallies (now_, steps_, live_) that parallel workers update: relaxed
// atomics compile to plain loads/stores on x86, so the deterministic
// mode pays nothing measurable.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "support/panic.hpp"

namespace script::runtime {

/// A uint64 counter that tolerates cross-thread readers: all accesses
/// are relaxed atomics (no ordering implied — pair with the scheduler's
/// own synchronization). Drop-in for the plain counters it replaces.
class RelaxedU64 {
 public:
  RelaxedU64(std::uint64_t v = 0) : v_(v) {}  // NOLINT(runtime/explicit)
  operator std::uint64_t() const {  // NOLINT(runtime/explicit)
    return v_.load(std::memory_order_relaxed);
  }
  RelaxedU64& operator=(std::uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }
  std::uint64_t operator++() {
    return v_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  std::uint64_t operator++(int) {
    return v_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t operator--() {
    return v_.fetch_sub(1, std::memory_order_relaxed) - 1;
  }
  RelaxedU64& operator+=(std::uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> v_;
};

template <typename T>
class FiberTableT {
 public:
  static constexpr std::size_t kChunkBits = 10;
  static constexpr std::size_t kChunk = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxChunks = 1 << 14;  // 16M fibers

  FiberTableT() = default;
  ~FiberTableT() { clear(); }

  FiberTableT(const FiberTableT&) = delete;
  FiberTableT& operator=(const FiberTableT&) = delete;

  std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }
  bool empty() const { return size() == 0; }

  /// Append (single writer at a time; the parallel spawn path holds the
  /// scheduler's spawn mutex). Returns the new element's index.
  std::size_t push(std::unique_ptr<T> t) {
    const std::size_t i = size_.load(std::memory_order_relaxed);
    const std::size_t c = i >> kChunkBits;
    SCRIPT_ASSERT(c < kMaxChunks, "fiber table full");
    if (chunks_[c] == nullptr) chunks_[c] = new Chunk{};
    (*chunks_[c])[i & (kChunk - 1)] = t.release();
    size_.store(i + 1, std::memory_order_release);
    return i;
  }

  T& operator[](std::size_t i) const {
    SCRIPT_ASSERT(i < size(), "unknown process id");
    return *(*chunks_[i >> kChunkBits])[i & (kChunk - 1)];
  }

  /// Destroy every fiber (in spawn order, matching the std::vector
  /// teardown semantics ~Scheduler relies on) and reset to empty.
  void clear() {
    const std::size_t n = size_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      delete (*chunks_[i >> kChunkBits])[i & (kChunk - 1)];
      (*chunks_[i >> kChunkBits])[i & (kChunk - 1)] = nullptr;
    }
    for (auto& c : chunks_) {
      delete c;
      c = nullptr;
    }
    size_.store(0, std::memory_order_release);
  }

 private:
  using Chunk = std::array<T*, kChunk>;
  std::atomic<std::size_t> size_{0};
  std::array<Chunk*, kMaxChunks> chunks_{};
};

}  // namespace script::runtime
