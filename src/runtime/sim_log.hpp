// SimLog — a simulated write-ahead log for recoverable services.
//
// The runtime has no real disk: persistence is modelled as a store
// (SimLogStore) that OUTLIVES the fibers writing to it. A service
// appends records before acting on them; after a crash, the
// supervisor-restarted incarnation reopens the same named log and
// replays what its predecessor managed to write — exactly the recovery
// contract of a database WAL, minus the I/O. Everything is
// deterministic (no wall clock, no randomness), so recovery schedules
// replay byte-identically under explore_fault_schedules.
//
// Records are (key, value) string pairs. Services encode their own
// protocol on top; the 2PC coordinator writes "decision.<txn>" =
// "commit"/"abort" before telling any participant, making in-doubt
// transactions resolvable by replay (docs/ROBUSTNESS.md "Recovery").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/event_bus.hpp"

namespace script::runtime {

struct SimLogRecord {
  std::string key;
  std::string value;
};

class SimLogStore;

/// One named log. Append-only; records survive as long as the store.
class SimLog {
 public:
  const std::string& name() const { return name_; }

  /// Append a record. Durable immediately (the model has no buffer
  /// cache — a record appended before a crash is always replayable).
  void append(std::string key, std::string value);

  /// The value of the LAST record with `key`, or nullopt. Recovery
  /// protocols want last-writer-wins semantics.
  std::optional<std::string> last(const std::string& key) const;

  const std::vector<SimLogRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

 private:
  friend class SimLogStore;
  SimLog(SimLogStore* store, std::string name)
      : store_(store), name_(std::move(name)) {}

  SimLogStore* store_;
  std::string name_;
  std::vector<SimLogRecord> records_;
};

/// The "stable storage" holding every named log. Create it where it
/// outlives the crashing fibers (the test/bench body, next to the
/// Scheduler); a restarted service calls open() with the same name and
/// finds its predecessor's records.
class SimLogStore {
 public:
  /// Open `name`, creating it empty on first use. The reference stays
  /// valid for the store's lifetime.
  SimLog& open(const std::string& name);
  bool exists(const std::string& name) const {
    return logs_.count(name) > 0;
  }

  std::uint64_t total_appends() const { return total_appends_; }
  std::size_t log_count() const { return logs_.size(); }

  /// Publish wal.append events (Subsystem::Recovery) on `bus` so log
  /// writes show up in traces. nullptr detaches.
  void attach_bus(obs::EventBus* bus) { bus_ = bus; }

 private:
  friend class SimLog;
  void note_append(const SimLog& log, const SimLogRecord& rec);

  std::map<std::string, std::unique_ptr<SimLog>> logs_;
  std::uint64_t total_appends_ = 0;
  obs::EventBus* bus_ = nullptr;
};

}  // namespace script::runtime
