// ReadyQueue — the scheduler's run queue with O(1) operations for every
// policy's access pattern.
//
// Layout: a vector of pids with a head index (ring-with-compaction).
//   * push     — append, O(1).
//   * pop_front— Fifo policy: the oldest entry, in exact arrival order
//                (byte-identical to the std::deque it replaces). O(1)
//                amortized; consumed prefix is compacted away once it
//                dominates the vector.
//   * pop_at   — Random/Scripted policies: the i-th live entry counted
//                in arrival order (matching the old deque indexing), by
//                swap-remove with the newest entry. O(1); survivor
//                order is NOT preserved, which those policies never
//                relied on — they pick by index, not position.
//   * remove   — fault kill of a READY fiber (rare): tombstone the slot
//                so everyone else's relative order is untouched.
//                Callers gate on the fiber's intrusive ready flag, so
//                the O(n) scan only runs when the pid really is queued.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "support/panic.hpp"

namespace script::runtime {

template <typename Pid, Pid kNone>
class ReadyQueueT {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  void push(Pid pid) {
    slots_.push_back(pid);
    ++count_;
  }

  Pid pop_front() {
    SCRIPT_ASSERT(count_ > 0, "pop_front on empty ready queue");
    while (slots_[head_] == kNone) ++head_;  // skip tombstones
    const Pid pid = slots_[head_++];
    --count_;
    compact();
    return pid;
  }

  Pid pop_at(std::size_t i) {
    SCRIPT_ASSERT(i < count_, "pop_at out of range");
    std::size_t slot = head_ + i;
    if (head_ + count_ != slots_.size()) {
      // Tombstones present: map the live index by scanning.
      slot = head_;
      for (std::size_t seen = 0;; ++slot)
        if (slots_[slot] != kNone && seen++ == i) break;
    }
    const Pid pid = slots_[slot];
    // Swap-remove: the newest live entry fills the hole.
    while (slots_.back() == kNone) slots_.pop_back();
    slots_[slot] = slots_.back();
    slots_.pop_back();
    --count_;
    if (count_ == 0) {
      slots_.clear();
      head_ = 0;
    }
    return pid;
  }

  void remove(Pid pid) {
    for (std::size_t i = head_; i < slots_.size(); ++i) {
      if (slots_[i] == pid) {
        slots_[i] = kNone;
        --count_;
        if (count_ == 0) {
          slots_.clear();
          head_ = 0;
        }
        return;
      }
    }
    SCRIPT_PANIC("ready-flagged fiber missing from ready queue");
  }

 private:
  void compact() {
    if (count_ == 0) {
      slots_.clear();
      head_ = 0;
    } else if (head_ > 64 && head_ * 2 > slots_.size()) {
      slots_.erase(slots_.begin(),
                   slots_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  std::vector<Pid> slots_;
  std::size_t head_ = 0;   // first possibly-live slot
  std::size_t count_ = 0;  // live entries (excludes tombstones)
};

/// StealQueueT — a shard's runnable-group list for the parallel mode.
/// Two-ended on purpose: the owning worker drains oldest-first
/// (pop_front, FIFO fairness within a shard), thieves take the NEWEST
/// entry (steal_back) — the group least likely to be warm in the
/// owner's cache and, having queued last, likeliest to hold the most
/// unstarted work. Synchronization is external (the shard mutex);
/// keeping the container dumb keeps the locking auditable.
template <typename T>
class StealQueueT {
 public:
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

  void push(T v) { q_.push_back(std::move(v)); }

  T pop_front() {
    SCRIPT_ASSERT(!q_.empty(), "pop_front on empty steal queue");
    T v = std::move(q_.front());
    q_.pop_front();
    return v;
  }

  T steal_back() {
    SCRIPT_ASSERT(!q_.empty(), "steal_back on empty steal queue");
    T v = std::move(q_.back());
    q_.pop_back();
    return v;
  }

 private:
  std::deque<T> q_;
};

}  // namespace script::runtime
