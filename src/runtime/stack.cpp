#include "runtime/stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <utility>

#include "support/panic.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define SCRIPT_STACK_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SCRIPT_STACK_ASAN 1
#endif
#endif

#ifdef SCRIPT_STACK_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace script::runtime {

namespace {
std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

// ASan tracks stack frames in shadow memory it never clears on
// madvise/munmap, so a recycled (or re-mmapped) stack region still
// carries the previous fiber's use-after-scope poison. Clear it at
// every point the region's contents stop mattering.
void unpoison(void* p, std::size_t n) {
#ifdef SCRIPT_STACK_ASAN
  if (p != nullptr && n != 0) __asan_unpoison_memory_region(p, n);
#else
  (void)p;
  (void)n;
#endif
}
}  // namespace

Stack::Stack(std::size_t usable_size) {
  const std::size_t ps = page_size();
  usable_size_ = round_up(usable_size, ps);
  mapping_size_ = usable_size_ + ps;  // one guard page at the low end
  mapping_ = mmap(nullptr, mapping_size_, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mapping_ == MAP_FAILED) SCRIPT_PANIC("fiber stack mmap failed");
  if (mprotect(mapping_, ps, PROT_NONE) != 0)
    SCRIPT_PANIC("fiber stack guard mprotect failed");
  usable_ = static_cast<char*>(mapping_) + ps;
  unpoison(usable_, usable_size_);
}

Stack::~Stack() { release(); }

Stack::Stack(Stack&& other) noexcept
    : mapping_(std::exchange(other.mapping_, nullptr)),
      mapping_size_(std::exchange(other.mapping_size_, 0)),
      usable_(std::exchange(other.usable_, nullptr)),
      usable_size_(std::exchange(other.usable_size_, 0)) {}

Stack& Stack::operator=(Stack&& other) noexcept {
  if (this != &other) {
    release();
    mapping_ = std::exchange(other.mapping_, nullptr);
    mapping_size_ = std::exchange(other.mapping_size_, 0);
    usable_ = std::exchange(other.usable_, nullptr);
    usable_size_ = std::exchange(other.usable_size_, 0);
  }
  return *this;
}

void Stack::decommit() noexcept {
  if (usable_ != nullptr) {
    madvise(usable_, usable_size_, MADV_DONTNEED);
    unpoison(usable_, usable_size_);
  }
}

void Stack::release() noexcept {
  if (mapping_ != nullptr) {
    unpoison(usable_, usable_size_);
    munmap(mapping_, mapping_size_);
    mapping_ = nullptr;
  }
}

}  // namespace script::runtime
