// Cooperative fiber scheduler with a virtual clock.
//
// All processes of a libscript program run as fibers on one OS thread.
// Two scheduling policies:
//   * Fifo   — deterministic round-robin; every run is identical.
//   * Random — seeded-random pick among ready fibers; used by property
//              tests to explore interleavings reproducibly.
//
// Time is virtual: it advances only when every runnable fiber has parked
// on the timer heap (classic discrete-event simulation). Communication
// latency models (csp::Net, SimLink) park fibers on timers, so benches
// measure latency *shape* independent of host speed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "obs/event_bus.hpp"
#include "runtime/fault.hpp"
#include "runtime/fiber.hpp"
#include "runtime/fiber_table.hpp"
#include "runtime/overload.hpp"
#include "runtime/ready_queue.hpp"
#include "runtime/stack_pool.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace script::obs {
class CausalTracker;
class FlightRecorder;
struct FlightRecorderOptions;
class HealthMonitor;
class Inspector;
class Timeline;
struct TimelineOptions;
class TraceExporter;
}

namespace script::runtime {

class DebugEndpoint;
class ParallelRuntime;

enum class SchedulePolicy : std::uint8_t {
  Fifo,     // deterministic round-robin
  Random,   // seeded-random pick among ready fibers
  Scripted  // every pick delegated to `chooser` (model checking)
};

struct SchedulerOptions {
  SchedulePolicy policy = SchedulePolicy::Fifo;
  std::uint64_t seed = 1;
  std::size_t stack_bytes = 256 * 1024;
  /// Scripted policy: called with the number of ready fibers, returns
  /// the index to run. The exhaustive-interleaving explorer
  /// (runtime/explore.hpp) drives this.
  std::function<std::size_t(std::size_t)> chooser;
  /// If nonzero, run() stops after this many dispatches with outcome
  /// StepLimit (fibers left unfinished). Lets the explorer bound
  /// non-terminating schedules (e.g. starving a busy-wait loop).
  std::uint64_t max_steps_per_run = 0;
  /// If nonzero, keep the last N bus events per fiber and include them
  /// in deadlock reports (describe()). Forces full event production, so
  /// leave at 0 for benchmarks.
  std::size_t event_history = 0;
  /// How many retired fiber stacks the scheduler's StackPool keeps for
  /// reuse (decommitted — address space, not RSS). 0 disables pooling.
  std::size_t stack_pool_max_idle = StackPool::kDefaultMaxIdle;
  /// Number of OS worker threads for the parallel M:N work-stealing
  /// mode. 0 (default) keeps the single-threaded deterministic
  /// virtual-time backend — golden traces, explore(), fault schedules
  /// all live there. Nonzero trades determinism for throughput: fibers
  /// are pinned to groups (new_group()/spawn_in_group()), groups are
  /// stolen whole, and several deterministic-only features are rejected
  /// at run() (see docs/PERFORMANCE.md, "Parallel execution").
  std::size_t workers = 0;
  /// Parallel mode: max dispatches a worker performs from one group
  /// before requeueing it, bounding group monopoly when cores are
  /// scarce. 0 picks the default (128).
  std::size_t group_quantum = 0;
};

struct RunResult {
  enum class Outcome { AllDone, Deadlock, StepLimit };
  Outcome outcome = Outcome::AllDone;
  /// Fibers still blocked at deadlock, with their block reasons.
  std::vector<std::pair<ProcessId, std::string>> blocked;
  std::uint64_t final_time = 0;
  std::uint64_t steps = 0;  // number of fiber dispatches

  bool ok() const { return outcome == Outcome::AllDone; }
};

class Scheduler;

/// Human-readable run report: outcome, steps, final virtual time, and —
/// on deadlock — every blocked fiber with its reason. The same report
/// the examples and benches print; exposed for applications.
std::string describe(const RunResult& result, const Scheduler& sched);

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions opts = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Create a new process fiber. Callable from outside run() or from a
  /// running fiber (dynamic spawn). Returns its ProcessId.
  /// Parallel mode: the fiber joins the spawner's group (or group 0
  /// when spawned from outside a fiber).
  ProcessId spawn(std::string name, std::function<void()> body);

  /// Create a new scheduling group — the parallel mode's unit of
  /// placement and stealing (one performance / script instance /
  /// csp::Net per group; fibers of one group never run concurrently
  /// with each other). In deterministic mode the grouping is recorded
  /// but has no scheduling effect, so programs can be written once.
  GroupId new_group();

  /// spawn() into an explicit group. kInheritGroup behaves like spawn().
  ProcessId spawn_in_group(GroupId gid, std::string name,
                           std::function<void()> body);

  /// Group `pid` was spawned into (0 unless placed via spawn_in_group).
  GroupId group_of(ProcessId pid) const;

  /// True when this scheduler runs the M:N work-stealing backend
  /// (SchedulerOptions::workers > 0).
  bool parallel_mode() const { return parallel_ != nullptr; }
  /// Worker threads in parallel mode; 0 in deterministic mode.
  std::size_t worker_count() const;
  /// Lifetime count of group steals (parallel mode; 0 otherwise).
  std::uint64_t steal_count() const;

  /// Drive all fibers to completion or deadlock. Exceptions escaping a
  /// fiber body are rethrown here. May be called repeatedly (spawn more,
  /// run again); the virtual clock keeps advancing.
  RunResult run();

  // ---- Primitives callable only from inside a fiber ----

  /// Let another ready fiber run; current stays runnable.
  void yield();

  /// Park the current fiber until someone calls unblock(). `reason` is
  /// shown in deadlock reports ("waiting for role sender to enroll").
  /// `waiting_on`, when the call site knows it (the CSP peer, the entry
  /// owner, the monitor holder), feeds the wait-for chains deadlock
  /// reports print.
  void block(const std::string& reason,
             ProcessId waiting_on = kNoProcess);

  /// Park the current fiber for `ticks` of virtual time.
  void sleep_for(std::uint64_t ticks);

  /// Park like block(), but resume after `ticks` if nobody unblocks us
  /// first. Returns true on timeout (Ada's `or delay` alternative).
  /// `on_timeout`, if given, runs at the instant the timeout fires —
  /// before any other fiber can observe the stale registration — so the
  /// caller's wait-list entry self-cleans. It does NOT run when the
  /// fiber is woken normally (the waker consumed the entry).
  bool block_with_timeout(const std::string& reason, std::uint64_t ticks,
                          std::function<void()> on_timeout = nullptr,
                          ProcessId waiting_on = kNoProcess);

  /// Block until fiber `pid` has finished. No-op if already done.
  void join(ProcessId pid);

  // ---- Callable from anywhere ----

  /// Make a Blocked fiber runnable again.
  void unblock(ProcessId pid);

  /// Move a Blocked fiber onto the timer heap so it resumes `ticks` of
  /// virtual time from now. Used to charge communication latency to the
  /// *parked* party of a rendezvous (the running party sleeps directly).
  void wake_at(ProcessId pid, std::uint64_t ticks_from_now);

  std::uint64_t now() const { return now_; }
  ProcessId current() const;
  bool in_fiber() const;
  const std::string& name_of(ProcessId pid) const;
  FiberState state_of(ProcessId pid) const;
  std::size_t spawned_count() const { return fibers_.size(); }
  std::size_t live_count() const;

  /// Total virtual time `pid` has spent blocked (closed spans). The
  /// causal analyzer's recovered wait attribution must match this —
  /// it is the always-on ground truth.
  std::uint64_t blocked_ticks(ProcessId pid) const {
    return fiber(pid).blocked_ticks();
  }
  /// Total virtual time `pid` has spent sleeping (closed spans),
  /// including the elapsed part of a sleep cut short by a kill.
  std::uint64_t slept_ticks(ProcessId pid) const {
    return fiber(pid).slept_ticks();
  }
  /// Wait-for hint: who `pid` is blocked on, or kNoProcess.
  ProcessId waiting_on(ProcessId pid) const {
    return fiber(pid).waiting_on();
  }

  // ---- Deterministic fault injection (runtime/fault.hpp) ----

  /// Install a copy of `plan`; its triggers fire during subsequent
  /// run() calls. Replaces any previous plan.
  void install_fault_plan(FaultPlan plan);
  void clear_fault_plan() { fault_plan_.reset(); }
  /// The installed plan, or nullptr. csp::Net consults this for
  /// message faults; the null check is the entire uninstalled cost.
  FaultPlan* fault_plan() { return fault_plan_.get(); }

  /// True once a FaultPlan crashed `pid`.
  bool has_crashed(ProcessId pid) const { return fiber(pid).crashed(); }
  /// Virtual time at which `pid` was last dispatched — deadlock reports
  /// show it so an injected-fault hang is diagnosable at a glance.
  std::uint64_t last_progress(ProcessId pid) const {
    return fiber(pid).last_progress();
  }

  // ---- Overload protection (runtime/overload.hpp): deadlines,
  //      execution budgets, typed cancellation ----

  /// Install an absolute virtual-time deadline on `pid`. When the clock
  /// reaches it, the fiber is unwound with a catchable DeadlineExceeded:
  /// synchronously if it is parked (Blocked/Sleeping — its RAII guards
  /// deregister before any other fiber runs), or at its next blocking-
  /// primitive entry if it is Ready/Running at that instant. Same-instant
  /// ordering: timers fire before deadlines, deadlines before faults.
  /// Passing kNoDeadline clears. Replaces any earlier deadline.
  void set_deadline(ProcessId pid, std::uint64_t when);
  void clear_deadline(ProcessId pid) { set_deadline(pid, kNoDeadline); }
  /// The installed deadline, or kNoDeadline.
  std::uint64_t deadline_of(ProcessId pid) const {
    return fiber(pid).deadline();
  }

  /// Allow `pid` at most `steps` further dispatches; the dispatch after
  /// the last one unwinds it with BudgetExceeded{DispatchSteps}.
  /// ScriptInstance arms this per role from ScriptSpec::budget.
  void set_step_budget(ProcessId pid, std::uint64_t steps);
  void clear_step_budget(ProcessId pid);

  /// Like a deadline, but expiry throws BudgetExceeded{VirtualTicks}
  /// carrying `limit` (the configured tick budget). `when` is absolute.
  void set_tick_budget(ProcessId pid, std::uint64_t when,
                       std::uint64_t limit);
  void clear_tick_budget(ProcessId pid);

  /// True once a deadline/budget cancellation unwound `pid`'s body.
  bool was_cancelled(ProcessId pid) const {
    return fiber(pid).cancelled();
  }
  /// Lifetime counts of fibers unwound by each cancellation flavor.
  std::uint64_t deadline_cancels() const { return deadline_cancels_; }
  std::uint64_t budget_cancels() const { return budget_cancels_; }
  /// Deadline-heap depth (deadlines + tick budgets, stale included).
  std::size_t deadline_heap_size() const { return deadlines_.size(); }

  /// Register a hook that runs after a crashed fiber has fully unwound
  /// (csp::Net fails the dead process's peers through one). Returns an
  /// id for remove_crash_hook().
  std::uint64_t add_crash_hook(std::function<void(ProcessId)> fn);
  void remove_crash_hook(std::uint64_t id);

  /// Register a diagnostic section for describe()'s Deadlock/StepLimit
  /// reports: the callback returns prose (possibly multi-line) or ""
  /// when it has nothing to say. Supervisors and script instances
  /// report restart counts / roles awaiting takeover through these, so
  /// a stuck recovery is diagnosable from the report alone.
  std::uint64_t add_report_section(std::function<std::string()> fn);
  void remove_report_section(std::uint64_t id);
  /// Concatenation of all non-empty sections ("" when silent).
  std::string report_sections() const;

  /// Current timer-heap size, stale entries included. Tests assert it
  /// stays bounded under arm/early-wake churn (lazy purging).
  std::size_t timer_heap_size() const { return timers_.size(); }
  /// Heap entries known stale (their fiber woke another way). Purged in
  /// bulk once they dominate the heap.
  std::size_t stale_timer_count() const { return stale_timers_; }

  /// The fiber-stack recycler and its reuse statistics.
  StackPool& stack_pool() { return stack_pool_; }
  const StackPool::Stats& stack_pool_stats() const {
    return stack_pool_.stats();
  }

  support::Rng& rng() { return rng_; }
  support::TraceLog& trace() { return trace_; }
  /// Record a trace event stamped with virtual time and the fiber's name.
  void trace_event(ProcessId subject, std::string what);

  /// Typed observability bus. Every layer publishes here; the prose
  /// TraceLog is itself a bus subscriber (obs::install_script_log_bridge).
  obs::EventBus& bus() { return bus_; }
  const obs::EventBus& bus() const { return bus_; }

  /// Start capturing a Chrome-trace/Perfetto timeline of every
  /// subsystem. Idempotent; returns the exporter (json()/write()).
  /// Setting $SCRIPT_TRACE=<path> enables this at construction and
  /// writes the file when the scheduler is destroyed.
  obs::TraceExporter& enable_tracing();
  bool tracing_enabled() const { return exporter_ != nullptr; }
  /// Write the captured timeline; false if tracing is off or IO failed.
  /// Stamps trace metadata (truncated_events) just before writing.
  bool write_trace(const std::string& path) const;

  /// Stamp every event with the publishing fiber's vector clock and
  /// publish flow.s/flow.f edges on cross-fiber wakes. Implied by
  /// enable_tracing(); callable alone for causal tests that subscribe
  /// directly. Idempotent.
  void enable_causal_tracking();
  bool causal_tracking_enabled() const { return causal_ != nullptr; }
  obs::CausalTracker* causal_tracker() { return causal_.get(); }

  /// Record an explicit happens-before edge (data handed from `from` to
  /// `to` outside the unblock path, e.g. a CSP payload completing into a
  /// parked receiver, or an Ada acceptor taking a queued call). No-op
  /// when causal tracking is off.
  void causal_edge(ProcessId from, ProcessId to, const char* what);

  // ---- Always-on observability (obs::FlightRecorder / Inspector /
  //      HealthMonitor) ----

  /// Arm the black-box flight recorder: a fixed-size binary ring of
  /// recent events that auto-dumps a Perfetto-compatible post-mortem
  /// artifact on failure escalations (performance aborts, supervisor
  /// give-ups, deadlock). Idempotent; the no-arg overload uses default
  /// options. Setting $SCRIPT_FLIGHT=<base path> arms at construction
  /// (dump files are suffixed with the process id and a sequence number
  /// so parallel test shards never collide).
  obs::FlightRecorder& arm_flight_recorder();
  obs::FlightRecorder& arm_flight_recorder(obs::FlightRecorderOptions opts);
  bool flight_recorder_armed() const { return flight_ != nullptr; }
  obs::FlightRecorder* flight_recorder() { return flight_.get(); }

  /// Enable SLO/watchdog monitoring. The monitor is polled on every
  /// virtual-clock advance; script instances and supervisors register
  /// their SLOs via their own enable_health() glue. Its findings join
  /// describe()'s deadlock/abort reports. Idempotent.
  obs::HealthMonitor& enable_health();
  bool health_enabled() const { return health_ != nullptr; }
  obs::HealthMonitor* health_monitor() { return health_.get(); }

  /// Arm the continuous time-series recorder: per-epoch event rates,
  /// gauge trajectories, and derived latency quantiles, keyed by script
  /// lane, over a bounded retention window (obs/timeline.hpp). Like the
  /// flight recorder it auto-dumps on failure escalations; unlike it,
  /// its dumps are history, not an event log. Idempotent. Setting
  /// $SCRIPT_TIMELINE=<base path> arms at construction the way
  /// $SCRIPT_FLIGHT does. Also backs the HealthMonitor's burn-rate
  /// windows (wired automatically in either arming order).
  obs::Timeline& arm_timeline();
  obs::Timeline& arm_timeline(obs::TimelineOptions opts);
  bool timeline_armed() const { return timeline_ != nullptr; }
  obs::Timeline* timeline() { return timeline_.get(); }
  /// Dump the timeline to `path`; false if unarmed or IO failed.
  bool write_timeline(const std::string& path) const;

  /// The scheduler-owned Inspector, created (with this scheduler
  /// attached) on first use. Script instances, lock tables, and
  /// supervisors can attach here too; the debug endpoint's `inspect`
  /// command serves its snapshots.
  obs::Inspector& inspector();

  /// Arm the live debug endpoint on a Unix-domain socket at `path`
  /// (runtime/debug_endpoint.hpp): `scriptctl top`/`watch`/`inspect`
  /// attach to the running scheduler through it. Serviced only at
  /// safepoints (run() entry/exit, clock advances, every few dozen
  /// dispatches), never blocking, read-only — golden traces and
  /// explore() are unaffected. Arms the timeline too (`timeline` and
  /// `events` need it). Returns false if the socket cannot be bound.
  /// Setting $SCRIPT_DEBUG_SOCK=<path> arms at construction; when
  /// several schedulers share one process the n-th gets "<path>.n".
  bool arm_debug_endpoint(const std::string& path);
  bool debug_endpoint_armed() const { return debug_ != nullptr; }
  DebugEndpoint* debug_endpoint() { return debug_.get(); }

  /// Live structured snapshot of the scheduler: clock, queue depths,
  /// and per-fiber state (Done fibers are elided unless crashed).
  std::string snapshot_json() const;
  /// Register this scheduler's snapshot section (and clock) with an
  /// Inspector. Returns the section id (Inspector::detach).
  std::size_t attach_inspector(obs::Inspector& inspector);

  /// Fibers currently runnable (ready-queue depth).
  std::size_t ready_count() const { return ready_.size(); }

 private:
  friend class Fiber;
  friend class ParallelRuntime;

  Fiber& fiber(ProcessId pid);
  const Fiber& fiber(ProcessId pid) const;
  /// From the current fiber back to whichever ExecContext dispatched it
  /// (the deterministic loop, or a parallel worker — `f.resume_`).
  void switch_out(Fiber& f);
  /// The one context→fiber switch (dispatch and kill paths), bracketed
  /// with the sanitizer fiber annotations. `from` is the dispatching
  /// execution context; the fiber will switch back into it.
  void switch_to(ExecContext& from, Fiber& f);
  /// Deterministic loop's dispatch (from == main_exec_).
  void switch_to(Fiber& f) { switch_to(main_exec_, f); }
  /// First thing a fiber runs after gaining control (from trampoline):
  /// completes the sanitizer-side switch and records the dispatching
  /// context's stack bounds for the switch back.
  void fiber_entered(Fiber& f);
  void on_fiber_done(Fiber& f);
  ProcessId pick_next();
  bool advance_clock();  // wake due sleepers; returns false if none pending
  /// Enqueue a fiber and set its intrusive ready flag.
  void ready_push(Fiber& f);
  /// Push a timer for the fiber's CURRENT wake generation; purges the
  /// heap first when stale entries dominate it.
  void arm_timer(Fiber& f, std::uint64_t due);
  /// The fiber is waking by some other path: any timer it armed is now
  /// stale. Count it so the heap can be purged lazily. Call BEFORE
  /// bumping wake_gen_.
  void note_stale_timer(Fiber& f);
  /// Rebuild the heap without stale entries once they dominate it.
  void maybe_purge_timers();
  /// Return a Done fiber's stack to the pool (scheduler stack only).
  void reclaim_stack(Fiber& f);

  /// Debug-endpoint safepoint: service pending requests. One null check
  /// when unarmed; never blocks, never schedules.
  void service_debug();
  /// Wire up the endpoint's command handlers (arm_debug_endpoint).
  void register_debug_handlers();

  /// Fire every due fault of the installed plan. Crashes unwind the
  /// victim synchronously (see kill_now); returns true if anything
  /// fired that could create runnable work.
  bool fire_due_faults();
  /// Switch into `f` with a kill pending so it unwinds NOW, before any
  /// other fiber can observe its stale registrations.
  void kill_now(Fiber& f);
  /// Run the registered crash hooks for a fully-unwound crashed fiber.
  void finish_crash(Fiber& f);

  /// Switch into a parked `f` with a cancel pending so it unwinds NOW
  /// with DeadlineExceeded/BudgetExceeded — the kill_now discipline,
  /// but catchable.
  void cancel_now(Fiber& f, Fiber::PendingCancel kind,
                  std::uint64_t payload);
  /// Earliest live deadline/tick-budget due, or kNoTrigger. Purges
  /// stale heap tops so the clock never advances to a cleared deadline.
  std::uint64_t next_deadline_due();
  /// Fire every deadline/tick-budget due at now_. Parked victims unwind
  /// synchronously; Ready victims get a pending cancel delivered at
  /// their next park. True if anything fired.
  bool fire_due_deadlines();
  /// Entry check at every blocking primitive: a pending cancel (or a
  /// deadline the clock already passed) throws here, on the fiber's own
  /// stack, before it parks.
  void check_cancel(Fiber& f);
  /// Throw the typed exception for a pending cancel kind (never returns).
  [[noreturn]] void throw_cancel(Fiber& f);
  /// Count a delivered cancellation and publish its overload.* event.
  void note_cancel_fired(const Fiber& f, Fiber::PendingCancel kind,
                         std::uint64_t payload);

  struct Timer {
    std::uint64_t due;
    std::uint64_t seq;  // tie-break for determinism
    ProcessId pid;
    std::uint64_t gen;  // fiber wake generation this timer was armed for
    bool operator>(const Timer& o) const {
      return due != o.due ? due > o.due : seq > o.seq;
    }
  };

  /// priority_queue with access to the backing vector, so the stale
  /// purge can filter in place and re-heapify instead of copying.
  struct TimerHeap
      : std::priority_queue<Timer, std::vector<Timer>, std::greater<>> {
    std::vector<Timer>& raw() { return c; }
  };

  /// One armed deadline or tick budget. An entry is live only while the
  /// fiber's matching slot still holds `due` — clearing or replacing a
  /// deadline leaves the old entry stale on the heap, discarded when it
  /// surfaces (the lazy-purge discipline the timer heap uses).
  struct DeadlineEntry {
    std::uint64_t due;
    std::uint64_t seq;  // tie-break for determinism
    ProcessId pid;
    bool tick_budget;  // else a plain deadline
    bool operator>(const DeadlineEntry& o) const {
      return due != o.due ? due > o.due : seq > o.seq;
    }
  };
  struct DeadlineHeap
      : std::priority_queue<DeadlineEntry, std::vector<DeadlineEntry>,
                            std::greater<>> {
    std::vector<DeadlineEntry>& raw() { return c; }
  };
  bool deadline_entry_live(const DeadlineEntry& e) const;

  SchedulerOptions opts_;
  support::Rng rng_;
  support::TraceLog trace_;
  obs::EventBus bus_;
  std::unique_ptr<obs::TraceExporter> exporter_;
  std::unique_ptr<obs::CausalTracker> causal_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<obs::HealthMonitor> health_;
  std::unique_ptr<obs::Timeline> timeline_;
  std::unique_ptr<obs::Inspector> inspector_;
  std::unique_ptr<DebugEndpoint> debug_;
  std::string trace_path_;  // from $SCRIPT_TRACE; written in the dtor
  /// Segmented, append-only: readers (workers resolving pids) never see
  /// a reallocation, so lookups are lock-free while spawns only hold
  /// the parallel spawn mutex. Deterministic mode uses it identically.
  FiberTableT<Fiber> fibers_;
  ReadyQueueT<ProcessId, kNoProcess> ready_;
  TimerHeap timers_;
  std::size_t stale_timers_ = 0;  // heap entries made stale by early wakes
  DeadlineHeap deadlines_;
  std::uint64_t deadline_seq_ = 0;
  std::uint64_t deadline_cancels_ = 0;
  std::uint64_t budget_cancels_ = 0;
  StackPool stack_pool_;
  /// Deterministic mode's group bookkeeping (ids only; no scheduling
  /// effect): per-fiber group, next fresh id. Parallel mode keeps the
  /// real thing inside ParallelRuntime.
  std::vector<GroupId> det_group_of_;
  GroupId det_next_group_ = 1;  // 0 is the implicit default group
  // Relaxed-atomic counters: cross-thread reads (snapshots, the debug
  // endpoint, EventBus auto-stamping from workers) are benign races on
  // plain integers; deterministic-mode behavior is unchanged.
  RelaxedU64 live_{0};  // fibers not yet Done (cached for live_count)
  RelaxedU64 now_{0};
  std::uint64_t timer_seq_ = 0;
  RelaxedU64 steps_{0};
  ProcessId current_ = kNoProcess;
  /// The deterministic loop's execution context (ucontext + sanitizer
  /// bookkeeping). Parallel workers each own their own ExecContext.
  ExecContext main_exec_;
  bool running_ = false;
  std::unique_ptr<ParallelRuntime> parallel_;
  std::unique_ptr<FaultPlan> fault_plan_;
  std::vector<std::pair<std::uint64_t, std::function<void(ProcessId)>>>
      crash_hooks_;
  std::uint64_t next_crash_hook_id_ = 1;
  std::vector<std::pair<std::uint64_t, std::function<std::string()>>>
      report_sections_;
  std::uint64_t next_report_section_id_ = 1;
};

}  // namespace script::runtime
