#include "runtime/sim_log.hpp"

namespace script::runtime {

void SimLog::append(std::string key, std::string value) {
  records_.push_back(SimLogRecord{std::move(key), std::move(value)});
  store_->note_append(*this, records_.back());
}

std::optional<std::string> SimLog::last(const std::string& key) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it)
    if (it->key == key) return it->value;
  return std::nullopt;
}

SimLog& SimLogStore::open(const std::string& name) {
  auto it = logs_.find(name);
  if (it == logs_.end()) {
    it = logs_.emplace(name, std::unique_ptr<SimLog>(new SimLog(this, name)))
             .first;
  }
  return *it->second;
}

void SimLogStore::note_append(const SimLog& log, const SimLogRecord& rec) {
  ++total_appends_;
  if (bus_ != nullptr && bus_->wants(obs::Subsystem::Recovery))
    bus_->publish({obs::EventKind::Instant, obs::Subsystem::Recovery,
                   obs::kAutoTime, obs::kNoPid, obs::kNoLane, "wal.append",
                   log.name() + " " + rec.key + "=" + rec.value});
}

}  // namespace script::runtime
