// Overload-protection primitives: typed cancellation and backpressure.
//
// Deadlines and execution budgets are the runtime's defense against
// work that never finishes; overflow policies are its defense against
// queues that never drain. All three live on the virtual clock and the
// dispatch counter, so an overloaded run is as deterministic and
// replay-exact as a healthy one — the same seed reproduces the same
// sheds, the same cancellations, at the same instants.
//
// Cancellation semantics: expiry unwinds the victim like FiberKilled
// (synchronously, so every RAII registration guard deregisters before
// another fiber can observe stale state) but, unlike a crash, the
// exceptions below are *catchable* — a role body may catch
// DeadlineExceeded, release what it holds, and return a degraded
// answer. Uncaught, they terminate the fiber as a crash and feed
// FailurePolicy exactly like an injected fault.
//
// Same-instant ordering: timers fire before deadlines, deadlines
// before faults — "timeout beats cancel beats crash".
#pragma once

#include <cstdint>
#include <limits>

#include "runtime/fiber.hpp"

namespace script::runtime {

/// Absent deadline / unlimited budget sentinel.
inline constexpr std::uint64_t kNoDeadline =
    std::numeric_limits<std::uint64_t>::max();

/// Thrown inside a fiber whose deadline (Scheduler::set_deadline,
/// RoleContext::deadline) expired. Deliberately NOT derived from
/// std::exception, mirroring FiberKilled: the scheduler records the
/// fiber as cancelled, not failed, when it escapes the body.
struct DeadlineExceeded {
  ProcessId pid = kNoProcess;
  /// The absolute virtual-time deadline that expired.
  std::uint64_t deadline = 0;
};

/// Which execution bound was blown — volo's panic-kind taxonomy
/// (ExecutionLimitExceeded / QueryLimitExceeded) adapted to the
/// scheduler's two currencies plus the admission queue.
enum class BudgetKind : std::uint8_t {
  DispatchSteps,  // ScriptSpec budget: max_dispatch_steps
  VirtualTicks,   // ScriptSpec budget: max_virtual_ticks
  QueueDepth,     // ScriptSpec budget: max_queue_depth (shed, never thrown)
};

inline const char* budget_kind_name(BudgetKind k) {
  switch (k) {
    case BudgetKind::DispatchSteps: return "dispatch_steps";
    case BudgetKind::VirtualTicks: return "virtual_ticks";
    case BudgetKind::QueueDepth: return "queue_depth";
  }
  return "?";
}

/// Thrown inside a fiber that exhausted an execution budget. Catchable
/// like DeadlineExceeded; uncaught it terminates the fiber as a crash.
struct BudgetExceeded {
  BudgetKind kind = BudgetKind::DispatchSteps;
  ProcessId pid = kNoProcess;
  /// The configured bound that was hit.
  std::uint64_t limit = 0;
};

/// What a bounded queue (enroll queue, monitor mailbox) does when an
/// arrival would exceed its capacity.
enum class OverflowPolicy : std::uint8_t {
  Block,      // classic behavior: the producer waits (or queues) unbounded
  ShedNewest, // refuse the arriving request; tell it when to retry
  ShedOldest, // evict the longest-queued request to make room
};

inline const char* overflow_policy_name(OverflowPolicy p) {
  switch (p) {
    case OverflowPolicy::Block: return "block";
    case OverflowPolicy::ShedNewest: return "shed_newest";
    case OverflowPolicy::ShedOldest: return "shed_oldest";
  }
  return "?";
}

}  // namespace script::runtime
