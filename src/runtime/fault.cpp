#include "runtime/fault.hpp"

#include <algorithm>

namespace script::runtime {

FaultPlan& FaultPlan::crash_at_step(ProcessId pid, std::uint64_t step) {
  process_.push_back({ProcessFault::Kind::Crash, pid, false, step, 0, false});
  return *this;
}

FaultPlan& FaultPlan::crash_at_time(ProcessId pid, std::uint64_t when) {
  process_.push_back({ProcessFault::Kind::Crash, pid, true, when, 0, false});
  return *this;
}

FaultPlan& FaultPlan::stall_at_step(ProcessId pid, std::uint64_t step,
                                    std::uint64_t ticks) {
  process_.push_back(
      {ProcessFault::Kind::Stall, pid, false, step, ticks, false});
  return *this;
}

FaultPlan& FaultPlan::stall_at_time(ProcessId pid, std::uint64_t when,
                                    std::uint64_t ticks) {
  process_.push_back(
      {ProcessFault::Kind::Stall, pid, true, when, ticks, false});
  return *this;
}

FaultPlan& FaultPlan::drop_message(std::string tag_substr, std::uint64_t nth) {
  msgs_.push_back({MsgKind::Drop, std::move(tag_substr), nth, 0, 0, false});
  return *this;
}

FaultPlan& FaultPlan::duplicate_message(std::string tag_substr,
                                        std::uint64_t nth) {
  msgs_.push_back(
      {MsgKind::Duplicate, std::move(tag_substr), nth, 0, 0, false});
  return *this;
}

FaultPlan& FaultPlan::delay_message(std::string tag_substr, std::uint64_t nth,
                                    std::uint64_t extra_ticks) {
  msgs_.push_back(
      {MsgKind::Delay, std::move(tag_substr), nth, extra_ticks, 0, false});
  return *this;
}

std::uint64_t FaultPlan::next_time_trigger() const {
  std::uint64_t next = kNoTrigger;
  for (const ProcessFault& f : process_)
    if (!f.fired && f.by_time) next = std::min(next, f.at);
  return next;
}

bool FaultPlan::fire_rule(MsgKind kind, const std::string& tag,
                          std::uint64_t* extra) {
  for (MsgRule& r : msgs_) {
    if (r.fired || r.kind != kind) continue;
    if (tag.find(r.substr) == std::string::npos) continue;
    if (++r.seen < r.nth) continue;
    r.fired = true;
    if (extra != nullptr) *extra = r.extra;
    return true;
  }
  return false;
}

bool FaultPlan::should_drop(const std::string& tag) {
  return fire_rule(MsgKind::Drop, tag, nullptr);
}

bool FaultPlan::should_duplicate(const std::string& tag) {
  return fire_rule(MsgKind::Duplicate, tag, nullptr);
}

std::uint64_t FaultPlan::extra_delay(const std::string& tag) {
  std::uint64_t extra = 0;
  return fire_rule(MsgKind::Delay, tag, &extra) ? extra : 0;
}

}  // namespace script::runtime
