#include "runtime/peer_supervisor.hpp"

namespace script::runtime {

namespace {
constexpr std::size_t kHeader = 1 + 8;
}  // namespace

PeerSupervisor::PeerSupervisor(Transport& inner, std::uint64_t incarnation,
                               PeerSupervisorOptions opts)
    : inner_(&inner), self_inc_(incarnation), opts_(opts) {}

std::string PeerSupervisor::encode(WireFrameType t, std::uint64_t inc,
                                   const std::string& payload) {
  std::string out;
  out.reserve(kHeader + payload.size());
  out.push_back(static_cast<char>(t));
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((inc >> (8 * i)) & 0xff));
  out += payload;
  return out;
}

bool PeerSupervisor::decode(const std::string& frame, WireFrameType* t,
                            std::uint64_t* inc, std::string* payload) {
  if (frame.size() < kHeader) return false;
  const auto raw = static_cast<std::uint8_t>(frame[0]);
  if (raw > static_cast<std::uint8_t>(WireFrameType::SuspectNotice))
    return false;
  *t = static_cast<WireFrameType>(raw);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(frame[1 + i]))
         << (8 * i);
  *inc = v;
  payload->assign(frame, kHeader, frame.size() - kHeader);
  return true;
}

void PeerSupervisor::raw_send(PeerId to, WireFrameType t,
                              std::string payload) {
  inner_->send(to, encode(t, self_inc_, payload));
}

bool PeerSupervisor::send(PeerId to, std::string frame) {
  const Peer& p = peer(to);
  if (p.gone) {
    ++stats_.frames_shed;
    publish("wire.send_to_gone", "peer=" + std::to_string(to));
    return false;
  }
  stats_.frames_sent += 1;
  stats_.bytes_sent += frame.size();
  return inner_->send(to, encode(WireFrameType::Data, self_inc_, frame));
}

void PeerSupervisor::watch(PeerId id) {
  Peer& p = peer(id);
  p.last_heard = clock_now();
  raw_send(id, WireFrameType::Hello, {});
}

void PeerSupervisor::on_frame(PeerId from, std::string&& frame,
                              const PollFn& fn) {
  WireFrameType type;
  std::uint64_t inc;
  std::string payload;
  if (!decode(frame, &type, &inc, &payload)) {
    ++stats_.torn_frames;
    publish("wire.bad_frame", "peer=" + std::to_string(from));
    return;
  }
  Peer& p = peer(from);

  if (type == WireFrameType::SuspectNotice) {
    // Someone buried incarnation `inc` of a peer. If that peer is US —
    // the notice names an incarnation at least as new as ours — adopt a
    // strictly newer identity and re-introduce ourselves everywhere.
    // Resurrection is forbidden; restart is the only way back.
    if (inc >= self_inc_) {
      self_inc_ = inc + 1;
      publish("wire.self_suspected",
              "by=" + std::to_string(from) +
                  " new_inc=" + std::to_string(self_inc_));
      for (PeerId id : inner_->peers())
        raw_send(id, WireFrameType::Hello, {});
      if (on_self_suspected) on_self_suspected(self_inc_);
    }
    p.last_heard = clock_now();
    p.heard_once = true;
    return;
  }

  if (inc < p.inc) {
    // Zombie traffic from a previous life of `from`: a frame written
    // before its crash can surface after the restart's hello (kernel
    // buffers, chaos delays). One counted drop, no state change.
    ++stats_.stale_frames;
    publish("wire.stale_frame",
            "peer=" + std::to_string(from) + " inc=" + std::to_string(inc));
    return;
  }

  if (inc > p.inc) {
    // A genuinely new incarnation: suspicion was for the OLD life, so
    // it resets — this is the only path out of sticky suspicion.
    const bool rejoin = p.heard_once;
    p.inc = inc;
    p.suspected = false;
    if (p.gone) {
      p.gone = false;
      ++stats_.reconnects;
    }
    p.last_heard = clock_now();
    p.heard_once = true;
    publish("wire.reenroll",
            "peer=" + std::to_string(from) + " inc=" + std::to_string(inc));
    if (rejoin && on_reenroll) on_reenroll(from, inc);
  } else if (p.suspected) {
    // Same incarnation we already declared dead: the link flapping back
    // does NOT resurrect it. Drop, and tell the zombie why.
    ++stats_.stale_frames;
    publish("wire.suspected_frame", "peer=" + std::to_string(from));
    // The notice names the BURIED incarnation (theirs, not ours): the
    // zombie compares it against its own and reincarnates past it.
    inner_->send(from, encode(WireFrameType::SuspectNotice, p.inc, {}));
    return;
  } else {
    p.last_heard = clock_now();
    p.heard_once = true;
  }

  switch (type) {
    case WireFrameType::Data:
      stats_.frames_received += 1;
      stats_.bytes_received += payload.size();
      fn(from, std::move(payload));
      break;
    case WireFrameType::Hello:
      // Answer so the other side gets a liveness baseline even when the
      // app has nothing to say yet.
      raw_send(from, WireFrameType::Heartbeat, {});
      break;
    case WireFrameType::Heartbeat:
    case WireFrameType::SuspectNotice:
      break;
  }
}

std::size_t PeerSupervisor::poll(const PollFn& fn) {
  std::size_t delivered = 0;
  inner_->poll([&](PeerId from, std::string&& frame) {
    const std::uint64_t before = stats_.frames_received;
    on_frame(from, std::move(frame), fn);
    if (stats_.frames_received != before) ++delivered;
  });
  return delivered;
}

void PeerSupervisor::tick() {
  const std::uint64_t now = clock_now();
  for (auto& [id, p] : peers_) {
    if (p.gone) continue;
    if (now - p.last_sent >= opts_.heartbeat_every) {
      p.last_sent = now;
      raw_send(id, WireFrameType::Heartbeat, {});
    }
    if (!p.suspected && p.heard_once &&
        now - p.last_heard > opts_.suspect_after) {
      p.suspected = true;
      p.suspected_at = now;
      publish("wire.suspect",
              "peer=" + std::to_string(id) + " inc=" + std::to_string(p.inc));
      if (on_suspect) on_suspect(id, p.inc);
    }
    if (p.suspected && opts_.gone_after != 0 &&
        now - p.suspected_at > opts_.gone_after) {
      p.gone = true;
      ++stats_.disconnects;
      publish("wire.gone",
              "peer=" + std::to_string(id) + " inc=" + std::to_string(p.inc));
      if (on_gone) on_gone(id, p.inc);
    }
  }
}

void PeerSupervisor::service() {
  bump_fallback_clock();
  inner_->service();
}

LinkState PeerSupervisor::link_state(PeerId id) const {
  const auto it = peers_.find(id);
  if (it != peers_.end() && it->second.gone) return LinkState::Gone;
  return inner_->link_state(id);
}

std::uint64_t PeerSupervisor::incarnation_of(PeerId id) const {
  const auto it = peers_.find(id);
  return it == peers_.end() ? 0 : it->second.inc;
}

bool PeerSupervisor::suspected(PeerId id) const {
  const auto it = peers_.find(id);
  return it != peers_.end() && it->second.suspected;
}

bool PeerSupervisor::gone(PeerId id) const {
  const auto it = peers_.find(id);
  return it != peers_.end() && it->second.gone;
}

}  // namespace script::runtime
