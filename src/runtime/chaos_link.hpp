// ChaosLink — a seeded frame-level fault interposer over any Transport.
//
// PR 2's FaultPlan injects faults at the csp::Net message level inside
// one simulated process group; this decorator injects them at the WIRE
// level, between transport backends, so the identical fault matrix can
// run against the deterministic sim backend (CI twin) and the real TCP
// backend (soak). Five fault kinds, all counted in TransportStats and
// published as chaos.* Link events — a fault that fired invisibly is a
// test that proves nothing:
//
//   drop       — frame vanishes after send()                (rate)
//   delay      — frame held for delay_ticks of virtual time (rate)
//   duplicate  — frame forwarded twice                      (rate)
//   partition  — all frames to/from a peer eaten until heal (scripted)
//   slow-close — link torn down mid-frame at the peer       (scripted)
//
// Rate faults draw from a private seeded Rng in send order, so a fixed
// seed yields the same fault pattern on every run over the sim backend.
// Scripted faults (partition/heal/slow_close) are driven by the test
// harness at chosen instants.
//
// Stats split: chaos_* counters and the sent/received totals of frames
// that crossed THIS decorator live in ChaosLink::stats(); wire-level
// truth (what actually hit the medium) stays on the inner backend.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/transport.hpp"
#include "support/rng.hpp"

namespace script::runtime {

struct ChaosOptions {
  std::uint64_t seed = 1;
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double delay_rate = 0.0;
  std::uint64_t delay_ticks = 3;  // virtual-time hold per delayed frame
};

class ChaosLink final : public Transport {
 public:
  ChaosLink(Transport& inner, ChaosOptions opts);

  PeerId self() const override { return inner_->self(); }
  bool send(PeerId to, std::string frame) override;
  std::size_t poll(const PollFn& fn) override;
  void service() override;
  void wait_io(int timeout_us) override { inner_->wait_io(timeout_us); }
  void kick(PeerId peer) override { inner_->kick(peer); }
  LinkState link_state(PeerId peer) const override {
    return inner_->link_state(peer);
  }
  std::vector<PeerId> peers() const override { return inner_->peers(); }

  // ---- Scripted faults ----

  /// Eat every frame to/from `peer` (both directions at this endpoint)
  /// until heal(). Symmetric partitions install one on each side.
  void partition(PeerId peer);
  void heal(PeerId peer);
  bool partitioned(PeerId peer) const;

  /// Tear the link to `peer` down mid-frame, right now.
  void slow_close(PeerId peer) override;

  Transport& inner() { return *inner_; }

 private:
  struct Delayed {
    std::uint64_t due;
    PeerId to;
    std::string bytes;
  };

  Transport* inner_;
  ChaosOptions opts_;
  support::Rng rng_;
  std::vector<PeerId> partitioned_;
  std::vector<Delayed> delayed_;  // FIFO per due-tick (send order)
};

}  // namespace script::runtime
