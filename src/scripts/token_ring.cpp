// TokenRing is fully generic (header-only); see token_ring.hpp.
#include "scripts/token_ring.hpp"
