// Figure 12: the mailbox broadcast for the shared-memory (monitor) host
// language. Each recipient role owns a single-slot mailbox monitor; the
// sender deposits the datum into every mailbox and each recipient
// withdraws from its own.
//
// "Our script solution follows the multiple monitor scheme, but with
// the script providing the top-level packaging" — the mailboxes are
// private to the script object; enrollers only see send/receive.
//
// Immediate initiation/termination, per the paper's remark that "a
// monitor-based supervisor would most easily implement immediate
// initiation and termination". The critical role set is the full cast
// ("this prevents the sender from waiting on a full mailbox" across
// performances: a performance only ends when every recipient emptied
// its box).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "monitor/mailbox.hpp"
#include "script/instance.hpp"
#include "support/panic.hpp"

namespace script::patterns {

template <typename T>
class MailboxBroadcast {
 public:
  MailboxBroadcast(csp::Net& net, std::size_t n,
                   std::string name = "mailbox_broadcast",
                   std::uint64_t mailbox_cost = 0)
      : inst_(net, make_spec(name, n), name), n_(n) {
    for (std::size_t i = 0; i < n; ++i)
      boxes_.push_back(std::make_unique<monitor::Mailbox<T>>(
          net.scheduler(), name + "/mbox" + std::to_string(i),
          mailbox_cost));
    inst_.on_role("sender", [this, n](core::RoleContext& ctx) {
      const T data = ctx.param<T>("data");
      for (std::size_t r = 0; r < n; ++r) boxes_[r]->put(data);
    });
    inst_.on_role("recipient", [this](core::RoleContext& ctx) {
      ctx.set_param(
          "data", boxes_[static_cast<std::size_t>(ctx.index())]->get());
    });
  }

  core::EnrollResult send(T value) {
    return inst_.enroll(core::RoleId("sender"), {},
                        core::Params().in("data", std::move(value)));
  }

  T receive(int index) {
    T out{};
    inst_.enroll(core::role("recipient", index), {},
                 core::Params().out("data", &out));
    return out;
  }

  std::size_t recipients() const { return n_; }
  core::ScriptInstance& instance() { return inst_; }
  monitor::Mailbox<T>& mailbox(std::size_t i) { return *boxes_[i]; }

 private:
  static core::ScriptSpec make_spec(const std::string& name, std::size_t n) {
    core::ScriptSpec s(name);
    s.role("sender").role_family("recipient", n);
    s.initiation(core::Initiation::Immediate)
        .termination(core::Termination::Immediate);
    return s;
  }

  core::ScriptInstance inst_;
  std::vector<std::unique_ptr<monitor::Mailbox<T>>> boxes_;
  std::size_t n_;
};

}  // namespace script::patterns
