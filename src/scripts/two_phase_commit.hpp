// TwoPhaseCommit: the "larger scale synchronization (involving more than
// just a pair of processes)" the paper's introduction names as a target
// for communication abstraction. One coordinator, n participants:
//
//   phase 1: coordinator -> prepare -> each participant, which votes;
//   phase 2: coordinator broadcasts commit (all voted yes) or abort,
//            and collects acknowledgements.
//
// The whole protocol — message pattern, vote aggregation, decision
// distribution — lives in the script; enrollers only supply a voter.
#pragma once

#include <functional>
#include <string>

#include "script/instance.hpp"

namespace script::patterns {

class TwoPhaseCommit {
 public:
  TwoPhaseCommit(csp::Net& net, std::size_t participants,
                 std::string name = "two_phase_commit");

  /// Enroll as the coordinator; returns the decision (true = commit).
  bool coordinate();

  /// Enroll as participant[index]; `voter` is consulted in phase 1.
  /// Returns the coordinator's decision.
  bool participate(int index, std::function<bool()> voter);

  std::size_t participants() const { return n_; }
  core::ScriptInstance& instance() { return inst_; }

 private:
  core::ScriptInstance inst_;
  std::size_t n_;
};

}  // namespace script::patterns
