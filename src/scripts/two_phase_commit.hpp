// TwoPhaseCommit: the "larger scale synchronization (involving more than
// just a pair of processes)" the paper's introduction names as a target
// for communication abstraction. One coordinator, n participants:
//
//   phase 1: coordinator -> prepare -> each participant, which votes;
//   phase 2: coordinator broadcasts commit (all voted yes) or abort,
//            and collects acknowledgements.
//
// The whole protocol — message pattern, vote aggregation, decision
// distribution — lives in the script; enrollers only supply a voter.
//
// Recoverable variant (docs/ROBUSTNESS.md "Recovery"): give the options
// a SimLogStore and enable replace_coordinator, and the coordinator
// role keeps a write-ahead log. A crashed coordinator's role stays open
// for takeover_deadline ticks; a replacement enrollment (typically a
// supervisor-restarted fiber calling coordinate() again) resumes from
// the log — a logged decision is re-driven, an in-doubt transaction is
// presumed aborted. Votes are NEVER re-collected: a vote that only the
// dead incarnation saw is lost, and presumption fills the gap.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "runtime/sim_log.hpp"
#include "script/instance.hpp"

namespace script::patterns {

struct TwoPhaseCommitOptions {
  /// Write-ahead log store for the coordinator role (nullptr: no WAL,
  /// a replacement coordinator presumes abort for everything).
  runtime::SimLogStore* wal = nullptr;
  /// Crashed coordinator awaits a replacement instead of degrading.
  bool replace_coordinator = false;
  /// Ticks the coordinator role stays open for takeover (fallback:
  /// Degrade — survivors then see the distinguished value, §II).
  std::uint64_t takeover_deadline = 32;
};

class TwoPhaseCommit {
 public:
  TwoPhaseCommit(csp::Net& net, std::size_t participants,
                 std::string name = "two_phase_commit",
                 TwoPhaseCommitOptions options = {});

  /// Enroll as the coordinator; returns the decision (true = commit).
  /// A replacement coordinator (role takeover) replays the WAL instead
  /// of collecting votes.
  bool coordinate();

  /// Enroll as participant[index]; `voter` is consulted in phase 1.
  /// Returns the coordinator's decision.
  bool participate(int index, std::function<bool()> voter);

  std::size_t participants() const { return n_; }
  const TwoPhaseCommitOptions& options() const { return opts_; }
  /// The coordinator's WAL ("<name>.coordinator"), or nullptr.
  runtime::SimLog* wal_log();
  core::ScriptInstance& instance() { return inst_; }

 private:
  core::ScriptInstance inst_;
  std::size_t n_;
  TwoPhaseCommitOptions opts_;
};

}  // namespace script::patterns
