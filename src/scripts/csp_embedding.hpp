// §IV "Scripts in CSP": Figure 6 (the broadcast script in CSP) and
// Figure 7 (the supervisor process p_s of the translation into plain
// CSP).
//
// The translation inlines each role body at the enrollment site; what
// remains of the script is the supervisor, which coordinates the
// successive-activations rule: a process announces `start_s(k)` before
// executing role k's inlined body and `end_s(k)` after; p_s only
// accepts a start for a role that is free in the current performance,
// and opens the next performance when every role of the current one has
// ended. This class is that supervisor, faithfully message-driven (the
// bench measures its overhead against the library's direct bookkeeping).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "csp/alternative.hpp"
#include "csp/net.hpp"

namespace script::embeddings {

class CspSupervisor {
 public:
  /// Creates (but does not yet spawn) a supervisor for m roles.
  CspSupervisor(csp::Net& net, std::size_t roles, std::string name);

  /// Spawn the p_s process. Call before any enroll_*.
  void spawn();

  /// Stop p_s once the last performance has completed.
  void shutdown();

  // ---- Client side (call from enrolling processes) ----

  /// `p_s ! start_s(k)` — blocks until role k is free in the current
  /// performance (Figure 7's `ready[k]` guard).
  void enroll_start(std::size_t role_index);

  /// `p_s ! end_s(k)` — marks role k finished; when all roles have
  /// ended, p_s resets for the next performance.
  void enroll_end(std::size_t role_index);

  std::uint64_t performances() const { return performances_; }
  csp::ProcessId pid() const { return pid_; }

 private:
  void supervise();

  csp::Net* net_;
  std::size_t m_;
  std::string name_;
  csp::ProcessId pid_ = csp::kAnyProcess;
  std::vector<bool> ready_;
  std::vector<bool> done_;
  std::uint64_t performances_ = 0;
  bool stop_requested_ = false;
};

/// Figure 6 faithfully: the broadcast body written with raw CSP
/// primitives — the transmitter's repetitive command with `sent[k]`
/// guards sending x to each recipient in nondeterministic order, each
/// recipient a single `transmitter ? x`.
///
/// `transmitter_pid` / `recipient_pids` follow CSP's strict mutual
/// naming. Returns the number of rendezvous performed (== recipients).
std::size_t csp_broadcast_transmit(csp::Net& net, int x,
                                   const std::vector<csp::ProcessId>&
                                       recipient_pids);
int csp_broadcast_receive(csp::Net& net, csp::ProcessId transmitter_pid);

}  // namespace script::embeddings
