// ScatterGather is fully generic (header-only); this translation unit
// exists to give the template a home in the library and to anchor any
// future non-template helpers.
#include "scripts/scatter_gather.hpp"
