// Auction: a multi-party negotiation script exercising the paper's
// critical-role-set machinery in a second domain (besides Figure 5).
//
// Roles: one auctioneer and up to n bidders. The critical role set is
// {auctioneer, 2 bidders} — an auction can proceed short-handed, and
// unfilled bidder roles are `terminated` (the auctioneer probes and
// skips them, exactly like Figure 5's managers skip an absent writer).
//
// Scenario per performance:
//   1. auctioneer announces the reserve price to every PRESENT bidder;
//   2. each bidder answers with its bid (its enrollment parameter);
//   3. auctioneer awards the highest bid >= reserve (ties: lowest
//      index) and tells every bidder whether it won.
#pragma once

#include <cstdint>
#include <string>

#include "script/instance.hpp"

namespace script::patterns {

struct AuctionResult {
  bool sold = false;
  int winner = -1;   // bidder index
  long price = 0;    // winning bid
  std::size_t bidders = 0;
};

class Auction {
 public:
  /// `on_failure` Replace holds a crashed role open `takeover_deadline`
  /// ticks; the fallback stays Abort (the bodies assume a voided
  /// performance unwinds them, never a silent distinguished value).
  Auction(csp::Net& net, std::size_t max_bidders,
          std::string name = "auction",
          core::FailurePolicy on_failure = core::FailurePolicy::Abort,
          std::uint64_t takeover_deadline = 16);

  /// Enroll as the auctioneer with a reserve price.
  AuctionResult sell(long reserve);

  /// Enroll as bidder[index] offering `bid`. Returns true if this
  /// bidder won.
  bool bid(int index, long bid);

  /// Enroll as any free bidder slot.
  bool bid_any(long bid);

  std::size_t max_bidders() const { return n_; }
  core::ScriptInstance& instance() { return inst_; }

 private:
  core::ScriptInstance inst_;
  std::size_t n_;
};

}  // namespace script::patterns
