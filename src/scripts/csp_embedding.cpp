#include "scripts/csp_embedding.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace script::embeddings {

using csp::Alternative;
using csp::Net;

CspSupervisor::CspSupervisor(Net& net, std::size_t roles, std::string name)
    : net_(&net),
      m_(roles),
      name_(std::move(name)),
      ready_(roles, true),
      done_(roles, false) {}

void CspSupervisor::spawn() {
  pid_ = net_->spawn_process("p_s:" + name_, [this] { supervise(); });
}

void CspSupervisor::supervise() {
  // Figure 7: *[ (k,j) ready[k]; p_j?start_s() -> ready[k]:=false
  //            [] ~ready[k]; p_j?end_s()   -> done[k]:=true ...]
  for (;;) {
    Alternative alt(*net_);
    for (std::size_t k = 0; k < m_; ++k) {
      alt.recv_any_case<std::size_t>(
          "start_" + std::to_string(k),
          [this, k](csp::ProcessId, std::size_t) { ready_[k] = false; },
          /*guard=*/ready_[k]);
      alt.recv_any_case<std::size_t>(
          "end_" + std::to_string(k),
          [this, k](csp::ProcessId, std::size_t) { done_[k] = true; },
          /*guard=*/!ready_[k] && !done_[k]);
    }
    alt.recv_any_case<std::size_t>(
        "shutdown_" + name_,
        [this](csp::ProcessId, std::size_t) { stop_requested_ = true; });
    if (alt.select() == Alternative::kFailed || stop_requested_) return;

    if (std::all_of(done_.begin(), done_.end(), [](bool d) { return d; })) {
      // ready := m'true; done := m'false  — next performance may form.
      std::fill(ready_.begin(), ready_.end(), true);
      std::fill(done_.begin(), done_.end(), false);
      ++performances_;
    }
  }
}

void CspSupervisor::shutdown() {
  auto r = net_->send(pid_, "shutdown_" + name_, std::size_t{0});
  SCRIPT_ASSERT(r.has_value(), "supervisor already gone");
}

void CspSupervisor::enroll_start(std::size_t role_index) {
  SCRIPT_ASSERT(role_index < m_, "bad role index");
  auto r = net_->send(pid_, "start_" + std::to_string(role_index),
                      role_index);
  SCRIPT_ASSERT(r.has_value(), "supervisor gone during enroll");
}

void CspSupervisor::enroll_end(std::size_t role_index) {
  SCRIPT_ASSERT(role_index < m_, "bad role index");
  auto r =
      net_->send(pid_, "end_" + std::to_string(role_index), role_index);
  SCRIPT_ASSERT(r.has_value(), "supervisor gone during end");
}

std::size_t csp_broadcast_transmit(
    Net& net, int x, const std::vector<csp::ProcessId>& recipient_pids) {
  // Figure 6's transmitter: VAR sent: ARRAY[1..5] OF boolean := false;
  // *[ (k) ~sent[k]; recipient[k]!x -> sent[k]:=true ]
  std::vector<bool> sent(recipient_pids.size(), false);
  return csp::repetitive(net, [&](Alternative& alt) {
    for (std::size_t k = 0; k < recipient_pids.size(); ++k)
      alt.send_case<int>(
          recipient_pids[k], "x", x, [&sent, k] { sent[k] = true; },
          /*guard=*/!sent[k]);
  });
}

int csp_broadcast_receive(Net& net, csp::ProcessId transmitter_pid) {
  // Figure 6's recipient: transmitter ? y_i
  auto r = net.recv<int>(transmitter_pid, "x");
  SCRIPT_ASSERT(r.has_value(), "transmitter terminated early");
  return *r;
}

}  // namespace script::embeddings
