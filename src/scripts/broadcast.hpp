// The paper's broadcast scripts.
//
//   * StarBroadcast     — Figure 3: fully synchronized; the sender hands
//     the datum to each recipient in turn; delayed initiation and
//     termination mean "all wait until the last copy is sent".
//   * PipelineBroadcast — Figure 4: immediate initiation/termination;
//     the sender gives the message to recipient[0] and leaves;
//     recipient[i] waits for recipient[i+1] and passes it along.
//   * TreeBroadcast     — §II's "spanning tree, generating a wave of
//     transmissions": every role, upon receiving x from its parent,
//     transmits it to each of its d children.
//
// All three expose the same enrolling surface (send / receive), hiding
// the strategy — which is exactly the abstraction claim of the paper.
#pragma once

#include <string>

#include "script/instance.hpp"
#include "support/panic.hpp"

namespace script::patterns {

using core::any_member;
using core::EnrollResult;
using core::Initiation;
using core::Params;
using core::PartnerSpec;
using core::role;
using core::RoleContext;
using core::RoleId;
using core::ScriptInstance;
using core::ScriptSpec;
using core::Termination;

/// Roles: sender + recipient[n]. Policies per the figure being modelled.
/// Replace policy holds a crashed role open `takeover_deadline` ticks
/// for a replacement (fallback: Abort).
ScriptSpec broadcast_spec(
    const std::string& name, std::size_t n, Initiation init,
    Termination term,
    core::FailurePolicy on_failure = core::FailurePolicy::Abort,
    std::uint64_t takeover_deadline = 16);

template <typename T>
class StarBroadcast {
 public:
  StarBroadcast(csp::Net& net, std::size_t n,
                std::string name = "star_broadcast",
                core::FailurePolicy on_failure = core::FailurePolicy::Abort,
                std::uint64_t takeover_deadline = 16)
      : inst_(net,
              broadcast_spec(name, n, Initiation::Delayed,
                             Termination::Delayed, on_failure,
                             takeover_deadline),
              name),
        n_(n) {
    const bool replace = on_failure == core::FailurePolicy::Replace;
    inst_.on_role("sender", [n, replace](RoleContext& ctx) {
      const T data = ctx.param<T>("data");
      for (std::size_t i = 0; i < n; ++i) {
        const RoleId to = role("recipient", static_cast<int>(i));
        auto r = ctx.send(to, data);
        if (!r.has_value() && replace && ctx.await_takeover(to))
          r = ctx.send(to, data);  // replacement recipient resumed
        SCRIPT_ASSERT(r.has_value() || replace,
                      "star broadcast: recipient vanished");
      }
    });
    inst_.on_role("recipient", [replace](RoleContext& ctx) {
      auto v = ctx.template recv<T>(RoleId("sender"));
      if (!v.has_value() && replace &&
          ctx.await_takeover(RoleId("sender")))
        v = ctx.template recv<T>(RoleId("sender"));
      SCRIPT_ASSERT(v.has_value() || replace,
                    "star broadcast: sender vanished");
      if (v.has_value()) ctx.set_param("data", *v);
    });
  }

  /// ENROLL ... AS sender(value).
  EnrollResult send(T value, const PartnerSpec& partners = {}) {
    return inst_.enroll(RoleId("sender"), partners,
                        Params().in("data", std::move(value)));
  }

  /// ENROLL ... AS recipient[index](out).
  T receive(int index, const PartnerSpec& partners = {}) {
    T out{};
    inst_.enroll(role("recipient", index), partners,
                 Params().out("data", &out));
    return out;
  }

  /// ENROLL into any free recipient slot.
  T receive_any() {
    T out{};
    inst_.enroll(any_member("recipient"), {}, Params().out("data", &out));
    return out;
  }

  std::size_t recipients() const { return n_; }
  ScriptInstance& instance() { return inst_; }

 private:
  ScriptInstance inst_;
  std::size_t n_;
};

template <typename T>
class PipelineBroadcast {
 public:
  PipelineBroadcast(csp::Net& net, std::size_t n,
                    std::string name = "pipeline_broadcast")
      : inst_(net,
              broadcast_spec(name, n, Initiation::Immediate,
                             Termination::Immediate),
              name),
        n_(n) {
    inst_.on_role("sender", [](RoleContext& ctx) {
      auto r = ctx.send(role("recipient", 0), ctx.param<T>("data"));
      SCRIPT_ASSERT(r.has_value(), "pipeline: first recipient vanished");
    });
    inst_.on_role("recipient", [n](RoleContext& ctx) {
      const RoleId prev = ctx.index() == 0
                              ? RoleId("sender")
                              : role("recipient", ctx.index() - 1);
      auto v = ctx.template recv<T>(prev);
      SCRIPT_ASSERT(v.has_value(), "pipeline: upstream vanished");
      ctx.set_param("data", *v);
      if (static_cast<std::size_t>(ctx.index()) + 1 < n) {
        auto r = ctx.send(role("recipient", ctx.index() + 1), *v);
        SCRIPT_ASSERT(r.has_value(), "pipeline: downstream vanished");
      }
    });
  }

  EnrollResult send(T value, const PartnerSpec& partners = {}) {
    return inst_.enroll(RoleId("sender"), partners,
                        Params().in("data", std::move(value)));
  }

  T receive(int index, const PartnerSpec& partners = {}) {
    T out{};
    inst_.enroll(role("recipient", index), partners,
                 Params().out("data", &out));
    return out;
  }

  std::size_t recipients() const { return n_; }
  ScriptInstance& instance() { return inst_; }

 private:
  ScriptInstance inst_;
  std::size_t n_;
};

template <typename T>
class TreeBroadcast {
 public:
  /// Nodes 0..n form a d-ary heap: node 0 is the sender, node j>=1 is
  /// recipient[j-1]; children of node j are d*j+1 .. d*j+d.
  TreeBroadcast(csp::Net& net, std::size_t n, std::size_t fanout,
                std::string name = "tree_broadcast")
      : inst_(net,
              broadcast_spec(name, n, Initiation::Delayed,
                             Termination::Delayed),
              name),
        n_(n),
        d_(fanout) {
    SCRIPT_ASSERT(fanout > 0, "tree broadcast needs fanout >= 1");
    auto send_children = [n, fanout](RoleContext& ctx, std::size_t node,
                                     const T& data) {
      for (std::size_t c = fanout * node + 1;
           c <= fanout * node + fanout && c <= n; ++c) {
        auto r =
            ctx.send(role("recipient", static_cast<int>(c - 1)), data);
        SCRIPT_ASSERT(r.has_value(), "tree broadcast: child vanished");
      }
    };
    inst_.on_role("sender", [send_children](RoleContext& ctx) {
      send_children(ctx, 0, ctx.param<T>("data"));
    });
    inst_.on_role("recipient", [send_children, fanout](RoleContext& ctx) {
      const std::size_t node = static_cast<std::size_t>(ctx.index()) + 1;
      const std::size_t parent = (node - 1) / fanout;
      const RoleId from = parent == 0
                              ? RoleId("sender")
                              : role("recipient", static_cast<int>(parent) - 1);
      auto v = ctx.template recv<T>(from);
      SCRIPT_ASSERT(v.has_value(), "tree broadcast: parent vanished");
      ctx.set_param("data", *v);
      send_children(ctx, node, *v);
    });
  }

  EnrollResult send(T value, const PartnerSpec& partners = {}) {
    return inst_.enroll(RoleId("sender"), partners,
                        Params().in("data", std::move(value)));
  }

  T receive(int index, const PartnerSpec& partners = {}) {
    T out{};
    inst_.enroll(role("recipient", index), partners,
                 Params().out("data", &out));
    return out;
  }

  std::size_t recipients() const { return n_; }
  std::size_t fanout() const { return d_; }
  ScriptInstance& instance() { return inst_; }

 private:
  ScriptInstance inst_;
  std::size_t n_;
  std::size_t d_;
};

}  // namespace script::patterns
