#include "scripts/barrier.hpp"

namespace script::patterns {

namespace {

core::ScriptSpec barrier_spec(const std::string& name, std::size_t n,
                              core::FailurePolicy on_failure,
                              std::uint64_t takeover_deadline) {
  core::ScriptSpec s(name);
  s.role_family("member", n);
  s.initiation(core::Initiation::Delayed)
      .termination(core::Termination::Delayed);
  s.on_failure(on_failure);
  if (on_failure == core::FailurePolicy::Replace)
    s.takeover_deadline(takeover_deadline);
  return s;
}

}  // namespace

Barrier::Barrier(csp::Net& net, std::size_t n, std::string name,
                 core::FailurePolicy on_failure,
                 std::uint64_t takeover_deadline)
    : inst_(net, barrier_spec(name, n, on_failure, takeover_deadline),
            name),
      n_(n) {
  inst_.on_role("member", [](core::RoleContext&) {
    // Arrival is the whole job: delayed initiation gathers everyone,
    // delayed termination releases everyone.
  });
}

std::uint64_t Barrier::arrive_and_wait() {
  return inst_.enroll(core::any_member("member")).performance;
}

}  // namespace script::patterns
