#include "scripts/barrier.hpp"

namespace script::patterns {

namespace {

core::ScriptSpec barrier_spec(const std::string& name, std::size_t n) {
  core::ScriptSpec s(name);
  s.role_family("member", n);
  s.initiation(core::Initiation::Delayed)
      .termination(core::Termination::Delayed);
  return s;
}

}  // namespace

Barrier::Barrier(csp::Net& net, std::size_t n, std::string name)
    : inst_(net, barrier_spec(name, n), name), n_(n) {
  inst_.on_role("member", [](core::RoleContext&) {
    // Arrival is the whole job: delayed initiation gathers everyone,
    // delayed termination releases everyone.
  });
}

std::uint64_t Barrier::arrive_and_wait() {
  return inst_.enroll(core::any_member("member")).performance;
}

}  // namespace script::patterns
