// Barrier: the purest demonstration that script enrollment is itself a
// synchronization primitive. Delayed initiation + delayed termination
// with empty role bodies means enrolling IS arriving at the barrier:
// nobody proceeds until all n members have enrolled (the paper's
// "global synchronization between large groups of processes ... a
// possible extension to CSP's synchronized communication between two
// processes").
#pragma once

#include <string>

#include "script/instance.hpp"

namespace script::patterns {

class Barrier {
 public:
  /// `on_failure` governs a member crashing between formation and
  /// release: Abort (default) voids the generation, Replace holds it
  /// open `takeover_deadline` ticks for a late replacement arrival.
  Barrier(csp::Net& net, std::size_t n, std::string name = "barrier",
          core::FailurePolicy on_failure = core::FailurePolicy::Abort,
          std::uint64_t takeover_deadline = 16);

  /// Enroll into any free member slot; returns once all n are present
  /// (and, by delayed termination, released together). The returned
  /// value is the performance (i.e. barrier generation) number.
  std::uint64_t arrive_and_wait();

  std::size_t width() const { return n_; }
  core::ScriptInstance& instance() { return inst_; }

 private:
  core::ScriptInstance inst_;
  std::size_t n_;
};

}  // namespace script::patterns
