// ScatterGather: a coordinator distributes one work item to each of n
// workers and collects the results — the "single definition of a
// frequently used pattern" the paper's introduction asks abstraction
// mechanisms to provide.
//
// Workers bring their own compute function as an in-parameter, so one
// script definition serves every workload type (generic "as its host
// programming language allows").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "script/instance.hpp"
#include "support/panic.hpp"

namespace script::patterns {

template <typename T, typename R>
class ScatterGather {
 public:
  ScatterGather(csp::Net& net, std::size_t n,
                std::string name = "scatter_gather")
      : inst_(net, make_spec(name, n), name), n_(n) {
    inst_.on_role("coordinator", [n](core::RoleContext& ctx) {
      const auto items = ctx.param<std::vector<T>>("items");
      SCRIPT_ASSERT(items.size() == n,
                    "scatter: item count must equal worker count");
      for (std::size_t i = 0; i < n; ++i) {
        auto s = ctx.send(core::role("worker", static_cast<int>(i)),
                          items[i], "task");
        SCRIPT_ASSERT(s.has_value(), "scatter: worker vanished");
      }
      std::vector<R> results(n);
      for (std::size_t i = 0; i < n; ++i) {
        auto r = ctx.template recv<R>(
            core::role("worker", static_cast<int>(i)), "result");
        SCRIPT_ASSERT(r.has_value(), "gather: worker vanished");
        results[i] = *r;
      }
      ctx.set_param("results", results);
    });
    inst_.on_role("worker", [](core::RoleContext& ctx) {
      auto task =
          ctx.template recv<T>(core::RoleId("coordinator"), "task");
      SCRIPT_ASSERT(task.has_value(), "worker: coordinator vanished");
      const auto fn = ctx.param<std::function<R(T)>>("fn");
      auto s = ctx.send(core::RoleId("coordinator"), fn(*task), "result");
      SCRIPT_ASSERT(s.has_value(), "worker: coordinator vanished");
    });
  }

  /// Enroll as the coordinator; blocks until all results are gathered.
  std::vector<R> scatter(std::vector<T> items) {
    std::vector<R> results;
    inst_.enroll(core::RoleId("coordinator"), {},
                 core::Params()
                     .in("items", std::move(items))
                     .out("results", &results));
    return results;
  }

  /// Enroll as any free worker, computing with `fn`.
  void work(std::function<R(T)> fn) {
    inst_.enroll(core::any_member("worker"), {},
                 core::Params().in("fn", std::move(fn)));
  }

  std::size_t workers() const { return n_; }
  core::ScriptInstance& instance() { return inst_; }

 private:
  static core::ScriptSpec make_spec(const std::string& name, std::size_t n) {
    core::ScriptSpec s(name);
    s.role("coordinator").role_family("worker", n);
    s.initiation(core::Initiation::Delayed)
        .termination(core::Termination::Delayed);
    return s;
  }

  core::ScriptInstance inst_;
  std::size_t n_;
};

}  // namespace script::patterns
