// TokenRing: a token circulates member[0] -> member[1] -> ... ->
// member[n-1] -> member[0], `laps` times; every member transforms the
// token as it passes. A classic well-structured communication pattern
// (mutual exclusion, round-robin scheduling, ring reductions) captured
// as a single script.
//
// Token algebra: member[0] seeds token = fn0(initial) once, then each
// lap moves the token through members 1..n-1 (each applying its fn) and
// back to member[0] (which applies fn0 again at the START of every
// subsequent lap). With every fn = (+1), the final value is
// initial + 1 + laps*(n-1) + (laps-1).
#pragma once

#include <functional>
#include <string>

#include "script/instance.hpp"
#include "support/panic.hpp"

namespace script::patterns {

template <typename T>
class TokenRing {
 public:
  TokenRing(csp::Net& net, std::size_t n, std::size_t laps,
            std::string name = "token_ring")
      : inst_(net, make_spec(name, n), name), n_(n), laps_(laps) {
    SCRIPT_ASSERT(n >= 2, "token ring needs at least two members");
    SCRIPT_ASSERT(laps >= 1, "token ring needs at least one lap");
    inst_.on_role("member", [n, laps](core::RoleContext& ctx) {
      const auto fn = ctx.param<std::function<T(T)>>("fn");
      const int i = ctx.index();
      const core::RoleId left =
          core::role("member", (i + static_cast<int>(n) - 1) %
                                   static_cast<int>(n));
      const core::RoleId right =
          core::role("member", (i + 1) % static_cast<int>(n));
      if (i == 0) {
        T token = fn(ctx.param<T>("initial"));
        for (std::size_t lap = 0; lap < laps; ++lap) {
          if (lap > 0) token = fn(token);
          auto s = ctx.send(right, token, "token");
          SCRIPT_ASSERT(s.has_value(), "ring: right neighbour vanished");
          auto r = ctx.template recv<T>(left, "token");
          SCRIPT_ASSERT(r.has_value(), "ring: left neighbour vanished");
          token = *r;
        }
        ctx.set_param("final", token);
      } else {
        for (std::size_t lap = 0; lap < laps; ++lap) {
          auto r = ctx.template recv<T>(left, "token");
          SCRIPT_ASSERT(r.has_value(), "ring: left neighbour vanished");
          auto s = ctx.send(right, fn(*r), "token");
          SCRIPT_ASSERT(s.has_value(), "ring: right neighbour vanished");
        }
      }
    });
  }

  /// Enroll as member[0], seeding the ring; returns the final token.
  T lead(T initial, std::function<T(T)> fn) {
    T final_token{};
    inst_.enroll(core::role("member", 0), {},
                 core::Params()
                     .in("initial", std::move(initial))
                     .in("fn", std::move(fn))
                     .out("final", &final_token));
    return final_token;
  }

  /// Enroll as member[index] (index >= 1).
  void join(int index, std::function<T(T)> fn) {
    SCRIPT_ASSERT(index >= 1, "join is for members 1..n-1; use lead()");
    inst_.enroll(core::role("member", index), {},
                 core::Params().in("fn", std::move(fn)));
  }

  std::size_t members() const { return n_; }
  std::size_t laps() const { return laps_; }
  core::ScriptInstance& instance() { return inst_; }

 private:
  static core::ScriptSpec make_spec(const std::string& name, std::size_t n) {
    core::ScriptSpec s(name);
    s.role_family("member", n);
    s.initiation(core::Initiation::Delayed)
        .termination(core::Termination::Delayed);
    return s;
  }

  core::ScriptInstance inst_;
  std::size_t n_;
  std::size_t laps_;
};

}  // namespace script::patterns
