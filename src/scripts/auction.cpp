#include "scripts/auction.hpp"

#include "support/panic.hpp"

namespace script::patterns {

using core::any_member;
using core::CriticalSet;
using core::Initiation;
using core::Params;
using core::role;
using core::RoleContext;
using core::RoleId;
using core::ScriptSpec;
using core::Termination;

namespace {

ScriptSpec auction_spec(const std::string& name, std::size_t n) {
  SCRIPT_ASSERT(n >= 2, "an auction needs room for at least two bidders");
  ScriptSpec s(name);
  s.role("auctioneer").role_family("bidder", n);
  s.initiation(Initiation::Delayed).termination(Termination::Delayed);
  s.critical(CriticalSet{{"auctioneer", 1}, {"bidder", 2}});
  return s;
}

}  // namespace

Auction::Auction(csp::Net& net, std::size_t max_bidders, std::string name)
    : inst_(net, auction_spec(name, max_bidders), name), n_(max_bidders) {
  inst_.on_role("auctioneer", [n = n_](RoleContext& ctx) {
    const long reserve = ctx.param<long>("reserve");
    AuctionResult result;
    // Round 1: announce to every present bidder (absent roles are
    // `terminated` once the critical set filled — skip them).
    for (std::size_t i = 0; i < n; ++i) {
      const RoleId b = role("bidder", static_cast<int>(i));
      if (ctx.terminated(b)) continue;
      auto s = ctx.send(b, reserve, "announce");
      SCRIPT_ASSERT(s.has_value(), "auction: bidder vanished");
      ++result.bidders;
    }
    // Round 2: collect bids; keep the best at or above reserve.
    for (std::size_t i = 0; i < n; ++i) {
      const RoleId b = role("bidder", static_cast<int>(i));
      if (ctx.terminated(b)) continue;
      auto bid = ctx.recv<long>(b, "bid");
      SCRIPT_ASSERT(bid.has_value(), "auction: bidder vanished");
      if (*bid >= reserve && (!result.sold || *bid > result.price)) {
        result.sold = true;
        result.winner = static_cast<int>(i);
        result.price = *bid;
      }
    }
    // Round 3: notify outcomes.
    for (std::size_t i = 0; i < n; ++i) {
      const RoleId b = role("bidder", static_cast<int>(i));
      if (ctx.terminated(b)) continue;
      auto s = ctx.send(b, result.winner == static_cast<int>(i), "award");
      SCRIPT_ASSERT(s.has_value(), "auction: bidder vanished");
    }
    ctx.set_param("result", result);
  });
  inst_.on_role("bidder", [](RoleContext& ctx) {
    auto reserve = ctx.recv<long>(RoleId("auctioneer"), "announce");
    SCRIPT_ASSERT(reserve.has_value(), "bidder: auctioneer vanished");
    auto s = ctx.send(RoleId("auctioneer"), ctx.param<long>("bid"), "bid");
    SCRIPT_ASSERT(s.has_value(), "bidder: auctioneer vanished");
    auto won = ctx.recv<bool>(RoleId("auctioneer"), "award");
    SCRIPT_ASSERT(won.has_value(), "bidder: auctioneer vanished");
    ctx.set_param("won", *won);
  });
}

AuctionResult Auction::sell(long reserve) {
  AuctionResult result;
  inst_.enroll(RoleId("auctioneer"), {},
               Params().in("reserve", reserve).out("result", &result));
  return result;
}

bool Auction::bid(int index, long bid) {
  bool won = false;
  inst_.enroll(role("bidder", index), {},
               Params().in("bid", bid).out("won", &won));
  return won;
}

bool Auction::bid_any(long bid) {
  bool won = false;
  inst_.enroll(any_member("bidder"), {},
               Params().in("bid", bid).out("won", &won));
  return won;
}

}  // namespace script::patterns
