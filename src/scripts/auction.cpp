#include "scripts/auction.hpp"

#include "support/panic.hpp"

namespace script::patterns {

using core::any_member;
using core::CriticalSet;
using core::Initiation;
using core::Params;
using core::role;
using core::RoleContext;
using core::RoleId;
using core::ScriptSpec;
using core::Termination;

namespace {

ScriptSpec auction_spec(const std::string& name, std::size_t n,
                        core::FailurePolicy on_failure,
                        std::uint64_t takeover_deadline) {
  SCRIPT_ASSERT(n >= 2, "an auction needs room for at least two bidders");
  ScriptSpec s(name);
  s.role("auctioneer").role_family("bidder", n);
  s.initiation(Initiation::Delayed).termination(Termination::Delayed);
  s.critical(CriticalSet{{"auctioneer", 1}, {"bidder", 2}});
  s.on_failure(on_failure);
  if (on_failure == core::FailurePolicy::Replace) {
    // Only the auctioneer is replaceable: a spare bidder could never
    // learn where its predecessor left off mid-round. A crashed bidder
    // aborts the round (the fallback stays Abort).
    s.takeover_deadline(takeover_deadline)
        .takeover_roles({"auctioneer"});
  }
  return s;
}

}  // namespace

Auction::Auction(csp::Net& net, std::size_t max_bidders, std::string name,
                 core::FailurePolicy on_failure,
                 std::uint64_t takeover_deadline)
    : inst_(net,
            auction_spec(name, max_bidders, on_failure, takeover_deadline),
            name),
      n_(max_bidders) {
  const bool replace = on_failure == core::FailurePolicy::Replace;
  inst_.on_role("auctioneer", [n = n_](RoleContext& ctx) {
    AuctionResult result;
    if (ctx.resumed()) {
      // A replacement auctioneer has no bid state, so it voids the
      // round — presumed no-sale, the auction's analogue of 2PC's
      // presumed abort — and drives only the award phase so every
      // surviving bidder is released.
      for (std::size_t i = 0; i < n; ++i) {
        const RoleId b = role("bidder", static_cast<int>(i));
        if (ctx.terminated(b)) continue;
        ++result.bidders;
        (void)ctx.send(b, false, "award");
      }
      ctx.set_param("result", result);
      return;
    }
    const long reserve = ctx.param<long>("reserve");
    // Round 1: announce to every present bidder (absent roles are
    // `terminated` once the critical set filled — skip them).
    for (std::size_t i = 0; i < n; ++i) {
      const RoleId b = role("bidder", static_cast<int>(i));
      if (ctx.terminated(b)) continue;
      auto s = ctx.send(b, reserve, "announce");
      SCRIPT_ASSERT(s.has_value(), "auction: bidder vanished");
      ++result.bidders;
    }
    // Round 2: collect bids; keep the best at or above reserve.
    for (std::size_t i = 0; i < n; ++i) {
      const RoleId b = role("bidder", static_cast<int>(i));
      if (ctx.terminated(b)) continue;
      auto bid = ctx.recv<long>(b, "bid");
      SCRIPT_ASSERT(bid.has_value(), "auction: bidder vanished");
      if (*bid >= reserve && (!result.sold || *bid > result.price)) {
        result.sold = true;
        result.winner = static_cast<int>(i);
        result.price = *bid;
      }
    }
    // Round 3: notify outcomes.
    for (std::size_t i = 0; i < n; ++i) {
      const RoleId b = role("bidder", static_cast<int>(i));
      if (ctx.terminated(b)) continue;
      auto s = ctx.send(b, result.winner == static_cast<int>(i), "award");
      SCRIPT_ASSERT(s.has_value(), "auction: bidder vanished");
    }
    ctx.set_param("result", result);
  });
  inst_.on_role("bidder", [replace](RoleContext& ctx) {
    const RoleId auc("auctioneer");
    // A replacement auctioneer voids the round and jumps to the award
    // phase, so on any sign of a handoff the bidder skips there too.
    bool voided = false;
    if (replace && ctx.takeover_pending(auc))
      voided = ctx.await_takeover(auc);
    if (!voided) {
      auto reserve = ctx.recv<long>(auc, "announce");
      if (!reserve.has_value()) {
        SCRIPT_ASSERT(replace, "bidder: auctioneer vanished");
        if (!ctx.await_takeover(auc)) {
          ctx.set_param("won", false);
          return;
        }
        voided = true;
      }
    }
    if (!voided && replace && ctx.takeover_pending(auc))
      voided = ctx.await_takeover(auc);  // died after announcing
    if (!voided) {
      auto s = ctx.send(auc, ctx.param<long>("bid"), "bid");
      if (!s.has_value()) {
        SCRIPT_ASSERT(replace, "bidder: auctioneer vanished");
        if (!ctx.await_takeover(auc)) {
          ctx.set_param("won", false);
          return;
        }
      }
    }
    auto won = ctx.recv<bool>(auc, "award");
    if (!won.has_value() && replace && ctx.await_takeover(auc))
      won = ctx.recv<bool>(auc, "award");
    SCRIPT_ASSERT(won.has_value() || replace, "bidder: auctioneer vanished");
    ctx.set_param("won", won.has_value() && *won);
  });
}

AuctionResult Auction::sell(long reserve) {
  AuctionResult result;
  inst_.enroll(RoleId("auctioneer"), {},
               Params().in("reserve", reserve).out("result", &result));
  return result;
}

bool Auction::bid(int index, long bid) {
  bool won = false;
  inst_.enroll(role("bidder", index), {},
               Params().in("bid", bid).out("won", &won));
  return won;
}

bool Auction::bid_any(long bid) {
  bool won = false;
  inst_.enroll(any_member("bidder"), {},
               Params().in("bid", bid).out("won", &won));
  return won;
}

}  // namespace script::patterns
