#include "scripts/broadcast.hpp"

namespace script::patterns {

ScriptSpec broadcast_spec(const std::string& name, std::size_t n,
                          Initiation init, Termination term) {
  ScriptSpec s(name);
  s.role("sender").role_family("recipient", n);
  s.initiation(init).termination(term);
  return s;
}

}  // namespace script::patterns
