#include "scripts/broadcast.hpp"

namespace script::patterns {

ScriptSpec broadcast_spec(const std::string& name, std::size_t n,
                          Initiation init, Termination term,
                          core::FailurePolicy on_failure,
                          std::uint64_t takeover_deadline) {
  ScriptSpec s(name);
  s.role("sender").role_family("recipient", n);
  s.initiation(init).termination(term);
  s.on_failure(on_failure);
  if (on_failure == core::FailurePolicy::Replace)
    s.takeover_deadline(takeover_deadline);
  return s;
}

}  // namespace script::patterns
