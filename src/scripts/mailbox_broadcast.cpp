// MailboxBroadcast is fully generic (header-only); see
// mailbox_broadcast.hpp.
#include "scripts/mailbox_broadcast.hpp"
