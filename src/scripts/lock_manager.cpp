#include "scripts/lock_manager.hpp"

#include <set>

#include "support/panic.hpp"

namespace script::patterns {

using core::any_member;
using core::CriticalSet;
using core::Initiation;
using core::Params;
using core::role;
using core::RoleContext;
using core::RoleId;
using core::ScriptSpec;
using core::Termination;
using lockdb::LockMode;

namespace {

ScriptSpec lock_spec(const std::string& name, std::size_t k) {
  ScriptSpec s(name);
  s.role_family("manager", k).role("reader").role("writer");
  s.initiation(Initiation::Delayed).termination(Termination::Delayed);
  s.critical(CriticalSet{{"manager", k}, {"reader", 1}});
  s.critical(CriticalSet{{"manager", k}, {"writer", 1}});
  return s;
}

}  // namespace

LockManagerScript::LockManagerScript(csp::Net& net,
                                     lockdb::ReplicaSet& replicas,
                                     std::string name)
    : inst_(net, lock_spec(name, replicas.active_count()), name),
      replicas_(&replicas),
      k_(replicas.active_count()) {
  inst_.on_role("manager", [this](RoleContext& ctx) {
    lockdb::LockTable& table = replicas_->table(
        replicas_->active()[static_cast<std::size_t>(ctx.index())]);
    // Which clients joined this performance? (Cast is frozen under
    // delayed initiation; unfilled client roles are `terminated`.)
    std::set<std::string> pending;
    for (const char* client : {"reader", "writer"})
      if (!ctx.terminated(RoleId(client))) pending.insert(client);
    while (!pending.empty()) {
      auto m = ctx.recv_any<LockRequest>();
      SCRIPT_ASSERT(m.has_value(), "manager lost its clients");
      const RoleId from = m->first;
      const LockRequest req = m->second;
      switch (req.kind) {
        case LockRequest::Kind::Lock: {
          const LockMode mode = from.name == "reader"
                                    ? LockMode::Shared
                                    : LockMode::Exclusive;
          const bool ok = table.acquire(req.item, mode, req.owner);
          auto s = ctx.send(
              from, ok ? LockStatus::Granted : LockStatus::Denied, "reply");
          SCRIPT_ASSERT(s.has_value(), "manager: client vanished");
          break;
        }
        case LockRequest::Kind::Release:
          table.release(req.item, req.owner);
          break;
        case LockRequest::Kind::Done:
          pending.erase(from.name);
          break;
      }
    }
  });

  // Figure 5b: the reader needs one grant; on full denial nothing is
  // held (its `who` set is empty), matching the paper's release loop.
  inst_.on_role("reader", [k = k_](RoleContext& ctx) {
    const auto kind = ctx.param<LockRequest::Kind>("kind");
    const auto item = ctx.param<std::string>("item");
    const auto id = ctx.param<lockdb::OwnerId>("id");
    LockStatus status = LockStatus::Denied;
    if (kind == LockRequest::Kind::Release) {
      for (std::size_t i = 0; i < k; ++i) {
        auto s = ctx.send(role("manager", static_cast<int>(i)),
                          LockRequest{kind, item, id});
        SCRIPT_ASSERT(s.has_value(), "reader: manager vanished");
      }
      status = LockStatus::Granted;
    } else {
      for (std::size_t i = 0; i < k; ++i) {
        auto s = ctx.send(role("manager", static_cast<int>(i)),
                          LockRequest{LockRequest::Kind::Lock, item, id});
        SCRIPT_ASSERT(s.has_value(), "reader: manager vanished");
        auto reply = ctx.recv<LockStatus>(
            role("manager", static_cast<int>(i)), "reply");
        SCRIPT_ASSERT(reply.has_value(), "reader: manager vanished");
        if (*reply == LockStatus::Granted) {
          status = LockStatus::Granted;
          break;
        }
      }
    }
    for (std::size_t i = 0; i < k; ++i) {
      auto s = ctx.send(role("manager", static_cast<int>(i)),
                        LockRequest{LockRequest::Kind::Done, "", id});
      SCRIPT_ASSERT(s.has_value(), "reader: manager vanished");
    }
    ctx.set_param("status", status);
  });

  // Figure 5c: the writer needs every manager; a single denial aborts
  // and releases the grants collected so far.
  inst_.on_role("writer", [k = k_](RoleContext& ctx) {
    const auto kind = ctx.param<LockRequest::Kind>("kind");
    const auto item = ctx.param<std::string>("item");
    const auto id = ctx.param<lockdb::OwnerId>("id");
    LockStatus status = LockStatus::Denied;
    if (kind == LockRequest::Kind::Release) {
      for (std::size_t i = 0; i < k; ++i) {
        auto s = ctx.send(role("manager", static_cast<int>(i)),
                          LockRequest{kind, item, id});
        SCRIPT_ASSERT(s.has_value(), "writer: manager vanished");
      }
      status = LockStatus::Granted;
    } else {
      std::set<std::size_t> who;
      for (std::size_t i = 0; i < k; ++i) {
        auto s = ctx.send(role("manager", static_cast<int>(i)),
                          LockRequest{LockRequest::Kind::Lock, item, id});
        SCRIPT_ASSERT(s.has_value(), "writer: manager vanished");
        auto reply = ctx.recv<LockStatus>(
            role("manager", static_cast<int>(i)), "reply");
        SCRIPT_ASSERT(reply.has_value(), "writer: manager vanished");
        if (*reply == LockStatus::Granted)
          who.insert(i);
        else
          break;
      }
      if (who.size() == k) {
        status = LockStatus::Granted;
      } else {
        for (const std::size_t i : who) {
          auto s =
              ctx.send(role("manager", static_cast<int>(i)),
                       LockRequest{LockRequest::Kind::Release, item, id});
          SCRIPT_ASSERT(s.has_value(), "writer: manager vanished");
        }
      }
    }
    for (std::size_t i = 0; i < k; ++i) {
      auto s = ctx.send(role("manager", static_cast<int>(i)),
                        LockRequest{LockRequest::Kind::Done, "", id});
      SCRIPT_ASSERT(s.has_value(), "writer: manager vanished");
    }
    ctx.set_param("status", status);
  });
}

void LockManagerScript::serve_once(std::size_t index) {
  inst_.enroll(role("manager", static_cast<int>(index)));
}

LockStatus LockManagerScript::run_client(const RoleId& client,
                                         LockRequest::Kind kind,
                                         const std::string& item,
                                         lockdb::OwnerId id) {
  LockStatus status = LockStatus::Denied;
  inst_.enroll(client, {},
               Params()
                   .in("kind", kind)
                   .in("item", item)
                   .in("id", id)
                   .out("status", &status));
  return status;
}

LockStatus LockManagerScript::reader_lock(const std::string& item,
                                          lockdb::OwnerId id) {
  return run_client(RoleId("reader"), LockRequest::Kind::Lock, item, id);
}

void LockManagerScript::reader_release(const std::string& item,
                                       lockdb::OwnerId id) {
  run_client(RoleId("reader"), LockRequest::Kind::Release, item, id);
}

LockStatus LockManagerScript::writer_lock(const std::string& item,
                                          lockdb::OwnerId id) {
  return run_client(RoleId("writer"), LockRequest::Kind::Lock, item, id);
}

void LockManagerScript::writer_release(const std::string& item,
                                       lockdb::OwnerId id) {
  run_client(RoleId("writer"), LockRequest::Kind::Release, item, id);
}

// ---- MembershipChangeScript ----

namespace {

ScriptSpec membership_spec(const std::string& name, std::size_t k) {
  ScriptSpec s(name);
  s.role("leaver").role("joiner");
  if (k > 1) s.role_family("witness", k - 1);
  s.initiation(Initiation::Delayed).termination(Termination::Delayed);
  return s;
}

}  // namespace

MembershipChangeScript::MembershipChangeScript(csp::Net& net,
                                               lockdb::ReplicaSet& replicas,
                                               std::string name)
    : inst_(net, membership_spec(name, replicas.active_count()), name),
      replicas_(&replicas) {
  const std::size_t k = replicas.active_count();
  inst_.on_role("leaver", [](RoleContext& ctx) {
    auto s = ctx.send(RoleId("joiner"),
                      ctx.param<lockdb::NodeId>("node"), "handover");
    SCRIPT_ASSERT(s.has_value(), "membership: joiner vanished");
  });
  inst_.on_role("joiner", [this, k](RoleContext& ctx) {
    auto leaving = ctx.recv<lockdb::NodeId>(RoleId("leaver"), "handover");
    SCRIPT_ASSERT(leaving.has_value(), "membership: leaver vanished");
    replicas_->swap_member(*leaving, ctx.param<lockdb::NodeId>("node"));
    const std::uint64_t epoch = replicas_->epoch();
    for (std::size_t w = 0; w + 1 < k; ++w) {
      auto s = ctx.send(role("witness", static_cast<int>(w)), epoch,
                        "epoch");
      SCRIPT_ASSERT(s.has_value(), "membership: witness vanished");
    }
    ctx.set_param("epoch", epoch);
  });
  if (k > 1) {
    inst_.on_role("witness", [](RoleContext& ctx) {
      auto epoch = ctx.recv<std::uint64_t>(RoleId("joiner"), "epoch");
      SCRIPT_ASSERT(epoch.has_value(), "membership: joiner vanished");
      ctx.set_param("epoch", *epoch);
    });
  }
}

void MembershipChangeScript::leave(lockdb::NodeId self) {
  inst_.enroll(RoleId("leaver"), {}, Params().in("node", self));
}

std::uint64_t MembershipChangeScript::join(lockdb::NodeId self) {
  std::uint64_t epoch = 0;
  inst_.enroll(RoleId("joiner"), {},
               Params().in("node", self).out("epoch", &epoch));
  return epoch;
}

std::uint64_t MembershipChangeScript::witness(int index) {
  std::uint64_t epoch = 0;
  inst_.enroll(role("witness", index), {}, Params().out("epoch", &epoch));
  return epoch;
}

}  // namespace script::patterns
