#include "scripts/lock_manager.hpp"

#include <optional>
#include <set>

#include "runtime/scheduler.hpp"
#include "support/panic.hpp"

namespace script::patterns {

using core::any_member;
using core::CriticalSet;
using core::Initiation;
using core::Params;
using core::role;
using core::RoleContext;
using core::RoleId;
using core::ScriptSpec;
using core::Termination;
using lockdb::LockMode;

namespace {

ScriptSpec lock_spec(const std::string& name, std::size_t k,
                     const LockManagerOptions& opts) {
  ScriptSpec s(name);
  s.role_family("manager", k).role("reader").role("writer");
  s.initiation(Initiation::Delayed).termination(Termination::Delayed);
  s.critical(CriticalSet{{"manager", k}, {"reader", 1}});
  s.critical(CriticalSet{{"manager", k}, {"writer", 1}});
  if (opts.replace_on_failure) {
    // A crashed manager awaits a replacement (the lock tables persist in
    // the script object, so a fresh fiber picks up where it left off);
    // past the deadline the performance degrades as before.
    s.on_failure(core::FailurePolicy::Replace)
        .takeover_deadline(opts.takeover_deadline)
        .takeover_fallback(core::FailurePolicy::Degrade)
        // Clients are not replayable mid-exchange: a crashed reader or
        // writer degrades at once and its grants wait out their leases.
        .takeover_roles({"manager"});
  } else {
    // A crashed client must not wedge the managers: the performance
    // degrades and the manager body reaps the dead client's grants.
    s.on_failure(core::FailurePolicy::Degrade);
  }
  return s;
}

// One Lock round-trip with manager `mi`, takeover-aware: when the
// manager crashes mid-exchange and a replacement takes over, the
// request is RESENT — acquire is idempotent for the same owner, and the
// pending exchange died with the old incarnation. nullopt once the
// manager is gone for good (no replacement within the deadline).
std::optional<LockStatus> lock_round_trip(RoleContext& ctx, const RoleId& mi,
                                          const std::string& item,
                                          lockdb::OwnerId id, bool replace) {
  for (;;) {
    if (replace && ctx.takeover_pending(mi) && !ctx.await_takeover(mi))
      return std::nullopt;
    auto s = ctx.send(mi, LockRequest{LockRequest::Kind::Lock, item, id,
                                      ctx.deadline_at()});
    if (!s.has_value()) {
      if (replace && ctx.await_takeover(mi)) continue;
      return std::nullopt;
    }
    if (replace && ctx.takeover_pending(mi)) {
      // The manager died right after taking the request; a replacement
      // knows nothing of it — resend rather than await a reply that
      // can never come.
      if (!ctx.await_takeover(mi)) return std::nullopt;
      continue;
    }
    auto reply = ctx.recv<LockStatus>(mi, "reply");
    if (!reply.has_value()) {
      if (replace && ctx.await_takeover(mi)) continue;
      return std::nullopt;
    }
    return *reply;
  }
}

// Fire-and-forget Release/Done, retried across manager takeovers so the
// resumed incarnation still learns the client is finished.
void post_to_manager(RoleContext& ctx, const RoleId& mi,
                     const LockRequest& rq, bool replace) {
  for (;;) {
    auto s = ctx.send(mi, rq);
    if (s.has_value() || !replace || !ctx.await_takeover(mi)) return;
  }
}

}  // namespace

LockManagerScript::LockManagerScript(csp::Net& net,
                                     lockdb::ReplicaSet& replicas,
                                     std::string name,
                                     LockManagerOptions options)
    : inst_(net, lock_spec(name, replicas.active_count(), options), name),
      replicas_(&replicas),
      k_(replicas.active_count()),
      opts_(options) {
  if (opts_.lease_ticks != 0) {
    // Leased grants expire on the virtual clock; wire it into every
    // active table so plain acquire() reaps opportunistically too.
    runtime::Scheduler* sched = &net.scheduler();
    for (const lockdb::NodeId node : replicas.active())
      replicas.table(node).set_clock([sched] { return sched->now(); });
  }
  inst_.on_role("manager", [this](RoleContext& ctx) {
    lockdb::LockTable& table = replicas_->table(
        replicas_->active()[static_cast<std::size_t>(ctx.index())]);
    const std::uint64_t lease = opts_.lease_ticks;
    runtime::Scheduler& sched = ctx.scheduler();
    // Which clients joined this performance? (Cast is frozen under
    // delayed initiation; unfilled client roles are `terminated`.)
    std::set<std::string> pending;
    for (const char* client : {"reader", "writer"})
      if (!ctx.terminated(RoleId(client))) pending.insert(client);
    // Grants outstanding per client, so a client that crashes between
    // Lock and Release leaves no orphaned lock behind (recovery path).
    std::map<std::string, std::set<std::pair<std::string, lockdb::OwnerId>>>
        held;
    while (!pending.empty()) {
      // Expired leases first: grants whose holder stopped renewing
      // (crashed client, or state lost with a dead manager incarnation)
      // are reclaimed no matter how they were lost.
      if (lease != 0) table.reap_expired(sched.now());
      // Reap terminated clients first: a crashed client never sends
      // Release/Done, so its grants are released on its behalf.
      for (auto it = pending.begin(); it != pending.end();) {
        if (ctx.terminated(RoleId(*it))) {
          for (const auto& [item, owner] : held[*it])
            table.release(item, owner);
          held.erase(*it);
          it = pending.erase(it);
        } else {
          ++it;
        }
      }
      if (pending.empty()) break;
      const std::vector<RoleId> live(pending.begin(), pending.end());
      auto m = ctx.recv_from_roles<LockRequest>(live);
      if (!m.has_value()) continue;  // a client died: re-scan and reap
      const RoleId from = m->first;
      const LockRequest req = m->second;
      switch (req.kind) {
        case LockRequest::Kind::Lock: {
          const LockMode mode = from.name == "reader"
                                    ? LockMode::Shared
                                    : LockMode::Exclusive;
          // The typed overloads honor the requester's deadline: a
          // request served after it has passed is refused Expired
          // rather than granted to a client that is being cancelled.
          const lockdb::AcquireOutcome out =
              lease != 0
                  ? table.acquire_leased(req.item, mode, req.owner,
                                         sched.now() + lease, sched.now(),
                                         req.deadline)
                  : table.acquire(req.item, mode, req.owner, sched.now(),
                                  req.deadline);
          if (out == lockdb::AcquireOutcome::Granted)
            held[from.name].insert({req.item, req.owner});
          const LockStatus st =
              out == lockdb::AcquireOutcome::Granted ? LockStatus::Granted
              : out == lockdb::AcquireOutcome::DeadlineExpired
                  ? LockStatus::Expired
                  : LockStatus::Denied;
          // A failed reply means the client died after asking; keep the
          // grant in `held` and let the reap release it.
          (void)ctx.send(from, st, "reply");
          break;
        }
        case LockRequest::Kind::Release:
          table.release(req.item, req.owner);
          held[from.name].erase({req.item, req.owner});
          break;
        case LockRequest::Kind::Done:
          pending.erase(from.name);
          held.erase(from.name);
          break;
      }
    }
  });

  // Figure 5b: the reader needs one grant; on full denial nothing is
  // held (its `who` set is empty), matching the paper's release loop.
  inst_.on_role("reader", [this, k = k_](RoleContext& ctx) {
    const bool replace = opts_.replace_on_failure;
    const auto kind = ctx.param<LockRequest::Kind>("kind");
    const auto item = ctx.param<std::string>("item");
    const auto id = ctx.param<lockdb::OwnerId>("id");
    LockStatus status = LockStatus::Denied;
    if (kind == LockRequest::Kind::Release) {
      for (std::size_t i = 0; i < k; ++i)
        post_to_manager(ctx, role("manager", static_cast<int>(i)),
                        LockRequest{kind, item, id}, replace);
      status = LockStatus::Granted;
    } else {
      for (std::size_t i = 0; i < k; ++i) {
        // A dead manager replica answers nothing: treat it as a denial
        // and try the next one (the reader needs only one grant).
        auto reply = lock_round_trip(
            ctx, role("manager", static_cast<int>(i)), item, id, replace);
        if (reply.has_value() && *reply == LockStatus::Granted) {
          status = LockStatus::Granted;
          break;
        }
      }
    }
    for (std::size_t i = 0; i < k; ++i)
      post_to_manager(ctx, role("manager", static_cast<int>(i)),
                      LockRequest{LockRequest::Kind::Done, "", id}, replace);
    ctx.set_param("status", status);
  });

  // Figure 5c: the writer needs every manager; a single denial aborts
  // and releases the grants collected so far.
  inst_.on_role("writer", [this, k = k_](RoleContext& ctx) {
    const bool replace = opts_.replace_on_failure;
    const auto kind = ctx.param<LockRequest::Kind>("kind");
    const auto item = ctx.param<std::string>("item");
    const auto id = ctx.param<lockdb::OwnerId>("id");
    LockStatus status = LockStatus::Denied;
    if (kind == LockRequest::Kind::Release) {
      for (std::size_t i = 0; i < k; ++i)
        post_to_manager(ctx, role("manager", static_cast<int>(i)),
                        LockRequest{kind, item, id}, replace);
      status = LockStatus::Granted;
    } else {
      std::set<std::size_t> who;
      bool denied = false;
      for (std::size_t i = 0; i < k; ++i) {
        // The writer needs EVERY manager; a dead one counts as a denial
        // and the grants collected so far are rolled back below.
        auto reply = lock_round_trip(
            ctx, role("manager", static_cast<int>(i)), item, id, replace);
        if (reply.has_value() && *reply == LockStatus::Granted) {
          who.insert(i);
        } else {
          denied = true;
          break;
        }
      }
      if (!denied && who.size() == k) {
        status = LockStatus::Granted;
      } else {
        for (const std::size_t i : who)
          post_to_manager(ctx, role("manager", static_cast<int>(i)),
                          LockRequest{LockRequest::Kind::Release, item, id},
                          replace);
      }
    }
    for (std::size_t i = 0; i < k; ++i)
      post_to_manager(ctx, role("manager", static_cast<int>(i)),
                      LockRequest{LockRequest::Kind::Done, "", id}, replace);
    ctx.set_param("status", status);
  });
}

void LockManagerScript::serve_once(std::size_t index) {
  inst_.enroll(role("manager", static_cast<int>(index)));
}

LockStatus LockManagerScript::run_client(const RoleId& client,
                                         LockRequest::Kind kind,
                                         const std::string& item,
                                         lockdb::OwnerId id) {
  LockStatus status = LockStatus::Denied;
  inst_.enroll(client, {},
               Params()
                   .in("kind", kind)
                   .in("item", item)
                   .in("id", id)
                   .out("status", &status));
  return status;
}

LockStatus LockManagerScript::reader_lock(const std::string& item,
                                          lockdb::OwnerId id) {
  return run_client(RoleId("reader"), LockRequest::Kind::Lock, item, id);
}

void LockManagerScript::reader_release(const std::string& item,
                                       lockdb::OwnerId id) {
  run_client(RoleId("reader"), LockRequest::Kind::Release, item, id);
}

LockStatus LockManagerScript::writer_lock(const std::string& item,
                                          lockdb::OwnerId id) {
  return run_client(RoleId("writer"), LockRequest::Kind::Lock, item, id);
}

void LockManagerScript::writer_release(const std::string& item,
                                       lockdb::OwnerId id) {
  run_client(RoleId("writer"), LockRequest::Kind::Release, item, id);
}

// ---- MembershipChangeScript ----

namespace {

ScriptSpec membership_spec(const std::string& name, std::size_t k) {
  ScriptSpec s(name);
  s.role("leaver").role("joiner");
  if (k > 1) s.role_family("witness", k - 1);
  s.initiation(Initiation::Delayed).termination(Termination::Delayed);
  return s;
}

}  // namespace

MembershipChangeScript::MembershipChangeScript(csp::Net& net,
                                               lockdb::ReplicaSet& replicas,
                                               std::string name)
    : inst_(net, membership_spec(name, replicas.active_count()), name),
      replicas_(&replicas) {
  const std::size_t k = replicas.active_count();
  inst_.on_role("leaver", [](RoleContext& ctx) {
    auto s = ctx.send(RoleId("joiner"),
                      ctx.param<lockdb::NodeId>("node"), "handover");
    SCRIPT_ASSERT(s.has_value(), "membership: joiner vanished");
  });
  inst_.on_role("joiner", [this, k](RoleContext& ctx) {
    auto leaving = ctx.recv<lockdb::NodeId>(RoleId("leaver"), "handover");
    SCRIPT_ASSERT(leaving.has_value(), "membership: leaver vanished");
    replicas_->swap_member(*leaving, ctx.param<lockdb::NodeId>("node"));
    const std::uint64_t epoch = replicas_->epoch();
    for (std::size_t w = 0; w + 1 < k; ++w) {
      auto s = ctx.send(role("witness", static_cast<int>(w)), epoch,
                        "epoch");
      SCRIPT_ASSERT(s.has_value(), "membership: witness vanished");
    }
    ctx.set_param("epoch", epoch);
  });
  if (k > 1) {
    inst_.on_role("witness", [](RoleContext& ctx) {
      auto epoch = ctx.recv<std::uint64_t>(RoleId("joiner"), "epoch");
      SCRIPT_ASSERT(epoch.has_value(), "membership: joiner vanished");
      ctx.set_param("epoch", *epoch);
    });
  }
}

void MembershipChangeScript::leave(lockdb::NodeId self) {
  inst_.enroll(RoleId("leaver"), {}, Params().in("node", self));
}

std::uint64_t MembershipChangeScript::join(lockdb::NodeId self) {
  std::uint64_t epoch = 0;
  inst_.enroll(RoleId("joiner"), {},
               Params().in("node", self).out("epoch", &epoch));
  return epoch;
}

std::uint64_t MembershipChangeScript::witness(int index) {
  std::uint64_t epoch = 0;
  inst_.enroll(role("witness", index), {}, Params().out("epoch", &epoch));
  return epoch;
}

}  // namespace script::patterns
