// BoundedBuffer: the "various buffering regimes" the paper's
// introduction names as the canonical reusable communication pattern
// ("enable a single definition of frequently used patterns, for example
// various buffering regimes").
//
// Roles: one buffer, P producers, C consumers — one performance is a
// whole producer/consumer session. The buffer role owns the bounded
// queue; producers block (their deposit goes unacknowledged) while the
// buffer is full, consumers block while it is empty. Capacity,
// ordering, and flow control are entirely the script's business:
// enrollers just call produce()/consume().
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "script/instance.hpp"
#include "support/panic.hpp"

namespace script::patterns {

template <typename T>
class BoundedBuffer {
 public:
  BoundedBuffer(csp::Net& net, std::size_t capacity, std::size_t producers,
                std::size_t consumers, std::string name = "bounded_buffer")
      : inst_(net, make_spec(name, producers, consumers), name),
        capacity_(capacity) {
    SCRIPT_ASSERT(capacity > 0, "bounded buffer needs capacity >= 1");
    inst_.on_role("buffer", [this, producers, consumers](
                                core::RoleContext& ctx) {
      std::deque<T> buf;
      // Deferred rendezvous: producers waiting for space, consumers
      // waiting for items.
      std::deque<std::pair<core::RoleId, T>> parked_puts;
      std::deque<core::RoleId> parked_gets;
      std::size_t live_producers = producers, live_consumers = consumers;
      auto pump = [&] {
        // Admit parked deposits while there is space...
        while (!parked_puts.empty() && buf.size() < capacity_) {
          auto [who, item] = std::move(parked_puts.front());
          parked_puts.pop_front();
          buf.push_back(std::move(item));
          auto r = ctx.send(who, true, "ack");
          SCRIPT_ASSERT(r.has_value(), "buffer: producer vanished");
        }
        // ...and satisfy parked withdrawals while there are items.
        while (!parked_gets.empty() && !buf.empty()) {
          const core::RoleId who = parked_gets.front();
          parked_gets.pop_front();
          auto r = ctx.send(who, std::move(buf.front()), "item");
          buf.pop_front();
          SCRIPT_ASSERT(r.has_value(), "buffer: consumer vanished");
        }
      };
      while (live_producers + live_consumers > 0) {
        auto m = ctx.template recv_any<BufferMsg>();
        SCRIPT_ASSERT(m.has_value(), "buffer lost its clients");
        auto& [from, msg] = *m;
        switch (msg.kind) {
          case BufferMsg::Kind::Put:
            parked_puts.emplace_back(from, std::move(msg.item));
            break;
          case BufferMsg::Kind::Get:
            parked_gets.push_back(from);
            break;
          case BufferMsg::Kind::ProducerDone:
            --live_producers;
            break;
          case BufferMsg::Kind::ConsumerDone:
            --live_consumers;
            break;
        }
        pump();
      }
      SCRIPT_ASSERT(parked_gets.empty(),
                    "consumers left waiting on an ended session");
      ctx.set_param("leftover", buf.size());
    });
    inst_.on_role("producer", [](core::RoleContext& ctx) {
      const auto items = ctx.param<std::vector<T>>("items");
      for (const T& item : items) {
        auto s = ctx.send(core::RoleId("buffer"),
                          BufferMsg{BufferMsg::Kind::Put, item});
        SCRIPT_ASSERT(s.has_value(), "producer: buffer vanished");
        auto ack =
            ctx.template recv<bool>(core::RoleId("buffer"), "ack");
        SCRIPT_ASSERT(ack.has_value(), "producer: buffer vanished");
      }
      auto s = ctx.send(core::RoleId("buffer"),
                        BufferMsg{BufferMsg::Kind::ProducerDone, T{}});
      SCRIPT_ASSERT(s.has_value(), "producer: buffer vanished");
    });
    inst_.on_role("consumer", [](core::RoleContext& ctx) {
      const auto want = ctx.param<std::size_t>("count");
      std::vector<T> got;
      got.reserve(want);
      for (std::size_t i = 0; i < want; ++i) {
        auto s = ctx.send(core::RoleId("buffer"),
                          BufferMsg{BufferMsg::Kind::Get, T{}});
        SCRIPT_ASSERT(s.has_value(), "consumer: buffer vanished");
        auto item =
            ctx.template recv<T>(core::RoleId("buffer"), "item");
        SCRIPT_ASSERT(item.has_value(), "consumer: buffer vanished");
        got.push_back(std::move(*item));
      }
      auto s = ctx.send(core::RoleId("buffer"),
                        BufferMsg{BufferMsg::Kind::ConsumerDone, T{}});
      SCRIPT_ASSERT(s.has_value(), "consumer: buffer vanished");
      ctx.set_param("items", got);
    });
  }

  /// Enroll as the buffer role; returns items left unconsumed.
  std::size_t serve() {
    std::size_t leftover = 0;
    inst_.enroll(core::RoleId("buffer"), {},
                 core::Params().out("leftover", &leftover));
    return leftover;
  }

  /// Enroll as producer[index]; deposits every item (blocking on a
  /// full buffer via the script's flow control).
  void produce(int index, std::vector<T> items) {
    inst_.enroll(core::role("producer", index), {},
                 core::Params().in("items", std::move(items)));
  }

  /// Enroll as consumer[index]; withdraws exactly `count` items.
  std::vector<T> consume(int index, std::size_t count) {
    std::vector<T> got;
    inst_.enroll(core::role("consumer", index), {},
                 core::Params().in("count", count).out("items", &got));
    return got;
  }

  std::size_t capacity() const { return capacity_; }
  core::ScriptInstance& instance() { return inst_; }

 private:
  struct BufferMsg {
    enum class Kind : std::uint8_t { Put, Get, ProducerDone, ConsumerDone };
    Kind kind;
    T item;
  };

  static core::ScriptSpec make_spec(const std::string& name,
                                    std::size_t producers,
                                    std::size_t consumers) {
    core::ScriptSpec s(name);
    s.role("buffer")
        .role_family("producer", producers)
        .role_family("consumer", consumers);
    s.initiation(core::Initiation::Delayed)
        .termination(core::Termination::Delayed);
    return s;
  }

  core::ScriptInstance inst_;
  std::size_t capacity_;
};

}  // namespace script::patterns
