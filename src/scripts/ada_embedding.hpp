// §IV "Scripts in Ada": Figure 8 (the broadcast script as a server
// script with partners-unnamed enrollment) and Figures 9–11 (the
// translation into plain Ada: one task per role plus a supervisor task
// with start/stop entry families).
//
// Faithful consequences reproduced here, as the paper notes them:
//   * the broadcast is REVERSED — recipients call the sender's
//     `receive` entry, because Ada callers must name the callee while
//     acceptors stay anonymous;
//   * "the number of processes grows from n to n+m+1" — task_count()
//     exposes the m+1 helper tasks the translation spawns;
//   * the role tasks' infinite loops would make the program
//     non-terminating — we add shutdown entries so harnesses can end
//     (the paper flags this very defect of the translation).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ada/entry.hpp"
#include "ada/select.hpp"
#include "ada/task.hpp"

namespace script::embeddings {

class AdaBroadcastScript {
 public:
  AdaBroadcastScript(runtime::Scheduler& sched, std::size_t recipients);

  /// Spawn the supervisor task and the m role tasks.
  void start();
  /// Ask every helper task to exit its service loop.
  void shutdown();

  // ---- Enrollment surface (the paper's s_rj.start / s_rj.stop) ----

  /// ENROLL ... AS sender(value): start(in-params) then stop().
  void enroll_sender(int value);
  /// ENROLL ... AS recipient[i](out): start() then stop(out-params).
  int enroll_recipient(std::size_t index);

  /// Helper tasks the translation created (the paper's m+1 growth).
  std::size_t helper_task_count() const { return m_ + 1; }
  std::uint64_t performances() const { return performances_; }

 private:
  void run_supervisor();
  void run_sender_role();
  void run_recipient_role(std::size_t index);

  runtime::Scheduler* sched_;
  std::size_t n_;  // recipients
  std::size_t m_;  // roles = n_ + 1

  // Supervisor entries (Figure 9).
  std::unique_ptr<ada::EntryFamily<std::size_t, ada::Unit>> sup_start_;
  std::unique_ptr<ada::EntryFamily<std::size_t, ada::Unit>> sup_stop_;
  std::unique_ptr<ada::Entry<ada::Unit, ada::Unit>> sup_shutdown_;

  // Sender role task entries (Figures 8/10/11).
  std::unique_ptr<ada::Entry<int, ada::Unit>> sender_start_;
  std::unique_ptr<ada::Entry<ada::Unit, ada::Unit>> sender_stop_;
  std::unique_ptr<ada::Entry<ada::Unit, int>> sender_receive_;
  std::unique_ptr<ada::Entry<ada::Unit, ada::Unit>> sender_shutdown_;

  // Recipient role task entries.
  struct RecipientEntries {
    std::unique_ptr<ada::Entry<ada::Unit, ada::Unit>> start;
    std::unique_ptr<ada::Entry<ada::Unit, int>> stop;
    std::unique_ptr<ada::Entry<ada::Unit, ada::Unit>> shutdown;
  };
  std::vector<RecipientEntries> recipients_;

  std::uint64_t performances_ = 0;
};

}  // namespace script::embeddings
