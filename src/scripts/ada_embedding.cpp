#include "scripts/ada_embedding.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace script::embeddings {

using ada::Entry;
using ada::EntryFamily;
using ada::Select;
using ada::Task;
using ada::Unit;

AdaBroadcastScript::AdaBroadcastScript(runtime::Scheduler& sched,
                                       std::size_t recipients)
    : sched_(&sched), n_(recipients), m_(recipients + 1) {
  sup_start_ = std::make_unique<EntryFamily<std::size_t, Unit>>(
      sched, "sup.start", m_);
  sup_stop_ = std::make_unique<EntryFamily<std::size_t, Unit>>(
      sched, "sup.stop", m_);
  sup_shutdown_ =
      std::make_unique<Entry<Unit, Unit>>(sched, "sup.shutdown");
  sender_start_ = std::make_unique<Entry<int, Unit>>(sched, "sender.start");
  sender_stop_ =
      std::make_unique<Entry<Unit, Unit>>(sched, "sender.stop");
  sender_receive_ =
      std::make_unique<Entry<Unit, int>>(sched, "sender.receive");
  sender_shutdown_ =
      std::make_unique<Entry<Unit, Unit>>(sched, "sender.shutdown");
  recipients_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::string base = "recipient" + std::to_string(i);
    recipients_[i].start =
        std::make_unique<Entry<Unit, Unit>>(sched, base + ".start");
    recipients_[i].stop =
        std::make_unique<Entry<Unit, int>>(sched, base + ".stop");
    recipients_[i].shutdown =
        std::make_unique<Entry<Unit, Unit>>(sched, base + ".shutdown");
  }
}

void AdaBroadcastScript::start() {
  Task sup(*sched_, "_s(supervisor)", [this] { run_supervisor(); });
  Task snd(*sched_, "_s(sender)", [this] { run_sender_role(); });
  for (std::size_t i = 0; i < n_; ++i) {
    Task rcp(*sched_, "_s(recipient" + std::to_string(i) + ")",
             [this, i] { run_recipient_role(i); });
  }
}

void AdaBroadcastScript::run_supervisor() {
  // Figure 9: accept start(j) only while role j is unstarted in the
  // current performance; reset when every started role has stopped.
  std::vector<bool> ready(m_, true);
  std::vector<bool> started(m_, false);
  for (;;) {
    bool stop = false;
    Select sel(*sched_);
    for (std::size_t j = 0; j < m_; ++j) {
      sel.accept_case<std::size_t, Unit>(
          (*sup_start_)[j],
          [&ready, &started, j](std::size_t&) {
            ready[j] = false;
            started[j] = true;
            return Unit{};
          },
          /*guard=*/ready[j]);
      sel.accept_case<std::size_t, Unit>(
          (*sup_stop_)[j],
          [&started, j](std::size_t&) {
            started[j] = false;
            return Unit{};
          },
          /*guard=*/!ready[j] && started[j]);
    }
    sel.accept_case<Unit, Unit>(*sup_shutdown_, [&stop](Unit&) {
      stop = true;
      return Unit{};
    });
    sel.run();
    if (stop) return;
    if (std::none_of(started.begin(), started.end(),
                     [](bool b) { return b; }) &&
        std::any_of(ready.begin(), ready.end(), [](bool r) { return !r; })) {
      std::fill(ready.begin(), ready.end(), true);
      ++performances_;
    }
  }
}

void AdaBroadcastScript::run_sender_role() {
  // Figure 10/11 shape: loop { accept start(v); <body B>; accept stop }.
  for (;;) {
    int data = 0;
    bool stop = false;
    Select sel(*sched_);
    sel.accept_case<int, Unit>(*sender_start_, [&data](int& v) {
      data = v;
      return Unit{};
    });
    sel.accept_case<Unit, Unit>(*sender_shutdown_, [&stop](Unit&) {
      stop = true;
      return Unit{};
    });
    sel.run();
    if (stop) return;
    (*sup_start_)[0].call(0);
    // Body B — Figure 8's sender: WHILE completed < n LOOP accept
    // receive(d) DO d := data.
    for (std::size_t completed = 0; completed < n_; ++completed)
      sender_receive_->accept([&data](Unit&) { return data; });
    (*sup_stop_)[0].call(0);
    sender_stop_->accept([](Unit&) { return Unit{}; });
  }
}

void AdaBroadcastScript::run_recipient_role(std::size_t index) {
  for (;;) {
    bool stop = false;
    Select sel(*sched_);
    sel.accept_case<Unit, Unit>(*recipients_[index].start,
                                [](Unit&) { return Unit{}; });
    sel.accept_case<Unit, Unit>(*recipients_[index].shutdown,
                                [&stop](Unit&) {
                                  stop = true;
                                  return Unit{};
                                });
    sel.run();
    if (stop) return;
    (*sup_start_)[index + 1].call(index + 1);
    // Body B — Figure 8's recipient: sender.receive(data).
    const int data = sender_receive_->call();
    (*sup_stop_)[index + 1].call(index + 1);
    recipients_[index].stop->accept([data](Unit&) { return data; });
  }
}

void AdaBroadcastScript::shutdown() {
  sender_shutdown_->call();
  for (auto& r : recipients_) r.shutdown->call();
  sup_shutdown_->call();
}

void AdaBroadcastScript::enroll_sender(int value) {
  sender_start_->call(value);
  sender_stop_->call();
}

int AdaBroadcastScript::enroll_recipient(std::size_t index) {
  SCRIPT_ASSERT(index < n_, "bad recipient index");
  recipients_[index].start->call();
  return recipients_[index].stop->call();
}

}  // namespace script::embeddings
