#include "scripts/monitor_embedding.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace script::embeddings {

MonitorSupervisor::MonitorSupervisor(runtime::Scheduler& sched,
                                     std::size_t roles, std::string name)
    : mon_(sched, std::move(name)),
      m_(roles),
      taken_(roles, false),
      ended_(roles, false) {
  SCRIPT_ASSERT(roles > 0, "supervisor needs at least one role");
}

void MonitorSupervisor::enroll_start(std::size_t k) {
  SCRIPT_ASSERT(k < m_, "bad role index");
  mon_.enter();
  mon_.wait_until([this, k] { return !taken_[k]; });
  taken_[k] = true;
  mon_.leave();
}

void MonitorSupervisor::enroll_end(std::size_t k) {
  SCRIPT_ASSERT(k < m_, "bad role index");
  mon_.enter();
  SCRIPT_ASSERT(taken_[k] && !ended_[k],
                "enroll_end without matching enroll_start");
  ended_[k] = true;
  if (std::all_of(ended_.begin(), ended_.end(), [](bool e) { return e; })) {
    // Last role out: next performance may form. Leaving the monitor
    // re-evaluates the WAIT UNTILs of queued starters automatically.
    std::fill(taken_.begin(), taken_.end(), false);
    std::fill(ended_.begin(), ended_.end(), false);
    ++performances_;
  }
  mon_.leave();
}

}  // namespace script::embeddings
