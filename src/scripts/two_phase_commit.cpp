#include "scripts/two_phase_commit.hpp"

#include "support/panic.hpp"

namespace script::patterns {

namespace {

core::ScriptSpec tpc_spec(const std::string& name, std::size_t n) {
  core::ScriptSpec s(name);
  s.role("coordinator").role_family("participant", n);
  s.initiation(core::Initiation::Delayed)
      .termination(core::Termination::Delayed);
  // Crash recovery is the protocol's own job (presumed abort), so the
  // performance degrades instead of aborting the survivors.
  s.on_failure(core::FailurePolicy::Degrade);
  return s;
}

}  // namespace

TwoPhaseCommit::TwoPhaseCommit(csp::Net& net, std::size_t participants,
                               std::string name)
    : inst_(net, tpc_spec(name, participants), name), n_(participants) {
  inst_.on_role("coordinator", [n = n_](core::RoleContext& ctx) {
    // Recovery rule: a participant that dies anywhere before voting
    // counts as a NO vote — the transaction aborts (presumed abort).
    bool all_yes = true;
    for (std::size_t i = 0; i < n; ++i) {
      auto s = ctx.send(core::role("participant", static_cast<int>(i)),
                        true, "prepare");
      if (!s.has_value()) all_yes = false;
    }
    for (std::size_t i = 0; i < n; ++i) {
      auto vote = ctx.recv<bool>(
          core::role("participant", static_cast<int>(i)), "vote");
      all_yes = all_yes && vote.has_value() && *vote;
    }
    // Survivors still get the decision; acks from the dead are forgone
    // (a real participant would learn the outcome on recovery).
    for (std::size_t i = 0; i < n; ++i)
      (void)ctx.send(core::role("participant", static_cast<int>(i)),
                     all_yes, "decision");
    for (std::size_t i = 0; i < n; ++i)
      (void)ctx.recv<bool>(core::role("participant", static_cast<int>(i)),
                           "ack");
    ctx.set_param("decision", all_yes);
  });
  inst_.on_role("participant", [](core::RoleContext& ctx) {
    // Recovery rule: a dead coordinator means the decision never
    // arrives — presume abort rather than block forever.
    auto prep = ctx.recv<bool>(core::RoleId("coordinator"), "prepare");
    if (!prep.has_value()) {
      ctx.set_param("decision", false);
      return;
    }
    const auto voter = ctx.param<std::function<bool()>>("voter");
    auto sv = ctx.send(core::RoleId("coordinator"), voter(), "vote");
    if (!sv.has_value()) {
      ctx.set_param("decision", false);
      return;
    }
    auto decision = ctx.recv<bool>(core::RoleId("coordinator"), "decision");
    const bool outcome = decision.has_value() && *decision;
    (void)ctx.send(core::RoleId("coordinator"), true, "ack");
    ctx.set_param("decision", outcome);
  });
}

bool TwoPhaseCommit::coordinate() {
  bool decision = false;
  inst_.enroll(core::RoleId("coordinator"), {},
               core::Params().out("decision", &decision));
  return decision;
}

bool TwoPhaseCommit::participate(int index, std::function<bool()> voter) {
  bool decision = false;
  inst_.enroll(core::role("participant", index), {},
               core::Params()
                   .in("voter", std::move(voter))
                   .out("decision", &decision));
  return decision;
}

}  // namespace script::patterns
