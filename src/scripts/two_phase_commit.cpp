#include "scripts/two_phase_commit.hpp"

#include <cstdint>
#include <utility>

#include "support/panic.hpp"

namespace script::patterns {

namespace {

core::ScriptSpec tpc_spec(const std::string& name, std::size_t n,
                          const TwoPhaseCommitOptions& opts) {
  core::ScriptSpec s(name);
  s.role("coordinator").role_family("participant", n);
  s.initiation(core::Initiation::Delayed)
      .termination(core::Termination::Delayed);
  if (opts.replace_coordinator) {
    // A crashed coordinator awaits a replacement; if none arrives the
    // performance degrades (presumed abort at the survivors).
    s.on_failure(core::FailurePolicy::Replace)
        .takeover_deadline(opts.takeover_deadline)
        .takeover_fallback(core::FailurePolicy::Degrade)
        // Only the coordinator is replayable (from its WAL); a crashed
        // participant degrades immediately (counts as a NO vote).
        .takeover_roles({"coordinator"});
  } else {
    // Crash recovery is the protocol's own job (presumed abort), so the
    // performance degrades instead of aborting the survivors.
    s.on_failure(core::FailurePolicy::Degrade);
  }
  return s;
}

}  // namespace

TwoPhaseCommit::TwoPhaseCommit(csp::Net& net, std::size_t participants,
                               std::string name,
                               TwoPhaseCommitOptions options)
    : inst_(net, tpc_spec(name, participants, options), name),
      n_(participants),
      opts_(options) {
  const std::string log_name = inst_.instance_name() + ".coordinator";
  inst_.on_role("coordinator", [this, log_name,
                                n = n_](core::RoleContext& ctx) {
    runtime::SimLog* log =
        opts_.wal != nullptr ? &opts_.wal->open(log_name) : nullptr;
    const std::string txn = std::to_string(ctx.performance());
    bool all_yes = true;
    if (ctx.resumed()) {
      // WAL replay: a logged decision is re-driven; an in-doubt
      // transaction (crash before the decision record) is presumed
      // aborted. Votes are never re-collected.
      bool decided = false;
      if (log != nullptr) {
        if (const auto d = log->last("decision." + txn)) {
          all_yes = (*d == "commit");
          decided = true;
        }
      }
      if (!decided) {
        all_yes = false;
        if (log != nullptr) log->append("decision." + txn, "abort");
      }
    } else {
      if (log != nullptr) log->append("begin." + txn, "prepare");
      // Recovery rule: a participant that dies anywhere before voting
      // counts as a NO vote — the transaction aborts (presumed abort).
      for (std::size_t i = 0; i < n; ++i) {
        auto s = ctx.send(core::role("participant", static_cast<int>(i)),
                          true, "prepare");
        if (!s.has_value()) all_yes = false;
      }
      for (std::size_t i = 0; i < n; ++i) {
        auto vote = ctx.recv<bool>(
            core::role("participant", static_cast<int>(i)), "vote");
        const bool yes = vote.has_value() && *vote;
        all_yes = all_yes && yes;
        if (log != nullptr)
          log->append("vote." + txn + "." + std::to_string(i),
                      yes ? "yes" : "no");
      }
      // Write-ahead: the decision is durable BEFORE any participant
      // learns it, so a restarted coordinator re-drives the same one.
      if (log != nullptr)
        log->append("decision." + txn, all_yes ? "commit" : "abort");
    }
    // Survivors still get the decision; acks from the dead are forgone
    // (a real participant would learn the outcome on recovery). Sends
    // to already-finished participants yield the distinguished value.
    // The decision is stamped with this coordinator's incarnation so a
    // participant knows when a REPLACEMENT's re-driven copy is owed.
    const std::uint64_t inc = ctx.incarnation(core::RoleId("coordinator"));
    for (std::size_t i = 0; i < n; ++i)
      (void)ctx.send(core::role("participant", static_cast<int>(i)),
                     std::make_pair(inc, all_yes), "decision");
    for (std::size_t i = 0; i < n; ++i)
      (void)ctx.recv<bool>(core::role("participant", static_cast<int>(i)),
                           "ack");
    ctx.set_param("decision", all_yes);
  });
  inst_.on_role("participant", [replace = options.replace_coordinator](
                                   core::RoleContext& ctx) {
    const core::RoleId coord("coordinator");
    using Decision = std::pair<std::uint64_t, bool>;
    // Whether this participant still owes the ORIGINAL coordinator its
    // vote. A replacement never collects votes (it presumes abort or
    // replays its log), so any takeover observed before the vote is
    // delivered skips straight to the decision phase. The incarnation
    // counter catches takeovers that complete while we are parked —
    // takeover_pending alone misses a window that opened and closed.
    bool vote_phase = true;
    if (replace &&
        (ctx.takeover_pending(coord) || ctx.incarnation(coord) > 0)) {
      // Crashed before delivering our prepare; the replacement will not
      // re-send it. Wait out any open window, then await its decision.
      if (ctx.takeover_pending(coord) && !ctx.await_takeover(coord)) {
        ctx.set_param("decision", false);
        return;
      }
      vote_phase = false;
    } else {
      const std::uint64_t inc0 = ctx.incarnation(coord);
      auto prep = ctx.recv<bool>(coord, "prepare");
      if (!prep.has_value()) {
        // Recovery rule: a dead coordinator means the decision never
        // arrives — presume abort rather than block forever. Under
        // coordinator takeover, park for the replacement instead.
        if (!(replace && ctx.await_takeover(coord))) {
          ctx.set_param("decision", false);
          return;
        }
        vote_phase = false;
      } else if (replace && (ctx.takeover_pending(coord) ||
                             ctx.incarnation(coord) != inc0)) {
        // Died right after delivering prepare: a vote posted now would
        // wedge against the replacement's decision send.
        if (ctx.takeover_pending(coord) && !ctx.await_takeover(coord)) {
          ctx.set_param("decision", false);
          return;
        }
        vote_phase = false;
      }
    }
    if (vote_phase) {
      const auto voter = ctx.param<std::function<bool()>>("voter");
      auto sv = ctx.send(coord, voter(), "vote");
      if (!sv.has_value() && !(replace && ctx.await_takeover(coord))) {
        ctx.set_param("decision", false);
        return;
      }
      // A vote that died with the old coordinator is NOT re-sent; the
      // replacement presumes abort for this transaction.
    }
    // Decision phase: every coordinator incarnation sends one stamped
    // decision (write-ahead keeps the value identical across restarts).
    // Keep receiving until the copy in hand is the CURRENT incarnation's
    // and no window is open — only then is it safe to post the ack
    // (otherwise it would wedge against a replacement's decision send).
    std::optional<bool> decision;
    std::uint64_t served_inc = 0;
    for (;;) {
      if (replace && ctx.takeover_pending(coord) &&
          !ctx.await_takeover(coord))
        break;  // no replacement came: presume abort below
      if (decision.has_value() &&
          (!replace || served_inc == ctx.incarnation(coord)))
        break;
      auto d = ctx.recv<Decision>(coord, "decision");
      if (!d.has_value()) {
        if (!(replace && ctx.await_takeover(coord))) break;
        continue;  // the replacement re-drives the decision
      }
      served_inc = d->first;
      decision = d->second;
    }
    const bool outcome = decision.has_value() && *decision;
    (void)ctx.send(coord, true, "ack");
    ctx.set_param("decision", outcome);
  });
}

runtime::SimLog* TwoPhaseCommit::wal_log() {
  if (opts_.wal == nullptr) return nullptr;
  return &opts_.wal->open(inst_.instance_name() + ".coordinator");
}

bool TwoPhaseCommit::coordinate() {
  bool decision = false;
  inst_.enroll(core::RoleId("coordinator"), {},
               core::Params().out("decision", &decision));
  return decision;
}

bool TwoPhaseCommit::participate(int index, std::function<bool()> voter) {
  bool decision = false;
  inst_.enroll(core::role("participant", index), {},
               core::Params()
                   .in("voter", std::move(voter))
                   .out("decision", &decision));
  return decision;
}

}  // namespace script::patterns
