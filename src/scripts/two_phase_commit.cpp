#include "scripts/two_phase_commit.hpp"

#include "support/panic.hpp"

namespace script::patterns {

namespace {

core::ScriptSpec tpc_spec(const std::string& name, std::size_t n) {
  core::ScriptSpec s(name);
  s.role("coordinator").role_family("participant", n);
  s.initiation(core::Initiation::Delayed)
      .termination(core::Termination::Delayed);
  return s;
}

}  // namespace

TwoPhaseCommit::TwoPhaseCommit(csp::Net& net, std::size_t participants,
                               std::string name)
    : inst_(net, tpc_spec(name, participants), name), n_(participants) {
  inst_.on_role("coordinator", [n = n_](core::RoleContext& ctx) {
    for (std::size_t i = 0; i < n; ++i) {
      auto s = ctx.send(core::role("participant", static_cast<int>(i)),
                        true, "prepare");
      SCRIPT_ASSERT(s.has_value(), "2pc: participant vanished");
    }
    bool all_yes = true;
    for (std::size_t i = 0; i < n; ++i) {
      auto vote = ctx.recv<bool>(
          core::role("participant", static_cast<int>(i)), "vote");
      SCRIPT_ASSERT(vote.has_value(), "2pc: participant vanished");
      all_yes = all_yes && *vote;
    }
    for (std::size_t i = 0; i < n; ++i) {
      auto s = ctx.send(core::role("participant", static_cast<int>(i)),
                        all_yes, "decision");
      SCRIPT_ASSERT(s.has_value(), "2pc: participant vanished");
    }
    for (std::size_t i = 0; i < n; ++i) {
      auto ack = ctx.recv<bool>(
          core::role("participant", static_cast<int>(i)), "ack");
      SCRIPT_ASSERT(ack.has_value(), "2pc: participant vanished");
    }
    ctx.set_param("decision", all_yes);
  });
  inst_.on_role("participant", [](core::RoleContext& ctx) {
    auto prep = ctx.recv<bool>(core::RoleId("coordinator"), "prepare");
    SCRIPT_ASSERT(prep.has_value(), "2pc: coordinator vanished");
    const auto voter = ctx.param<std::function<bool()>>("voter");
    auto sv = ctx.send(core::RoleId("coordinator"), voter(), "vote");
    SCRIPT_ASSERT(sv.has_value(), "2pc: coordinator vanished");
    auto decision = ctx.recv<bool>(core::RoleId("coordinator"), "decision");
    SCRIPT_ASSERT(decision.has_value(), "2pc: coordinator vanished");
    auto sa = ctx.send(core::RoleId("coordinator"), true, "ack");
    SCRIPT_ASSERT(sa.has_value(), "2pc: coordinator vanished");
    ctx.set_param("decision", *decision);
  });
}

bool TwoPhaseCommit::coordinate() {
  bool decision = false;
  inst_.enroll(core::RoleId("coordinator"), {},
               core::Params().out("decision", &decision));
  return decision;
}

bool TwoPhaseCommit::participate(int index, std::function<bool()> voter) {
  bool decision = false;
  inst_.enroll(core::role("participant", index), {},
               core::Params()
                   .in("voter", std::move(voter))
                   .out("decision", &decision));
  return decision;
}

}  // namespace script::patterns
