// §IV "Scripts with Monitors": the monitor-based supervisor.
//
// "A monitor-based supervisor would most easily implement immediate
// initiation and termination. No translation rules are given, as they
// would be similar to those for Ada and CSP."
//
// We give them anyway: enrollment bracket via a monitor with WAIT UNTIL
// — a process announces start(k) (waiting until role k is free in the
// current performance), runs the inlined role body, then announces
// end(k). The successive-activations rule is the monitor's reset
// condition: every role of the performance has started and ended. The
// automatic-signalling WAIT UNTIL makes the whole supervisor a dozen
// lines — the economy the paper predicts for this host language.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "monitor/monitor.hpp"

namespace script::embeddings {

class MonitorSupervisor {
 public:
  MonitorSupervisor(runtime::Scheduler& sched, std::size_t roles,
                    std::string name);

  /// Enter role k of the current performance (immediate initiation:
  /// the first start simply proceeds). Blocks while role k is taken.
  void enroll_start(std::size_t k);

  /// Leave role k (immediate termination: the caller is freed at
  /// once); the last role out resets the script for the next
  /// performance.
  void enroll_end(std::size_t k);

  std::uint64_t performances() const { return performances_; }
  monitor::Monitor& monitor() { return mon_; }

 private:
  monitor::Monitor mon_;
  std::size_t m_;
  std::vector<bool> taken_;  // role started this performance
  std::vector<bool> ended_;  // role finished this performance
  std::uint64_t performances_ = 0;
};

}  // namespace script::embeddings
