// Figure 5: the distributed, replicated database lock-manager script.
//
// Roles: k lock managers, one reader, one writer. Critical role sets:
// all managers plus the reader, OR all managers plus the writer ("it is
// sufficient that all the lock-manager roles be filled, as well as,
// either the reader or the writer (or both)"). "One performance of this
// script would result in either a reader or a writer (or both)
// attempting to lock or release a data item."
//
// The locking scheme is the paper's "one lock to read, k locks to
// write": the reader tries managers in turn until one grants a shared
// lock (Fig 5b); the writer needs an exclusive lock from every manager
// and rolls back on any denial (Fig 5c).
//
// Deviation noted in DESIGN.md: the paper's Fig 5a manager loop relies
// on guarded communication with implicit client-termination detection;
// we make the protocol explicit with a final `done` message from each
// enrolled client, which each manager awaits before finishing its role.
// Clients that never enroll are detected with the paper's own
// r.terminated probe.
//
// Lock tables persist across performances in the script object
// ("between performances of the script the identity of the lock
// managers may change, but ... the lock tables are preserved");
// MembershipChangeScript below is the paper's "separate script for lock
// managers to negotiate the entering and leaving of the active set".
#pragma once

#include <string>

#include "lockdb/replica.hpp"
#include "script/instance.hpp"

namespace script::patterns {

/// Expired: the request reached the manager after the requester's
/// deadline had already passed — a typed timeout, distinct from lock
/// contention (Denied). The table was not touched.
enum class LockStatus : std::uint8_t { Granted, Denied, Expired };

struct LockRequest {
  enum class Kind : std::uint8_t { Lock, Release, Done };
  Kind kind = Kind::Done;
  std::string item;
  lockdb::OwnerId owner = 0;
  /// The requester's absolute deadline (RoleContext::deadline_at()),
  /// forwarded so a manager never grants a lock to a client that is
  /// already being cancelled. lockdb::kNoDeadline = no deadline.
  std::uint64_t deadline = lockdb::kNoDeadline;
};

struct LockManagerOptions {
  /// Crashed roles await a replacement (FailurePolicy::Replace) instead
  /// of degrading: clients retry against a resumed manager (the lock
  /// request is idempotent), a replacement manager rebuilds its view
  /// from probes and the lease backstop below.
  bool replace_on_failure = false;
  /// Ticks a crashed role stays open for takeover (fallback Degrade).
  std::uint64_t takeover_deadline = 64;
  /// Nonzero: grants carry a lease of this many virtual ticks, renewed
  /// per acquire. A crashed client's grants expire and are reclaimed by
  /// the table (docs/ROBUSTNESS.md "Recovery") — the recovery path for
  /// held-lock state that dies with a manager or client incarnation.
  std::uint64_t lease_ticks = 0;
};

class LockManagerScript {
 public:
  LockManagerScript(csp::Net& net, lockdb::ReplicaSet& replicas,
                    std::string name = "lock_script",
                    LockManagerOptions options = {});

  /// Enroll as manager[index] for one performance: serve the enrolled
  /// clients' requests against replica table `index`, then return.
  void serve_once(std::size_t index);

  /// Enroll as the reader: acquire a read lock ("one lock to read").
  LockStatus reader_lock(const std::string& item, lockdb::OwnerId id);
  /// Enroll as the reader: release `item` everywhere.
  void reader_release(const std::string& item, lockdb::OwnerId id);
  /// Enroll as the writer: acquire write locks on ALL k managers.
  LockStatus writer_lock(const std::string& item, lockdb::OwnerId id);
  /// Enroll as the writer: release `item` everywhere.
  void writer_release(const std::string& item, lockdb::OwnerId id);

  std::size_t managers() const { return k_; }
  const LockManagerOptions& options() const { return opts_; }
  core::ScriptInstance& instance() { return inst_; }

 private:
  LockStatus run_client(const core::RoleId& role, LockRequest::Kind kind,
                        const std::string& item, lockdb::OwnerId id);

  core::ScriptInstance inst_;
  lockdb::ReplicaSet* replicas_;
  std::size_t k_;
  LockManagerOptions opts_;
};

/// The membership-change negotiation the paper defers to "a separate
/// script": the leaver hands its epoch to the joiner and the swap is
/// applied to the replica set; every staying manager witnesses the
/// change (delayed initiation/termination makes it atomic with respect
/// to lock-script performances).
class MembershipChangeScript {
 public:
  MembershipChangeScript(csp::Net& net, lockdb::ReplicaSet& replicas,
                         std::string name = "membership_change");

  /// Enroll as the node leaving the active set.
  void leave(lockdb::NodeId self);
  /// Enroll as the node joining; returns the epoch it joins at.
  std::uint64_t join(lockdb::NodeId self);
  /// Enroll as one of the k-1 staying members (witness[index]).
  std::uint64_t witness(int index);

  core::ScriptInstance& instance() { return inst_; }

 private:
  core::ScriptInstance inst_;
  lockdb::ReplicaSet* replicas_;
};

}  // namespace script::patterns
