#include "monitor/monitor.hpp"

#include "support/panic.hpp"

namespace script::monitor {

Monitor::Monitor(runtime::Scheduler& sched, std::string name)
    : sched_(&sched), name_(std::move(name)), entry_queue_(sched) {}

void Monitor::enter() {
  ++entries_;
  if (!busy_) {
    busy_ = true;
    holder_ = sched_->current();
    publish_hold(obs::EventKind::SpanBegin);
    return;
  }
  ++contended_;
  if (sched_->bus().wants(obs::Subsystem::Monitor))
    sched_->bus().publish({obs::EventKind::Instant, obs::Subsystem::Monitor,
                           obs::kAutoTime, sched_->current(), obs::kNoLane,
                           "monitor.contended", name_});
  try {
    entry_queue_.park("entering monitor " + name_, holder_);
  } catch (...) {
    // Crashed while queued (the park self-cleans) — or just after the
    // hand-off made us owner, in which case the monitor moves on.
    if (busy_ && holder_ == sched_->current()) release_and_admit();
    throw;
  }
  // Woken by release_and_admit with ownership handed to us.
  SCRIPT_ASSERT(busy_, "monitor hand-off lost ownership");
  publish_hold(obs::EventKind::SpanBegin);
}

void Monitor::leave() {
  SCRIPT_ASSERT(busy_, "leave() without holding monitor " + name_);
  publish_hold(obs::EventKind::SpanEnd);
  release_and_admit();
}

void Monitor::wait_until(std::function<bool()> pred) {
  SCRIPT_ASSERT(busy_, "wait_until() without holding monitor " + name_);
  if (pred()) return;
  const ProcessId me = sched_->current();
  cond_waiters_.push_back({me, pred});
  publish_hold(obs::EventKind::SpanEnd);
  release_and_admit();
  try {
    // No single wait-for target: whoever next leaves the monitor with
    // the predicate true wakes us; hint the current holder when known.
    sched_->block("WAIT UNTIL in monitor " + name_, holder_);
  } catch (...) {
    // Crashed while waiting: either our waiter entry is still queued
    // (never admitted — drop it) or the hand-off already made us owner
    // (pass the monitor on so no one deadlocks on a dead holder).
    for (auto it = cond_waiters_.begin(); it != cond_waiters_.end(); ++it) {
      if (it->pid == me) {
        cond_waiters_.erase(it);
        throw;
      }
    }
    if (busy_ && holder_ == me) release_and_admit();
    throw;
  }

  // Admitted with ownership; hand-off guarantees the predicate held at
  // admission time and no one has run inside the monitor since.
  SCRIPT_ASSERT(busy_ && pred(), "WAIT UNTIL admitted with false predicate");
  publish_hold(obs::EventKind::SpanBegin);
}

void Monitor::publish_hold(obs::EventKind kind) {
  if (!sched_->bus().wants(obs::Subsystem::Monitor)) return;
  sched_->bus().publish({kind, obs::Subsystem::Monitor, obs::kAutoTime,
                         sched_->current(), obs::kNoLane, "monitor.hold",
                         name_});
}

void Monitor::with(const std::function<void()>& body) {
  enter();
  try {
    body();
  } catch (...) {
    // A crash (or exception) inside the critical section releases the
    // monitor instead of wedging every later entrant.
    if (busy_ && holder_ == sched_->current()) {
      publish_hold(obs::EventKind::SpanEnd);
      release_and_admit();
    }
    throw;
  }
  leave();
}

void Monitor::occupy(std::uint64_t ticks) {
  SCRIPT_ASSERT(busy_, "occupy() without holding monitor " + name_);
  sched_->sleep_for(ticks);
}

void Monitor::release_and_admit() {
  // Prefer a condition waiter whose predicate now holds (FIFO).
  for (std::size_t i = 0; i < cond_waiters_.size(); ++i) {
    if (cond_waiters_[i].pred()) {
      const ProcessId pid = cond_waiters_[i].pid;
      cond_waiters_.erase(cond_waiters_.begin() +
                          static_cast<std::ptrdiff_t>(i));
      // busy_ stays true: ownership passes directly to the waiter.
      holder_ = pid;
      sched_->unblock(pid);
      return;
    }
  }
  if (!entry_queue_.empty()) {
    holder_ = entry_queue_.front();  // hand off to a new entrant
    entry_queue_.notify_one();
    return;
  }
  busy_ = false;
  holder_ = runtime::kNoProcess;
}

}  // namespace script::monitor
