// The two mailbox packagings of the paper's §IV monitor discussion:
//
//   * Mailbox<T>        — one monitor per mailbox ("the second
//     implementation eliminates the unnecessary concurrency
//     restrictions"); this is the scheme Figure 12's script follows.
//   * MailboxBank<T>    — a single monitor housing all mailboxes ("all
//     access to any mailbox is serialized").
//
// Both charge an optional `access_cost` of virtual time while holding
// their monitor, so the serialization difference is measurable.
// BoundedMailbox<T> extends the single-slot design to a bounded queue
// with an overflow policy (runtime::OverflowPolicy), the monitor-side
// leg of the runtime's backpressure story: Block parks producers
// (classic), ShedNewest refuses the arrival, ShedOldest evicts the
// queue head to make room.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "monitor/monitor.hpp"
#include "runtime/overload.hpp"
#include "support/panic.hpp"

namespace script::monitor {

/// Single-slot mailbox guarded by its own monitor (Figure 12's
/// `TYPE mailbox : MONITOR`).
template <typename T>
class Mailbox {
 public:
  Mailbox(runtime::Scheduler& sched, std::string name,
          std::uint64_t access_cost = 0)
      : mon_(sched, std::move(name)), cost_(access_cost) {}

  /// WAIT UNTIL status = empty; contents := i; status := full.
  void put(T value) {
    mon_.enter();
    mon_.wait_until([this] { return !slot_.has_value(); });
    if (cost_ > 0) mon_.occupy(cost_);
    slot_ = std::move(value);
    mon_.leave();
  }

  /// WAIT UNTIL status = full; get := contents; status := empty.
  T get() {
    mon_.enter();
    mon_.wait_until([this] { return slot_.has_value(); });
    if (cost_ > 0) mon_.occupy(cost_);
    T out = std::move(*slot_);
    slot_.reset();
    mon_.leave();
    return out;
  }

  Monitor& monitor() { return mon_; }

 private:
  Monitor mon_;
  std::optional<T> slot_;
  std::uint64_t cost_;
};

/// Bounded multi-slot mailbox with an overflow policy — the monitor
/// packaging of the runtime's backpressure semantics. A full queue:
///   * Block      — put() parks until a get() frees a slot (classic
///                  producer backpressure; put() always returns true);
///   * ShedNewest — put() refuses the arrival and returns false;
///   * ShedOldest — put() evicts the queue head (the oldest undelivered
///                  message), enqueues the newcomer, and returns true.
/// shed_count() says how many messages were refused or evicted.
template <typename T>
class BoundedMailbox {
 public:
  BoundedMailbox(runtime::Scheduler& sched, std::string name,
                 std::size_t capacity,
                 runtime::OverflowPolicy policy = runtime::OverflowPolicy::Block,
                 std::uint64_t access_cost = 0)
      : mon_(sched, std::move(name)),
        cap_(capacity),
        policy_(policy),
        cost_(access_cost) {
    SCRIPT_ASSERT(cap_ > 0, "BoundedMailbox needs capacity > 0");
  }

  /// Deliver per the overflow policy. False = the message was shed
  /// (ShedNewest refused it); true = it sits in the queue (though
  /// ShedOldest may later evict it for a newer arrival).
  bool put(T value) {
    mon_.enter();
    if (queue_.size() >= cap_) {
      switch (policy_) {
        case runtime::OverflowPolicy::Block:
          mon_.wait_until([this] { return queue_.size() < cap_; });
          break;
        case runtime::OverflowPolicy::ShedNewest:
          ++shed_;
          mon_.leave();
          return false;
        case runtime::OverflowPolicy::ShedOldest:
          queue_.pop_front();
          ++shed_;
          break;
      }
    }
    if (cost_ > 0) mon_.occupy(cost_);
    queue_.push_back(std::move(value));
    mon_.leave();
    return true;
  }

  /// WAIT UNTIL the queue is non-empty; pop the head.
  T get() {
    mon_.enter();
    mon_.wait_until([this] { return !queue_.empty(); });
    if (cost_ > 0) mon_.occupy(cost_);
    T out = std::move(queue_.front());
    queue_.pop_front();
    mon_.leave();
    return out;
  }

  /// Non-blocking probe: the head if one is ready.
  std::optional<T> try_get() {
    mon_.enter();
    std::optional<T> out;
    if (!queue_.empty()) {
      if (cost_ > 0) mon_.occupy(cost_);
      out = std::move(queue_.front());
      queue_.pop_front();
    }
    mon_.leave();
    return out;
  }

  std::size_t size() const { return queue_.size(); }
  std::size_t capacity() const { return cap_; }
  std::uint64_t shed_count() const { return shed_; }
  Monitor& monitor() { return mon_; }

 private:
  Monitor mon_;
  std::deque<T> queue_;
  std::size_t cap_;
  runtime::OverflowPolicy policy_;
  std::uint64_t cost_;
  std::uint64_t shed_ = 0;
};

/// All mailboxes behind ONE monitor — the "unified abstraction, all
/// details hidden in a single black box" whose cost the paper calls out.
template <typename T>
class MailboxBank {
 public:
  MailboxBank(runtime::Scheduler& sched, std::string name, std::size_t n,
              std::uint64_t access_cost = 0)
      : mon_(sched, std::move(name)), slots_(n), cost_(access_cost) {}

  void put(std::size_t i, T value) {
    mon_.enter();
    mon_.wait_until([this, i] { return !slots_[i].has_value(); });
    if (cost_ > 0) mon_.occupy(cost_);
    slots_[i] = std::move(value);
    mon_.leave();
  }

  T get(std::size_t i) {
    mon_.enter();
    mon_.wait_until([this, i] { return slots_[i].has_value(); });
    if (cost_ > 0) mon_.occupy(cost_);
    T out = std::move(*slots_[i]);
    slots_[i].reset();
    mon_.leave();
    return out;
  }

  std::size_t size() const { return slots_.size(); }
  Monitor& monitor() { return mon_; }

 private:
  Monitor mon_;
  std::vector<std::optional<T>> slots_;
  std::uint64_t cost_;
};

}  // namespace script::monitor
