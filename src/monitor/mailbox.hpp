// The two mailbox packagings of the paper's §IV monitor discussion:
//
//   * Mailbox<T>        — one monitor per mailbox ("the second
//     implementation eliminates the unnecessary concurrency
//     restrictions"); this is the scheme Figure 12's script follows.
//   * MailboxBank<T>    — a single monitor housing all mailboxes ("all
//     access to any mailbox is serialized").
//
// Both charge an optional `access_cost` of virtual time while holding
// their monitor, so the serialization difference is measurable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "monitor/monitor.hpp"

namespace script::monitor {

/// Single-slot mailbox guarded by its own monitor (Figure 12's
/// `TYPE mailbox : MONITOR`).
template <typename T>
class Mailbox {
 public:
  Mailbox(runtime::Scheduler& sched, std::string name,
          std::uint64_t access_cost = 0)
      : mon_(sched, std::move(name)), cost_(access_cost) {}

  /// WAIT UNTIL status = empty; contents := i; status := full.
  void put(T value) {
    mon_.enter();
    mon_.wait_until([this] { return !slot_.has_value(); });
    if (cost_ > 0) mon_.occupy(cost_);
    slot_ = std::move(value);
    mon_.leave();
  }

  /// WAIT UNTIL status = full; get := contents; status := empty.
  T get() {
    mon_.enter();
    mon_.wait_until([this] { return slot_.has_value(); });
    if (cost_ > 0) mon_.occupy(cost_);
    T out = std::move(*slot_);
    slot_.reset();
    mon_.leave();
    return out;
  }

  Monitor& monitor() { return mon_; }

 private:
  Monitor mon_;
  std::optional<T> slot_;
  std::uint64_t cost_;
};

/// All mailboxes behind ONE monitor — the "unified abstraction, all
/// details hidden in a single black box" whose cost the paper calls out.
template <typename T>
class MailboxBank {
 public:
  MailboxBank(runtime::Scheduler& sched, std::string name, std::size_t n,
              std::uint64_t access_cost = 0)
      : mon_(sched, std::move(name)), slots_(n), cost_(access_cost) {}

  void put(std::size_t i, T value) {
    mon_.enter();
    mon_.wait_until([this, i] { return !slots_[i].has_value(); });
    if (cost_ > 0) mon_.occupy(cost_);
    slots_[i] = std::move(value);
    mon_.leave();
  }

  T get(std::size_t i) {
    mon_.enter();
    mon_.wait_until([this, i] { return slots_[i].has_value(); });
    if (cost_ > 0) mon_.occupy(cost_);
    T out = std::move(*slots_[i]);
    slots_[i].reset();
    mon_.leave();
    return out;
  }

  std::size_t size() const { return slots_.size(); }
  Monitor& monitor() { return mon_; }

 private:
  Monitor mon_;
  std::vector<std::optional<T>> slots_;
  std::uint64_t cost_;
};

}  // namespace script::monitor
