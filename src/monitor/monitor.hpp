// Monitors with `WAIT UNTIL <predicate>` — the shared-memory host
// language of the paper's §IV "Scripts with Monitors" (Figure 12).
//
// Semantics are automatic-signalling (as the paper's Pascal-ish figures
// assume): a fiber inside the monitor that executes WAIT UNTIL releases
// the monitor until the predicate holds; whenever the monitor is
// released, a waiter whose predicate now holds is admitted *before* any
// new entrant (hand-off), so its predicate is still true when it runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "runtime/wait_queue.hpp"

namespace script::monitor {

using runtime::ProcessId;

class Monitor {
 public:
  Monitor(runtime::Scheduler& sched, std::string name);

  /// Acquire exclusive access; FIFO among contenders.
  void enter();

  /// Release; admits (in order of preference) a ready predicate waiter,
  /// else the head of the entry queue.
  void leave();

  /// Must hold the monitor. Releases it until `pred()` holds, then
  /// returns with the monitor re-held. `pred` must only read state
  /// protected by this monitor.
  void wait_until(std::function<bool()> pred);

  /// Run `body` inside the monitor (enter/leave RAII-style).
  void with(const std::function<void()>& body);

  /// Model a computation of `ticks` virtual time performed while
  /// *holding* the monitor (e.g. copying a message into a mailbox).
  /// This is what makes single-monitor serialization measurable.
  void occupy(std::uint64_t ticks);

  bool held() const { return busy_; }
  const std::string& name() const { return name_; }

  // Contention counters for the Figure-12 bench.
  std::uint64_t entries() const { return entries_; }
  std::uint64_t contended_entries() const { return contended_; }

 private:
  struct CondWaiter {
    ProcessId pid;
    std::function<bool()> pred;
  };

  /// Shared tail of leave()/wait_until(): pass the monitor on.
  void release_and_admit();

  /// Begin/end of the current fiber's hold span on the bus.
  void publish_hold(obs::EventKind kind);

  runtime::Scheduler* sched_;
  std::string name_;
  bool busy_ = false;
  // Current owner — lets a crash unwinding through with()/wait_until()
  // decide whether this fiber must pass the monitor on.
  ProcessId holder_ = runtime::kNoProcess;
  runtime::WaitQueue entry_queue_;
  std::vector<CondWaiter> cond_waiters_;  // FIFO order
  std::uint64_t entries_ = 0;
  std::uint64_t contended_ = 0;
};

}  // namespace script::monitor
