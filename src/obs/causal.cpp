#include "obs/causal.hpp"

#include <algorithm>
#include <set>

#include "obs/metrics.hpp"
#include "support/panic.hpp"

namespace script::obs {

// ---- CausalTracker ----

CausalTracker::CausalTracker(EventBus& bus) : bus_(&bus) {}

std::vector<std::uint64_t>& CausalTracker::clock(Pid pid) {
  if (clocks_.size() <= pid) clocks_.resize(pid + 1);
  auto& c = clocks_[pid];
  if (c.size() <= pid) c.resize(pid + 1, 0);
  return c;
}

const std::vector<std::uint64_t>& CausalTracker::clock_of(Pid pid) const {
  static const std::vector<std::uint64_t> kEmpty;
  return pid < clocks_.size() ? clocks_[pid] : kEmpty;
}

void CausalTracker::on_dispatch(Pid pid) {
  ++clock(pid)[pid];
  current_ = pid;
}

void CausalTracker::on_edge(Pid from, Pid to, const char* what) {
  if (from == kNoPid || to == kNoPid || from == to) return;
  // Materialize the larger pid's row first: clock() may grow the outer
  // vector, and taking src before dst handed out a reference that the
  // second call's resize could invalidate.
  clock(std::max(from, to));
  const auto& src = clock(from);
  auto& dst = clock(to);
  if (dst.size() < src.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i)
    dst[i] = std::max(dst[i], src[i]);
  if (!bus_->wants(Subsystem::Causal)) return;
  const auto id = static_cast<double>(next_flow_id_++);
  bus_->publish({EventKind::Instant, Subsystem::Causal, kAutoTime, from,
                 kNoLane, "flow.s", what, id});
  bus_->publish({EventKind::Instant, Subsystem::Causal, kAutoTime, to,
                 kNoLane, "flow.f", what, id});
}

void CausalTracker::stamp(Event& e) const {
  if (current_ == kNoPid || current_ >= clocks_.size()) return;
  const auto& c = clocks_[current_];
  e.seq = current_ < c.size() ? c[current_] : 0;
  e.vclock = c;
}

// ---- CausalAnalyzer ----

namespace {

constexpr std::uint64_t kFlowIdNone = 0;

std::uint64_t flow_id(const Event& e) {
  const auto id = static_cast<std::uint64_t>(e.value);
  return id == 0 ? kFlowIdNone : id;
}

std::string fmt_ticks(std::uint64_t t) { return std::to_string(t); }

}  // namespace

CausalAnalyzer::CausalAnalyzer(std::vector<Event> events,
                               std::map<Pid, std::string> fiber_names,
                               std::vector<std::string> lane_names)
    : events_(std::move(events)),
      fiber_names_(std::move(fiber_names)),
      lane_names_(std::move(lane_names)) {
  index_events();
  build_performances();
}

std::string CausalAnalyzer::fiber_name(Pid pid) const {
  const auto it = fiber_names_.find(pid);
  return it != fiber_names_.end() ? it->second
                                  : "fiber " + std::to_string(pid);
}

void CausalAnalyzer::index_events() {
  std::uint64_t last_time = 0;
  std::map<std::uint64_t, Flow> half_flows;
  for (const Event& e : events_) {
    last_time = std::max(last_time, e.time);
    if (e.subsystem == Subsystem::Scheduler && e.pid != kNoPid &&
        (e.name == "blocked" || e.name == "sleeping")) {
      auto& ps = parks_[e.pid];
      if (e.kind == EventKind::SpanBegin) {
        Park k;
        k.begin = e.time;
        k.blocked = e.name == "blocked";
        k.open = true;
        k.detail = e.detail;
        ps.push_back(k);
      } else if (e.kind == EventKind::SpanEnd) {
        // Close the most recent open park of the matching kind; an end
        // with no begin means capture started mid-span — ignore it.
        for (auto it = ps.rbegin(); it != ps.rend(); ++it) {
          if (it->open && it->blocked == (e.name == "blocked")) {
            it->open = false;
            it->end = e.time;
            break;
          }
        }
      }
    } else if (e.subsystem == Subsystem::Causal) {
      const std::uint64_t id = flow_id(e);
      if (id == kFlowIdNone) continue;
      auto& half = half_flows[id];
      if (e.name == "flow.s") {
        half.from = e.pid;
      } else if (e.name == "flow.f") {
        half.to = e.pid;
        half.time = e.time;
      }
      if (half.from != kNoPid && half.to != kNoPid) {
        flows_[id] = half;
        edges_in_[half.to].emplace(half.time, half.from);
        half_flows.erase(id);
      }
    }
  }
  // Dangling opens (deadlock / crash residue): clamp to the last time so
  // wait attribution can still see them; blocked_ticks() skips them to
  // match the scheduler's own accounting.
  for (auto& [pid, ps] : parks_)
    for (Park& k : ps)
      if (k.open) k.end = std::max(k.begin, last_time);
  // Unpaired halves stay out of edges_in_ (self_check reports them).
}

void CausalAnalyzer::build_performances() {
  // Performances are keyed (lane, number); role spans attach by the
  // same key. Script events all carry the instance lane.
  std::map<std::pair<std::int32_t, std::uint64_t>, std::size_t> open;
  struct RoleSpan {
    Pid pid;
    std::string role;
    std::uint64_t begin = 0, end = 0;
    bool open = true;
  };
  std::map<std::pair<std::int32_t, std::uint64_t>, std::vector<RoleSpan>>
      roles;

  for (const Event& e : events_) {
    if (e.subsystem != Subsystem::Script) continue;
    const auto key = std::make_pair(
        e.lane, static_cast<std::uint64_t>(e.value));
    if (e.name == "performance") {
      if (e.kind == EventKind::SpanBegin) {
        PerformanceProfile p;
        p.lane = e.lane;
        p.number = key.second;
        p.begin = e.time;
        p.instance =
            e.lane >= 0 &&
                    static_cast<std::size_t>(e.lane) < lane_names_.size()
                ? lane_names_[static_cast<std::size_t>(e.lane)]
                : "lane " + std::to_string(e.lane);
        open[key] = perfs_.size();
        perfs_.push_back(std::move(p));
      } else if (e.kind == EventKind::SpanEnd) {
        const auto it = open.find(key);
        if (it == open.end()) continue;
        perfs_[it->second].end = e.time;
        perfs_[it->second].aborted = e.detail == "(aborted)";
        open.erase(it);
      }
    } else if (e.name == "role" && e.pid != kNoPid) {
      auto& rs = roles[key];
      if (e.kind == EventKind::SpanBegin) {
        rs.push_back(RoleSpan{e.pid, e.detail, e.time, 0, true});
      } else if (e.kind == EventKind::SpanEnd) {
        for (auto it = rs.rbegin(); it != rs.rend(); ++it)
          if (it->open && it->pid == e.pid) {
            it->open = false;
            it->end = e.time;
            break;
          }
      }
    }
  }
  // A performance still open at capture end has no makespan; leave its
  // end at begin (zero-length) and skip the walk.
  for (const auto& [key, idx] : open) perfs_[idx].end = perfs_[idx].begin;

  for (PerformanceProfile& p : perfs_) {
    const auto key = std::make_pair(p.lane, p.number);
    const auto it = roles.find(key);
    if (it != roles.end()) {
      for (const RoleSpan& r : it->second) {
        if (r.open) continue;
        std::uint64_t wait = 0;
        std::map<std::string, std::uint64_t>& reasons =
            p.wait_reasons[r.role];
        const auto pit = parks_.find(r.pid);
        if (pit != parks_.end()) {
          for (const Park& k : pit->second) {
            if (!k.blocked) continue;
            const std::uint64_t lo = std::max(k.begin, r.begin);
            const std::uint64_t hi = std::min(k.end, r.end);
            if (hi > lo) {
              wait += hi - lo;
              reasons[k.detail] += hi - lo;
            }
          }
        }
        p.wait_by_role[r.role] += wait;
        if (reasons.empty()) p.wait_reasons.erase(r.role);
      }
    }
    if (p.end > p.begin) walk_critical_path(p);

    // Anchor the walk on the fiber whose action closed the performance:
    // the last role span to end. (walk_critical_path reads this via the
    // same lookup, so compute nothing here if there were no roles.)
  }
}

const CausalAnalyzer::Park* CausalAnalyzer::park_ending_at(
    Pid pid, std::uint64_t t) const {
  const auto it = parks_.find(pid);
  if (it == parks_.end()) return nullptr;
  const Park* best = nullptr;
  for (const Park& k : it->second) {
    if (k.end > t) continue;
    if (best == nullptr || k.end > best->end ||
        (k.end == best->end && &k > best))
      best = &k;
  }
  return best;
}

bool CausalAnalyzer::edge_into(Pid pid, std::uint64_t t, Pid* from) const {
  const auto it = edges_in_.find(pid);
  if (it == edges_in_.end()) return false;
  const auto range = it->second.equal_range(t);
  if (range.first == range.second) return false;
  // Several wakes at one instant: any of them is a causally valid
  // predecessor; take the last recorded for determinism.
  auto last = range.second;
  --last;
  *from = last->second;
  return true;
}

void CausalAnalyzer::walk_critical_path(PerformanceProfile& p) {
  // Anchor: the fiber whose role span ends last within this performance
  // (its role_done is what closed the performance). Without role spans
  // (non-script traces) there is nothing to walk.
  Pid anchor = kNoPid;
  std::uint64_t anchor_end = 0;
  for (const Event& e : events_) {
    if (e.subsystem != Subsystem::Script || e.kind != EventKind::SpanEnd ||
        e.name != "role" || e.lane != p.lane ||
        static_cast<std::uint64_t>(e.value) != p.number)
      continue;
    if (e.pid != kNoPid && e.time >= anchor_end) {
      anchor = e.pid;
      anchor_end = e.time;
    }
  }
  if (anchor == kNoPid) return;

  std::vector<PathSegment> rev;  // built backward, reversed at the end
  std::set<const Park*> consumed;
  Pid f = anchor;
  std::uint64_t t = p.end;
  // Termination: each iteration either consumes a park (finite) or
  // lowers t; the belt-and-braces guard covers adversarial input.
  std::uint64_t guard = 4 * (events_.size() + 4);

  auto emit = [&](Pid pid, std::uint64_t b, std::uint64_t e,
                  const char* what, const std::string& detail) {
    if (e > b)
      rev.push_back(PathSegment{pid, b, e, what, detail});
  };

  while (t > p.begin && guard-- > 0) {
    const Park* k = nullptr;
    {
      // Latest unconsumed park of f ending at or before t.
      const auto it = parks_.find(f);
      if (it != parks_.end()) {
        for (const Park& cand : it->second) {
          if (cand.end > t || consumed.count(&cand)) continue;
          if (k == nullptr || cand.end > k->end ||
              (cand.end == k->end && &cand > k))
            k = &cand;
        }
      }
    }
    if (k == nullptr) {
      // No park history: the fiber ran straight through (or capture
      // started late). Charge the residue as plain execution.
      emit(f, p.begin, t, "run", fiber_name(f));
      t = p.begin;
      break;
    }
    if (k->end < t) {
      // Gap between the park and t: virtual time cannot pass while the
      // fiber is runnable, so this only appears when the capture missed
      // spans; account it as execution so the path still tiles.
      const std::uint64_t lo = std::max(k->end, p.begin);
      emit(f, lo, t, "run", fiber_name(f));
      t = lo;
      continue;
    }
    consumed.insert(k);
    const std::uint64_t lo = std::max(k->begin, p.begin);
    if (k->blocked) {
      Pid from = kNoPid;
      if (!k->open && edge_into(f, t, &from)) {
        // Someone's action ended this wait: the path continues through
        // the waker; the waiting interval is its responsibility.
        f = from;
        continue;
      }
      // Timeout wake (or still-open at capture end): the wait itself
      // is on the path.
      emit(f, lo, t, "wait", k->detail);
      t = lo;
    } else {
      // Sleeping: modelled latency / work.
      emit(f, lo, t, "latency", k->detail);
      t = lo;
    }
  }
  if (t > p.begin) emit(f, p.begin, t, "run", fiber_name(f));

  std::reverse(rev.begin(), rev.end());
  p.critical_path = std::move(rev);
  p.critical_path_ticks = 0;
  for (const PathSegment& s : p.critical_path)
    p.critical_path_ticks += s.ticks();
}

std::uint64_t CausalAnalyzer::blocked_ticks(Pid pid) const {
  const auto it = parks_.find(pid);
  if (it == parks_.end()) return 0;
  std::uint64_t total = 0;
  for (const Park& k : it->second)
    if (k.blocked && !k.open) total += k.end - k.begin;
  return total;
}

std::uint64_t CausalAnalyzer::slept_ticks(Pid pid) const {
  const auto it = parks_.find(pid);
  if (it == parks_.end()) return 0;
  std::uint64_t total = 0;
  for (const Park& k : it->second)
    if (!k.blocked && !k.open) total += k.end - k.begin;
  return total;
}

std::map<Pid, std::uint64_t> CausalAnalyzer::blocked_by_fiber() const {
  std::map<Pid, std::uint64_t> out;
  for (const auto& [pid, ps] : parks_) {
    const std::uint64_t t = blocked_ticks(pid);
    if (t > 0) out[pid] = t;
  }
  return out;
}

std::string CausalAnalyzer::report() const {
  std::string out;
  std::set<Pid> fibers;
  for (const Event& e : events_)
    if (e.pid != kNoPid) fibers.insert(e.pid);
  out += "trace: " + std::to_string(events_.size()) + " events, " +
         std::to_string(fibers.size()) + " fibers, " +
         std::to_string(flows_.size()) + " causal edges, " +
         std::to_string(perfs_.size()) + " performances\n";

  for (const PerformanceProfile& p : perfs_) {
    out += "\n== " + p.instance + "#" + std::to_string(p.number) +
           "  t=[" + fmt_ticks(p.begin) + ", " + fmt_ticks(p.end) +
           "]  makespan=" + fmt_ticks(p.makespan()) +
           (p.aborted ? "  ABORTED" : "") + " ==\n";
    if (!p.critical_path.empty()) {
      out += "  critical path (" + fmt_ticks(p.critical_path_ticks) +
             " ticks):\n";
      for (const PathSegment& s : p.critical_path) {
        out += "    [" + fmt_ticks(s.begin) + " .. " + fmt_ticks(s.end) +
               "]  " + fiber_name(s.pid) + "  " + s.what;
        if (!s.detail.empty() && s.what != "run")
          out += "  \"" + s.detail + "\"";
        out += "\n";
      }
    }
    if (!p.wait_by_role.empty()) {
      out += "  wait by role:\n";
      for (const auto& [role, ticks] : p.wait_by_role) {
        out += "    " + role + ": " + fmt_ticks(ticks) + " ticks\n";
        const auto rit = p.wait_reasons.find(role);
        if (rit == p.wait_reasons.end()) continue;
        for (const auto& [reason, rt] : rit->second)
          if (rt > 0)
            out += "      " + fmt_ticks(rt) + "  \"" + reason + "\"\n";
      }
    }
  }

  const auto blocked = blocked_by_fiber();
  if (!blocked.empty()) {
    out += "\nblocked time by fiber:\n";
    for (const auto& [pid, ticks] : blocked)
      out += "  " + fiber_name(pid) + ": " + fmt_ticks(ticks) + " ticks\n";
  }
  return out;
}

std::string CausalAnalyzer::self_check() const {
  std::string errors;
  auto fail = [&errors](const std::string& what) {
    errors += (errors.empty() ? "" : "\n") + what;
  };

  // 1. Flow pairing: every flow id must have exactly one s and one f.
  std::map<std::uint64_t, int> s_count, f_count;
  for (const Event& e : events_) {
    if (e.subsystem != Subsystem::Causal) continue;
    const std::uint64_t id = flow_id(e);
    if (e.name == "flow.s") ++s_count[id];
    if (e.name == "flow.f") ++f_count[id];
  }
  for (const auto& [id, n] : s_count)
    if (n != 1 || f_count[id] != 1)
      fail("flow id " + std::to_string(id) + " unbalanced: " +
           std::to_string(n) + " starts, " + std::to_string(f_count[id]) +
           " finishes");
  for (const auto& [id, n] : f_count)
    if (s_count.find(id) == s_count.end())
      fail("flow id " + std::to_string(id) + " has a finish but no start");

  // 2. Per-fiber stamps: vector clocks never run backwards. An event
  // ATTRIBUTED to fiber F may be STAMPED by another fiber (unblock's
  // span-close is published by the waker), so seq — the publisher's own
  // counter — is not monotone per attributed fiber; componentwise
  // vclock dominance is: the wake edge merges the waker's clock into F
  // before F's own next stamp.
  std::map<Pid, const Event*> last_stamped;
  for (const Event& e : events_) {
    if (e.pid == kNoPid || e.vclock.empty()) continue;
    const auto it = last_stamped.find(e.pid);
    if (it != last_stamped.end()) {
      const Event& prev = *it->second;
      if (vclock_less(e.vclock, prev.vclock))
        fail("fiber " + std::to_string(e.pid) +
             ": vector clock ran backwards at t=" +
             std::to_string(e.time));
    }
    last_stamped[e.pid] = &e;
  }

  // 3. Happens-before is consistent with publish order: a strictly
  // vclock-later event can never have been published earlier. Quadratic,
  // so sampled on large traces.
  std::vector<const Event*> stamped;
  for (const Event& e : events_)
    if (!e.vclock.empty()) stamped.push_back(&e);
  const std::size_t step =
      stamped.size() > 2000 ? stamped.size() / 2000 + 1 : 1;
  for (std::size_t i = 0; i < stamped.size(); i += step)
    for (std::size_t j = i + 1; j < stamped.size(); j += step)
      if (vclock_less(stamped[j]->vclock, stamped[i]->vclock))
        fail("publish order contradicts happens-before at t=" +
             std::to_string(stamped[i]->time) + " vs t=" +
             std::to_string(stamped[j]->time));

  // 4. Span balance per lane (fiber or instance).
  std::map<std::pair<std::int64_t, std::int64_t>, int> depth;
  for (const Event& e : events_) {
    const std::pair<std::int64_t, std::int64_t> lane =
        e.pid != kNoPid
            ? std::pair<std::int64_t, std::int64_t>{1, e.pid}
            : std::pair<std::int64_t, std::int64_t>{2, e.lane};
    if (e.kind == EventKind::SpanBegin) ++depth[lane];
    if (e.kind == EventKind::SpanEnd) {
      if (--depth[lane] < 0) {
        fail("span underflow on lane " + std::to_string(lane.second));
        depth[lane] = 0;
      }
    }
  }
  for (const auto& [lane, d] : depth)
    if (d != 0)
      fail(std::to_string(d) + " dangling open span(s) on lane " +
           std::to_string(lane.second));

  // 5. The tentpole invariant: critical paths tile the makespan.
  for (const PerformanceProfile& p : perfs_) {
    if (p.end <= p.begin || p.critical_path.empty()) continue;
    if (p.critical_path_ticks != p.makespan())
      fail(p.instance + "#" + std::to_string(p.number) +
           ": critical path " + std::to_string(p.critical_path_ticks) +
           " ticks != makespan " + std::to_string(p.makespan()));
  }
  return errors;
}

std::string CausalAnalyzer::diff(const CausalAnalyzer& before,
                                 const CausalAnalyzer& after) {
  using Key = std::pair<std::string, std::uint64_t>;
  std::map<Key, const PerformanceProfile*> a, b;
  for (const PerformanceProfile& p : before.perfs_)
    a[{p.instance, p.number}] = &p;
  for (const PerformanceProfile& p : after.perfs_)
    b[{p.instance, p.number}] = &p;

  std::string out = "causal diff: " + std::to_string(a.size()) +
                    " performances before, " + std::to_string(b.size()) +
                    " after\n";
  auto signed_str = [](std::int64_t v) {
    return (v >= 0 ? "+" : "") + std::to_string(v);
  };
  for (const auto& [key, pa] : a) {
    const auto it = b.find(key);
    const std::string id = key.first + "#" + std::to_string(key.second);
    if (it == b.end()) {
      out += "  - " + id + " only before (makespan=" +
             std::to_string(pa->makespan()) + ")\n";
      continue;
    }
    const PerformanceProfile* pb = it->second;
    const std::int64_t dm = static_cast<std::int64_t>(pb->makespan()) -
                            static_cast<std::int64_t>(pa->makespan());
    const bool aborted_changed = pa->aborted != pb->aborted;
    if (dm != 0 || aborted_changed) {
      out += "  ~ " + id + " makespan " + std::to_string(pa->makespan()) +
             " -> " + std::to_string(pb->makespan()) + " (" +
             signed_str(dm) + ")";
      if (aborted_changed)
        out += pb->aborted ? "  now ABORTED" : "  no longer aborted";
      out += "\n";
    }
    std::set<std::string> roles;
    for (const auto& [r, t] : pa->wait_by_role) roles.insert(r);
    for (const auto& [r, t] : pb->wait_by_role) roles.insert(r);
    for (const std::string& r : roles) {
      const auto fa = pa->wait_by_role.find(r);
      const auto fb = pb->wait_by_role.find(r);
      const std::uint64_t ta =
          fa == pa->wait_by_role.end() ? 0 : fa->second;
      const std::uint64_t tb =
          fb == pb->wait_by_role.end() ? 0 : fb->second;
      if (ta != tb)
        out += "      wait[" + r + "] " + std::to_string(ta) + " -> " +
               std::to_string(tb) + " (" +
               signed_str(static_cast<std::int64_t>(tb) -
                          static_cast<std::int64_t>(ta)) +
               ")\n";
    }
  }
  for (const auto& [key, pb] : b)
    if (a.find(key) == a.end())
      out += "  + " + key.first + "#" + std::to_string(key.second) +
             " only after (makespan=" + std::to_string(pb->makespan()) +
             ")\n";
  return out;
}

void CausalAnalyzer::export_gauges(MetricsRegistry& reg,
                                   const std::string& prefix,
                                   bool per_performance) const {
  std::uint64_t path_total = 0;
  std::map<std::string, std::uint64_t> wait_total;
  for (const PerformanceProfile& p : perfs_) {
    path_total += p.critical_path_ticks;
    if (per_performance)
      reg.gauge(prefix + "." + std::to_string(p.number) +
                    ".critical_path_ticks",
                static_cast<double>(p.critical_path_ticks));
    for (const auto& [role, ticks] : p.wait_by_role)
      wait_total[role] += ticks;
  }
  reg.gauge(prefix + ".critical_path_ticks",
            static_cast<double>(path_total));
  for (const auto& [role, ticks] : wait_total)
    reg.gauge(prefix + ".wait_ticks_by_role." + role,
              static_cast<double>(ticks));
}

}  // namespace script::obs
