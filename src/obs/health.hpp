// HealthMonitor — rolling SLO histograms and watchdog detectors.
//
// Listens to the Script/Recovery event streams (which the TraceLog
// bridge keeps hot anyway) and maintains, per watched script instance:
//   * a rolling-window histogram of enroll→admit latency
//     (enroll.attempt → enroll.ok per enrolling fiber), and
//   * a rolling-window histogram of performance makespan
//     (performance SpanBegin → SpanEnd per performance number).
// Each watch carries an SloConfig; crossing a threshold publishes a
// typed event on Subsystem::Health, so SLO violations ride the same
// bus as everything else — the flight recorder black-boxes them, trace
// exports show them, and metrics can count them.
//
// Watchdogs run from poll() (the Scheduler calls it on every virtual
// clock advance) and detect conditions no single event announces:
//   * health.stuck          — a performance in flight with no event on
//                             its lane for `stuck_after` ticks,
//   * health.queue_depth    — role queue length above `queue_depth`,
//   * health.restart_pressure — a supervised child one crash away from
//                             its restart budget (give-up imminent).
// Detectors latch until the condition clears, so a stuck performance
// alarms once rather than every tick.
//
// Layering: obs cannot see runtime/script types, so depth and restart
// probes are pulled through std::function providers the owners hand in
// (ScriptInstance::enable_health / Supervisor::enable_health).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"

namespace script::obs {

class Timeline;

/// Per-script SLO thresholds, in virtual ticks. 0 disables a check.
/// Carried by ScriptSpec::slo() and handed to the monitor when the
/// instance enables health tracking.
struct SloConfig {
  std::uint64_t enroll_latency = 0;  // max enroll.attempt → enroll.ok
  std::uint64_t makespan = 0;        // max performance duration
  std::uint64_t stuck_after = 0;     // watchdog: lane silent this long
  std::size_t queue_depth = 0;       // watchdog: queued enrollments
  std::uint64_t window = 4096;       // rolling-histogram epoch length

  // ---- Burn-rate alerting (multi-window, SRE-style) ----
  // Every enroll-latency/makespan sample is classified good/violating
  // against the thresholds above and recorded on the timeline; the burn
  // rate of a window is (violating share) / error_budget — 1.0 means
  // "spending budget exactly as provisioned", 10 means "budget gone in
  // a tenth of the intended period". health.burn_rate latches only when
  // BOTH windows exceed burn_threshold: the fast window makes the alert
  // prompt, the slow window keeps a brief blip from paging. Requires a
  // Timeline (HealthMonitor::set_timeline); error_budget = 0 disables.
  double error_budget = 0;           // allowed violating fraction (0,1]
  double burn_threshold = 2.0;       // alert at this multiple of budget
  std::uint64_t fast_window = 0;     // ticks; default 4 × window
  std::uint64_t slow_window = 0;     // ticks; default 16 × window

  bool any() const {
    return enroll_latency != 0 || makespan != 0 || stuck_after != 0 ||
           queue_depth != 0;
  }
};

/// Two-epoch rolling histogram: observations land in the current
/// epoch (floor(now / window)); merged() combines the current and
/// previous epochs, so the view always covers between one and two
/// windows of history and old samples age out in O(1).
class RollingHistogram {
 public:
  explicit RollingHistogram(std::uint64_t window) : window_(window) {}

  void observe(std::uint64_t now, double v);
  Histogram merged() const;
  std::uint64_t window() const { return window_; }

 private:
  void rotate_to(std::uint64_t epoch);
  std::uint64_t window_;
  std::uint64_t epoch_ = 0;
  Histogram cur_;
  Histogram prev_;
};

class HealthMonitor {
 public:
  /// A supervised child's standing against its restart budget, as
  /// reported by a restart-pressure provider.
  struct RestartPressure {
    std::string child;
    std::size_t crashes_in_window = 0;
    std::size_t max_restarts = 0;
  };

  explicit HealthMonitor(EventBus& bus);
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Track the script instance publishing on `lane`. `queue_depth_fn`
  /// (optional) samples its role-queue length for the queue watchdog.
  void watch_script(std::int32_t lane, std::string name, SloConfig slo,
                    std::function<std::size_t()> queue_depth_fn = {});
  void unwatch_script(std::int32_t lane);

  /// Track a supervisor via a provider returning each child's crash
  /// count inside the current restart window. Returns an id for
  /// unwatch_restarts().
  std::size_t watch_restarts(
      std::string name,
      std::function<std::vector<RestartPressure>()> provider);
  void unwatch_restarts(std::size_t id);

  /// Back the burn-rate machinery with a timeline: SLO sample outcomes
  /// are recorded as health.slo_ok@lane / health.slo_violation@lane
  /// counter series there, and burn windows are sums over those series.
  /// Without a timeline, burn alerting is off (nullptr detaches).
  void set_timeline(Timeline* timeline) { timeline_ = timeline; }
  Timeline* timeline() const { return timeline_; }

  /// Run the watchdogs as of `now`. The Scheduler calls this whenever
  /// the virtual clock advances; event arrival also polls.
  void poll(std::uint64_t now);

  // ---- Queries ----
  Histogram enroll_latency(std::int32_t lane) const;
  Histogram makespan(std::int32_t lane) const;
  /// Total Health conditions raised (latched re-raises not counted).
  std::uint64_t violations() const { return violations_; }
  std::uint64_t violations(const std::string& event_name) const;
  /// Watchdog latch standings, for admission controllers that want to
  /// shed load while a condition holds (false for unwatched lanes).
  bool queue_latched(std::int32_t lane) const;
  bool stuck_latched(std::int32_t lane) const;
  /// True while any supervised child sits one crash away from its
  /// restart budget (a health.restart_pressure alarm is standing).
  bool restart_pressure() const;
  /// Violating share of `lane`'s SLO samples over the trailing
  /// `window_ticks`, divided by its error budget. 0 when unwatched, no
  /// timeline, no budget, or no samples in the window.
  double burn_rate(std::int32_t lane, std::uint64_t window_ticks) const;
  /// True while the two-window burn alert is standing for `lane`.
  bool burn_latched(std::int32_t lane) const;
  /// Human summary for deadlock/abort reports; empty when healthy.
  std::string report() const;

 private:
  struct Watch {
    std::string name;
    SloConfig slo;
    std::function<std::size_t()> queue_depth_fn;
    RollingHistogram enroll;
    RollingHistogram makespan;
    std::map<Pid, std::uint64_t> enroll_started;      // attempt time
    std::map<std::uint64_t, std::uint64_t> perf_open; // number → begin
    std::uint64_t last_progress = 0;
    bool stuck_latched = false;
    bool queue_latched = false;
    // Burn-rate state; series keys cached so the per-sample record is
    // one map lookup inside Timeline::bump, no string assembly.
    std::string ok_series;
    std::string bad_series;
    bool burn_latched = false;
  };

  struct SupWatch {
    std::size_t id;
    std::string name;
    std::function<std::vector<RestartPressure>()> provider;
    std::map<std::string, bool> latched;  // child → alarm standing
  };

  void on_event(const Event& e);
  void raise(const char* name, std::int32_t lane, std::string detail,
             double value);
  /// Record one classified SLO sample on the timeline (no-op without
  /// one or without an error budget).
  void record_slo_sample(Watch& w, std::uint64_t t, bool violating);
  double burn_over(const Watch& w, std::uint64_t window_ticks) const;

  EventBus* bus_;
  EventBus::SubId sub_;
  std::map<std::int32_t, Watch> watches_;
  std::vector<SupWatch> sup_watches_;
  std::size_t next_sup_id_ = 1;
  std::uint64_t now_ = 0;
  std::uint64_t last_poll_ = static_cast<std::uint64_t>(-1);
  std::uint64_t violations_ = 0;
  std::map<std::string, std::uint64_t> by_name_;
  bool raising_ = false;
  Timeline* timeline_ = nullptr;
};

}  // namespace script::obs
