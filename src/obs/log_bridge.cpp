#include "obs/log_bridge.hpp"

namespace script::obs {

EventBus::SubId install_script_log_bridge(
    EventBus& bus, support::TraceLog& log,
    std::function<std::string(Pid)> fiber_name) {
  return bus.subscribe(
      EventBus::mask_of(Subsystem::Script),
      [&bus, &log, fiber_name = std::move(fiber_name)](const Event& e) {
        auto record = [&](std::string what) {
          log.record(e.time, fiber_name(e.pid), std::move(what));
        };
        if (e.name == "enroll.attempt") {
          record("attempts to enroll as " + e.detail);
        } else if (e.name == "enroll.attempt.guarded") {
          record("attempts guarded enrollment as " + e.detail);
        } else if (e.name == "enroll.attempt.timed") {
          record("attempts timed enrollment as " + e.detail);
        } else if (e.name == "enroll.ok") {
          record("enrolls as " + e.detail);
        } else if (e.name == "enroll.fail.guarded") {
          record("guarded enrollment as " + e.detail + " failed");
        } else if (e.name == "enroll.fail.timed") {
          record("timed enrollment as " + e.detail + " expired");
        } else if (e.name == "role") {
          record((e.kind == EventKind::SpanBegin ? "begins role "
                                                 : "finishes role ") +
                 e.detail);
        } else if (e.name == "release") {
          record("released from " + bus.lane_name(e.lane));
        } else if (e.name == "performance") {
          log.record(e.time, bus.lane_name(e.lane),
                     "performance " +
                         std::to_string(static_cast<std::uint64_t>(e.value)) +
                         (e.kind == EventKind::SpanBegin ? " begins"
                                                         : " ends"));
        }
        // Unknown script events pass through silently; the prose log is
        // a curated view, not an exhaustive one.
      });
}

}  // namespace script::obs
