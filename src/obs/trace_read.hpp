// trace_read — reconstruct an Event stream from a trace file.
//
// The TraceExporter writes Chrome trace-event JSON with one record per
// line and a "sub"/"value"/"seq"/"vc" args payload on every record
// precisely so that this reader can reverse it: trace-analyze (and the
// golden tests) load a .trace.json from disk and hand the recovered
// events to CausalAnalyzer, getting the same analysis a live subscriber
// would. This is a reader for OUR writer's output — line-oriented and
// deliberately minimal, not a general JSON parser.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace script::obs {

struct TraceFile {
  std::vector<Event> events;  // in file (= publish) order
  std::map<Pid, std::string> fiber_names;
  std::vector<std::string> lane_names;
  std::map<std::string, std::string> metadata;
};

/// Parse a trace document produced by TraceExporter::json().
/// Unrecognised records are skipped; a document with no trace records at
/// all yields an empty TraceFile (callers can treat that as an error).
TraceFile parse_trace_json(const std::string& json);

/// Read + parse; nullopt when the file cannot be opened.
std::optional<TraceFile> read_trace_file(const std::string& path);

}  // namespace script::obs
