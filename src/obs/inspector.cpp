#include "obs/inspector.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/json.hpp"
#include "obs/trace_read.hpp"
#include "support/panic.hpp"

namespace script::obs {

std::size_t Inspector::attach(std::string kind, Provider provider) {
  SCRIPT_ASSERT(provider != nullptr, "Inspector::attach: null provider");
  const std::size_t id = next_id_++;
  sections_.push_back(Section{id, std::move(kind), std::move(provider)});
  return id;
}

void Inspector::detach(std::size_t id) {
  const auto it = std::find_if(
      sections_.begin(), sections_.end(),
      [id](const Section& s) { return s.id == id; });
  SCRIPT_ASSERT(it != sections_.end(), "Inspector::detach: unknown id");
  sections_.erase(it);
}

std::string Inspector::snapshot_json() const {
  json::Writer w;
  w.object();
  w.key("virtual_time").value(clock_ ? clock_() : 0);
  w.key("sections").object();
  // Group same-kind sections into one array, first-attached kind first.
  std::vector<std::string> kinds;
  for (const Section& s : sections_)
    if (std::find(kinds.begin(), kinds.end(), s.kind) == kinds.end())
      kinds.push_back(s.kind);
  for (const std::string& kind : kinds) {
    w.key(kind).array();
    for (const Section& s : sections_)
      if (s.kind == kind) w.raw(s.provider());
    w.end();
  }
  w.end().end();
  return w.str();
}

bool Inspector::write_snapshot(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = snapshot_json() + "\n";
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

namespace {

std::string ticks(double v) { return "t=" + json::num(v); }

void render_scheduler(std::string& out, const json::Value& s) {
  out += "scheduler: " + json::num(s.num_or("live", 0)) + " live, " +
         json::num(s.num_or("ready", 0)) + " ready, " +
         json::num(s.num_or("timers", 0)) + " timer(s), " +
         json::num(s.num_or("steps", 0)) + " step(s)\n";
  const json::Value* fibers = s.get("fibers");
  if (fibers == nullptr || !fibers->is_array()) return;
  for (const json::Value& f : fibers->array) {
    out += "  [" + json::num(f.num_or("pid", -1)) + "] " +
           f.str_or("name", "?") + "  " + f.str_or("state", "?");
    const std::string reason = f.str_or("reason", "");
    if (!reason.empty()) out += " (" + reason + ")";
    if (f.get("waiting_on") != nullptr)
      out += " waiting_on=" + json::num(f.num_or("waiting_on", -1));
    const json::Value* crashed = f.get("crashed");
    if (crashed != nullptr && crashed->boolean) out += " CRASHED";
    const json::Value* cancelled = f.get("cancelled");
    if (cancelled != nullptr && cancelled->boolean) out += " (cancelled)";
    if (f.get("deadline") != nullptr)
      out += " deadline=" + ticks(f.num_or("deadline", 0));
    out += "\n";
  }
}

void render_script(std::string& out, const json::Value& s) {
  out += "script \"" + s.str_or("script", "?") + "\": ";
  const json::Value* perf = s.get("performance");
  if (perf != nullptr && perf->is_object()) {
    out += "performance #" + json::num(perf->num_or("number", 0)) +
           " in flight; ";
  }
  out += json::num(s.num_or("completed", 0)) + " completed, " +
         json::num(s.num_or("aborted", 0)) + " aborted\n";
  if (perf != nullptr && perf->is_object()) {
    const json::Value* roles = perf->get("roles");
    if (roles != nullptr && roles->is_array())
      for (const json::Value& r : roles->array) {
        out += "  role " + r.str_or("role", "?") + " <- [" +
               json::num(r.num_or("pid", -1)) + "] " +
               r.str_or("process", "?");
        const json::Value* done = r.get("done");
        if (done != nullptr && done->boolean) out += " (done)";
        out += "\n";
      }
    const json::Value* takeovers = perf->get("awaiting_takeover");
    if (takeovers != nullptr && takeovers->is_array())
      for (const json::Value& t : takeovers->array)
        out += "  takeover pending: " + t.str_or("role", "?") +
               " (deadline " + ticks(t.num_or("deadline", 0)) + ")\n";
  }
  const json::Value* waiting = s.get("waiting");
  if (waiting != nullptr && waiting->is_array())
    for (const json::Value& q : waiting->array)
      out += "  waiting: " + q.str_or("role", "?") + " (" +
             json::num(q.num_or("queued", 0)) + " queued)\n";
  // Overload state: why `enroll` keeps coming back shed.
  const json::Value* breaker = s.get("breaker");
  if (breaker != nullptr && breaker->is_object()) {
    out += "  admission breaker " + breaker->str_or("state", "?");
    if (breaker->get("open_until") != nullptr)
      out += " (reopens " + ticks(breaker->num_or("open_until", 0)) + ")";
    if (breaker->get("probes_left") != nullptr)
      out += " (" + json::num(breaker->num_or("probes_left", 0)) +
             " probe(s) left)";
    out += ", " + json::num(breaker->num_or("trips", 0)) + " trip(s)\n";
  }
  if (s.get("sheds") != nullptr)
    out += "  shed enrollments: " + json::num(s.num_or("sheds", 0)) + "\n";
}

void render_locks(std::string& out, const json::Value& s, double now) {
  out += "locks: " + json::num(s.num_or("held", 0)) + " item(s) held; " +
         json::num(s.num_or("grants", 0)) + " grant(s), " +
         json::num(s.num_or("denials", 0)) + " denial(s)";
  if (s.get("deadline_expiries") != nullptr)
    out += ", " + json::num(s.num_or("deadline_expiries", 0)) +
           " deadline-expired";
  out += "\n";
  const json::Value* items = s.get("items");
  if (items == nullptr || !items->is_array()) return;
  for (const json::Value& item : items->array) {
    out += "  " + item.str_or("item", "?") + ": " +
           item.str_or("mode", "?") + " by {";
    const json::Value* owners = item.get("owners");
    bool first = true;
    if (owners != nullptr && owners->is_array())
      for (const json::Value& o : owners->array) {
        if (!first) out += ", ";
        first = false;
        // Owner ids are numbers (lockdb) but a named owner renders too.
        const json::Value* id = o.get("owner");
        if (id != nullptr && id->kind == json::Value::Kind::Number)
          out += json::num(id->number);
        else
          out += o.str_or("owner", "?");
        if (o.get("lease_expiry") != nullptr) {
          const double expiry = o.num_or("lease_expiry", 0);
          out += " (lease " + ticks(expiry);
          // Remaining lease against the snapshot's clock — the operator
          // wants "how long until this grant frees up", not an absolute.
          out += expiry > now ? ", " + json::num(expiry - now) + " left"
                              : ", expired";
          out += ")";
        }
      }
    out += "}\n";
  }
}

void render_supervisor(std::string& out, const json::Value& s) {
  out += "supervisor: " + json::num(s.num_or("total_restarts", 0)) +
         " restart(s), " + json::num(s.num_or("gave_up", 0)) +
         " give-up(s)\n";
  const json::Value* children = s.get("children");
  if (children == nullptr || !children->is_array()) return;
  for (const json::Value& c : children->array) {
    out += "  " + c.str_or("name", "?") + " " + c.str_or("state", "?");
    if (c.get("pid") != nullptr)
      out += " [" + json::num(c.num_or("pid", -1)) + "]";
    out += " restarts " + json::num(c.num_or("restarts", 0)) + "/" +
           json::num(c.num_or("max_restarts", 0)) + "\n";
  }
}

}  // namespace

std::string render_inspect_report(const json::Value& snapshot) {
  std::string out =
      "inspector snapshot @ " + ticks(snapshot.num_or("virtual_time", 0)) +
      "\n";
  const json::Value* sections = snapshot.get("sections");
  if (sections == nullptr || !sections->is_object())
    return out + "(no sections)\n";
  for (const auto& [kind, list] : sections->object) {
    if (!list.is_array()) continue;
    for (const json::Value& entry : list.array) {
      out += "\n";
      if (kind == "scheduler") {
        render_scheduler(out, entry);
      } else if (kind == "script") {
        render_script(out, entry);
      } else if (kind == "locks") {
        render_locks(out, entry, snapshot.num_or("virtual_time", 0));
      } else if (kind == "supervisor") {
        render_supervisor(out, entry);
      } else {
        // Unknown section kinds still get a line, so scriptctl stays
        // useful when components grow new describers.
        out += kind + ": (unrecognized section kind)\n";
      }
    }
  }
  return out;
}

std::string render_flight_report(const TraceFile& dump, std::size_t tail) {
  std::string out = "flight dump: " + std::to_string(dump.events.size()) +
                    " event(s)";
  const auto meta = [&dump](const char* key) -> std::string {
    const auto it = dump.metadata.find(key);
    return it == dump.metadata.end() ? std::string() : it->second;
  };
  if (!meta("dropped_events").empty())
    out += ", " + meta("dropped_events") + " dropped (ring wrap)";
  if (!meta("trigger").empty()) out += ", trigger: " + meta("trigger");
  out += "\n";

  if (dump.events.empty()) return out;
  out += "  time range: " + ticks(static_cast<double>(dump.events.front().time)) +
         " .. " + ticks(static_cast<double>(dump.events.back().time)) + "\n";

  std::map<std::string, std::size_t> by_subsystem;
  for (const Event& e : dump.events) ++by_subsystem[subsystem_name(e.subsystem)];
  out += "  by subsystem:";
  for (const auto& [name, count] : by_subsystem)
    out += " " + name + "=" + std::to_string(count);
  out += "\n";

  if (tail == 0) return out;
  const std::size_t n = std::min(tail, dump.events.size());
  out += "  last " + std::to_string(n) + " event(s):\n";
  for (std::size_t i = dump.events.size() - n; i < dump.events.size(); ++i) {
    const Event& e = dump.events[i];
    const char* kind = "?";
    switch (e.kind) {
      case EventKind::SpanBegin: kind = "B"; break;
      case EventKind::SpanEnd: kind = "E"; break;
      case EventKind::Instant: kind = "i"; break;
      case EventKind::Counter: kind = "C"; break;
    }
    out += "    t=" + std::to_string(e.time) + " [" +
           subsystem_name(e.subsystem) + "] " + kind + " " + e.name;
    if (!e.detail.empty()) out += " " + e.detail;
    if (e.pid != kNoPid) out += " pid=" + std::to_string(e.pid);
    out += "\n";
  }
  return out;
}

}  // namespace script::obs
