// Typed observability events — the vocabulary every layer speaks.
//
// The paper's central artifact is a *timeline* (Figure 1 is literally a
// trace of enrollments, performances, and releases). This header widens
// that idea into one vocabulary covering every layer of the system:
// scheduler dispatch/block/unblock, script lifecycle, CSP rendezvous,
// Ada entry calls, monitor holds, lock grants, and distributed message
// hops. Producers publish Events to an EventBus; subscribers (the
// TraceLog bridge, ScriptStats, the Chrome-trace exporter, metrics)
// consume them without the producers knowing who is listening.
//
// This module depends only on src/support so that leaf libraries
// (e.g. lockdb, which has no scheduler) can publish events too.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace script::obs {

/// Mirrors runtime::ProcessId without depending on the runtime library.
using Pid = std::uint32_t;
inline constexpr Pid kNoPid = static_cast<Pid>(-1);

/// No instance/custom lane; the event belongs to the fiber named by pid.
inline constexpr std::int32_t kNoLane = -1;

/// Sentinel: the bus stamps the event with its clock at publish time.
inline constexpr std::uint64_t kAutoTime = static_cast<std::uint64_t>(-1);

enum class EventKind : std::uint8_t {
  SpanBegin,  // a duration starts on the event's lane
  SpanEnd,    // ... and ends (LIFO-nested per lane)
  Instant,    // a point milestone
  Counter,    // a sampled numeric value (`value`)
};

/// Which layer produced the event. Subscribers declare a subsystem mask;
/// producers test EventBus::wants(subsystem) before building an Event, so
/// an un-observed subsystem costs one branch.
enum class Subsystem : std::uint8_t {
  Scheduler,  // dispatch, block/unblock, sleep, clock advance
  Script,     // enrollment/performance lifecycle (paper Figure 1)
  Csp,        // rendezvous completions
  Ada,        // entry calls and accept rendezvous
  Monitor,    // monitor acquisition/hold
  Lock,       // lockdb acquire/release/conflict
  Link,       // SimLink / distributed-protocol message hops
  User,       // application-defined events
  Fault,      // injected faults: crashes, stalls, message drop/dup/delay
  Causal,     // happens-before edges between fibers (flow.s / flow.f)
  Recovery,   // supervisor restarts, role takeover, WAL replay, leases
  Health,     // SLO violations and watchdog alarms (HealthMonitor)
  Overload,   // deadline/budget cancellations, sheds, circuit breaker
  kCount,
};

const char* subsystem_name(Subsystem s);

struct Event {
  Event() = default;
  // Producers brace-initialize the descriptive prefix; the causal stamp
  // below is only ever filled in by the bus's stamper hook.
  Event(EventKind k, Subsystem s, std::uint64_t t = kAutoTime,
        Pid p = kNoPid, std::int32_t l = kNoLane, std::string n = {},
        std::string d = {}, double v = 0)
      : kind(k), subsystem(s), time(t), pid(p), lane(l),
        name(std::move(n)), detail(std::move(d)), value(v) {}

  EventKind kind = EventKind::Instant;
  Subsystem subsystem = Subsystem::User;
  std::uint64_t time = kAutoTime;  // virtual ticks
  Pid pid = kNoPid;                // acting fiber, if any
  std::int32_t lane = kNoLane;     // instance lane (EventBus::add_lane)
  std::string name;                // stable id, e.g. "enroll.ok", "role"
  std::string detail;              // human fragment, e.g. a role or tag
  double value = 0;                // Counter payload / numeric annotation

  // ---- Causal stamp (CausalTracker; empty when tracking is off) ----
  // The publishing fiber's dispatch count and vector clock at publish
  // time. Strict vclock order between two stamped events implies the
  // first was published before the second (happens-before).
  std::uint64_t seq = 0;
  std::vector<std::uint64_t> vclock;
};

/// Componentwise comparison of two vector clocks (missing components
/// count as 0). True iff a <= b everywhere and a < b somewhere — the
/// happens-before order on stamped events.
bool vclock_less(const std::vector<std::uint64_t>& a,
                 const std::vector<std::uint64_t>& b);

}  // namespace script::obs
