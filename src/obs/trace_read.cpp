#include "obs/trace_read.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace script::obs {

namespace {

// ---- line scanning helpers (mirror append_record's output shape) ----

/// Position just past `"key": ` in `line`, or npos.
std::size_t after_key(const std::string& line, const std::string& key,
                      std::size_t from = 0) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle, from);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

/// Undo append_escaped starting at the opening quote.
bool read_string_at(const std::string& line, std::size_t at,
                    std::string* out) {
  if (at >= line.size() || line[at] != '"') return false;
  out->clear();
  for (std::size_t i = at + 1; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return true;
    if (c != '\\') {
      *out += c;
      continue;
    }
    if (++i >= line.size()) return false;
    switch (line[i]) {
      case '"': *out += '"'; break;
      case '\\': *out += '\\'; break;
      case 'n': *out += '\n'; break;
      case 't': *out += '\t'; break;
      case 'u': {
        if (i + 4 >= line.size()) return false;
        *out += static_cast<char>(
            std::strtoul(line.substr(i + 1, 4).c_str(), nullptr, 16));
        i += 4;
        break;
      }
      default: *out += line[i];
    }
  }
  return false;
}

bool str_field(const std::string& line, const std::string& key,
               std::string* out) {
  const std::size_t at = after_key(line, key);
  return at != std::string::npos && read_string_at(line, at, out);
}

bool num_field(const std::string& line, const std::string& key,
               double* out) {
  const std::size_t at = after_key(line, key);
  if (at == std::string::npos) return false;
  *out = std::strtod(line.c_str() + at, nullptr);
  return true;
}

Subsystem subsystem_from(const std::string& name) {
  for (unsigned i = 0; i < static_cast<unsigned>(Subsystem::kCount); ++i) {
    const Subsystem s = static_cast<Subsystem>(i);
    if (name == subsystem_name(s)) return s;
  }
  return Subsystem::User;
}

/// "name detail" → (name, detail): exporter joins with the first space
/// and event names are space-free tokens.
void split_name(const std::string& joined, std::string* name,
                std::string* detail) {
  const std::size_t sp = joined.find(' ');
  if (sp == std::string::npos) {
    *name = joined;
    detail->clear();
  } else {
    *name = joined.substr(0, sp);
    *detail = joined.substr(sp + 1);
  }
}

void parse_metadata_line(const std::string& line,
                         std::map<std::string, std::string>* out) {
  // `"metadata": {"k": v, "k2": v2}` — keys are escaped strings, values
  // are numbers or escaped strings; store both as text.
  std::size_t at = after_key(line, "metadata");
  if (at == std::string::npos || at >= line.size() || line[at] != '{')
    return;
  ++at;
  while (at < line.size() && line[at] != '}') {
    std::string key;
    if (!read_string_at(line, at, &key)) return;
    at = line.find(':', at);
    if (at == std::string::npos) return;
    at += 2;  // skip ": "
    std::string value;
    if (at < line.size() && line[at] == '"') {
      if (!read_string_at(line, at, &value)) return;
      at = line.find('"', at + 1);
      if (at == std::string::npos) return;
      ++at;
    } else {
      const std::size_t end = line.find_first_of(",}", at);
      if (end == std::string::npos) return;
      value = line.substr(at, end - at);
      at = end;
    }
    (*out)[key] = value;
    if (at < line.size() && line[at] == ',') at += 2;  // skip ", "
  }
}

void parse_record(const std::string& line, TraceFile* out) {
  std::string ph;
  if (!str_field(line, "ph", &ph) || ph.empty()) return;

  double ts = 0, tpid = 0, tid = 0;
  num_field(line, "ts", &ts);
  num_field(line, "pid", &tpid);
  num_field(line, "tid", &tid);
  std::string joined;
  str_field(line, "name", &joined);

  if (ph == "M") {
    if (joined != "thread_name") return;
    std::string who;
    const std::size_t args = line.find("\"args\":");
    if (args == std::string::npos) return;
    if (!str_field(line.substr(args), "name", &who)) return;
    if (static_cast<int>(tpid) == 1) {
      out->fiber_names[static_cast<Pid>(tid)] = who;
    } else if (static_cast<int>(tpid) == 2) {
      const auto lane = static_cast<std::size_t>(tid);
      if (out->lane_names.size() <= lane)
        out->lane_names.resize(lane + 1, "");
      out->lane_names[lane] = who;
    }
    return;
  }

  Event e;
  e.time = static_cast<std::uint64_t>(ts);
  if (static_cast<int>(tpid) == 1) {
    e.pid = static_cast<Pid>(tid);
  } else if (static_cast<int>(tpid) == 2) {
    e.lane = static_cast<std::int32_t>(tid);
  }

  if (ph == "s" || ph == "f") {
    e.kind = EventKind::Instant;
    e.subsystem = Subsystem::Causal;
    e.name = ph == "s" ? "flow.s" : "flow.f";
    e.detail = joined;
    double id = 0;
    num_field(line, "id", &id);
    e.value = id;
    out->events.push_back(std::move(e));
    return;
  }

  std::string sub;
  if (str_field(line, "sub", &sub)) e.subsystem = subsystem_from(sub);
  double args_lane = 0;  // fiber-track records keep their lane in args
  if (num_field(line, "lane", &args_lane))
    e.lane = static_cast<std::int32_t>(args_lane);
  double value = 0;

  if (ph == "B" || ph == "E" || ph == "i") {
    e.kind = ph == "B"   ? EventKind::SpanBegin
             : ph == "E" ? EventKind::SpanEnd
                         : EventKind::Instant;
    split_name(joined, &e.name, &e.detail);
    if (num_field(line, "value", &value)) e.value = value;
    double seq = 0;
    if (num_field(line, "seq", &seq)) {
      e.seq = static_cast<std::uint64_t>(seq);
      std::size_t at = after_key(line, "vc");
      if (at != std::string::npos && at < line.size() && line[at] == '[') {
        ++at;
        while (at < line.size() && line[at] != ']') {
          char* end = nullptr;
          e.vclock.push_back(static_cast<std::uint64_t>(
              std::strtoull(line.c_str() + at, &end, 10)));
          at = static_cast<std::size_t>(end - line.c_str());
          if (at < line.size() && line[at] == ',') ++at;
        }
      }
    }
    out->events.push_back(std::move(e));
    return;
  }

  if (ph == "C") {
    e.kind = EventKind::Counter;
    e.name = joined;
    // The series key is the first args key; "value" means empty detail.
    const std::size_t args = line.find("\"args\": {");
    if (args != std::string::npos) {
      std::string series;
      if (read_string_at(line, args + std::strlen("\"args\": {"),
                         &series)) {
        if (series != "value") e.detail = series;
        num_field(line.substr(args), series, &value);
        e.value = value;
      }
    }
    out->events.push_back(std::move(e));
    return;
  }
}

}  // namespace

TraceFile parse_trace_json(const std::string& json) {
  TraceFile out;
  std::size_t start = 0;
  while (start < json.size()) {
    std::size_t end = json.find('\n', start);
    if (end == std::string::npos) end = json.size();
    const std::string line = json.substr(start, end - start);
    start = end + 1;
    if (line.find("\"metadata\":") != std::string::npos) {
      parse_metadata_line(line, &out.metadata);
    } else if (line.find("\"ph\":") != std::string::npos) {
      parse_record(line, &out);
    }
  }
  for (std::size_t i = 0; i < out.lane_names.size(); ++i)
    if (out.lane_names[i].empty())
      out.lane_names[i] = "lane " + std::to_string(i);
  return out;
}

std::optional<TraceFile> read_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string body;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  std::fclose(f);
  return parse_trace_json(body);
}

}  // namespace script::obs
