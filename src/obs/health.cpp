#include "obs/health.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "obs/timeline.hpp"

namespace script::obs {

void RollingHistogram::rotate_to(std::uint64_t epoch) {
  if (epoch == epoch_) return;
  if (epoch == epoch_ + 1) {
    prev_ = cur_;
  } else {
    prev_ = Histogram{};  // gap longer than a window: nothing carries over
  }
  cur_ = Histogram{};
  epoch_ = epoch;
}

void RollingHistogram::observe(std::uint64_t now, double v) {
  if (window_ != 0) rotate_to(now / window_);
  cur_.observe(v);
}

Histogram RollingHistogram::merged() const {
  Histogram m = prev_;
  m.absorb(cur_);
  return m;
}

HealthMonitor::HealthMonitor(EventBus& bus) : bus_(&bus) {
  // Script events are already hot (the TraceLog bridge subscribes to
  // them); adding Recovery costs only the supervisor/takeover paths.
  sub_ = bus_->subscribe(EventBus::mask_of(Subsystem::Script) |
                             EventBus::mask_of(Subsystem::Recovery),
                         [this](const Event& e) { on_event(e); });
}

HealthMonitor::~HealthMonitor() { bus_->unsubscribe(sub_); }

void HealthMonitor::watch_script(std::int32_t lane, std::string name,
                                 SloConfig slo,
                                 std::function<std::size_t()> queue_depth_fn) {
  const std::uint64_t window = slo.window != 0 ? slo.window : 4096;
  Watch w{std::move(name),
          slo,
          std::move(queue_depth_fn),
          RollingHistogram(window),
          RollingHistogram(window),
          {},
          {},
          now_,
          false,
          false,
          "health.slo_ok@" + std::to_string(lane),
          "health.slo_violation@" + std::to_string(lane),
          false};
  // Burn windows default to 4× / 16× the rolling window, so a plain
  // `error_budget = 0.1` is a complete config.
  if (w.slo.fast_window == 0) w.slo.fast_window = 4 * window;
  if (w.slo.slow_window == 0) w.slo.slow_window = 16 * window;
  watches_.insert_or_assign(lane, std::move(w));
}

void HealthMonitor::unwatch_script(std::int32_t lane) {
  watches_.erase(lane);
}

std::size_t HealthMonitor::watch_restarts(
    std::string name, std::function<std::vector<RestartPressure>()> provider) {
  const std::size_t id = next_sup_id_++;
  sup_watches_.push_back(
      SupWatch{id, std::move(name), std::move(provider), {}});
  return id;
}

void HealthMonitor::unwatch_restarts(std::size_t id) {
  sup_watches_.erase(
      std::remove_if(sup_watches_.begin(), sup_watches_.end(),
                     [id](const SupWatch& w) { return w.id == id; }),
      sup_watches_.end());
}

void HealthMonitor::raise(const char* name, std::int32_t lane,
                          std::string detail, double value) {
  ++violations_;
  ++by_name_[name];
  if (raising_ || !bus_->wants(Subsystem::Health)) return;
  raising_ = true;
  Event e;
  e.kind = EventKind::Instant;
  e.subsystem = Subsystem::Health;
  e.time = now_;
  e.lane = lane;
  e.name = name;
  e.detail = std::move(detail);
  e.value = value;
  bus_->publish(std::move(e));
  raising_ = false;
}

void HealthMonitor::on_event(const Event& e) {
  if (raising_) return;  // our own Health events loop back via Recovery? no —
                         // defensive anyway against future mask widening
  if (e.time != kAutoTime && e.time > now_) now_ = e.time;

  const auto it = watches_.find(e.lane);
  if (it != watches_.end()) {
    Watch& w = it->second;
    w.last_progress = std::max(w.last_progress, e.time);
    if (e.subsystem == Subsystem::Script) {
      if (e.name.rfind("enroll.attempt", 0) == 0) {
        if (e.pid != kNoPid) w.enroll_started[e.pid] = e.time;
      } else if (e.name == "enroll.ok") {
        const auto started = w.enroll_started.find(e.pid);
        if (started != w.enroll_started.end()) {
          const auto latency =
              static_cast<double>(e.time - started->second);
          w.enroll_started.erase(started);
          w.enroll.observe(e.time, latency);
          if (w.slo.enroll_latency != 0) {
            const bool violating =
                latency > static_cast<double>(w.slo.enroll_latency);
            record_slo_sample(w, e.time, violating);
            if (violating)
              raise("health.slo.enroll", e.lane,
                    w.name + ": enroll latency " + json::num(latency) +
                        " > slo " + std::to_string(w.slo.enroll_latency),
                    latency);
          }
        }
      } else if (e.name.rfind("enroll.fail", 0) == 0) {
        if (e.pid != kNoPid) w.enroll_started.erase(e.pid);
      } else if (e.name == "performance") {
        const auto number = static_cast<std::uint64_t>(e.value);
        if (e.kind == EventKind::SpanBegin) {
          w.perf_open[number] = e.time;
          w.stuck_latched = false;
        } else if (e.kind == EventKind::SpanEnd) {
          const auto begin = w.perf_open.find(number);
          if (begin != w.perf_open.end()) {
            const auto span = static_cast<double>(e.time - begin->second);
            w.perf_open.erase(begin);
            w.makespan.observe(e.time, span);
            if (w.slo.makespan != 0) {
              const bool violating =
                  span > static_cast<double>(w.slo.makespan);
              record_slo_sample(w, e.time, violating);
              if (violating)
                raise("health.slo.makespan", e.lane,
                      w.name + ": performance #" + std::to_string(number) +
                          " makespan " + json::num(span) + " > slo " +
                          std::to_string(w.slo.makespan),
                      span);
            }
          }
          if (w.perf_open.empty()) w.stuck_latched = false;
        }
      }
    }
  }

  poll(now_);
}

void HealthMonitor::record_slo_sample(Watch& w, std::uint64_t t,
                                      bool violating) {
  if (timeline_ == nullptr || w.slo.error_budget <= 0) return;
  timeline_->bump(violating ? w.bad_series : w.ok_series, t);
}

double HealthMonitor::burn_over(const Watch& w,
                                std::uint64_t window_ticks) const {
  if (timeline_ == nullptr || w.slo.error_budget <= 0) return 0;
  const std::uint64_t from =
      now_ >= window_ticks ? now_ - window_ticks : 0;
  const auto bad =
      static_cast<double>(timeline_->counter_sum(w.bad_series, from, now_));
  const auto ok =
      static_cast<double>(timeline_->counter_sum(w.ok_series, from, now_));
  if (bad + ok == 0) return 0;
  return bad / (bad + ok) / w.slo.error_budget;
}

void HealthMonitor::poll(std::uint64_t now) {
  if (now > now_) now_ = now;
  if (now_ == last_poll_) return;
  last_poll_ = now_;

  for (auto& [lane, w] : watches_) {
    if (w.slo.error_budget > 0 && timeline_ != nullptr) {
      const double fast = burn_over(w, w.slo.fast_window);
      const double slow = burn_over(w, w.slo.slow_window);
      // Both windows must burn hot: the fast one makes the alert
      // prompt, the slow one proves it is sustained. The latch releases
      // on the fast window alone, so recovery is seen quickly.
      if (fast >= w.slo.burn_threshold && slow >= w.slo.burn_threshold) {
        if (!w.burn_latched) {
          w.burn_latched = true;
          raise("health.burn_rate", lane,
                w.name + ": burning error budget at " + json::num(fast) +
                    "x (fast) / " + json::num(slow) +
                    "x (slow) the provisioned rate",
                fast);
        }
      } else if (fast < w.slo.burn_threshold) {
        w.burn_latched = false;
      }
    }
    if (w.slo.stuck_after != 0 && !w.perf_open.empty() && !w.stuck_latched &&
        now_ - w.last_progress >= w.slo.stuck_after) {
      w.stuck_latched = true;
      std::uint64_t oldest = now_;
      for (const auto& [number, begin] : w.perf_open)
        oldest = std::min(oldest, begin);
      raise("health.stuck", lane,
            w.name + ": no progress for " +
                std::to_string(now_ - w.last_progress) +
                " ticks (performance open since " + std::to_string(oldest) +
                ")",
            static_cast<double>(now_ - w.last_progress));
    }
    if (w.slo.queue_depth != 0 && w.queue_depth_fn) {
      const std::size_t depth = w.queue_depth_fn();
      if (depth > w.slo.queue_depth) {
        if (!w.queue_latched) {
          w.queue_latched = true;
          raise("health.queue_depth", lane,
                w.name + ": role queue depth " + std::to_string(depth) +
                    " > slo " + std::to_string(w.slo.queue_depth),
                static_cast<double>(depth));
        }
      } else {
        w.queue_latched = false;
      }
    }
  }

  for (SupWatch& sw : sup_watches_) {
    for (const RestartPressure& rp : sw.provider()) {
      const bool near = rp.max_restarts != 0 &&
                        rp.crashes_in_window + 1 >= rp.max_restarts;
      bool& latched = sw.latched[rp.child];
      if (near && !latched) {
        latched = true;
        raise("health.restart_pressure", kNoLane,
              sw.name + "/" + rp.child + ": " +
                  std::to_string(rp.crashes_in_window) + " crash(es) in " +
                  "window, budget " + std::to_string(rp.max_restarts),
              static_cast<double>(rp.crashes_in_window));
      } else if (!near) {
        latched = false;
      }
    }
  }
}

Histogram HealthMonitor::enroll_latency(std::int32_t lane) const {
  const auto it = watches_.find(lane);
  return it == watches_.end() ? Histogram{} : it->second.enroll.merged();
}

Histogram HealthMonitor::makespan(std::int32_t lane) const {
  const auto it = watches_.find(lane);
  return it == watches_.end() ? Histogram{} : it->second.makespan.merged();
}

std::uint64_t HealthMonitor::violations(const std::string& event_name) const {
  const auto it = by_name_.find(event_name);
  return it == by_name_.end() ? 0 : it->second;
}

bool HealthMonitor::queue_latched(std::int32_t lane) const {
  const auto it = watches_.find(lane);
  return it != watches_.end() && it->second.queue_latched;
}

bool HealthMonitor::stuck_latched(std::int32_t lane) const {
  const auto it = watches_.find(lane);
  return it != watches_.end() && it->second.stuck_latched;
}

double HealthMonitor::burn_rate(std::int32_t lane,
                                std::uint64_t window_ticks) const {
  const auto it = watches_.find(lane);
  return it == watches_.end() ? 0 : burn_over(it->second, window_ticks);
}

bool HealthMonitor::burn_latched(std::int32_t lane) const {
  const auto it = watches_.find(lane);
  return it != watches_.end() && it->second.burn_latched;
}

bool HealthMonitor::restart_pressure() const {
  for (const SupWatch& sw : sup_watches_)
    for (const auto& [child, latched] : sw.latched)
      if (latched) return true;
  return false;
}

std::string HealthMonitor::report() const {
  if (violations_ == 0) return {};
  std::string out = "health: " + std::to_string(violations_) +
                    " condition(s) raised\n";
  for (const auto& [name, count] : by_name_)
    out += "  " + name + ": " + std::to_string(count) + "\n";
  for (const auto& [lane, w] : watches_) {
    const Histogram enroll = w.enroll.merged();
    const Histogram span = w.makespan.merged();
    if (enroll.count() == 0 && span.count() == 0) continue;
    out += "  [" + w.name + "]";
    if (enroll.count() != 0)
      out += " enroll p50/p99 " + json::num(enroll.quantile(0.5)) + "/" +
             json::num(enroll.quantile(0.99));
    if (span.count() != 0)
      out += " makespan p50/p99 " + json::num(span.quantile(0.5)) + "/" +
             json::num(span.quantile(0.99));
    if (w.slo.error_budget > 0 && timeline_ != nullptr) {
      out += " burn fast/slow " + json::num(burn_over(w, w.slo.fast_window)) +
             "x/" + json::num(burn_over(w, w.slo.slow_window)) + "x";
      if (w.burn_latched) out += " [ALERT]";
    }
    out += "\n";
  }
  // Report sections are newline-joined by the scheduler; no trailer.
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

}  // namespace script::obs
