// Causality layer: vector clocks, happens-before recovery, and the
// per-performance profiler.
//
// The paper's central object is a *performance* whose cost is set by the
// communication pattern among its roles. A flat event stream cannot
// answer "which role's waiting made this performance slow?"; for that we
// need the happens-before DAG. Two pieces live here:
//
//   * CausalTracker — owned by the Scheduler. Keeps one vector clock per
//     fiber, ticked on dispatch and merged along every cross-fiber wake
//     (CSP rendezvous, Ada entry hand-off, monitor admission, wait-queue
//     notify, enrollment release, DistributedCast delivery — they all
//     funnel through Scheduler::unblock/wake_at plus two explicit
//     data-flow sites). It stamps every published Event with the
//     publishing fiber's (seq, vclock) and publishes paired flow.s /
//     flow.f events that render as Perfetto flow arrows AND double as
//     the explicit edges of the happens-before DAG.
//
//   * CausalAnalyzer — pure function of an event vector (live from a
//     TraceExporter or re-read from a trace file). Extracts per-
//     performance critical paths (virtual-time weighted), attributes
//     wait time to roles and block reasons, and self-checks the trace's
//     causal consistency.
//
// The critical-path walk leans on a scheduler invariant: virtual time
// advances only when every live fiber is parked (blocked or sleeping),
// so a fiber's parked spans tile all virtual time that elapses while it
// is alive. Walking backward from the performance's end — jumping to the
// waking fiber wherever a blocked span ends with an incoming flow edge —
// therefore yields a path whose segment lengths sum EXACTLY to the
// performance's makespan.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/event_bus.hpp"

namespace script::obs {

class MetricsRegistry;

/// One vector clock per fiber; installed on a Scheduler (which forwards
/// dispatches and wake edges) and on its EventBus (as the stamper).
class CausalTracker {
 public:
  explicit CausalTracker(EventBus& bus);

  /// Fiber `pid` is switched in: tick its own component.
  void on_dispatch(Pid pid);
  /// Control returned to the scheduler loop: no fiber is current.
  void on_scheduler_loop() { current_ = kNoPid; }

  /// Cross-fiber happens-before edge: merge `from`'s clock into `to`'s
  /// and (when anyone listens to Subsystem::Causal) publish a flow.s /
  /// flow.f pair carrying a shared id, so exporters draw sender→receiver
  /// arrows and the analyzer recovers the edge. `what` labels the edge
  /// kind ("wake", "msg", "entry", ...).
  void on_edge(Pid from, Pid to, const char* what = "wake");

  /// EventBus stamper: seq/vclock of the currently-running fiber (events
  /// published from the scheduler loop itself stay unstamped).
  void stamp(Event& e) const;

  const std::vector<std::uint64_t>& clock_of(Pid pid) const;
  Pid current() const { return current_; }

 private:
  std::vector<std::uint64_t>& clock(Pid pid);

  EventBus* bus_;
  Pid current_ = kNoPid;
  std::vector<std::vector<std::uint64_t>> clocks_;
  std::uint64_t next_flow_id_ = 1;
};

/// One hop of a critical path, in virtual time. `what` is "latency"
/// (a sleeping span: communication latency or modelled work), "wait"
/// (a blocked span nobody's action ended — a timeout wake), or "run"
/// (residue before the fiber's first recorded park).
struct PathSegment {
  Pid pid = kNoPid;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::string what;
  std::string detail;  // block reason / span annotation, when known

  std::uint64_t ticks() const { return end - begin; }
};

/// Profile of one performance recovered from the trace.
struct PerformanceProfile {
  std::string instance;       // lane name, e.g. "lockdb"
  std::int32_t lane = kNoLane;
  std::uint64_t number = 0;   // performance number within the instance
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  bool aborted = false;

  /// Chronological; segment ticks sum to exactly end - begin.
  std::vector<PathSegment> critical_path;
  std::uint64_t critical_path_ticks = 0;

  /// role string -> blocked ticks inside that role's span.
  std::map<std::string, std::uint64_t> wait_by_role;
  /// role string -> block reason -> ticks (channel/entry attribution).
  std::map<std::string, std::map<std::string, std::uint64_t>> wait_reasons;

  std::uint64_t makespan() const { return end - begin; }
};

/// Happens-before analysis over a captured event stream.
class CausalAnalyzer {
 public:
  /// `events` must be in publish order (TraceExporter::events() or
  /// trace_read). `fiber_names` is optional prettiness.
  explicit CausalAnalyzer(std::vector<Event> events,
                          std::map<Pid, std::string> fiber_names = {},
                          std::vector<std::string> lane_names = {});

  const std::vector<PerformanceProfile>& performances() const {
    return perfs_;
  }

  /// Total blocked virtual time recovered for `pid` — must equal the
  /// scheduler's own Scheduler::blocked_ticks(pid) accounting.
  std::uint64_t blocked_ticks(Pid pid) const;
  std::map<Pid, std::uint64_t> blocked_by_fiber() const;

  /// Total sleeping virtual time recovered for `pid` — the other half of
  /// the wait ledger; must equal Scheduler::slept_ticks(pid), including
  /// on kill paths (a fiber killed mid-sleep accrues the elapsed part).
  std::uint64_t slept_ticks(Pid pid) const;

  /// Strict happens-before between two stamped events (empty-stamp
  /// events are never ordered).
  static bool happens_before(const Event& a, const Event& b) {
    return !a.vclock.empty() && !b.vclock.empty() &&
           vclock_less(a.vclock, b.vclock);
  }

  /// Human report: per-performance summary, critical path, and wait
  /// attribution. What trace-analyze prints.
  std::string report() const;

  /// Consistency audit; empty string when the trace is causally sound.
  /// Checks flow-pair integrity, per-fiber stamp monotonicity,
  /// vclock-order-implies-publish-order, span balance, and critical
  /// path == makespan per performance.
  std::string self_check() const;

  /// Causal diff of two runs (e.g. fault-free vs injected-crash replay):
  /// performance-by-performance makespan and wait shifts, plus
  /// performances present on only one side.
  static std::string diff(const CausalAnalyzer& before,
                          const CausalAnalyzer& after);

  /// Surface the headline numbers as gauges:
  ///   perf.critical_path_ticks            (summed over performances)
  ///   perf.wait_ticks_by_role.<role>      (summed over performances)
  /// plus, when `per_performance`, perf.<n>.critical_path_ticks for each
  /// performance (skip for runs with hundreds of them).
  void export_gauges(MetricsRegistry& reg,
                     const std::string& prefix = "perf",
                     bool per_performance = true) const;

  const std::vector<Event>& events() const { return events_; }
  std::string fiber_name(Pid pid) const;

 private:
  struct Park {  // one blocked or sleeping interval of a fiber
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    bool blocked = false;  // else sleeping
    bool open = false;     // never closed (deadlock / crash residue)
    std::string detail;    // block reason from the SpanBegin
  };

  void index_events();
  void build_performances();
  void walk_critical_path(PerformanceProfile& p);
  const Park* park_ending_at(Pid pid, std::uint64_t t) const;
  bool edge_into(Pid pid, std::uint64_t t, Pid* from) const;

  std::vector<Event> events_;
  std::map<Pid, std::string> fiber_names_;
  std::vector<std::string> lane_names_;
  std::map<Pid, std::vector<Park>> parks_;
  // flow id -> (source pid, target pid, time)
  struct Flow {
    Pid from = kNoPid;
    Pid to = kNoPid;
    std::uint64_t time = 0;
  };
  std::map<std::uint64_t, Flow> flows_;
  // (target pid) -> times with an incoming edge -> source pid
  std::map<Pid, std::multimap<std::uint64_t, Pid>> edges_in_;
  std::vector<PerformanceProfile> perfs_;
};

}  // namespace script::obs
