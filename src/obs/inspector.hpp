// Inspector — live structured snapshots of the running system.
//
// Components that know how to describe themselves (Scheduler,
// ScriptInstance, Supervisor, LockTable — each has a snapshot_json())
// attach a provider; Inspector::snapshot_json() pulls them all and
// assembles one document:
//
//   {"virtual_time": 42,
//    "sections": {"scheduler": [...], "script": [...],
//                 "supervisor": [...], "locks": [...]}}
//
// Snapshots are safe to take from inside a fiber (providers only read)
// and are plain JSON, so they can be written to disk for `scriptctl
// inspect`, asserted on in tests, or — later — served over a socket by
// a network layer. This is the "what is every role doing right now"
// query the ROADMAP's serving direction needs answered without
// stopping the world.
//
// Lifetime: providers capture the component by reference; detach (or
// destroy the Inspector) before destroying the component.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace script::obs {

namespace json {
struct Value;
}

class Inspector {
 public:
  /// Returns a rendered JSON object describing the component now.
  using Provider = std::function<std::string()>;

  /// Attach a provider under `kind` (e.g. "scheduler", "script").
  /// Sections of the same kind group into one array, in attach order.
  /// Returns an id for detach().
  std::size_t attach(std::string kind, Provider provider);
  void detach(std::size_t id);
  std::size_t section_count() const { return sections_.size(); }

  /// Virtual-time source stamped into each snapshot (the Scheduler
  /// wires its clock when it attaches).
  void set_clock(std::function<std::uint64_t()> clock) {
    clock_ = std::move(clock);
  }

  std::string snapshot_json() const;
  bool write_snapshot(const std::string& path) const;

 private:
  struct Section {
    std::size_t id;
    std::string kind;
    Provider provider;
  };
  std::vector<Section> sections_;
  std::size_t next_id_ = 1;
  std::function<std::uint64_t()> clock_;
};

/// Human-readable report from a parsed Inspector snapshot — the
/// rendering behind `scriptctl inspect`, factored out so tests can pin
/// it without exec'ing the binary.
std::string render_inspect_report(const json::Value& snapshot);

/// Summary of a flight-recorder dump (parsed with trace_read):
/// per-subsystem record counts, drop accounting, time range, and the
/// last `tail` events. Behind `scriptctl flight`.
struct TraceFile;
std::string render_flight_report(const TraceFile& dump, std::size_t tail);

}  // namespace script::obs
