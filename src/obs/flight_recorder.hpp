// FlightRecorder — always-on black-box recording of the event stream.
//
// A fixed-size binary ring subscriber to the EventBus: every event is
// encoded into a ~40-byte POD record (strings deduplicated through an
// intern table), one ring per subsystem with individual capacity
// budgets so a chatty subsystem cannot evict another's history. The
// steady-state hot path is two hash lookups and a slot write — no
// allocation — which is what makes it cheap enough to leave armed in
// CI and production runs where full tracing was never enabled.
//
// When something dies, the recorder turns its rings into a post-mortem
// artifact: a Chrome trace-event JSON dump (the same renderer as
// TraceExporter, so Perfetto opens it and trace_read parses it back).
// Dumps fire automatically on the runtime's failure escalations —
// `performance.abort`, `supervisor.give_up`, and deadlock detection
// (the Scheduler calls trigger_dump() directly when run() ends in
// deadlock) — or on demand via dump().
//
// Ring-wrap is not silent: overwritten records are tallied per
// subsystem and surface as the `flightrecorder.dropped_events` counter
// in metrics exports and in dump metadata.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/event_bus.hpp"

namespace script::obs {

class MetricsRegistry;

struct FlightRecorderOptions {
  /// Subsystems to record. Defaults to everything except the
  /// Scheduler's per-dispatch lifecycle ring: those spans fire on every
  /// context switch and producing them costs ~7% on fiber-churn
  /// workloads, versus <3% for the rest combined — which is the budget
  /// an always-on black box must live inside (CI gates it). Set
  /// `mask = EventBus::kAllSubsystems` to ring dispatch history too.
  EventBus::Mask mask =
      EventBus::kAllSubsystems & ~EventBus::mask_of(Subsystem::Scheduler);
  /// Ring capacity (records) for subsystems without an explicit budget.
  std::size_t default_capacity = 1024;
  /// Per-subsystem capacity overrides (0 disables that subsystem).
  std::map<Subsystem, std::size_t> budgets;
  /// Base path for automatic post-mortem dumps; the n-th dump lands at
  /// "<base>[.n].flight.json". Empty disables auto-dumping (triggers
  /// are still counted).
  std::string dump_path;
  /// Cap on automatic dumps, so a crash loop cannot fill the disk.
  std::size_t max_auto_dumps = 4;
  /// Distinct strings the intern table accepts before new names fold
  /// into a single "<interned-overflow>" entry.
  std::size_t intern_capacity = 8192;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(EventBus& bus, FlightRecorderOptions opts = {});
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Resolve fiber ids to names at dump time (Scheduler::name_of
  /// wrapped by the owner). Unset fibers render as "fiber <id>".
  void set_fiber_namer(std::function<std::string(Pid)> namer) {
    fiber_namer_ = std::move(namer);
  }

  const FlightRecorderOptions& options() const { return opts_; }

  std::uint64_t recorded_events() const { return recorded_; }
  /// Records lost to ring-wrap (total / per subsystem).
  std::uint64_t dropped_events() const;
  std::uint64_t dropped_events(Subsystem s) const;
  std::size_t capacity(Subsystem s) const;
  /// Distinct strings that could not be interned (table full).
  std::uint64_t intern_overflow() const { return intern_overflow_; }

  /// Decode the rings back into events, merged across subsystems in
  /// original publish order (causal stamps are not recorded).
  std::vector<Event> events() const;

  /// Render / write the post-mortem artifact. Deterministic: the same
  /// recorded schedule produces byte-identical output.
  std::string dump_json() const;
  bool dump(const std::string& path) const;

  /// Automatic-dump entry point: writes the next numbered dump file
  /// (subject to max_auto_dumps) with `why` in the metadata. The
  /// runtime calls this on failure escalations; tests may too.
  void trigger_dump(const std::string& why);

  std::uint64_t triggers_seen() const { return triggers_; }
  std::size_t auto_dumps_written() const { return auto_dumps_; }
  const std::string& last_dump_path() const { return last_dump_path_; }
  const std::string& last_trigger() const { return last_trigger_; }

  /// Sync flightrecorder.* counters (recorded/dropped/intern-overflow)
  /// into `reg`. Idempotent, monotone.
  void export_metrics(MetricsRegistry& reg) const;

 private:
  // One encoded event. Strings live in the intern table; the record
  // itself is POD so ring writes never allocate.
  struct Record {
    std::uint64_t seq;    // global publish order across all rings
    std::uint64_t time;   // virtual ticks
    double value;
    Pid pid;
    std::int32_t lane;
    std::uint16_t name_id;
    std::uint16_t detail_id;
    EventKind kind;
    Subsystem subsystem;
  };

  struct Ring {
    std::vector<Record> slots;  // sized once at arm time
    std::size_t next = 0;       // slot for the next write
    std::uint64_t written = 0;  // lifetime writes (>= slots → wrapped)
  };

  void on_event(const Event& e);
  std::uint16_t intern(const std::string& s);
  const std::string& resolve(std::uint16_t id) const;
  std::string auto_dump_path(std::size_t n) const;

  EventBus* bus_;
  EventBus::SubId sub_;
  FlightRecorderOptions opts_;
  std::function<std::string(Pid)> fiber_namer_;
  std::array<Ring, static_cast<std::size_t>(Subsystem::kCount)> rings_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint16_t> ids_;
  std::uint64_t seq_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t intern_overflow_ = 0;
  std::uint64_t triggers_ = 0;
  std::size_t auto_dumps_ = 0;
  std::string last_dump_path_;
  std::string last_trigger_;
};

}  // namespace script::obs
