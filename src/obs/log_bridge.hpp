// Bridges typed Script-subsystem events back into the human-readable
// support::TraceLog, reproducing the exact Figure-1 phrasing the golden
// tests assert on ("D attempts to enroll as p", "performance 1 begins").
//
// The script core used to build these strings at every milestone; now it
// publishes typed events once and this subscriber does the wording, so
// exporters/metrics and the prose log can never drift apart.
#pragma once

#include <functional>
#include <string>

#include "obs/event_bus.hpp"
#include "support/log.hpp"

namespace script::obs {

/// Install the bridge; returns the subscription id. `fiber_name`
/// resolves event pids to process names (Scheduler::name_of).
EventBus::SubId install_script_log_bridge(
    EventBus& bus, support::TraceLog& log,
    std::function<std::string(Pid)> fiber_name);

}  // namespace script::obs
