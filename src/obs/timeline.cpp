#include "obs/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/json.hpp"

namespace script::obs {

namespace {

const char* kOverflowSeries = "<series-overflow>";

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::SpanBegin: return "B";
    case EventKind::SpanEnd: return "E";
    case EventKind::Instant: return "I";
    case EventKind::Counter: return "C";
  }
  return "?";
}

}  // namespace

Timeline::Timeline(EventBus& bus, TimelineOptions opts)
    : bus_(&bus), opts_(std::move(opts)) {
  sub_ = bus_->subscribe(opts_.mask, [this](const Event& e) { on_event(e); });
}

Timeline::~Timeline() { bus_->unsubscribe(sub_); }

std::uint64_t Timeline::stamp(const Event& e) const {
  if (e.time != kAutoTime) return e.time;
  return clock_ ? clock_() : 0;
}

void Timeline::note_lane(std::int32_t lane) {
  if (lane == kNoLane) return;
  auto it = std::lower_bound(lanes_seen_.begin(), lanes_seen_.end(), lane);
  if (it == lanes_seen_.end() || *it != lane) lanes_seen_.insert(it, lane);
}

void Timeline::declare_lane(std::int32_t lane) { note_lane(lane); }

template <typename Map, typename Series>
Series& Timeline::series_in(Map& map, const std::string& key) {
  auto it = map.find(key);
  if (it != map.end()) return it->second;
  if (series_count() >= opts_.max_series) {
    ++dropped_;
    Series& s = map[kOverflowSeries];
    if (s.slots.empty()) s.slots.resize(opts_.retention);
    return s;
  }
  Series& s = map[key];
  s.slots.resize(opts_.retention);
  return s;
}

Timeline::CounterSeries& Timeline::counter_series(const std::string& key) {
  return series_in<std::map<std::string, CounterSeries>, CounterSeries>(
      counters_, key);
}

void Timeline::bump(const std::string& series, std::uint64_t now,
                    std::uint64_t delta) {
  CounterSeries& s = counter_series(series);
  s.total += delta;
  if (s.slots.empty()) return;
  const std::uint64_t epoch = epoch_of(now);
  CounterSlot& slot = s.slots[epoch % s.slots.size()];
  if (slot.epoch != epoch) {
    if (slot.epoch != kNoEpoch) ++evicted_epochs_;
    slot.epoch = epoch;
    slot.count = 0;
  }
  slot.count += delta;
}

void Timeline::record_gauge(const std::string& series, std::uint64_t now,
                            double v) {
  GaugeSeries& s = series_in<std::map<std::string, GaugeSeries>, GaugeSeries>(
      gauges_, series);
  if (s.slots.empty()) return;
  const std::uint64_t epoch = epoch_of(now);
  GaugeSlot& slot = s.slots[epoch % s.slots.size()];
  if (slot.epoch != epoch) {
    if (slot.epoch != kNoEpoch) ++evicted_epochs_;
    slot.epoch = epoch;
  }
  slot.last = v;
}

void Timeline::observe_value(const std::string& series, std::uint64_t now,
                             double v) {
  ValueSeries& s = series_in<std::map<std::string, ValueSeries>, ValueSeries>(
      values_, series);
  s.total += 1;
  if (s.slots.empty()) return;
  const std::uint64_t epoch = epoch_of(now);
  ValueSlot& slot = s.slots[epoch % s.slots.size()];
  if (slot.epoch != epoch) {
    if (slot.epoch != kNoEpoch) ++evicted_epochs_;
    slot.epoch = epoch;
    slot.hist = Histogram{};
  }
  slot.hist.observe(v);
}

void Timeline::on_event(const Event& e) {
  ++recorded_;
  const std::uint64_t t = stamp(e);
  note_lane(e.lane);

  // Per-subsystem rate, always.
  bump(std::string("events.") + subsystem_name(e.subsystem), t);

  // Named counter, spans counted once at begin (attach_event_counters'
  // convention — a SpanEnd is the same logical occurrence).
  if (e.kind != EventKind::SpanEnd) {
    std::string key = std::string(subsystem_name(e.subsystem)) + "." + e.name;
    if (e.kind == EventKind::Counter) {
      record_gauge(key, t, e.value);
      if (e.lane != kNoLane)
        record_gauge(key + "@" + std::to_string(e.lane), t, e.value);
    } else {
      bump(key, t);
      if (e.lane != kNoLane)
        bump(key + "@" + std::to_string(e.lane), t);
    }
  }

  // Derived latency series, same event grammar the HealthMonitor reads.
  if (e.subsystem == Subsystem::Script && e.lane != kNoLane) {
    if (e.kind == EventKind::Instant && e.name == "enroll.attempt" &&
        e.pid != kNoPid) {
      enroll_started_[{e.lane, e.pid}] = t;
    } else if (e.kind == EventKind::Instant && e.name == "enroll.ok" &&
               e.pid != kNoPid) {
      auto it = enroll_started_.find({e.lane, e.pid});
      if (it != enroll_started_.end()) {
        observe_value("enroll_latency@" + std::to_string(e.lane), t,
                      static_cast<double>(t - it->second));
        enroll_started_.erase(it);
      }
    } else if (e.name == "performance") {
      const auto key = std::make_pair(
          e.lane, static_cast<std::uint64_t>(e.value));
      if (e.kind == EventKind::SpanBegin) {
        perf_open_[key] = t;
      } else if (e.kind == EventKind::SpanEnd) {
        auto it = perf_open_.find(key);
        if (it != perf_open_.end()) {
          observe_value("makespan@" + std::to_string(e.lane), t,
                        static_cast<double>(t - it->second));
          perf_open_.erase(it);
        }
      }
    }
  }

  if (opts_.recent_events > 0) {
    recent_.push_back({recorded_, e});
    // The ring never needs the causal stamp; drop it to keep the
    // per-event footprint flat.
    recent_.back().event.vclock.clear();
    recent_.back().event.time = t;
    while (recent_.size() > opts_.recent_events) {
      recent_.pop_front();
      ++recent_evicted_;
    }
  }

  // Failure escalations the bus announces; deadlock arrives via a
  // direct trigger_dump() call from Scheduler::run().
  if (e.kind == EventKind::Instant &&
      ((e.subsystem == Subsystem::Script && e.name == "performance.abort") ||
       (e.subsystem == Subsystem::Recovery && e.name == "supervisor.give_up")))
    trigger_dump(e.name);
}

std::uint64_t Timeline::counter_total(const std::string& series) const {
  const auto it = counters_.find(series);
  return it == counters_.end() ? 0 : it->second.total;
}

std::uint64_t Timeline::counter_sum(const std::string& series,
                                    std::uint64_t from,
                                    std::uint64_t to) const {
  const auto it = counters_.find(series);
  if (it == counters_.end() || it->second.slots.empty()) return 0;
  const std::uint64_t lo = epoch_of(from);
  const std::uint64_t hi = epoch_of(to);
  std::uint64_t sum = 0;
  for (const CounterSlot& slot : it->second.slots)
    if (slot.epoch != kNoEpoch && slot.epoch >= lo && slot.epoch <= hi)
      sum += slot.count;
  return sum;
}

std::vector<Timeline::RecentEvent> Timeline::recent(std::size_t n) const {
  const std::size_t take = std::min(n, recent_.size());
  return std::vector<RecentEvent>(recent_.end() - take, recent_.end());
}

std::string Timeline::recent_json(std::size_t n) const {
  json::Writer w;
  w.object().key("events").array();
  for (const RecentEvent& r : recent(n)) {
    const Event& e = r.event;
    w.object();
    w.key("seq").value(r.seq);
    w.key("t").value(e.time);
    w.key("kind").value(kind_name(e.kind));
    w.key("subsystem").value(subsystem_name(e.subsystem));
    w.key("name").value(e.name);
    if (!e.detail.empty()) w.key("detail").value(e.detail);
    if (e.pid != kNoPid) w.key("pid").value(std::uint64_t{e.pid});
    if (e.lane != kNoLane) {
      w.key("lane").value(std::int64_t{e.lane});
      if (lane_namer_) w.key("lane_name").value(lane_namer_(e.lane));
    }
    if (e.kind == EventKind::Counter || e.value != 0)
      w.key("value").value(e.value);
    w.end();
  }
  w.end().end();
  return w.str();
}

std::string Timeline::dump_json(const std::string& trigger) const {
  json::Writer w;
  w.object();
  w.key("schema_version").value(1);
  w.key("virtual_time").value(clock_ ? clock_() : 0);
  w.key("epoch_ticks").value(opts_.epoch_ticks);
  w.key("retention").value(std::uint64_t{opts_.retention});
  if (!trigger.empty()) w.key("trigger").value(trigger);
  w.key("recorded_events").value(recorded_);
  w.key("evicted_epochs").value(evicted_epochs_);
  w.key("dropped_series_observations").value(dropped_);
  w.key("recent_evicted").value(recent_evicted_);

  w.key("lanes").object();
  for (const std::int32_t lane : lanes_seen_) {
    w.key(std::to_string(lane));
    w.value(lane_namer_ ? lane_namer_(lane) : std::string());
  }
  w.end();

  // Each series dumps its retained epochs sorted by epoch number; the
  // ring's physical layout never shows through, so two replays of the
  // same schedule produce identical bytes regardless of wrap phase.
  const auto sorted_slots = [](const auto& slots) {
    std::vector<const typename std::decay_t<decltype(slots)>::value_type*> v;
    for (const auto& s : slots)
      if (s.epoch != kNoEpoch) v.push_back(&s);
    std::sort(v.begin(), v.end(),
              [](const auto* a, const auto* b) { return a->epoch < b->epoch; });
    return v;
  };

  w.key("counters").object();
  for (const auto& [name, series] : counters_) {
    w.key(name).object();
    w.key("total").value(series.total);
    w.key("epochs").array();
    for (const CounterSlot* s : sorted_slots(series.slots))
      w.array().value(s->epoch).value(s->count).end();
    w.end().end();
  }
  w.end();

  w.key("gauges").object();
  for (const auto& [name, series] : gauges_) {
    w.key(name).object();
    w.key("epochs").array();
    for (const GaugeSlot* s : sorted_slots(series.slots))
      w.array().value(s->epoch).value(s->last).end();
    w.end().end();
  }
  w.end();

  w.key("values").object();
  for (const auto& [name, series] : values_) {
    w.key(name).object();
    w.key("total").value(series.total);
    w.key("epochs").array();
    for (const ValueSlot* s : sorted_slots(series.slots)) {
      w.object();
      w.key("epoch").value(s->epoch);
      w.key("count").value(s->hist.count());
      w.key("p50").value(s->hist.quantile(0.50));
      w.key("p90").value(s->hist.quantile(0.90));
      w.key("p99").value(s->hist.quantile(0.99));
      w.key("max").value(s->hist.max());
      w.end();
    }
    w.end().end();
  }
  w.end();

  w.key("recent").raw(recent_json(opts_.recent_events));
  w.end();
  return w.str();
}

bool Timeline::write(const std::string& path,
                     const std::string& trigger) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = dump_json(trigger);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

void Timeline::trigger_dump(const std::string& why) {
  ++triggers_;
  if (opts_.dump_path.empty() || auto_dumps_ >= opts_.max_auto_dumps) return;
  std::string path = opts_.dump_path;
  if (auto_dumps_ != 0) path += "." + std::to_string(auto_dumps_);
  path += ".timeline.json";
  if (write(path, why)) {
    ++auto_dumps_;
    last_dump_path_ = path;
  }
}

void Timeline::export_metrics(MetricsRegistry& reg) const {
  const auto sync = [&reg](const char* name, std::uint64_t v) {
    Counter& c = reg.counter(name);
    if (v > c.value()) c.inc(v - c.value());
  };
  sync("timeline.recorded_events", recorded_);
  sync("timeline.evicted_epochs", evicted_epochs_);
  sync("timeline.dropped_series_observations", dropped_);
  sync("timeline.recent_evicted", recent_evicted_);
  sync("timeline.dump_triggers", triggers_);
  reg.gauge("timeline.series", static_cast<double>(series_count()));
}

// ---------------------------------------------------------------------
// Renderers (scriptctl)

namespace {

std::string fixed1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

/// Ordered (epoch, value) pairs of a counter/gauge series' "epochs"
/// array in a parsed dump.
std::vector<std::pair<std::uint64_t, double>> epoch_pairs(
    const json::Value& series) {
  std::vector<std::pair<std::uint64_t, double>> out;
  const json::Value* epochs = series.get("epochs");
  if (epochs == nullptr || !epochs->is_array()) return out;
  for (const json::Value& e : epochs->array) {
    if (!e.is_array() || e.array.size() < 2) continue;
    out.emplace_back(static_cast<std::uint64_t>(e.array[0].number),
                     e.array[1].number);
  }
  return out;
}

/// Sum of a counter series over epochs in (cur_epoch - window,
/// cur_epoch]. Missing series count 0.
double window_sum(const json::Value* counters, const std::string& name,
                  std::uint64_t cur_epoch, std::uint64_t window) {
  if (counters == nullptr) return 0;
  const json::Value* series = counters->get(name);
  if (series == nullptr) return 0;
  const std::uint64_t lo =
      cur_epoch >= window ? cur_epoch - window + 1 : 0;
  double sum = 0;
  for (const auto& [epoch, v] : epoch_pairs(*series))
    if (epoch >= lo && epoch <= cur_epoch) sum += v;
  return sum;
}

/// A 16-cell unicode sparkline of the series' most recent epochs,
/// right-aligned at `cur_epoch`; gaps render as the space cell.
std::string sparkline(const json::Value* series, std::uint64_t cur_epoch) {
  static const char* kCells[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  constexpr std::uint64_t kWidth = 16;
  std::map<std::uint64_t, double> by_epoch;
  double peak = 0;
  if (series != nullptr)
    for (const auto& [epoch, v] : epoch_pairs(*series)) {
      by_epoch[epoch] = v;
      peak = std::max(peak, v);
    }
  const std::uint64_t lo = cur_epoch >= kWidth - 1 ? cur_epoch - kWidth + 1 : 0;
  std::string out;
  for (std::uint64_t e = lo; e <= cur_epoch; ++e) {
    const auto it = by_epoch.find(e);
    if (it == by_epoch.end() || it->second <= 0 || peak <= 0) {
      out += kCells[0];
    } else {
      const int level = 1 + static_cast<int>(it->second / peak * 7.0);
      out += kCells[std::min(level, 8)];
    }
  }
  return out;
}

struct LaneInfo {
  std::string id;
  std::string name;
};

std::vector<LaneInfo> dump_lanes(const json::Value& dump) {
  std::vector<LaneInfo> lanes;
  const json::Value* obj = dump.get("lanes");
  if (obj == nullptr || !obj->is_object()) return lanes;
  for (const auto& [id, name] : obj->object)
    lanes.push_back({id, name.string});
  return lanes;
}

}  // namespace

std::string render_timeline_report(const json::Value& dump,
                                   const std::string& series_prefix,
                                   std::size_t last_epochs) {
  std::ostringstream out;
  out << "timeline @ t=" << static_cast<std::uint64_t>(
             dump.num_or("virtual_time", 0))
      << "  epoch=" << static_cast<std::uint64_t>(dump.num_or("epoch_ticks", 0))
      << " ticks  retention="
      << static_cast<std::uint64_t>(dump.num_or("retention", 0)) << " epochs";
  const std::string trigger = dump.str_or("trigger", "");
  if (!trigger.empty()) out << "  trigger=" << trigger;
  out << "\n";
  out << "recorded=" << static_cast<std::uint64_t>(
             dump.num_or("recorded_events", 0))
      << "  evicted_epochs=" << static_cast<std::uint64_t>(
             dump.num_or("evicted_epochs", 0))
      << "  dropped_series_observations=" << static_cast<std::uint64_t>(
             dump.num_or("dropped_series_observations", 0))
      << "\n";

  const auto lanes = dump_lanes(dump);
  if (!lanes.empty()) {
    out << "lanes:";
    for (const LaneInfo& l : lanes) out << " " << l.id << "=" << l.name;
    out << "\n";
  }

  const auto matches = [&series_prefix](const std::string& name) {
    return series_prefix.empty() ||
           name.compare(0, series_prefix.size(), series_prefix) == 0;
  };
  const auto tail = [last_epochs](auto pairs) {
    if (pairs.size() > last_epochs)
      pairs.erase(pairs.begin(), pairs.end() - last_epochs);
    return pairs;
  };

  const json::Value* counters = dump.get("counters");
  if (counters != nullptr && counters->is_object()) {
    out << "\ncounters (per-epoch deltas, last " << last_epochs
        << " epochs):\n";
    for (const auto& [name, series] : counters->object) {
      if (!matches(name)) continue;
      out << "  " << name << "  total="
          << static_cast<std::uint64_t>(series.num_or("total", 0)) << "  [";
      bool first = true;
      for (const auto& [epoch, v] : tail(epoch_pairs(series))) {
        if (!first) out << " ";
        first = false;
        out << epoch << ":" << static_cast<std::uint64_t>(v);
      }
      out << "]\n";
    }
  }

  const json::Value* gauges = dump.get("gauges");
  if (gauges != nullptr && gauges->is_object() && !gauges->object.empty()) {
    out << "\ngauges (last value per epoch):\n";
    for (const auto& [name, series] : gauges->object) {
      if (!matches(name)) continue;
      out << "  " << name << "  [";
      bool first = true;
      for (const auto& [epoch, v] : tail(epoch_pairs(series))) {
        if (!first) out << " ";
        first = false;
        out << epoch << ":" << json::num(v);
      }
      out << "]\n";
    }
  }

  const json::Value* values = dump.get("values");
  if (values != nullptr && values->is_object() && !values->object.empty()) {
    out << "\nvalues (per-epoch quantiles):\n";
    for (const auto& [name, series] : values->object) {
      if (!matches(name)) continue;
      out << "  " << name << "  total="
          << static_cast<std::uint64_t>(series.num_or("total", 0)) << "\n";
      const json::Value* epochs = series.get("epochs");
      if (epochs == nullptr || !epochs->is_array()) continue;
      const std::size_t skip = epochs->array.size() > last_epochs
                                   ? epochs->array.size() - last_epochs
                                   : 0;
      for (std::size_t i = skip; i < epochs->array.size(); ++i) {
        const json::Value& e = epochs->array[i];
        out << "    epoch " << static_cast<std::uint64_t>(e.num_or("epoch", 0))
            << "  n=" << static_cast<std::uint64_t>(e.num_or("count", 0))
            << "  p50=" << json::num(e.num_or("p50", 0))
            << "  p90=" << json::num(e.num_or("p90", 0))
            << "  p99=" << json::num(e.num_or("p99", 0))
            << "  max=" << json::num(e.num_or("max", 0)) << "\n";
      }
    }
  }
  return out.str();
}

std::string render_top_report(const json::Value& dump,
                              const json::Value* inspect) {
  std::ostringstream out;
  const std::uint64_t now =
      static_cast<std::uint64_t>(dump.num_or("virtual_time", 0));
  const std::uint64_t epoch_ticks =
      static_cast<std::uint64_t>(dump.num_or("epoch_ticks", 1));
  const std::uint64_t cur_epoch =
      epoch_ticks == 0 ? 0 : now / epoch_ticks;
  const json::Value* counters = dump.get("counters");

  out << "script top — t=" << now << " (epoch " << cur_epoch << ")";
  if (inspect != nullptr) {
    const json::Value* sections = inspect->get("sections");
    const json::Value* sched =
        sections != nullptr ? sections->get("scheduler") : nullptr;
    // Inspector sections are arrays (several providers can share a
    // name); the scheduler registers exactly one snapshot object.
    if (sched != nullptr && sched->is_array() && !sched->array.empty())
      sched = &sched->array.front();
    if (sched != nullptr && sched->is_object()) {
      out << "  fibers live=" << static_cast<std::uint64_t>(
                 sched->num_or("live", 0))
          << " ready=" << static_cast<std::uint64_t>(
                 sched->num_or("ready", 0))
          << " timers=" << static_cast<std::uint64_t>(
                 sched->num_or("timers", 0));
    }
  }
  out << "\n";
  out << "events="
      << static_cast<std::uint64_t>(dump.num_or("recorded_events", 0))
      << "  evicted_epochs="
      << static_cast<std::uint64_t>(dump.num_or("evicted_epochs", 0)) << "\n";

  // Per-subsystem event rates, busiest first.
  std::vector<std::pair<double, std::string>> rates;
  if (counters != nullptr && counters->is_object())
    for (const auto& [name, series] : counters->object)
      if (name.compare(0, 7, "events.") == 0)
        rates.emplace_back(window_sum(counters, name, cur_epoch, 4),
                           name.substr(7));
  std::stable_sort(rates.begin(), rates.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  out << "\nsubsystem rates (events per epoch, last 4):\n";
  for (const auto& [sum, name] : rates) {
    const json::Value* series =
        counters != nullptr ? counters->get("events." + name) : nullptr;
    out << "  " << name;
    for (std::size_t pad = name.size(); pad < 10; ++pad) out << " ";
    out << " " << sparkline(series, cur_epoch) << "  " << fixed1(sum / 4.0)
        << "/epoch\n";
  }

  // Per-script rows. A lane is a script instance's series identity.
  out << "\nscripts:\n";
  out << "  lane  name              enroll/ep  shed/ep  restart/ep  "
         "perf p99     slo burn  activity\n";
  const json::Value* values = dump.get("values");
  for (const LaneInfo& lane : dump_lanes(dump)) {
    const std::string at = "@" + lane.id;
    const double enroll =
        window_sum(counters, "script.enroll.ok" + at, cur_epoch, 4) / 4.0;
    const double shed =
        (window_sum(counters, "overload.enroll.shed" + at, cur_epoch, 4) +
         window_sum(counters, "overload.mailbox.shed" + at, cur_epoch, 4)) /
        4.0;
    const double restart =
        window_sum(counters, "recovery.supervisor.restart" + at, cur_epoch, 4) /
        4.0;

    // Latest retained makespan quantile.
    double p99 = -1;
    if (values != nullptr) {
      const json::Value* mk = values->get("makespan" + at);
      const json::Value* epochs = mk != nullptr ? mk->get("epochs") : nullptr;
      if (epochs != nullptr && epochs->is_array() && !epochs->array.empty())
        p99 = epochs->array.back().num_or("p99", 0);
    }

    // Burn = violation share over the last 4 epochs vs the last 16 —
    // the same fast/slow shape the HealthMonitor alerts on.
    const double bad4 =
        window_sum(counters, "health.slo_violation" + at, cur_epoch, 4);
    const double ok4 =
        window_sum(counters, "health.slo_ok" + at, cur_epoch, 4);
    const double bad16 =
        window_sum(counters, "health.slo_violation" + at, cur_epoch, 16);
    const double ok16 =
        window_sum(counters, "health.slo_ok" + at, cur_epoch, 16);
    std::string burn = "-";
    if (bad4 + ok4 > 0 || bad16 + ok16 > 0) {
      const double fast = bad4 + ok4 > 0 ? bad4 / (bad4 + ok4) : 0;
      const double slow = bad16 + ok16 > 0 ? bad16 / (bad16 + ok16) : 0;
      burn = fixed1(fast * 100) + "%/" + fixed1(slow * 100) + "%";
    }

    const json::Value* perf_series =
        counters != nullptr ? counters->get("script.performance" + at)
                            : nullptr;

    const std::string p99_cell = p99 < 0 ? "-" : json::num(p99) + "t";
    const std::string name_cell = lane.name.substr(0, 17);
    char row[256];
    std::snprintf(row, sizeof row,
                  "  %-5s %-17s %9.1f %8.1f %11.1f  %-11s %9s  ",
                  lane.id.c_str(), name_cell.c_str(), enroll,
                  shed, restart, p99_cell.c_str(), burn.c_str());
    out << row << sparkline(perf_series, cur_epoch) << "\n";
  }
  return out.str();
}

std::string render_event_lines(const json::Value& events_doc,
                               std::uint64_t after_seq,
                               std::uint64_t* last_seq) {
  std::ostringstream out;
  const json::Value* events = events_doc.get("events");
  if (events == nullptr || !events->is_array()) return out.str();
  for (const json::Value& e : events->array) {
    const std::uint64_t seq = static_cast<std::uint64_t>(e.num_or("seq", 0));
    if (seq <= after_seq) continue;
    if (last_seq != nullptr) *last_seq = std::max(*last_seq, seq);
    out << "t=" << static_cast<std::uint64_t>(e.num_or("t", 0)) << " ["
        << e.str_or("subsystem", "?") << "] " << e.str_or("kind", "?") << " "
        << e.str_or("name", "");
    const std::string detail = e.str_or("detail", "");
    if (!detail.empty()) out << " (" << detail << ")";
    const std::string lane_name = e.str_or("lane_name", "");
    if (!lane_name.empty())
      out << " lane=" << lane_name;
    else if (e.get("lane") != nullptr)
      out << " lane=" << static_cast<std::int64_t>(e.num_or("lane", 0));
    if (e.get("pid") != nullptr)
      out << " pid=" << static_cast<std::uint64_t>(e.num_or("pid", 0));
    if (e.get("value") != nullptr) out << " v=" << json::num(e.num_or("value", 0));
    out << "\n";
  }
  return out.str();
}

}  // namespace script::obs
