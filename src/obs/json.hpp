// Small JSON building/parsing helpers for snapshot plumbing.
//
// The Inspector serializes runtime state to JSON, scriptctl reads it
// back, and tests assert on individual fields — so obs needs both
// directions without an external dependency. Writer is a streaming
// emitter with automatic comma/escape handling; Value is a minimal
// recursive-descent DOM parser sufficient for the documents this
// library itself produces (and for any well-formed JSON without
// \u-escape surrogate pairs, which it keeps as-is).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace script::obs::json {

/// Append `s` to `out` as a quoted, escaped JSON string literal.
void append_escaped(std::string& out, const std::string& s);

/// Render a double the way our snapshots do: integral values without a
/// fraction, others with up to 6 significant digits.
std::string num(double v);

/// Streaming JSON writer. Usage:
///   Writer w;
///   w.object().key("fibers").array(); ... w.end(); w.end();
///   std::string doc = w.str();
/// The writer tracks container nesting and emits separators itself;
/// str() asserts the document is balanced.
class Writer {
 public:
  Writer& object();  // open '{'
  Writer& array();   // open '['
  Writer& end();     // close the innermost container
  Writer& key(const std::string& k);
  Writer& value(const std::string& v);
  Writer& value(const char* v);
  Writer& value(double v);
  Writer& value(std::uint64_t v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  Writer& value(bool v);
  Writer& null();
  /// Splice pre-rendered JSON in value position (e.g. a nested
  /// snapshot fragment another component produced).
  Writer& raw(const std::string& rendered);
  const std::string& str() const;

 private:
  void before_value();
  std::string out_;
  struct Level {
    bool array;
    std::size_t count = 0;
    bool key_pending = false;
  };
  std::vector<Level> stack_;
};

/// Parsed JSON value. Object member order is preserved.
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  /// Object member lookup; nullptr when absent or not an object.
  const Value* get(const std::string& key) const;
  /// Convenience accessors with defaults for absent/mistyped members.
  double num_or(const std::string& key, double fallback) const;
  std::string str_or(const std::string& key, std::string fallback) const;
};

/// Parse a complete JSON document. Returns nullopt on malformed input
/// (and fills *err with a short reason when provided).
std::optional<Value> parse(const std::string& text, std::string* err = nullptr);

}  // namespace script::obs::json
