#include "obs/trace_export.hpp"

#include <cstdio>
#include <map>
#include <set>

namespace script::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Trace-process 1 hosts fiber lanes, 2 hosts bus (instance) lanes.
struct LaneKey {
  int tpid;
  std::uint64_t tid;
  bool operator<(const LaneKey& o) const {
    return tpid != o.tpid ? tpid < o.tpid : tid < o.tid;
  }
};

LaneKey lane_of(const Event& e) {
  if (e.pid != kNoPid) return {1, e.pid};
  if (e.lane != kNoLane) return {2, static_cast<std::uint64_t>(e.lane)};
  return {0, 0};
}

void append_record(std::string& out, const LaneKey& lane, const char* ph,
                   std::uint64_t ts, const std::string& name,
                   const std::string& args_json, bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += "  {\"name\": ";
  append_escaped(out, name);
  out += ", \"ph\": \"";
  out += ph;
  out += "\", \"ts\": " + std::to_string(ts) +
         ", \"pid\": " + std::to_string(lane.tpid) +
         ", \"tid\": " + std::to_string(lane.tid);
  if (!args_json.empty()) out += ", \"args\": " + args_json;
  out += "}";
}

}  // namespace

TraceExporter::TraceExporter(EventBus& bus, EventBus::Mask mask)
    : bus_(&bus) {
  sub_ = bus_->subscribe(mask,
                         [this](const Event& e) { events_.push_back(e); });
}

TraceExporter::~TraceExporter() { bus_->unsubscribe(sub_); }

std::string TraceExporter::json() const {
  std::string out = "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;

  // Metadata: name the trace processes and every lane we will emit on.
  std::set<Pid> fibers;
  for (const Event& e : events_)
    if (e.pid != kNoPid) fibers.insert(e.pid);
  append_record(out, {0, 0}, "M", 0, "process_name",
                "{\"name\": \"global\"}", first);
  append_record(out, {1, 0}, "M", 0, "process_name",
                "{\"name\": \"fibers\"}", first);
  append_record(out, {2, 0}, "M", 0, "process_name",
                "{\"name\": \"script instances\"}", first);
  for (const Pid pid : fibers) {
    const std::string name =
        fiber_namer_ ? fiber_namer_(pid) : "fiber " + std::to_string(pid);
    std::string args = "{\"name\": ";
    append_escaped(args, name);
    args += "}";
    append_record(out, {1, pid}, "M", 0, "thread_name", args, first);
  }
  for (std::size_t lane = 0; lane < bus_->lane_count(); ++lane) {
    std::string args = "{\"name\": ";
    append_escaped(args, bus_->lane_name(static_cast<std::int32_t>(lane)));
    args += "}";
    append_record(out, {2, lane}, "M", 0, "thread_name", args, first);
  }

  // Events. Track span depth and open-span names per lane so the
  // output always balances (see header).
  std::map<LaneKey, std::vector<std::string>> open_spans;
  std::uint64_t last_ts = 0;
  for (const Event& e : events_) {
    const LaneKey lane = lane_of(e);
    last_ts = e.time;  // bus publishes in nondecreasing virtual time
    std::string name = e.name;
    if (!e.detail.empty() && e.kind != EventKind::Counter)
      name += " " + e.detail;
    std::string args;
    switch (e.kind) {
      case EventKind::SpanBegin:
        open_spans[lane].push_back(name);
        append_record(out, lane, "B", e.time, name, args, first);
        break;
      case EventKind::SpanEnd: {
        auto& open = open_spans[lane];
        if (open.empty()) continue;  // began before tracing started
        open.pop_back();
        append_record(out, lane, "E", e.time, name, args, first);
        break;
      }
      case EventKind::Instant:
        append_record(out, lane, "i", e.time, name,
                      "{\"value\": " + std::to_string(e.value) + "}", first);
        break;
      case EventKind::Counter:
        args = "{";
        args += "\"" + (e.detail.empty() ? std::string("value") : e.detail) +
                "\": " + std::to_string(e.value) + "}";
        append_record(out, lane, "C", e.time, e.name, args, first);
        break;
    }
  }

  // Close spans left open (blocked-at-deadlock fibers, live monitors).
  for (auto& [lane, open] : open_spans)
    while (!open.empty()) {
      append_record(out, lane, "E", last_ts, open.back(), "", first);
      open.pop_back();
    }

  out += "\n]}\n";
  return out;
}

bool TraceExporter::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = json();
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace script::obs
