#include "obs/trace_export.hpp"

#include <cstdio>
#include <map>
#include <set>

namespace script::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Trace-process 1 hosts fiber lanes, 2 hosts bus (instance) lanes.
struct LaneKey {
  int tpid;
  std::uint64_t tid;
  bool operator<(const LaneKey& o) const {
    return tpid != o.tpid ? tpid < o.tpid : tid < o.tid;
  }
};

LaneKey lane_of(const Event& e) {
  if (e.pid != kNoPid) return {1, e.pid};
  if (e.lane != kNoLane) return {2, static_cast<std::uint64_t>(e.lane)};
  return {0, 0};
}

void append_record(std::string& out, const LaneKey& lane, const char* ph,
                   std::uint64_t ts, const std::string& name,
                   const std::string& args_json, bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += "  {\"name\": ";
  append_escaped(out, name);
  out += ", \"ph\": \"";
  out += ph;
  out += "\", \"ts\": " + std::to_string(ts) +
         ", \"pid\": " + std::to_string(lane.tpid) +
         ", \"tid\": " + std::to_string(lane.tid);
  if (!args_json.empty()) out += ", \"args\": " + args_json;
  out += "}";
}

}  // namespace

TraceExporter::TraceExporter(EventBus& bus, EventBus::Mask mask)
    : bus_(&bus) {
  sub_ = bus_->subscribe(mask,
                         [this](const Event& e) { events_.push_back(e); });
}

TraceExporter::~TraceExporter() { bus_->unsubscribe(sub_); }

std::map<Pid, std::string> TraceExporter::fiber_names() const {
  std::map<Pid, std::string> names;
  for (const Event& e : events_)
    if (e.pid != kNoPid && names.find(e.pid) == names.end())
      names[e.pid] = fiber_namer_ ? fiber_namer_(e.pid)
                                  : "fiber " + std::to_string(e.pid);
  return names;
}

std::vector<std::string> TraceExporter::lane_names() const {
  std::vector<std::string> names;
  for (std::size_t lane = 0; lane < bus_->lane_count(); ++lane)
    names.push_back(bus_->lane_name(static_cast<std::int32_t>(lane)));
  return names;
}

namespace {
void upsert_metadata(
    std::vector<std::pair<std::string, std::string>>& metadata,
    const std::string& key, std::string rendered) {
  for (auto& [k, v] : metadata)
    if (k == key) {
      v = std::move(rendered);
      return;
    }
  metadata.emplace_back(key, std::move(rendered));
}
}  // namespace

void TraceExporter::set_metadata(const std::string& key, double value) {
  std::string num = std::to_string(value);
  // Trim trailing zeros so integer-valued metadata reads cleanly.
  if (num.find('.') != std::string::npos) {
    while (!num.empty() && num.back() == '0') num.pop_back();
    if (!num.empty() && num.back() == '.') num.pop_back();
  }
  upsert_metadata(metadata_, key, std::move(num));
}

void TraceExporter::set_metadata(const std::string& key,
                                 const std::string& value) {
  std::string rendered;
  append_escaped(rendered, value);
  upsert_metadata(metadata_, key, std::move(rendered));
}

std::string render_chrome_trace(
    const std::vector<Event>& events,
    const std::map<Pid, std::string>& fiber_names,
    const std::vector<std::string>& lane_names,
    const std::vector<std::pair<std::string, std::string>>& metadata) {
  std::string out = "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;

  // Metadata: name the trace processes and every lane we will emit on.
  append_record(out, {0, 0}, "M", 0, "process_name",
                "{\"name\": \"global\"}", first);
  append_record(out, {1, 0}, "M", 0, "process_name",
                "{\"name\": \"fibers\"}", first);
  append_record(out, {2, 0}, "M", 0, "process_name",
                "{\"name\": \"script instances\"}", first);
  for (const auto& [pid, name] : fiber_names) {
    std::string args = "{\"name\": ";
    append_escaped(args, name);
    args += "}";
    append_record(out, {1, pid}, "M", 0, "thread_name", args, first);
  }
  for (std::size_t lane = 0; lane < lane_names.size(); ++lane) {
    std::string args = "{\"name\": ";
    append_escaped(args, lane_names[lane]);
    args += "}";
    append_record(out, {2, lane}, "M", 0, "thread_name", args, first);
  }

  // Events. Track span depth and open-span names per lane so the
  // output always balances (see header).
  std::map<LaneKey, std::vector<std::string>> open_spans;
  std::uint64_t last_ts = 0;

  // Reconstruction args shared by every non-flow record: subsystem tag
  // and causal stamp. trace_read reads these back.
  const auto common_args = [](const Event& e) {
    std::string extra = std::string(", \"sub\": \"") +
                        subsystem_name(e.subsystem) + "\"";
    // An event carrying BOTH a fiber and an instance lane renders on the
    // fiber's track; keep the lane in args so trace_read is lossless
    // (script role spans key performances by it).
    if (e.pid != kNoPid && e.lane != kNoLane)
      extra += ", \"lane\": " + std::to_string(e.lane);
    if (!e.vclock.empty()) {
      extra += ", \"seq\": " + std::to_string(e.seq) + ", \"vc\": [";
      for (std::size_t i = 0; i < e.vclock.size(); ++i) {
        if (i != 0) extra += ",";
        extra += std::to_string(e.vclock[i]);
      }
      extra += "]";
    }
    return extra;
  };

  for (const Event& e : events) {
    const LaneKey lane = lane_of(e);
    last_ts = e.time;  // bus publishes in nondecreasing virtual time

    // Causal flow pairs render as Perfetto flow arrows: ph "s" on the
    // sender's lane, ph "f" (binding to the enclosing slice) on the
    // receiver's, joined by the shared id the tracker put in `value`.
    if (e.subsystem == Subsystem::Causal &&
        (e.name == "flow.s" || e.name == "flow.f")) {
      const bool start = e.name == "flow.s";
      if (!first) out += ",\n";
      first = false;
      out += "  {\"name\": ";
      append_escaped(out, e.detail.empty() ? std::string("wake") : e.detail);
      out += std::string(", \"cat\": \"flow\", \"ph\": \"") +
             (start ? "s" : "f") + "\"";
      if (!start) out += ", \"bp\": \"e\"";
      out += ", \"id\": " +
             std::to_string(static_cast<std::uint64_t>(e.value)) +
             ", \"ts\": " + std::to_string(e.time) +
             ", \"pid\": " + std::to_string(lane.tpid) +
             ", \"tid\": " + std::to_string(lane.tid) + "}";
      continue;
    }

    std::string name = e.name;
    if (!e.detail.empty() && e.kind != EventKind::Counter)
      name += " " + e.detail;
    std::string args;
    switch (e.kind) {
      case EventKind::SpanBegin:
        open_spans[lane].push_back(name);
        args = "{\"value\": " + std::to_string(e.value) + common_args(e) +
               "}";
        append_record(out, lane, "B", e.time, name, args, first);
        break;
      case EventKind::SpanEnd: {
        auto& open = open_spans[lane];
        if (open.empty()) continue;  // began before tracing started
        open.pop_back();
        args = "{\"value\": " + std::to_string(e.value) + common_args(e) +
               "}";
        append_record(out, lane, "E", e.time, name, args, first);
        break;
      }
      case EventKind::Instant:
        args = "{\"value\": " + std::to_string(e.value) + common_args(e) +
               "}";
        append_record(out, lane, "i", e.time, name, args, first);
        break;
      case EventKind::Counter:
        args = "{";
        args += "\"" + (e.detail.empty() ? std::string("value") : e.detail) +
                "\": " + std::to_string(e.value) + common_args(e) + "}";
        append_record(out, lane, "C", e.time, e.name, args, first);
        break;
    }
  }

  // Close spans left open (blocked-at-deadlock fibers, live monitors).
  for (auto& [lane, open] : open_spans)
    while (!open.empty()) {
      append_record(out, lane, "E", last_ts, open.back(), "", first);
      open.pop_back();
    }

  out += "\n]";
  if (!metadata.empty()) {
    out += ",\n\"metadata\": {";
    bool mfirst = true;
    for (const auto& [key, value] : metadata) {
      if (!mfirst) out += ", ";
      mfirst = false;
      append_escaped(out, key);
      out += ": " + value;
    }
    out += "}";
  }
  out += "}\n";
  return out;
}

std::string TraceExporter::json() const {
  return render_chrome_trace(events_, fiber_names(), lane_names(), metadata_);
}

bool TraceExporter::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = json();
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace script::obs
