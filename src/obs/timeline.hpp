// Timeline — always-on, epoch-bucketed time-series history on virtual
// time.
//
// The Inspector answers "what is every role doing right now"; the
// flight recorder answers "what were the last N things that happened".
// The Timeline answers the question between them: *how did the system
// get here* — per-epoch event rates, gauge trajectories, and latency
// quantiles over a bounded window of history, cheap enough to leave
// armed everywhere the flight recorder is.
//
// Mechanics: a bus subscriber buckets every observed event into epochs
// of `epoch_ticks` virtual ticks. Each series keeps a fixed ring of
// `retention` epoch slots (slot = epoch % retention), so ageing is O(1)
// per observation — the RollingHistogram idiom generalized from two
// epochs to a ring. Three series families:
//   * counters — per-epoch event-count deltas ("script.enroll.ok"),
//     kept globally and per script-instance lane ("script.enroll.ok@3")
//     so every rate is attributable to a script, plus per-subsystem
//     totals ("events.csp");
//   * gauges   — last value per epoch from Counter-kind events;
//   * values   — per-epoch histograms of derived latencies (enroll
//     attempt→ok, performance makespan per lane), dumped as
//     p50/p90/p99/max snapshots.
// A small ring of recent events feeds `scriptctl watch`.
//
// Retention eviction (a ring slot overwritten before it was dumped) and
// series-table overflow are counted — in dump metadata and in
// timeline.* metrics — never silent.
//
// Determinism: everything is keyed on virtual time and publish order,
// so the same seeded schedule produces a byte-identical dump_json() —
// replays are diffable, and CI pins this.
//
// The default mask excludes the Scheduler subsystem for the same reason
// the flight recorder's does: per-dispatch lifecycle spans cost ~7% on
// churn workloads, and an always-on recorder must stay under the <3%
// ceiling bench_timeline_overhead gates in CI.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"

namespace script::obs {

namespace json {
struct Value;
}

struct TimelineOptions {
  /// Subsystems recorded. Defaults to everything except the Scheduler's
  /// per-dispatch firehose (see header comment).
  EventBus::Mask mask =
      EventBus::kAllSubsystems & ~EventBus::mask_of(Subsystem::Scheduler);
  /// Epoch length in virtual ticks — the dump's time resolution.
  std::uint64_t epoch_ticks = 1024;
  /// Epoch slots kept per series; older epochs are evicted (counted).
  std::size_t retention = 64;
  /// Recent-event ring capacity for `scriptctl watch` (0 disables).
  std::size_t recent_events = 128;
  /// Distinct series before new keys fold into "<series-overflow>".
  std::size_t max_series = 1024;
  /// Base path for automatic dumps on failure escalations; the n-th
  /// dump lands at "<base>[.n].timeline.json". Empty disables
  /// auto-dumping (triggers are still counted).
  std::string dump_path;
  /// Cap on automatic dumps, so a crash loop cannot fill the disk.
  std::size_t max_auto_dumps = 4;
};

class Timeline {
 public:
  explicit Timeline(EventBus& bus, TimelineOptions opts = {});
  ~Timeline();

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  /// Virtual-time source for direct recording and dump stamping (the
  /// owning Scheduler wires its clock).
  void set_clock(std::function<std::uint64_t()> clock) {
    clock_ = std::move(clock);
  }
  /// Resolve lane ids to names at dump time (EventBus::lane_name
  /// wrapped by the owner).
  void set_lane_namer(std::function<std::string(std::int32_t)> namer) {
    lane_namer_ = std::move(namer);
  }
  /// Ensure `lane` appears in dumps even before its first event — a
  /// script instance announces its series identity at lane
  /// registration, so an idle script is visibly idle rather than
  /// absent.
  void declare_lane(std::int32_t lane);

  const TimelineOptions& options() const { return opts_; }

  // ---- Direct recording (besides the bus subscription) ----
  // The HealthMonitor writes its SLO good/violation series through
  // these, which is what makes burn rates "windows over the timeline"
  // rather than a private accumulator.

  void bump(const std::string& series, std::uint64_t now,
            std::uint64_t delta = 1);
  void record_gauge(const std::string& series, std::uint64_t now, double v);
  void observe_value(const std::string& series, std::uint64_t now, double v);

  // ---- Queries ----

  /// Lifetime total of a counter series (0 if unknown).
  std::uint64_t counter_total(const std::string& series) const;
  /// Sum of a counter series' per-epoch deltas over every retained
  /// epoch overlapping virtual ticks [from, to].
  std::uint64_t counter_sum(const std::string& series, std::uint64_t from,
                            std::uint64_t to) const;

  std::uint64_t recorded_events() const { return recorded_; }
  /// Ring slots overwritten before their epoch was ever dumped.
  std::uint64_t evicted_epochs() const { return evicted_epochs_; }
  /// Observations folded into "<series-overflow>" (table full).
  std::uint64_t dropped_series_observations() const { return dropped_; }
  /// Events pushed out of the recent-event ring.
  std::uint64_t recent_evicted() const { return recent_evicted_; }
  std::size_t series_count() const {
    return counters_.size() + gauges_.size() + values_.size();
  }

  /// The last `n` recorded events, oldest first, each with its global
  /// record sequence number (monotone — `scriptctl watch` keys on it).
  struct RecentEvent {
    std::uint64_t seq;
    Event event;
  };
  std::vector<RecentEvent> recent(std::size_t n) const;
  /// {"events": [...]} JSON for the debug endpoint's `events` command.
  std::string recent_json(std::size_t n) const;

  // ---- Dumps ----

  /// Deterministic JSON dump of every retained series. `trigger`, when
  /// non-empty, is stamped into the metadata (auto-dump paths).
  std::string dump_json(const std::string& trigger = {}) const;
  bool write(const std::string& path,
             const std::string& trigger = {}) const;

  /// Automatic-dump entry point: writes the next numbered dump file
  /// (subject to max_auto_dumps) with `why` in the metadata. Fires
  /// itself on performance.abort / supervisor.give_up events; the
  /// Scheduler calls it on deadlock.
  void trigger_dump(const std::string& why);
  std::uint64_t triggers_seen() const { return triggers_; }
  std::size_t auto_dumps_written() const { return auto_dumps_; }
  const std::string& last_dump_path() const { return last_dump_path_; }

  /// Sync timeline.* counters (recorded/evicted/dropped) into `reg`.
  /// Idempotent, monotone.
  void export_metrics(MetricsRegistry& reg) const;

 private:
  /// One ring of per-epoch slots. Slots carry their epoch number so a
  /// wrap is detected (and counted) at write time, not by zeroing gaps.
  static constexpr std::uint64_t kNoEpoch = static_cast<std::uint64_t>(-1);

  struct CounterSlot {
    std::uint64_t epoch = kNoEpoch;
    std::uint64_t count = 0;
  };
  struct CounterSeries {
    std::vector<CounterSlot> slots;
    std::uint64_t total = 0;
  };
  struct GaugeSlot {
    std::uint64_t epoch = kNoEpoch;
    double last = 0;
  };
  struct GaugeSeries {
    std::vector<GaugeSlot> slots;
  };
  struct ValueSlot {
    std::uint64_t epoch = kNoEpoch;
    Histogram hist;
  };
  struct ValueSeries {
    std::vector<ValueSlot> slots;
    std::uint64_t total = 0;
  };

  void on_event(const Event& e);
  std::uint64_t epoch_of(std::uint64_t t) const {
    return opts_.epoch_ticks == 0 ? 0 : t / opts_.epoch_ticks;
  }
  std::uint64_t stamp(const Event& e) const;
  /// Find-or-create with the overflow guard; nullptr never returned
  /// (overflow observations land in the "<series-overflow>" series).
  CounterSeries& counter_series(const std::string& key);
  template <typename Map, typename Series>
  Series& series_in(Map& map, const std::string& key);
  void note_lane(std::int32_t lane);

  EventBus* bus_;
  EventBus::SubId sub_;
  TimelineOptions opts_;
  std::function<std::uint64_t()> clock_;
  std::function<std::string(std::int32_t)> lane_namer_;

  std::map<std::string, CounterSeries> counters_;
  std::map<std::string, GaugeSeries> gauges_;
  std::map<std::string, ValueSeries> values_;
  std::vector<std::int32_t> lanes_seen_;  // sorted unique

  // Derived-latency bookkeeping, same event grammar the HealthMonitor
  // speaks: enroll.attempt → enroll.ok per (lane, pid), performance
  // SpanBegin → SpanEnd per (lane, number).
  std::map<std::pair<std::int32_t, Pid>, std::uint64_t> enroll_started_;
  std::map<std::pair<std::int32_t, std::uint64_t>, std::uint64_t> perf_open_;

  std::deque<RecentEvent> recent_;
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_epochs_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t recent_evicted_ = 0;
  std::uint64_t triggers_ = 0;
  std::size_t auto_dumps_ = 0;
  std::string last_dump_path_;
};

/// Human rendering of a parsed timeline dump — behind `scriptctl
/// timeline`. `series_prefix` filters series; `last_epochs` bounds the
/// per-series epoch table.
std::string render_timeline_report(const json::Value& dump,
                                   const std::string& series_prefix = "",
                                   std::size_t last_epochs = 8);

/// The `scriptctl top` dashboard: per-script rates and sparklines,
/// enroll/shed/restart rates, SLO burn — from a timeline dump, joined
/// with an Inspector snapshot when one is available (live mode).
std::string render_top_report(const json::Value& dump,
                              const json::Value* inspect);

/// One "t=... [subsystem] kind name ..." line per event of a
/// {"events": [...]} document (the `events` command / dump "recent"
/// section), events with seq <= `after_seq` skipped. Returns the
/// highest seq seen via *last_seq (unchanged when no events printed).
std::string render_event_lines(const json::Value& events_doc,
                               std::uint64_t after_seq,
                               std::uint64_t* last_seq);

}  // namespace script::obs
