#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/log.hpp"
#include "support/panic.hpp"

namespace script::obs {

void Histogram::observe(double v) {
  if (v < 0) v = 0;
  std::size_t b = 0;
  if (v >= 1) {
    b = static_cast<std::size_t>(std::ilogb(v));
    if (b >= kBuckets) b = kBuckets - 1;
  }
  ++buckets_[b];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
}

double Histogram::min() const {
  SCRIPT_ASSERT(count_ > 0, "Histogram::min on empty histogram");
  return min_;
}

double Histogram::max() const {
  SCRIPT_ASSERT(count_ > 0, "Histogram::max on empty histogram");
  return max_;
}

double Histogram::mean() const {
  SCRIPT_ASSERT(count_ > 0, "Histogram::mean on empty histogram");
  return sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  SCRIPT_ASSERT(q >= 0 && q <= 1, "quantile q out of [0,1]");
  if (count_ == 0) return 0;
  // The extreme quantiles are known exactly; interpolation would hand
  // back a bucket bound instead.
  if (q <= 0) return min_;
  if (q >= 1) return max_;
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets_[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(before + in_bucket) > rank) {
      // Interpolate by the rank's position among this bucket's samples,
      // assuming they spread uniformly across the bucket's bounds.
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
      const double hi = std::ldexp(1.0, static_cast<int>(b) + 1);
      const double frac =
          (rank - static_cast<double>(before)) / static_cast<double>(in_bucket);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
    before += in_bucket;
  }
  return max_;
}

void Histogram::absorb(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

void MetricsRegistry::import_tracelog_truncation(
    const support::TraceLog& log) {
  Counter& c = counter("tracelog.truncated_events");
  if (log.evicted() > c.value()) c.inc(log.evicted() - c.value());
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_[name];
}

void MetricsRegistry::gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

EventBus::SubId MetricsRegistry::attach_event_counters(
    EventBus& bus, EventBus::Mask mask) {
  return bus.subscribe(mask, [this](const Event& e) {
    if (e.kind == EventKind::SpanEnd) return;  // count spans once
    counter(std::string(subsystem_name(e.subsystem)) + "." + e.name).inc();
  });
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string num(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15)
    return std::to_string(static_cast<long long>(v));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::snapshot_json(int indent) const {
  const std::string nl = indent > 0 ? "\n" : "";
  const std::string pad(indent > 0 ? static_cast<std::size_t>(indent) : 0,
                        ' ');
  const std::string pad2 = pad + pad;
  std::string out = "{" + nl;
  out += pad + "\"schema_version\": " + std::to_string(kSchemaVersion) + "," +
         nl;

  auto section = [&](const char* key, auto&& body, bool last) {
    out += pad;
    append_json_string(out, key);
    out += ": {" + nl;
    body();
    out += pad + "}";
    if (!last) out += ",";
    out += nl;
  };

  section("counters", [&] {
    std::size_t i = 0;
    for (const auto& [name, c] : counters_) {
      out += pad2;
      append_json_string(out, name);
      out += ": " + std::to_string(c.value());
      if (++i != counters_.size()) out += ",";
      out += nl;
    }
  }, false);

  section("gauges", [&] {
    std::size_t i = 0;
    for (const auto& [name, v] : gauges_) {
      out += pad2;
      append_json_string(out, name);
      out += ": " + num(v);
      if (++i != gauges_.size()) out += ",";
      out += nl;
    }
  }, false);

  section("histograms", [&] {
    std::size_t i = 0;
    for (const auto& [name, h] : histograms_) {
      out += pad2;
      append_json_string(out, name);
      out += ": {\"count\": " + std::to_string(h.count());
      if (h.count() > 0) {
        out += ", \"sum\": " + num(h.sum()) + ", \"min\": " + num(h.min()) +
               ", \"max\": " + num(h.max()) + ", \"mean\": " + num(h.mean()) +
               ", \"p50\": " + num(h.quantile(0.5)) +
               ", \"p90\": " + num(h.quantile(0.9)) +
               ", \"p99\": " + num(h.quantile(0.99)) + ", \"buckets\": [";
        bool first = true;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          if (h.buckets()[b] == 0) continue;
          if (!first) out += ", ";
          first = false;
          out += "[" + num(b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b))) +
                 ", " + std::to_string(h.buckets()[b]) + "]";
        }
        out += "]";
      }
      out += "}";
      if (++i != histograms_.size()) out += ",";
      out += nl;
    }
  }, true);

  out += "}";
  if (indent > 0) out += "\n";
  return out;
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots (our
// namespace separator) and anything else exotic become underscores.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

std::string prom_num(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return num(v);
}

}  // namespace

std::string MetricsRegistry::expose_prometheus() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(c.value()) + "\n";
  }
  for (const auto& [name, v] : gauges_) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + prom_num(v) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets()[b] == 0) continue;
      cumulative += h.buckets()[b];
      out += n + "_bucket{le=\"" +
             prom_num(std::ldexp(1.0, static_cast<int>(b) + 1)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) + "\n";
    out += n + "_sum " + prom_num(h.sum()) + "\n";
    out += n + "_count " + std::to_string(h.count()) + "\n";
  }
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = snapshot_json(2);
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace script::obs
