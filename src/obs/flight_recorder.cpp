#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"

namespace script::obs {

namespace {

constexpr std::uint16_t kOverflowId = 0xFFFF;

const std::string& overflow_string() {
  static const std::string s = "<interned-overflow>";
  return s;
}

}  // namespace

FlightRecorder::FlightRecorder(EventBus& bus, FlightRecorderOptions opts)
    : bus_(&bus), opts_(std::move(opts)) {
  EventBus::Mask mask = 0;
  for (std::size_t s = 0; s < rings_.size(); ++s) {
    const auto sub = static_cast<Subsystem>(s);
    if ((opts_.mask & EventBus::mask_of(sub)) == 0) continue;
    std::size_t cap = opts_.default_capacity;
    const auto it = opts_.budgets.find(sub);
    if (it != opts_.budgets.end()) cap = it->second;
    if (cap == 0) continue;  // budgeted out: keep wants() dark for it
    rings_[s].slots.resize(cap);
    mask |= EventBus::mask_of(sub);
  }
  opts_.mask = mask;
  ids_.reserve(256);
  sub_ = mask != 0
             ? bus_->subscribe(mask, [this](const Event& e) { on_event(e); })
             : 0;
}

FlightRecorder::~FlightRecorder() {
  if (sub_ != 0) bus_->unsubscribe(sub_);
}

std::uint16_t FlightRecorder::intern(const std::string& s) {
  const auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  if (strings_.size() >= opts_.intern_capacity ||
      strings_.size() >= kOverflowId) {
    ++intern_overflow_;
    return kOverflowId;
  }
  const auto id = static_cast<std::uint16_t>(strings_.size());
  strings_.push_back(s);
  ids_.emplace(s, id);
  return id;
}

const std::string& FlightRecorder::resolve(std::uint16_t id) const {
  if (id == kOverflowId) return overflow_string();
  return strings_[id];
}

void FlightRecorder::on_event(const Event& e) {
  Ring& ring = rings_[static_cast<std::size_t>(e.subsystem)];
  if (ring.slots.empty()) return;  // masked by budget
  Record& r = ring.slots[ring.next];
  r.seq = seq_++;
  r.time = e.time;
  r.value = e.value;
  r.pid = e.pid;
  r.lane = e.lane;
  r.name_id = intern(e.name);
  r.detail_id = intern(e.detail);
  r.kind = e.kind;
  r.subsystem = e.subsystem;
  ring.next = (ring.next + 1) % ring.slots.size();
  ++ring.written;
  ++recorded_;

  // Failure escalations the bus itself announces; deadlock comes in via
  // a direct trigger_dump() call from Scheduler::run().
  if (e.kind == EventKind::Instant &&
      ((e.subsystem == Subsystem::Script && e.name == "performance.abort") ||
       (e.subsystem == Subsystem::Recovery && e.name == "supervisor.give_up")))
    trigger_dump(e.name);
}

std::uint64_t FlightRecorder::dropped_events(Subsystem s) const {
  const Ring& ring = rings_[static_cast<std::size_t>(s)];
  return ring.written > ring.slots.size()
             ? ring.written - ring.slots.size()
             : 0;
}

std::uint64_t FlightRecorder::dropped_events() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < rings_.size(); ++s)
    total += dropped_events(static_cast<Subsystem>(s));
  return total;
}

std::size_t FlightRecorder::capacity(Subsystem s) const {
  return rings_[static_cast<std::size_t>(s)].slots.size();
}

std::vector<Event> FlightRecorder::events() const {
  std::vector<Record> records;
  records.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(recorded_, 1u << 20)));
  for (const Ring& ring : rings_) {
    const std::size_t cap = ring.slots.size();
    if (cap == 0 || ring.written == 0) continue;
    const std::size_t live =
        ring.written < cap ? static_cast<std::size_t>(ring.written) : cap;
    // Oldest-first: an unwrapped ring starts at 0, a wrapped one at
    // `next` (the slot about to be overwritten).
    const std::size_t start = ring.written < cap ? 0 : ring.next;
    for (std::size_t i = 0; i < live; ++i)
      records.push_back(ring.slots[(start + i) % cap]);
  }
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) { return a.seq < b.seq; });

  std::vector<Event> out;
  out.reserve(records.size());
  for (const Record& r : records) {
    Event e;
    e.kind = r.kind;
    e.subsystem = r.subsystem;
    e.time = r.time;
    e.pid = r.pid;
    e.lane = r.lane;
    e.name = resolve(r.name_id);
    e.detail = resolve(r.detail_id);
    e.value = r.value;
    out.push_back(std::move(e));
  }
  return out;
}

std::string FlightRecorder::dump_json() const {
  const std::vector<Event> evs = events();

  std::map<Pid, std::string> fiber_names;
  for (const Event& e : evs)
    if (e.pid != kNoPid && fiber_names.find(e.pid) == fiber_names.end())
      fiber_names[e.pid] = fiber_namer_ ? fiber_namer_(e.pid)
                                        : "fiber " + std::to_string(e.pid);
  std::vector<std::string> lane_names;
  for (std::size_t lane = 0; lane < bus_->lane_count(); ++lane)
    lane_names.push_back(bus_->lane_name(static_cast<std::int32_t>(lane)));

  std::vector<std::pair<std::string, std::string>> metadata;
  const auto add_str = [&metadata](const char* key, const std::string& v) {
    std::string rendered;
    json::append_escaped(rendered, v);
    metadata.emplace_back(key, std::move(rendered));
  };
  add_str("recorder", "flight");
  add_str("trigger", last_trigger_.empty() ? "manual" : last_trigger_);
  metadata.emplace_back("recorded_events", std::to_string(recorded_));
  metadata.emplace_back("dropped_events", std::to_string(dropped_events()));
  metadata.emplace_back("intern_overflow", std::to_string(intern_overflow_));

  return render_chrome_trace(evs, fiber_names, lane_names, metadata);
}

bool FlightRecorder::dump(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = dump_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

std::string FlightRecorder::auto_dump_path(std::size_t n) const {
  std::string path = opts_.dump_path;
  if (n != 0) path += "." + std::to_string(n);
  return path + ".flight.json";
}

void FlightRecorder::trigger_dump(const std::string& why) {
  ++triggers_;
  last_trigger_ = why;
  if (opts_.dump_path.empty() || auto_dumps_ >= opts_.max_auto_dumps) return;
  const std::string path = auto_dump_path(auto_dumps_);
  if (dump(path)) {
    ++auto_dumps_;
    last_dump_path_ = path;
  }
}

void FlightRecorder::export_metrics(MetricsRegistry& reg) const {
  const auto sync = [&reg](const char* name, std::uint64_t v) {
    Counter& c = reg.counter(name);
    if (v > c.value()) c.inc(v - c.value());
  };
  sync("flightrecorder.recorded_events", recorded_);
  sync("flightrecorder.dropped_events", dropped_events());
  sync("flightrecorder.intern_overflow", intern_overflow_);
  sync("flightrecorder.dump_triggers", triggers_);
}

}  // namespace script::obs
