#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/panic.hpp"

namespace script::obs::json {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string num(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15)
    return std::to_string(static_cast<long long>(v));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// ---- Writer ----

void Writer::before_value() {
  if (stack_.empty()) return;
  Level& top = stack_.back();
  if (top.array) {
    if (top.count++ != 0) out_ += ", ";
  } else {
    SCRIPT_ASSERT(top.key_pending, "json::Writer: value without key");
    top.key_pending = false;
  }
}

Writer& Writer::object() {
  before_value();
  out_ += '{';
  stack_.push_back(Level{false});
  return *this;
}

Writer& Writer::array() {
  before_value();
  out_ += '[';
  stack_.push_back(Level{true});
  return *this;
}

Writer& Writer::end() {
  SCRIPT_ASSERT(!stack_.empty(), "json::Writer: end() with nothing open");
  SCRIPT_ASSERT(!stack_.back().key_pending,
                "json::Writer: end() with dangling key");
  out_ += stack_.back().array ? ']' : '}';
  stack_.pop_back();
  return *this;
}

Writer& Writer::key(const std::string& k) {
  SCRIPT_ASSERT(!stack_.empty() && !stack_.back().array,
                "json::Writer: key() outside object");
  Level& top = stack_.back();
  SCRIPT_ASSERT(!top.key_pending, "json::Writer: two keys in a row");
  if (top.count++ != 0) out_ += ", ";
  append_escaped(out_, k);
  out_ += ": ";
  top.key_pending = true;
  return *this;
}

Writer& Writer::value(const std::string& v) {
  before_value();
  append_escaped(out_, v);
  return *this;
}

Writer& Writer::value(const char* v) { return value(std::string(v)); }

Writer& Writer::value(double v) {
  before_value();
  out_ += num(v);
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::null() {
  before_value();
  out_ += "null";
  return *this;
}

Writer& Writer::raw(const std::string& rendered) {
  before_value();
  out_ += rendered;
  return *this;
}

const std::string& Writer::str() const {
  SCRIPT_ASSERT(stack_.empty(), "json::Writer: unbalanced document");
  return out_;
}

// ---- Value / parser ----

const Value* Value::get(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

double Value::num_or(const std::string& key, double fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->kind == Kind::Number ? v->number : fallback;
}

std::string Value::str_or(const std::string& key, std::string fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->kind == Kind::String ? v->string
                                                 : std::move(fallback);
}

namespace {

struct Parser {
  const char* p;
  const char* end;
  std::string err;

  bool fail(const char* why) {
    if (err.empty()) err = why;
    return false;
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (static_cast<std::size_t>(end - p) < n ||
        std::char_traits<char>::compare(p, word, n) != 0)
      return fail("bad literal");
    p += n;
    return true;
  }

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return fail("truncated escape");
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end - p < 5) return fail("truncated \\u escape");
            char buf[5] = {p[1], p[2], p[3], p[4], 0};
            char* stop = nullptr;
            const long code = std::strtol(buf, &stop, 16);
            if (stop != buf + 4) return fail("bad \\u escape");
            // Encode as UTF-8; surrogate pairs pass through unpaired
            // (our own writer only emits \u for control characters).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            p += 4;
            break;
          }
          default: return fail("unknown escape");
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    switch (*p) {
      case '{': {
        out.kind = Value::Kind::Object;
        ++p;
        skip_ws();
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (p >= end || *p != ':') return fail("expected ':'");
          ++p;
          Value member;
          if (!parse_value(member)) return false;
          out.object.emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        out.kind = Value::Kind::Array;
        ++p;
        skip_ws();
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        while (true) {
          Value elem;
          if (!parse_value(elem)) return false;
          out.array.push_back(std::move(elem));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out.kind = Value::Kind::String;
        return parse_string(out.string);
      case 't':
        out.kind = Value::Kind::Bool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::Bool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = Value::Kind::Null;
        return literal("null");
      default: {
        char* stop = nullptr;
        const double v = std::strtod(p, &stop);
        if (stop == p) return fail("expected value");
        out.kind = Value::Kind::Number;
        out.number = v;
        p = stop;
        return true;
      }
    }
  }
};

}  // namespace

std::optional<Value> parse(const std::string& text, std::string* err) {
  Parser parser{text.data(), text.data() + text.size(), {}};
  Value root;
  if (!parser.parse_value(root)) {
    if (err != nullptr) *err = parser.err;
    return std::nullopt;
  }
  parser.skip_ws();
  if (parser.p != parser.end) {
    if (err != nullptr) *err = "trailing characters";
    return std::nullopt;
  }
  return root;
}

}  // namespace script::obs::json
