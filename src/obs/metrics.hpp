// MetricsRegistry — counters, gauges, and log-scale histograms with a
// machine-readable JSON snapshot.
//
// This is the bench-telemetry backbone: bench binaries record their
// headline numbers here and drop a BENCH_<name>.json next to the repo's
// other artifacts, so the perf trajectory is diffable across commits
// instead of living only in stdout tables. It can also piggyback on an
// EventBus to count events per subsystem/name without touching the
// producers.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "obs/event_bus.hpp"

namespace script::support {
class TraceLog;
}

namespace script::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Power-of-two-bucket histogram: bucket b counts observations in
/// [2^b, 2^(b+1)); values < 1 land in bucket 0. Constant memory, O(1)
/// observe, good-enough quantiles for latency-shaped data spanning
/// orders of magnitude.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const;
  /// q in [0,1]; upper bound of the bucket holding the q-quantile.
  double quantile(double q) const;
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

class MetricsRegistry {
 public:
  /// Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);
  /// Set a named point-in-time double (bench headline numbers).
  void gauge(const std::string& name, double value);

  bool has_counter(const std::string& name) const {
    return counters_.count(name) != 0;
  }

  /// Last value set for a gauge, or 0 when never set.
  double gauge_value(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second;
  }

  /// Subscribe to `bus`, counting every event as
  /// "<subsystem>.<name>[.<kind-suffix>]"; span begins count once.
  /// Returns the subscription id (caller unsubscribes if needed).
  EventBus::SubId attach_event_counters(EventBus& bus,
                                        EventBus::Mask mask);

  /// Sync the "tracelog.truncated_events" counter to `log`'s ring
  /// eviction tally, so a truncated forensic log is visible in exported
  /// metrics rather than silently passing as complete. Idempotent.
  void import_tracelog_truncation(const support::TraceLog& log);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} —
  /// histograms carry count/sum/min/max/mean/p50/p90/p99 plus the
  /// non-empty buckets as [lower-bound, count] pairs.
  std::string json(int indent = 0) const;
  bool write_json(const std::string& path) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace script::obs
