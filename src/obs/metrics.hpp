// MetricsRegistry — counters, gauges, and log-scale histograms with a
// machine-readable JSON snapshot.
//
// This is the bench-telemetry backbone: bench binaries record their
// headline numbers here and drop a BENCH_<name>.json next to the repo's
// other artifacts, so the perf trajectory is diffable across commits
// instead of living only in stdout tables. It can also piggyback on an
// EventBus to count events per subsystem/name without touching the
// producers.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "obs/event_bus.hpp"

namespace script::support {
class TraceLog;
}

namespace script::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Power-of-two-bucket histogram: bucket b counts observations in
/// [2^b, 2^(b+1)); values < 1 land in bucket 0. Constant memory, O(1)
/// observe, good-enough quantiles for latency-shaped data spanning
/// orders of magnitude.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const;
  /// q in [0,1]. q=0 and q=1 return the observed min and max exactly;
  /// in between, locates the bucket holding rank q*(count-1) and
  /// interpolates linearly between the bucket's bounds [2^b, 2^(b+1))
  /// (bucket 0 spans [0, 2)) by the rank's position inside the bucket,
  /// then clamps to the observed [min, max] — so a saturating top
  /// bucket or a single-value bucket never reports a value outside
  /// what was actually seen. Returns 0 on an empty histogram.
  double quantile(double q) const;
  /// Merge another histogram's observations into this one (used by the
  /// HealthMonitor's rolling windows to combine epoch halves).
  void absorb(const Histogram& other);
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

class MetricsRegistry {
 public:
  /// Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);
  /// Set a named point-in-time double (bench headline numbers).
  void gauge(const std::string& name, double value);

  bool has_counter(const std::string& name) const {
    return counters_.count(name) != 0;
  }

  /// Last value set for a gauge, or 0 when never set.
  double gauge_value(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second;
  }

  /// Subscribe to `bus`, counting every event as
  /// "<subsystem>.<name>[.<kind-suffix>]"; span begins count once.
  /// Returns the subscription id (caller unsubscribes if needed).
  EventBus::SubId attach_event_counters(EventBus& bus,
                                        EventBus::Mask mask);

  /// Sync the "tracelog.truncated_events" counter to `log`'s ring
  /// eviction tally, so a truncated forensic log is visible in exported
  /// metrics rather than silently passing as complete. Idempotent.
  void import_tracelog_truncation(const support::TraceLog& log);

  /// {"schema_version": N, "counters": {...}, "gauges": {...},
  /// "histograms": {...}} — histograms carry count/sum/min/max/mean/
  /// p50/p90/p99 plus the non-empty buckets as [lower-bound, count]
  /// pairs. Metric names are JSON-escaped and each section's keys are
  /// emitted in deterministic (lexicographic) order, so snapshots diff
  /// cleanly. schema_version lets check_bench_regression.py evolve the
  /// format without breaking older baselines.
  static constexpr int kSchemaVersion = 2;
  std::string snapshot_json(int indent = 0) const;
  /// Back-compat alias for snapshot_json().
  std::string json(int indent = 0) const { return snapshot_json(indent); }
  bool write_json(const std::string& path) const;

  /// Prometheus text exposition (version 0.0.4): counters and gauges as
  /// single samples, histograms as cumulative `_bucket{le="..."}` series
  /// plus `_sum`/`_count`. Names are sanitized to [a-zA-Z0-9_:] and
  /// emitted in deterministic order.
  std::string expose_prometheus() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace script::obs
