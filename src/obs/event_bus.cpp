#include "obs/event_bus.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace script::obs {

const char* subsystem_name(Subsystem s) {
  switch (s) {
    case Subsystem::Scheduler: return "scheduler";
    case Subsystem::Script: return "script";
    case Subsystem::Csp: return "csp";
    case Subsystem::Ada: return "ada";
    case Subsystem::Monitor: return "monitor";
    case Subsystem::Lock: return "lock";
    case Subsystem::Link: return "link";
    case Subsystem::User: return "user";
    case Subsystem::Fault: return "fault";
    case Subsystem::Causal: return "causal";
    case Subsystem::Recovery: return "recovery";
    case Subsystem::Health: return "health";
    case Subsystem::Overload: return "overload";
    case Subsystem::kCount: break;
  }
  return "unknown";
}

bool vclock_less(const std::vector<std::uint64_t>& a,
                 const std::vector<std::uint64_t>& b) {
  bool strictly = false;
  for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    const std::uint64_t av = i < a.size() ? a[i] : 0;
    const std::uint64_t bv = i < b.size() ? b[i] : 0;
    if (av > bv) return false;
    if (av < bv) strictly = true;
  }
  return strictly;
}

EventBus::SubId EventBus::subscribe(Mask mask, Subscriber fn) {
  SCRIPT_ASSERT(fn != nullptr, "EventBus::subscribe with null subscriber");
  const auto lk = maybe_lock();
  const SubId id = next_id_++;
  subs_.push_back(std::make_unique<Sub>(Sub{id, mask, std::move(fn), false}));
  recompute_wants();
  return id;
}

void EventBus::unsubscribe(SubId id) {
  const auto lk = maybe_lock();
  const auto it = std::find_if(
      subs_.begin(), subs_.end(),
      [id](const std::unique_ptr<Sub>& s) { return s->id == id && !s->dead; });
  SCRIPT_ASSERT(it != subs_.end(), "EventBus::unsubscribe: unknown id");
  if (publish_depth_ > 0) {
    // Called from inside a subscriber: tombstone now, compact later.
    (*it)->dead = true;
    has_dead_ = true;
  } else {
    subs_.erase(it);
  }
  recompute_wants();
}

void EventBus::compact_subs() {
  subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                             [](const std::unique_ptr<Sub>& s) {
                               return s->dead;
                             }),
              subs_.end());
  has_dead_ = false;
}

void EventBus::publish(Event e) {
  const auto lk = maybe_lock();
  if (e.time == kAutoTime) e.time = clock_ ? clock_() : 0;
  if (stamper_) stamper_(e);
  published_.fetch_add(1, std::memory_order_relaxed);
  const Mask bit = mask_of(e.subsystem);
  // Index loop with a size snapshot: subscribers added during this
  // publish (indexes >= n) first see the next event, and the stable
  // unique_ptr storage keeps `s` valid across a reallocating subscribe.
  ++publish_depth_;
  const std::size_t n = subs_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Sub* s = subs_[i].get();
    if (!s->dead && (s->mask & bit)) s->fn(e);
  }
  if (--publish_depth_ == 0 && has_dead_) compact_subs();
  if (history_cap_ != 0 && e.pid != kNoPid) {
    auto& ring = history_[e.pid];
    ring.push_back(std::move(e));
    if (ring.size() > history_cap_) ring.pop_front();
  }
}

std::int32_t EventBus::add_lane(std::string name) {
  const auto lk = maybe_lock();
  lanes_.push_back(std::move(name));
  return static_cast<std::int32_t>(lanes_.size()) - 1;
}

const std::string& EventBus::lane_name(std::int32_t lane) const {
  const auto lk = maybe_lock();
  SCRIPT_ASSERT(lane >= 0 &&
                    static_cast<std::size_t>(lane) < lanes_.size(),
                "EventBus::lane_name: unknown lane");
  return lanes_[static_cast<std::size_t>(lane)];
}

void EventBus::set_history(std::size_t per_fiber) {
  const auto lk = maybe_lock();
  history_cap_ = per_fiber;
  if (per_fiber == 0) history_.clear();
  recompute_wants();
}

const std::deque<Event>* EventBus::history_for(Pid pid) const {
  const auto it = history_.find(pid);
  return it == history_.end() ? nullptr : &it->second;
}

void EventBus::recompute_wants() {
  Mask m = history_cap_ != 0 ? kAllSubsystems : 0;
  for (const auto& s : subs_)
    if (!s->dead) m |= s->mask;
  wants_.store(m, std::memory_order_relaxed);
}

}  // namespace script::obs
