// EventBus — synchronous fan-out of typed observability events.
//
// Design constraints:
//   * Zero overhead when nobody listens: producers guard event
//     construction with `wants(subsystem)`, a single bitmask test.
//   * Deterministic: subscribers run synchronously at the publish site,
//     in subscription order, so traces and logs are reproducible under
//     the FIFO scheduling policy.
//   * Self-describing lanes: script instances (and other non-fiber
//     timelines) register named lanes; exporters map them to trace
//     "threads".
//   * Forensics: an optional ring of the last N events per fiber feeds
//     deadlock reports ("how did this fiber get stuck?").
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace script::obs {

class EventBus {
 public:
  using Subscriber = std::function<void(const Event&)>;
  using Mask = std::uint32_t;
  using SubId = std::uint64_t;

  static constexpr Mask mask_of(Subsystem s) {
    return Mask{1} << static_cast<unsigned>(s);
  }
  static constexpr Mask kAllSubsystems =
      (Mask{1} << static_cast<unsigned>(Subsystem::kCount)) - 1;

  /// Virtual-time source used to stamp events published with kAutoTime.
  /// The owning Scheduler points this at its clock.
  void set_clock(std::function<std::uint64_t()> clock) {
    clock_ = std::move(clock);
  }

  /// Extra stamp applied to every published event after the time stamp.
  /// The CausalTracker installs one that fills Event::seq/vclock from
  /// the publishing fiber's clock. Unset (the default) costs one branch.
  void set_stamper(std::function<void(Event&)> stamper) {
    stamper_ = std::move(stamper);
  }

  /// Register `fn` for every event whose subsystem is in `mask`.
  /// Subscribers run synchronously, in subscription order, and must not
  /// block. Returns an id for unsubscribe().
  ///
  /// Both calls are reentrancy-safe: a subscriber may subscribe or
  /// unsubscribe (itself or others) from inside publish(). A subscriber
  /// added during a publish first sees the *next* event; one removed
  /// during a publish receives no further events, including the one in
  /// flight if its turn had not yet come.
  SubId subscribe(Mask mask, Subscriber fn);
  void unsubscribe(SubId id);

  /// Cheap producer-side gate: is anything listening to `s`?
  bool wants(Subsystem s) const {
    return (wants_.load(std::memory_order_relaxed) & mask_of(s)) != 0;
  }
  bool enabled() const {
    return wants_.load(std::memory_order_relaxed) != 0;
  }

  /// Deliver an event to every matching subscriber (and the history
  /// ring). Stamps `time` via the clock when it is kAutoTime.
  void publish(Event e);

  std::uint64_t published_count() const {
    return published_.load(std::memory_order_relaxed);
  }

  /// Serialize publish/subscribe/lane/history behind a recursive mutex
  /// (recursive because subscribers may publish). The parallel
  /// scheduler's workers publish concurrently; deterministic mode
  /// leaves this off and the bus stays lock-free as before.
  void set_threaded(bool on) { threaded_ = on; }

  // ---- Lanes (named non-fiber timelines, e.g. script instances) ----

  /// Register a lane; returns its id. Names need not be unique.
  std::int32_t add_lane(std::string name);
  const std::string& lane_name(std::int32_t lane) const;
  std::size_t lane_count() const { return lanes_.size(); }

  // ---- Per-fiber history ring (deadlock forensics) ----

  /// Keep the last `per_fiber` events of each fiber. While enabled the
  /// bus listens to every subsystem (wants() turns true), so enable it
  /// only when the forensics are worth the tracing cost. 0 disables.
  void set_history(std::size_t per_fiber);
  std::size_t history_capacity() const { return history_cap_; }
  /// Most-recent-last events recorded for `pid` (empty if none).
  const std::deque<Event>* history_for(Pid pid) const;

 private:
  // Subs live behind unique_ptr so publish() can hold a stable pointer
  // across a reentrant subscribe() (vector reallocation). Unsubscribing
  // mid-publish tombstones the entry (`dead`); the vector is compacted
  // once the outermost publish returns, so iteration indexes stay valid
  // and the executing std::function is never destroyed under itself.
  struct Sub {
    SubId id;
    Mask mask;
    Subscriber fn;
    bool dead = false;
  };

  void recompute_wants();
  void compact_subs();
  std::unique_lock<std::recursive_mutex> maybe_lock() const {
    return threaded_ ? std::unique_lock<std::recursive_mutex>(mu_)
                     : std::unique_lock<std::recursive_mutex>();
  }

  std::vector<std::unique_ptr<Sub>> subs_;
  /// Atomic (relaxed) so producers on worker threads can gate event
  /// construction without the lock; recomputed under it.
  std::atomic<Mask> wants_{0};
  SubId next_id_ = 1;
  int publish_depth_ = 0;
  bool has_dead_ = false;
  std::atomic<std::uint64_t> published_{0};
  bool threaded_ = false;
  mutable std::recursive_mutex mu_;
  std::function<std::uint64_t()> clock_;
  std::function<void(Event&)> stamper_;
  std::vector<std::string> lanes_;
  std::size_t history_cap_ = 0;
  std::map<Pid, std::deque<Event>> history_;
};

}  // namespace script::obs
