// TraceExporter — Chrome trace-event / Perfetto JSON from the EventBus.
//
// Subscribes to a bus, buffers every event, and renders the Chrome
// trace-event format (the JSON flavour Perfetto's ui.perfetto.dev and
// chrome://tracing both load). Timestamps are VIRTUAL time: one tick is
// rendered as one microsecond, so the viewer's timeline is the paper's
// timeline, not the host's.
//
// Lane model:
//   * trace pid 1, tid <fiber id>  — one lane per fiber; named via the
//     fiber namer (Scheduler::name_of).
//   * trace pid 2, tid <lane id>   — one lane per registered bus lane
//     (script instances register themselves).
//   * trace pid 0                  — global events (clock counters).
//
// Span discipline: SpanBegin/SpanEnd must nest LIFO per lane (the
// instrumentation guarantees it); a SpanEnd with no matching SpanBegin
// (tracing enabled mid-span) is dropped, and spans still open at export
// time are closed at the final timestamp so the JSON always balances.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/event_bus.hpp"

namespace script::obs {

/// Render a Chrome trace-event JSON document from a captured event
/// sequence. This is the single renderer behind TraceExporter::json()
/// and FlightRecorder dumps, so every artifact the runtime can emit
/// loads in Perfetto and round-trips through trace_read identically.
/// `metadata` values must be pre-rendered JSON (use a quoted string for
/// text); they land in the document's top-level "metadata" object.
std::string render_chrome_trace(
    const std::vector<Event>& events,
    const std::map<Pid, std::string>& fiber_names,
    const std::vector<std::string>& lane_names,
    const std::vector<std::pair<std::string, std::string>>& metadata);

class TraceExporter {
 public:
  /// Starts capturing immediately. `mask` selects subsystems.
  explicit TraceExporter(EventBus& bus,
                         EventBus::Mask mask = EventBus::kAllSubsystems);
  ~TraceExporter();

  TraceExporter(const TraceExporter&) = delete;
  TraceExporter& operator=(const TraceExporter&) = delete;

  /// Resolve fiber ids to lane names at export time (Scheduler::name_of
  /// wrapped by the owner). Unset fibers render as "fiber <id>".
  void set_fiber_namer(std::function<std::string(Pid)> namer) {
    fiber_namer_ = std::move(namer);
  }

  std::size_t event_count() const { return events_.size(); }

  /// The captured events, in publish order. Feed to CausalAnalyzer.
  const std::vector<Event>& events() const { return events_; }

  /// Names for every fiber seen so far (via the fiber namer) and for
  /// every registered bus lane — the shape CausalAnalyzer expects.
  std::map<Pid, std::string> fiber_names() const;
  std::vector<std::string> lane_names() const;

  /// Attach a key/value to the trace's top-level "metadata" object
  /// (e.g. truncated_events when the TraceLog ring evicted entries).
  void set_metadata(const std::string& key, double value);
  void set_metadata(const std::string& key, const std::string& value);

  /// Render the full Chrome trace JSON document. Causal flow.s/flow.f
  /// pairs render as ph "s"/"f" flow arrows; every other record carries
  /// "sub" (subsystem), "value", and — when stamped — "seq"/"vc" args so
  /// trace_read can reconstruct the events losslessly.
  std::string json() const;
  bool write(const std::string& path) const;

 private:
  EventBus* bus_;
  EventBus::SubId sub_;
  std::function<std::string(Pid)> fiber_namer_;
  std::vector<Event> events_;
  std::vector<std::pair<std::string, std::string>> metadata_;  // pre-rendered
};

}  // namespace script::obs
