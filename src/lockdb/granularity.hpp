// Multiple-granularity locking "as described by Korth [7]" — one of the
// read/write locking strategies the paper's database script can hide.
//
// Resources form a hierarchy (database / area / file / record), named by
// slash paths ("db/a1/f2/r9"). Locking a node in S or X mode requires
// intention locks (IS / IX) on every ancestor; the classic compatibility
// matrix governs coexistence:
//
//          IS   IX   S    SIX  X
//    IS    ok   ok   ok   ok   -
//    IX    ok   ok   -    -    -
//    S     ok   -    ok   -    -
//    SIX   ok   -    -    -    -
//    X     -    -    -    -    -
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lockdb/lock_table.hpp"

namespace script::lockdb {

enum class GranMode : std::uint8_t { IS, IX, S, SIX, X };

/// Korth compatibility matrix.
bool compatible(GranMode held, GranMode wanted);

/// The intention mode ancestors need for a leaf lock of `mode`.
GranMode intention_for(GranMode mode);

/// Split "db/a1/f2" into its ancestor chain: {"db", "db/a1", "db/a1/f2"}.
std::vector<std::string> ancestor_chain(const std::string& path);

class GranularityLockTable {
 public:
  /// Acquire `mode` on `path`, taking the required intention locks on
  /// all ancestors first (all-or-nothing: on failure nothing changes).
  /// Holdings are reference-counted: two record locks under one file
  /// each contribute an intention on the file.
  bool lock(const std::string& path, GranMode mode, OwnerId owner);

  /// Can the full ancestor+target chain be granted?
  bool can_lock(const std::string& path, GranMode mode, OwnerId owner) const;

  /// Release one lock previously taken with lock(path, mode, owner):
  /// drops the target mode and one reference on each ancestor
  /// intention. No-op if the owner does not hold it.
  void release(const std::string& path, GranMode mode, OwnerId owner);

  /// Release everything `owner` holds. Returns locks dropped.
  std::size_t release_all(OwnerId owner);

  bool holds(const std::string& path, GranMode mode, OwnerId owner) const;
  std::size_t node_count() const { return nodes_.size(); }
  std::uint64_t grants() const { return grants_; }
  std::uint64_t denials() const { return denials_; }

 private:
  struct Node {
    // Each owner may hold several modes on one node (e.g. IX + IS),
    // each reference-counted across the leaf locks that need it.
    std::map<OwnerId, std::map<GranMode, std::size_t>> held;
  };

  bool node_allows(const Node& n, GranMode wanted, OwnerId owner) const;

  std::map<std::string, Node> nodes_;
  std::uint64_t grants_ = 0;
  std::uint64_t denials_ = 0;
};

}  // namespace script::lockdb
