#include "lockdb/granularity.hpp"

#include "support/panic.hpp"

namespace script::lockdb {

bool compatible(GranMode held, GranMode wanted) {
  auto idx = [](GranMode m) { return static_cast<std::size_t>(m); };
  // Rows: held IS, IX, S, SIX, X; columns: wanted.
  static constexpr bool kMatrix[5][5] = {
      //           IS     IX     S      SIX    X
      /* IS  */ {true, true, true, true, false},
      /* IX  */ {true, true, false, false, false},
      /* S   */ {true, false, true, false, false},
      /* SIX */ {true, false, false, false, false},
      /* X   */ {false, false, false, false, false},
  };
  return kMatrix[idx(held)][idx(wanted)];
}

GranMode intention_for(GranMode mode) {
  switch (mode) {
    case GranMode::IS:
    case GranMode::S:
      return GranMode::IS;
    case GranMode::IX:
    case GranMode::SIX:
    case GranMode::X:
      return GranMode::IX;
  }
  SCRIPT_PANIC("unreachable");
}

std::vector<std::string> ancestor_chain(const std::string& path) {
  SCRIPT_ASSERT(!path.empty(), "empty lock path");
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = path.find('/', pos);
    if (next == std::string::npos) {
      out.push_back(path);
      break;
    }
    out.push_back(path.substr(0, next));
    pos = next + 1;
  }
  return out;
}

bool GranularityLockTable::node_allows(const Node& n, GranMode wanted,
                                       OwnerId owner) const {
  for (const auto& [other, modes] : n.held) {
    if (other == owner) continue;  // own locks never conflict with self
    for (const auto& [held, count] : modes)
      if (count > 0 && !compatible(held, wanted)) return false;
  }
  return true;
}

bool GranularityLockTable::can_lock(const std::string& path, GranMode mode,
                                    OwnerId owner) const {
  const auto chain = ancestor_chain(path);
  const GranMode intent = intention_for(mode);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const GranMode wanted = (i + 1 == chain.size()) ? mode : intent;
    const auto it = nodes_.find(chain[i]);
    if (it != nodes_.end() && !node_allows(it->second, wanted, owner))
      return false;
  }
  return true;
}

bool GranularityLockTable::lock(const std::string& path, GranMode mode,
                                OwnerId owner) {
  if (!can_lock(path, mode, owner)) {
    ++denials_;
    return false;
  }
  const auto chain = ancestor_chain(path);
  const GranMode intent = intention_for(mode);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const GranMode wanted = (i + 1 == chain.size()) ? mode : intent;
    ++nodes_[chain[i]].held[owner][wanted];
  }
  ++grants_;
  return true;
}

void GranularityLockTable::release(const std::string& path, GranMode mode,
                                   OwnerId owner) {
  if (!holds(path, mode, owner)) return;
  const auto chain = ancestor_chain(path);
  const GranMode intent = intention_for(mode);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const GranMode wanted = (i + 1 == chain.size()) ? mode : intent;
    const auto nit = nodes_.find(chain[i]);
    if (nit == nodes_.end()) continue;
    auto oit = nit->second.held.find(owner);
    if (oit == nit->second.held.end()) continue;
    auto mit = oit->second.find(wanted);
    if (mit == oit->second.end()) continue;
    if (--mit->second == 0) oit->second.erase(mit);
    if (oit->second.empty()) nit->second.held.erase(oit);
    if (nit->second.held.empty()) nodes_.erase(nit);
  }
}

std::size_t GranularityLockTable::release_all(OwnerId owner) {
  std::size_t dropped = 0;
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    dropped += it->second.held.erase(owner);
    if (it->second.held.empty())
      it = nodes_.erase(it);
    else
      ++it;
  }
  return dropped;
}

bool GranularityLockTable::holds(const std::string& path, GranMode mode,
                                 OwnerId owner) const {
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) return false;
  const auto oit = it->second.held.find(owner);
  if (oit == it->second.held.end()) return false;
  const auto mit = oit->second.find(mode);
  return mit != oit->second.end() && mit->second > 0;
}

}  // namespace script::lockdb
