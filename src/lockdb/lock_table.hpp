// Lock tables for the replicated-database example (paper §II / Fig 5).
//
// "We assume that the lock tables are abstract data types with the
// appropriate functions to lock and release entries in the table and to
// check whether read or write locks on a piece of data may be added."
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/event_bus.hpp"

namespace script::obs {
class Inspector;
}  // namespace script::obs

namespace script::lockdb {

/// A lock requester (the paper's "unique processor identifier").
using OwnerId = std::uint32_t;

enum class LockMode : std::uint8_t { Shared, Exclusive };

/// "No deadline" for the deadline-aware acquire overloads. Matches the
/// runtime's sentinel bit-for-bit, so a RoleContext::deadline_at() can
/// be forwarded without translation (lockdb cannot see runtime types).
inline constexpr std::uint64_t kNoDeadline = static_cast<std::uint64_t>(-1);

/// Typed result of a deadline-aware acquire: a request that arrives at
/// or past its deadline is refused as DeadlineExpired WITHOUT touching
/// the table — the caller can tell "too late" (give up, the requester
/// has already been cancelled or soon will be) from "contended" (Denied
/// — retrying can help).
enum class AcquireOutcome : std::uint8_t { Granted, Denied, DeadlineExpired };

class LockTable {
 public:
  /// May `owner` add a lock of `mode` on `item` right now?
  /// Shared locks coexist; an exclusive lock excludes everyone else.
  /// Re-acquisition by the same owner is allowed (idempotent).
  bool can_acquire(const std::string& item, LockMode mode,
                   OwnerId owner) const;

  /// Try to acquire; returns false (table unchanged) if incompatible.
  bool acquire(const std::string& item, LockMode mode, OwnerId owner);

  // ---- Lease-based grants (docs/ROBUSTNESS.md "Recovery") ----
  // A leased grant expires at `expires_at` (virtual time) unless
  // released or re-acquired (renewal) first. Locks held by crashed
  // clients are thereby reclaimed instead of leaking: a manager that
  // lost its in-memory grant bookkeeping across a restart only needs
  // the clock to keep the table safe. lockdb has no scheduler, so the
  // owner wires a clock in (set_clock); with one installed, acquire()
  // reaps expired grants before testing compatibility.

  /// acquire() plus a lease. Re-acquisition by the same owner renews.
  bool acquire_leased(const std::string& item, LockMode mode,
                      OwnerId owner, std::uint64_t expires_at);

  // ---- Deadline-aware acquires (docs/ROBUSTNESS.md "Overload") ----
  // The requester's remaining deadline travels with the lock request
  // (Fig 5 managers forward RoleContext::deadline_at()); a request
  // whose deadline has passed by the time the manager serves it must
  // not be granted — the requester is being cancelled, and a grant
  // would only sit there until its lease reaps it.

  /// acquire() that honors the requester's deadline: when `now` has
  /// reached `deadline`, returns DeadlineExpired (table untouched,
  /// publishes lock.deadline_expired). kNoDeadline never expires.
  AcquireOutcome acquire(const std::string& item, LockMode mode,
                         OwnerId owner, std::uint64_t now,
                         std::uint64_t deadline);
  /// acquire_leased() with the same deadline contract.
  AcquireOutcome acquire_leased(const std::string& item, LockMode mode,
                                OwnerId owner, std::uint64_t expires_at,
                                std::uint64_t now, std::uint64_t deadline);

  /// Requests refused because their deadline had already passed.
  std::uint64_t deadline_expiries() const { return deadline_expiries_; }

  /// Drop every grant whose lease expired at or before `now`. Returns
  /// how many grants were reclaimed (publishes lock.lease_expired).
  std::size_t reap_expired(std::uint64_t now);

  /// Virtual-time source for the automatic reap in acquire(). nullptr
  /// (the default) disables automatic reaping.
  void set_clock(std::function<std::uint64_t()> clock) {
    clock_ = std::move(clock);
  }

  std::uint64_t leases_reaped() const { return leases_reaped_; }
  /// Outstanding leased grants (for leak assertions in tests).
  std::size_t leased_count() const;

  /// Drop owner's lock on item. No-op if absent.
  void release(const std::string& item, OwnerId owner);

  /// Drop every lock held by owner. Returns how many were dropped.
  std::size_t release_all(OwnerId owner);

  bool holds(const std::string& item, OwnerId owner) const;
  std::size_t holder_count(const std::string& item) const;
  std::size_t locked_items() const { return entries_.size(); }

  // Conflict accounting for the locking-strategy benches.
  std::uint64_t grants() const { return grants_; }
  std::uint64_t denials() const { return denials_; }

  /// Publish lock.acquire / lock.conflict / lock.release events on
  /// `bus` (Subsystem::Lock). lockdb has no scheduler of its own, so
  /// the owner wires a bus in (nullptr detaches).
  void attach_bus(obs::EventBus* bus) { bus_ = bus; }

  /// Structured snapshot: every locked item with its mode, owners, and
  /// lease expiries, plus the grant/denial counters.
  std::string snapshot_json() const;
  /// Register the snapshot as a "locks" Inspector section.
  std::size_t attach_inspector(obs::Inspector& inspector);

 private:
  struct Entry {
    LockMode mode = LockMode::Shared;
    std::set<OwnerId> owners;
    /// Expiry per leased owner; owners absent here hold forever.
    std::map<OwnerId, std::uint64_t> leases;
  };

  void publish(const char* name, const std::string& item, LockMode mode,
               OwnerId owner) const;

  std::map<std::string, Entry> entries_;
  std::uint64_t grants_ = 0;
  mutable std::uint64_t denials_ = 0;
  std::uint64_t leases_reaped_ = 0;
  std::uint64_t deadline_expiries_ = 0;
  std::function<std::uint64_t()> clock_;
  obs::EventBus* bus_ = nullptr;
};

}  // namespace script::lockdb
