#include "lockdb/strategies.hpp"

#include "support/panic.hpp"

namespace script::lockdb {

namespace {

void rollback(ReplicaSet& rs, const std::string& item, OwnerId owner,
              const std::vector<NodeId>& holders) {
  for (const NodeId node : holders) rs.table(node).release(item, owner);
}

}  // namespace

// ---- ReadOneWriteAll ----

LockOutcome ReadOneWriteAll::read_lock(ReplicaSet& rs,
                                       const std::string& item,
                                       OwnerId owner) {
  LockOutcome out;
  for (const NodeId node : rs.active()) {
    ++out.replicas_contacted;
    if (rs.table(node).acquire(item, LockMode::Shared, owner)) {
      out.granted = true;
      out.holders.push_back(node);
      return out;  // one is enough
    }
  }
  return out;
}

LockOutcome ReadOneWriteAll::write_lock(ReplicaSet& rs,
                                        const std::string& item,
                                        OwnerId owner) {
  LockOutcome out;
  for (const NodeId node : rs.active()) {
    ++out.replicas_contacted;
    if (rs.table(node).acquire(item, LockMode::Exclusive, owner)) {
      out.holders.push_back(node);
    } else {
      rollback(rs, item, owner, out.holders);
      out.holders.clear();
      return out;  // any denial aborts the write lock
    }
  }
  out.granted = true;
  return out;
}

void ReadOneWriteAll::release(ReplicaSet& rs, const std::string& item,
                              OwnerId owner) {
  for (const NodeId node : rs.active()) rs.table(node).release(item, owner);
}

// ---- MajorityLocking ----

LockOutcome MajorityLocking::quorum_lock(ReplicaSet& rs,
                                         const std::string& item,
                                         OwnerId owner, LockMode mode) {
  const std::size_t quorum = rs.active_count() / 2 + 1;
  LockOutcome out;
  for (const NodeId node : rs.active()) {
    ++out.replicas_contacted;
    if (rs.table(node).acquire(item, mode, owner))
      out.holders.push_back(node);
    if (out.holders.size() >= quorum) {
      out.granted = true;
      return out;
    }
    // Early abort when a quorum is no longer reachable.
    const std::size_t remaining = rs.active_count() - out.replicas_contacted;
    if (out.holders.size() + remaining < quorum) break;
  }
  rollback(rs, item, owner, out.holders);
  out.holders.clear();
  return out;
}

LockOutcome MajorityLocking::read_lock(ReplicaSet& rs,
                                       const std::string& item,
                                       OwnerId owner) {
  return quorum_lock(rs, item, owner, LockMode::Shared);
}

LockOutcome MajorityLocking::write_lock(ReplicaSet& rs,
                                        const std::string& item,
                                        OwnerId owner) {
  return quorum_lock(rs, item, owner, LockMode::Exclusive);
}

void MajorityLocking::release(ReplicaSet& rs, const std::string& item,
                              OwnerId owner) {
  for (const NodeId node : rs.active()) rs.table(node).release(item, owner);
}

// ---- GranularityStrategy ----

GranularityStrategy::GranularityStrategy(std::size_t replicas) {
  for (std::size_t i = 0; i < replicas; ++i)
    tables_.push_back(std::make_unique<GranularityLockTable>());
}

GranularityLockTable& GranularityStrategy::hierarchy(
    std::size_t replica_index) {
  SCRIPT_ASSERT(replica_index < tables_.size(),
                "granularity replica index out of range");
  return *tables_[replica_index];
}

LockOutcome GranularityStrategy::read_lock(ReplicaSet& rs,
                                           const std::string& item,
                                           OwnerId owner) {
  LockOutcome out;
  for (std::size_t i = 0; i < rs.active_count() && i < tables_.size(); ++i) {
    ++out.replicas_contacted;
    if (tables_[i]->lock(item, GranMode::S, owner)) {
      out.granted = true;
      out.holders.push_back(rs.active()[i]);
      return out;
    }
  }
  return out;
}

LockOutcome GranularityStrategy::write_lock(ReplicaSet& rs,
                                            const std::string& item,
                                            OwnerId owner) {
  LockOutcome out;
  std::vector<std::size_t> acquired;
  for (std::size_t i = 0; i < rs.active_count() && i < tables_.size(); ++i) {
    ++out.replicas_contacted;
    if (tables_[i]->lock(item, GranMode::X, owner)) {
      acquired.push_back(i);
      out.holders.push_back(rs.active()[i]);
    } else {
      for (const std::size_t j : acquired)
        tables_[j]->release(item, GranMode::X, owner);
      out.holders.clear();
      return out;
    }
  }
  out.granted = true;
  return out;
}

void GranularityStrategy::release(ReplicaSet&, const std::string& item,
                                  OwnerId owner) {
  // Drop whichever mode this owner holds on `item`, replica by replica
  // (a read lock lives on one replica, a write lock on all).
  for (auto& t : tables_) {
    if (t->holds(item, GranMode::S, owner))
      t->release(item, GranMode::S, owner);
    if (t->holds(item, GranMode::X, owner))
      t->release(item, GranMode::X, owner);
  }
}

}  // namespace script::lockdb
