#include "lockdb/lock_table.hpp"

#include "obs/inspector.hpp"
#include "obs/json.hpp"

namespace script::lockdb {

void LockTable::publish(const char* name, const std::string& item,
                        LockMode mode, OwnerId owner) const {
  bus_->publish({obs::EventKind::Instant, obs::Subsystem::Lock,
                 obs::kAutoTime, obs::kNoPid, obs::kNoLane, name,
                 item + (mode == LockMode::Exclusive ? " X" : " S"),
                 static_cast<double>(owner)});
}

bool LockTable::can_acquire(const std::string& item, LockMode mode,
                            OwnerId owner) const {
  const auto it = entries_.find(item);
  if (it == entries_.end()) return true;
  const Entry& e = it->second;
  if (e.owners.count(owner)) {
    // Re-acquisition / upgrade: allowed only if sole owner or mode
    // doesn't strengthen.
    if (mode == LockMode::Exclusive && e.mode != LockMode::Exclusive &&
        e.owners.size() > 1) {
      ++denials_;
      if (bus_ != nullptr && bus_->wants(obs::Subsystem::Lock))
        publish("lock.conflict", item, mode, owner);
      return false;
    }
    return true;
  }
  if (mode == LockMode::Shared && e.mode == LockMode::Shared) return true;
  ++denials_;
  if (bus_ != nullptr && bus_->wants(obs::Subsystem::Lock))
    publish("lock.conflict", item, mode, owner);
  return false;
}

bool LockTable::acquire(const std::string& item, LockMode mode,
                        OwnerId owner) {
  // With a clock installed, expired leases are reclaimed before the
  // compatibility test: a crashed client's stale grant never blocks a
  // live one past its lease.
  if (clock_) reap_expired(clock_());
  if (!can_acquire(item, mode, owner)) return false;
  Entry& e = entries_[item];
  e.owners.insert(owner);
  if (mode == LockMode::Exclusive || e.owners.size() == 1) e.mode = mode;
  ++grants_;
  if (bus_ != nullptr && bus_->wants(obs::Subsystem::Lock))
    publish("lock.acquire", item, mode, owner);
  return true;
}

bool LockTable::acquire_leased(const std::string& item, LockMode mode,
                               OwnerId owner, std::uint64_t expires_at) {
  if (!acquire(item, mode, owner)) return false;
  entries_[item].leases[owner] = expires_at;  // fresh grant or renewal
  return true;
}

AcquireOutcome LockTable::acquire(const std::string& item, LockMode mode,
                                  OwnerId owner, std::uint64_t now,
                                  std::uint64_t deadline) {
  if (now >= deadline) {
    ++deadline_expiries_;
    if (bus_ != nullptr && bus_->wants(obs::Subsystem::Lock))
      publish("lock.deadline_expired", item, mode, owner);
    return AcquireOutcome::DeadlineExpired;
  }
  return acquire(item, mode, owner) ? AcquireOutcome::Granted
                                    : AcquireOutcome::Denied;
}

AcquireOutcome LockTable::acquire_leased(const std::string& item,
                                         LockMode mode, OwnerId owner,
                                         std::uint64_t expires_at,
                                         std::uint64_t now,
                                         std::uint64_t deadline) {
  const AcquireOutcome out = acquire(item, mode, owner, now, deadline);
  if (out == AcquireOutcome::Granted)
    entries_[item].leases[owner] = expires_at;  // fresh grant or renewal
  return out;
}

std::size_t LockTable::reap_expired(std::uint64_t now) {
  std::size_t reaped = 0;
  const bool observed = bus_ != nullptr && bus_->wants(obs::Subsystem::Lock);
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& e = it->second;
    for (auto lit = e.leases.begin(); lit != e.leases.end();) {
      if (lit->second <= now) {
        e.owners.erase(lit->first);
        ++reaped;
        if (observed)
          publish("lock.lease_expired", it->first, e.mode, lit->first);
        lit = e.leases.erase(lit);
      } else {
        ++lit;
      }
    }
    if (e.owners.empty())
      it = entries_.erase(it);
    else
      ++it;
  }
  leases_reaped_ += reaped;
  return reaped;
}

std::size_t LockTable::leased_count() const {
  std::size_t n = 0;
  for (const auto& [item, e] : entries_) n += e.leases.size();
  return n;
}

void LockTable::release(const std::string& item, OwnerId owner) {
  const auto it = entries_.find(item);
  if (it == entries_.end()) return;
  it->second.leases.erase(owner);
  if (it->second.owners.erase(owner) > 0 && bus_ != nullptr &&
      bus_->wants(obs::Subsystem::Lock))
    publish("lock.release", item, it->second.mode, owner);
  if (it->second.owners.empty()) entries_.erase(it);
}

std::size_t LockTable::release_all(OwnerId owner) {
  std::size_t dropped = 0;
  const bool observed = bus_ != nullptr && bus_->wants(obs::Subsystem::Lock);
  for (auto it = entries_.begin(); it != entries_.end();) {
    it->second.leases.erase(owner);
    if (it->second.owners.erase(owner) > 0) {
      ++dropped;
      if (observed)
        publish("lock.release", it->first, it->second.mode, owner);
    }
    if (it->second.owners.empty())
      it = entries_.erase(it);
    else
      ++it;
  }
  return dropped;
}

bool LockTable::holds(const std::string& item, OwnerId owner) const {
  const auto it = entries_.find(item);
  return it != entries_.end() && it->second.owners.count(owner) > 0;
}

std::size_t LockTable::holder_count(const std::string& item) const {
  const auto it = entries_.find(item);
  return it == entries_.end() ? 0 : it->second.owners.size();
}

std::string LockTable::snapshot_json() const {
  obs::json::Writer w;
  w.object();
  w.key("held").value(static_cast<std::uint64_t>(entries_.size()));
  w.key("grants").value(grants_);
  w.key("denials").value(denials_);
  w.key("leases_reaped").value(leases_reaped_);
  // Appears only once a deadline has actually expired, so snapshots of
  // deadline-free runs stay byte-identical.
  if (deadline_expiries_ > 0)
    w.key("deadline_expiries").value(deadline_expiries_);
  w.key("items").array();
  for (const auto& [item, e] : entries_) {
    w.object();
    w.key("item").value(item);
    w.key("mode").value(e.mode == LockMode::Exclusive ? "exclusive"
                                                      : "shared");
    w.key("owners").array();
    for (const OwnerId o : e.owners) {
      w.object();
      w.key("owner").value(static_cast<std::uint64_t>(o));
      const auto lease = e.leases.find(o);
      if (lease != e.leases.end())
        w.key("lease_expiry").value(lease->second);
      w.end();
    }
    w.end().end();
  }
  w.end().end();
  return w.str();
}

std::size_t LockTable::attach_inspector(obs::Inspector& inspector) {
  return inspector.attach("locks", [this] { return snapshot_json(); });
}

}  // namespace script::lockdb
