// The replicated database substrate of the paper's lock-manager example:
// "Consider n nodes in a network, each of which can hold a copy of a
// database. At any one time k nodes hold copies. The membership of this
// set of active nodes may change, but it always has k members."
//
// Lock tables are preserved across membership changes ("if a reader is
// granted a read lock in one performance, some lock manager will have a
// record of that lock on a subsequent performance"): a node leaving the
// active set hands its table to its replacement.
#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <vector>

#include "lockdb/lock_table.hpp"

namespace script::lockdb {

using NodeId = std::size_t;

class ReplicaSet {
 public:
  /// n total nodes, of which the first k start active.
  ReplicaSet(std::size_t n, std::size_t k);

  std::size_t total_nodes() const { return n_; }
  std::size_t active_count() const { return k_; }
  const std::vector<NodeId>& active() const { return active_; }
  bool is_active(NodeId node) const;

  /// The lock table replica held by an ACTIVE node.
  LockTable& table(NodeId node);
  const LockTable& table(NodeId node) const;

  /// Replace active node `leaving` with inactive node `joining`,
  /// transferring the lock table (the paper's membership change,
  /// normally negotiated by "a separate script" — see
  /// MembershipChangeScript in scripts/lock_manager).
  void swap_member(NodeId leaving, NodeId joining);

  std::uint64_t epoch() const { return epoch_; }

 private:
  std::size_t index_of(NodeId node) const;

  std::size_t n_;
  std::size_t k_;
  std::vector<NodeId> active_;
  std::vector<std::unique_ptr<LockTable>> tables_;  // parallel to active_
  std::uint64_t epoch_ = 0;
};

}  // namespace script::lockdb
