// The read/write locking strategies the paper says a lock-manager
// script "can hide":
//   * "Lock one node to read, all nodes to write."  (ReadOneWriteAll)
//   * "Lock a majority of nodes to read or write."  (MajorityLocking)
//   * "Multiple granularity locking as described by Korth." (see
//     granularity.hpp; GranularityStrategy adapts it to this interface)
//
// A strategy decides HOW MANY replicas must grant, and in which order to
// try them; the script decides WHO talks to WHOM. Strategies are used
// both by the lock-manager script bodies and directly by the C3 bench.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lockdb/granularity.hpp"
#include "lockdb/replica.hpp"

namespace script::lockdb {

struct LockOutcome {
  bool granted = false;
  /// Replicas that granted (and still hold) the lock.
  std::vector<NodeId> holders;
  /// Replicas contacted before the outcome was decided.
  std::size_t replicas_contacted = 0;
};

class LockStrategy {
 public:
  virtual ~LockStrategy() = default;
  virtual std::string name() const = 0;

  virtual LockOutcome read_lock(ReplicaSet& rs, const std::string& item,
                                OwnerId owner) = 0;
  virtual LockOutcome write_lock(ReplicaSet& rs, const std::string& item,
                                 OwnerId owner) = 0;
  virtual void release(ReplicaSet& rs, const std::string& item,
                       OwnerId owner) = 0;
};

/// One replica suffices to read; every replica must grant a write.
class ReadOneWriteAll final : public LockStrategy {
 public:
  std::string name() const override { return "read-one/write-all"; }
  LockOutcome read_lock(ReplicaSet& rs, const std::string& item,
                        OwnerId owner) override;
  LockOutcome write_lock(ReplicaSet& rs, const std::string& item,
                         OwnerId owner) override;
  void release(ReplicaSet& rs, const std::string& item,
               OwnerId owner) override;
};

/// floor(k/2)+1 replicas must grant either kind of lock.
class MajorityLocking final : public LockStrategy {
 public:
  std::string name() const override { return "majority"; }
  LockOutcome read_lock(ReplicaSet& rs, const std::string& item,
                        OwnerId owner) override;
  LockOutcome write_lock(ReplicaSet& rs, const std::string& item,
                         OwnerId owner) override;
  void release(ReplicaSet& rs, const std::string& item,
               OwnerId owner) override;

 private:
  LockOutcome quorum_lock(ReplicaSet& rs, const std::string& item,
                          OwnerId owner, LockMode mode);
};

/// Korth multiple-granularity locking applied on every replica
/// (read = S on one replica's hierarchy, write = X on all replicas).
/// Items are slash paths into the hierarchy.
class GranularityStrategy final : public LockStrategy {
 public:
  explicit GranularityStrategy(std::size_t replicas);
  std::string name() const override { return "korth-granularity"; }
  LockOutcome read_lock(ReplicaSet& rs, const std::string& item,
                        OwnerId owner) override;
  LockOutcome write_lock(ReplicaSet& rs, const std::string& item,
                         OwnerId owner) override;
  void release(ReplicaSet& rs, const std::string& item,
               OwnerId owner) override;

  GranularityLockTable& hierarchy(std::size_t replica_index);

 private:
  // Granularity tables shadow the ReplicaSet's flat tables (the flat
  // LockTable cannot express intentions).
  std::vector<std::unique_ptr<GranularityLockTable>> tables_;
};

}  // namespace script::lockdb
