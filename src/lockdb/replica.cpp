#include "lockdb/replica.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace script::lockdb {

ReplicaSet::ReplicaSet(std::size_t n, std::size_t k) : n_(n), k_(k) {
  SCRIPT_ASSERT(k > 0 && k <= n, "replica set needs 0 < k <= n");
  for (NodeId i = 0; i < k; ++i) {
    active_.push_back(i);
    tables_.push_back(std::make_unique<LockTable>());
  }
}

bool ReplicaSet::is_active(NodeId node) const {
  return std::find(active_.begin(), active_.end(), node) != active_.end();
}

std::size_t ReplicaSet::index_of(NodeId node) const {
  for (std::size_t i = 0; i < active_.size(); ++i)
    if (active_[i] == node) return i;
  SCRIPT_PANIC("node " + std::to_string(node) + " is not active");
}

LockTable& ReplicaSet::table(NodeId node) {
  return *tables_[index_of(node)];
}

const LockTable& ReplicaSet::table(NodeId node) const {
  return *tables_[index_of(node)];
}

void ReplicaSet::swap_member(NodeId leaving, NodeId joining) {
  SCRIPT_ASSERT(joining < n_, "joining node out of range");
  SCRIPT_ASSERT(!is_active(joining), "joining node already active");
  const std::size_t i = index_of(leaving);
  // The table (with all granted locks) stays with the slot: the joiner
  // inherits the leaver's lock records.
  active_[i] = joining;
  ++epoch_;
}

}  // namespace script::lockdb
