// lockdb over the wire — the paper's replicated-database example
// (§II / Fig 5) deployed across REAL process boundaries.
//
// Everything before this PR kept the k lock-table replicas inside one
// scheduler; WireReplica/WireDriver put each replica behind a
// Transport (TcpTransport in separate OS processes, SimTransport in
// the deterministic CI twin) and make the fault-tolerance stack carry
// its weight end to end:
//
//   * locks are LEASED: a client that dies silent (kill -9) stops
//     renewing, and the replica's housekeeping sweep reaps its grants
//     — lock state is soft, rebuilt from liveness;
//   * updates are 2PC over a WRITE-AHEAD LOG: prepare stages writes
//     and logs them, the decision is logged before it is acted on,
//     and a restarted replica replays its WAL, resolves in-doubt
//     transactions by asking the survivors (presumed abort when
//     nobody knows), then catches up wholesale from the current
//     primary — data state is hard, rebuilt from the log;
//   * the replica set has a PRIMARY (lowest live id): when the
//     primary is declared gone (PeerSupervisor escalation feeds
//     note_peer_gone), the next survivor takes the role over and
//     publishes the takeover — role state is derived, rebuilt from
//     membership.
//
// Protocol: every request is one Wire message under the "lkreq" tag,
// payload "<op> <reply_tag> <args...>" (space-separated tokens; the
// reply goes back to the sender under <reply_tag>). Ops: acq rel prep
// dec get digest outcome sync role. See wire_server.cpp for the
// grammar of each.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lockdb/lock_table.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/sim_log.hpp"
#include "runtime/wire.hpp"

namespace script::lockdb {

/// Append-only key/value log with last-writer-wins reads — the
/// stable-storage seam. SimWal is the in-process twin (SimLogStore
/// survives fiber crashes); FileWal is a real file surviving kill -9.
class Wal {
 public:
  virtual ~Wal() = default;
  virtual void append(const std::string& key, const std::string& value) = 0;
  virtual std::optional<std::string> last(const std::string& key) const = 0;
  virtual std::vector<std::pair<std::string, std::string>> all() const = 0;
};

class SimWal final : public Wal {
 public:
  explicit SimWal(runtime::SimLog& log) : log_(&log) {}
  void append(const std::string& key, const std::string& value) override;
  std::optional<std::string> last(const std::string& key) const override;
  std::vector<std::pair<std::string, std::string>> all() const override;

 private:
  runtime::SimLog* log_;
};

/// One record per line, "key\tvalue\n", tabs/newlines/backslashes
/// escaped. Appends are flushed line-atomically; a torn final line
/// (crash mid-append) is dropped at load, exactly like a real WAL
/// discarding a torn tail record.
class FileWal final : public Wal {
 public:
  explicit FileWal(std::string path);
  void append(const std::string& key, const std::string& value) override;
  std::optional<std::string> last(const std::string& key) const override;
  std::vector<std::pair<std::string, std::string>> all() const override;

 private:
  std::string path_;
  std::vector<std::pair<std::string, std::string>> records_;
};

struct WireReplicaOptions {
  runtime::PeerId self = 0;
  std::vector<runtime::PeerId> replicas;  // all replica ids, incl. self
  std::uint64_t housekeeping_ticks = 50;  // idle sweep period (leases)
  std::uint64_t recover_timeout = 200;    // per in-doubt outcome query
};

class WireReplica {
 public:
  WireReplica(runtime::Scheduler& sched, runtime::Wire& wire,
              LockTable& table, Wal& wal, WireReplicaOptions opts);

  /// WAL replay + in-doubt resolution + primary catch-up. Call before
  /// start() on every incarnation (a fresh WAL replays to nothing).
  void recover();

  /// Spawn the serve fiber.
  void start();
  void stop();

  /// Membership escalation input (wire PeerSupervisor::on_gone here,
  /// or drive it from the harness): `peer` is dead for role purposes.
  void note_peer_gone(runtime::PeerId peer);
  /// Inverse input (PeerSupervisor::on_reenroll): `peer` restarted with
  /// a higher incarnation and is role-eligible again.
  void note_peer_back(runtime::PeerId peer);

  runtime::PeerId primary() const;
  bool is_primary() const { return primary() == opts_.self; }

  const std::map<std::string, std::string>& data() const { return kv_; }
  /// FNV-1a over the sorted kv contents: equal digests = equal state.
  std::string digest() const;

  std::uint64_t requests_served() const { return served_; }
  std::uint64_t committed() const { return committed_; }
  std::uint64_t aborted() const { return aborted_; }
  std::uint64_t indoubt_resolved() const { return indoubt_; }
  std::uint64_t takeovers() const { return takeovers_; }
  std::uint64_t replayed() const { return replayed_; }

  void attach_bus(obs::EventBus* bus) { bus_ = bus; }

 private:
  void serve();
  void handle(const runtime::Wire::Msg& m);
  void apply_staged(const std::string& txn, const std::string& staged);
  void decide(const std::string& txn, bool commit);
  void recompute_primary(const char* why);
  void publish(const char* name, std::string detail, double value = 0);
  /// One request/reply round-trip to another replica (recovery path).
  bool ask(runtime::PeerId to, const std::string& op_and_args,
           std::string* reply, std::uint64_t timeout);

  runtime::Scheduler* sched_;
  runtime::Wire* wire_;
  LockTable* table_;
  Wal* wal_;
  WireReplicaOptions opts_;
  obs::EventBus* bus_ = nullptr;

  std::map<std::string, std::string> kv_;
  std::map<std::string, std::string> staged_;  // txn -> "k=v;k=v"
  std::set<runtime::PeerId> dead_;
  runtime::PeerId primary_ = runtime::kNoPeer;
  bool stopping_ = false;
  std::uint64_t reply_seq_ = 0;

  std::uint64_t served_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t indoubt_ = 0;
  std::uint64_t takeovers_ = 0;
  std::uint64_t replayed_ = 0;
};

struct WireDriverOptions {
  runtime::PeerId self = 100;
  std::vector<runtime::PeerId> replicas;
  std::uint64_t reply_timeout = 300;  // per request attempt
  unsigned attempts = 2;              // tries before declaring dead
  std::size_t min_survivors = 1;      // Abort policy floor
  std::uint64_t lease_ticks = 500;    // lock lease length
};

/// The client/coordinator: leased lock acquisition on every live
/// replica (the Fig 5 all-managers discipline) and 2PC updates with a
/// coordinator-side WAL. A replica that exhausts its reply attempts is
/// declared dead and the driver DEGRADES to the survivors; when fewer
/// than min_survivors remain it refuses further work (Abort policy).
class WireDriver {
 public:
  WireDriver(runtime::Scheduler& sched, runtime::Wire& wire, Wal& wal,
             WireDriverOptions opts);

  /// Acquire `item` for `txn` on every live replica. All-or-nothing:
  /// a denial releases what was taken and returns false.
  bool acquire(std::uint32_t txn, const std::string& item, LockMode mode);
  void release(std::uint32_t txn);

  /// 2PC: prepare `writes` on all live replicas under `txn` (which
  /// must hold X locks on every written item), decide from the votes,
  /// log the decision, drive it. Returns true iff committed.
  bool update(std::uint32_t txn,
              const std::vector<std::pair<std::string, std::string>>& writes);

  std::optional<std::string> get(const std::string& key);
  std::string digest_of(runtime::PeerId replica);
  /// Re-admit a peer previously declared dead (it restarted).
  void revive(runtime::PeerId peer);

  std::vector<runtime::PeerId> live() const;
  bool degraded() const { return !dead_.empty(); }
  std::uint64_t commits() const { return commits_; }
  std::uint64_t aborts() const { return aborts_; }
  std::uint64_t peers_declared_dead() const { return declared_dead_; }

  void attach_bus(obs::EventBus* bus) { bus_ = bus; }

 private:
  bool request(runtime::PeerId to, const std::string& op_and_args,
               std::string* reply);
  void declare_dead(runtime::PeerId peer, const char* why);
  void publish(const char* name, std::string detail, double value = 0);

  runtime::Scheduler* sched_;
  runtime::Wire* wire_;
  Wal* wal_;
  WireDriverOptions opts_;
  obs::EventBus* bus_ = nullptr;
  std::set<runtime::PeerId> dead_;
  std::uint64_t reply_seq_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t aborts_ = 0;
  std::uint64_t declared_dead_ = 0;
};

/// Shared helpers (also used by tests and the lockdb_server example).
std::string lockdb_serialize_kv(const std::map<std::string, std::string>& kv);
std::map<std::string, std::string> lockdb_parse_kv(const std::string& s);
std::string lockdb_digest(const std::map<std::string, std::string>& kv);

}  // namespace script::lockdb
