#include "lockdb/wire_server.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace script::lockdb {

namespace {

constexpr const char* kReqTag = "lkreq";

std::vector<std::string> tokens(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string t;
  while (in >> t) out.push_back(t);
  return out;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\t')
      out += "\\t";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    out += s[i] == 't' ? '\t' : s[i] == 'n' ? '\n' : s[i];
  }
  return out;
}

}  // namespace

// ---- kv helpers ----

std::string lockdb_serialize_kv(const std::map<std::string, std::string>& kv) {
  std::string out;
  for (const auto& [k, v] : kv) {
    if (!out.empty()) out += ';';
    out += k + "=" + v;
  }
  return out;
}

std::map<std::string, std::string> lockdb_parse_kv(const std::string& s) {
  std::map<std::string, std::string> kv;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t semi = s.find(';', pos);
    if (semi == std::string::npos) semi = s.size();
    const std::string pair = s.substr(pos, semi - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos)
      kv[pair.substr(0, eq)] = pair.substr(eq + 1);
    pos = semi + 1;
  }
  return kv;
}

std::string lockdb_digest(const std::map<std::string, std::string>& kv) {
  // FNV-1a 64 over the sorted (map order) "k=v\n" stream.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
  };
  for (const auto& [k, v] : kv) {
    mix(k);
    mix("=");
    mix(v);
    mix("\n");
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

// ---- Wal backends ----

void SimWal::append(const std::string& key, const std::string& value) {
  log_->append(key, value);
}

std::optional<std::string> SimWal::last(const std::string& key) const {
  return log_->last(key);
}

std::vector<std::pair<std::string, std::string>> SimWal::all() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& r : log_->records()) out.emplace_back(r.key, r.value);
  return out;
}

FileWal::FileWal(std::string path) : path_(std::move(path)) {
  std::FILE* f = std::fopen(path_.c_str(), "r");
  if (f == nullptr) return;
  std::string line;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c != '\n') {
      line += static_cast<char>(c);
      continue;
    }
    // Only newline-terminated lines count: a crash mid-append leaves a
    // torn tail that must be discarded, same as any real WAL.
    const std::size_t tab = line.find('\t');
    if (tab != std::string::npos)
      records_.emplace_back(unescape(line.substr(0, tab)),
                            unescape(line.substr(tab + 1)));
    line.clear();
  }
  std::fclose(f);
}

void FileWal::append(const std::string& key, const std::string& value) {
  records_.emplace_back(key, value);
  std::FILE* f = std::fopen(path_.c_str(), "a");
  if (f == nullptr) return;
  const std::string line = escape(key) + "\t" + escape(value) + "\n";
  std::fwrite(line.data(), 1, line.size(), f);
  std::fclose(f);  // close flushes; good enough durability for the demo
}

std::optional<std::string> FileWal::last(const std::string& key) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it)
    if (it->first == key) return it->second;
  return std::nullopt;
}

std::vector<std::pair<std::string, std::string>> FileWal::all() const {
  return records_;
}

// ---- WireReplica ----

WireReplica::WireReplica(runtime::Scheduler& sched, runtime::Wire& wire,
                         LockTable& table, Wal& wal,
                         WireReplicaOptions opts)
    : sched_(&sched),
      wire_(&wire),
      table_(&table),
      wal_(&wal),
      opts_(std::move(opts)) {
  std::sort(opts_.replicas.begin(), opts_.replicas.end());
  recompute_primary("init");
}

void WireReplica::publish(const char* name, std::string detail,
                          double value) {
  if (bus_ == nullptr || !bus_->wants(obs::Subsystem::Recovery)) return;
  obs::Event e;
  e.subsystem = obs::Subsystem::Recovery;
  e.name = name;
  e.detail = std::move(detail);
  e.value = value;
  bus_->publish(e);
}

runtime::PeerId WireReplica::primary() const { return primary_; }

void WireReplica::recompute_primary(const char* why) {
  runtime::PeerId p = runtime::kNoPeer;
  for (runtime::PeerId id : opts_.replicas) {
    if (dead_.count(id) == 0) {
      p = id;
      break;
    }
  }
  const runtime::PeerId old = primary_;
  primary_ = p;
  if (old != primary_ && primary_ == opts_.self && old != runtime::kNoPeer) {
    ++takeovers_;
    publish("lockdb.takeover",
            "from=" + std::to_string(old) + " " + why,
            static_cast<double>(opts_.self));
  }
}

void WireReplica::note_peer_gone(runtime::PeerId peer) {
  if (dead_.insert(peer).second) recompute_primary("peer gone");
}

void WireReplica::note_peer_back(runtime::PeerId peer) {
  if (dead_.erase(peer) != 0) recompute_primary("peer back");
}

void WireReplica::apply_staged(const std::string& txn,
                               const std::string& staged) {
  for (const auto& [k, v] : lockdb_parse_kv(staged)) kv_[k] = v;
  (void)txn;
}

void WireReplica::decide(const std::string& txn, bool commit) {
  wal_->append("decision." + txn, commit ? "commit" : "abort");
  const auto it = staged_.find(txn);
  if (commit) {
    if (it != staged_.end()) apply_staged(txn, it->second);
    ++committed_;
  } else {
    ++aborted_;
  }
  if (it != staged_.end()) staged_.erase(it);
}

bool WireReplica::ask(runtime::PeerId to, const std::string& op_and_args,
                      std::string* reply, std::uint64_t timeout) {
  const std::string rtag =
      "rr" + std::to_string(opts_.self) + "." + std::to_string(reply_seq_++);
  const std::size_t sp = op_and_args.find(' ');
  const std::string op = op_and_args.substr(0, sp);
  const std::string rest =
      sp == std::string::npos ? "" : op_and_args.substr(sp);
  wire_->post(to, kReqTag, op + " " + rtag + rest);
  runtime::Wire::Msg m;
  if (!wire_->recv(rtag, &m, timeout, to)) return false;
  *reply = m.payload;
  return true;
}

void WireReplica::recover() {
  // Pass 1 — replay what stable storage remembers, in append order.
  // A snapshot resets the world (catch-up from a previous recovery);
  // prepare stages; a decision resolves its stage.
  for (const auto& [k, v] : wal_->all()) {
    ++replayed_;
    if (k == "snapshot") {
      kv_ = lockdb_parse_kv(v);
      staged_.clear();
    } else if (k.rfind("prep.", 0) == 0) {
      staged_[k.substr(5)] = v;
    } else if (k.rfind("decision.", 0) == 0) {
      const std::string txn = k.substr(9);
      const auto it = staged_.find(txn);
      if (v == "commit" && it != staged_.end())
        apply_staged(txn, it->second);
      if (it != staged_.end()) staged_.erase(it);
    }
  }
  publish("lockdb.replay", "records", static_cast<double>(replayed_));

  // Pass 2 — in-doubt transactions: prepared, never decided. Ask the
  // survivors (any replica that saw the decision logged it); when
  // nobody knows, the transaction is PRESUMED ABORTED — the standard
  // resolution, and the safe one (an undecided prepare can never have
  // been acted on elsewhere without a logged decision somewhere).
  std::vector<std::string> indoubt;
  for (const auto& [txn, staged] : staged_) indoubt.push_back(txn);
  for (const std::string& txn : indoubt) {
    std::string outcome = "unknown";
    for (runtime::PeerId id : opts_.replicas) {
      if (id == opts_.self || dead_.count(id) != 0) continue;
      std::string reply;
      if (ask(id, "outcome " + txn, &reply, opts_.recover_timeout) &&
          reply != "unknown") {
        outcome = reply;
        break;
      }
    }
    ++indoubt_;
    publish("lockdb.indoubt", "txn=" + txn + " -> " + outcome);
    decide(txn, outcome == "commit");
  }

  // Pass 3 — catch up on everything committed while we were dead: the
  // current primary's state is authoritative. Snapshot it into our WAL
  // so the NEXT recovery starts from here.
  for (runtime::PeerId id : opts_.replicas) {
    if (id == opts_.self || dead_.count(id) != 0) continue;
    std::string reply;
    if (!ask(id, "digest", &reply, opts_.recover_timeout)) continue;
    if (reply == digest()) break;  // already consistent
    std::string dump;
    if (ask(id, "sync", &dump, opts_.recover_timeout)) {
      // Survivor-wins merge, not replace: there are no deletes in this
      // model, so the union is correct — and an in-doubt commit we just
      // resolved locally (whose phase 2 never reached the survivors)
      // must not be wiped by the catch-up.
      for (const auto& [k, v] : lockdb_parse_kv(dump)) kv_[k] = v;
      wal_->append("snapshot", lockdb_serialize_kv(kv_));
      publish("lockdb.catchup", "from=" + std::to_string(id),
              static_cast<double>(kv_.size()));
    }
    break;
  }
}

void WireReplica::start() {
  stopping_ = false;
  sched_->spawn("lockdb.replica" + std::to_string(opts_.self),
                [this] { serve(); });
}

void WireReplica::stop() { stopping_ = true; }

void WireReplica::serve() {
  while (!stopping_) {
    runtime::Wire::Msg m;
    if (!wire_->recv(kReqTag, &m, opts_.housekeeping_ticks)) {
      if (!wire_->running()) break;
      // Idle housekeeping: reap expired leases so locks held by silent
      // (dead) clients drain even when no request ever arrives again.
      table_->reap_expired(sched_->now());
      continue;
    }
    handle(m);
  }
}

void WireReplica::handle(const runtime::Wire::Msg& m) {
  const std::vector<std::string> tok = tokens(m.payload);
  if (tok.size() < 2) return;  // no op or no reply tag: undeliverable
  const std::string& op = tok[0];
  const std::string& rtag = tok[1];
  ++served_;
  auto reply = [&](const std::string& payload) {
    wire_->post(m.from, rtag, payload);
  };

  if (op == "acq" && tok.size() == 6) {
    // acq <r> <txn> <item> <S|X> <lease_ticks>
    const auto txn = static_cast<OwnerId>(std::stoul(tok[2]));
    const LockMode mode =
        tok[4] == "X" ? LockMode::Exclusive : LockMode::Shared;
    const std::uint64_t lease = std::stoull(tok[5]);
    table_->reap_expired(sched_->now());
    const bool ok =
        table_->acquire_leased(tok[3], mode, txn, sched_->now() + lease);
    reply(ok ? "ok" : "no");
  } else if (op == "rel" && tok.size() == 3) {
    // rel <r> <txn>
    const auto txn = static_cast<OwnerId>(std::stoul(tok[2]));
    reply("ok " + std::to_string(table_->release_all(txn)));
  } else if (op == "prep" && tok.size() >= 3) {
    // prep <r> <txn> <k=v;k=v>   (vote yes only when the txn holds an
    // X lock on every item it wants to write: 2PC rides ON the locks)
    const std::string& txn = tok[2];
    const std::string staged = tok.size() > 3 ? tok[3] : "";
    const auto owner = static_cast<OwnerId>(std::stoul(txn));
    bool can = true;
    for (const auto& [k, v] : lockdb_parse_kv(staged))
      if (!table_->holds(k, owner)) can = false;
    if (can) {
      staged_[txn] = staged;
      wal_->append("prep." + txn, staged);
      reply("yes");
    } else {
      reply("no");
    }
  } else if (op == "dec" && tok.size() == 4) {
    // dec <r> <txn> <commit|abort>
    const std::string& txn = tok[2];
    decide(txn, tok[3] == "commit");
    table_->release_all(static_cast<OwnerId>(std::stoul(txn)));
    reply("ack");
  } else if (op == "get" && tok.size() == 3) {
    const auto it = kv_.find(tok[2]);
    reply(it == kv_.end() ? "?" : it->second);
  } else if (op == "digest" && tok.size() == 2) {
    reply(digest());
  } else if (op == "outcome" && tok.size() == 3) {
    const auto v = wal_->last("decision." + tok[2]);
    reply(v.value_or("unknown"));
  } else if (op == "sync" && tok.size() == 2) {
    reply(lockdb_serialize_kv(kv_));
  } else if (op == "role" && tok.size() == 2) {
    reply(std::to_string(primary_));
  } else {
    reply("err bad request");
  }
}

std::string WireReplica::digest() const { return lockdb_digest(kv_); }

// ---- WireDriver ----

WireDriver::WireDriver(runtime::Scheduler& sched, runtime::Wire& wire,
                       Wal& wal, WireDriverOptions opts)
    : sched_(&sched), wire_(&wire), wal_(&wal), opts_(std::move(opts)) {
  std::sort(opts_.replicas.begin(), opts_.replicas.end());
}

void WireDriver::publish(const char* name, std::string detail,
                         double value) {
  if (bus_ == nullptr || !bus_->wants(obs::Subsystem::Recovery)) return;
  obs::Event e;
  e.subsystem = obs::Subsystem::Recovery;
  e.name = name;
  e.detail = std::move(detail);
  e.value = value;
  bus_->publish(e);
}

std::vector<runtime::PeerId> WireDriver::live() const {
  std::vector<runtime::PeerId> out;
  for (runtime::PeerId id : opts_.replicas)
    if (dead_.count(id) == 0) out.push_back(id);
  return out;
}

void WireDriver::declare_dead(runtime::PeerId peer, const char* why) {
  if (!dead_.insert(peer).second) return;
  ++declared_dead_;
  publish("lockdb.peer_dead", std::string(why),
          static_cast<double>(peer));
}

void WireDriver::revive(runtime::PeerId peer) { dead_.erase(peer); }

bool WireDriver::request(runtime::PeerId to, const std::string& op_and_args,
                         std::string* reply) {
  const std::size_t sp = op_and_args.find(' ');
  const std::string op = op_and_args.substr(0, sp);
  const std::string rest =
      sp == std::string::npos ? "" : op_and_args.substr(sp);
  for (unsigned attempt = 0; attempt < opts_.attempts; ++attempt) {
    // Fresh reply tag per attempt: a late answer to attempt k must not
    // satisfy attempt k+1 of a DIFFERENT request later on.
    const std::string rtag = "rd" + std::to_string(opts_.self) + "." +
                             std::to_string(reply_seq_++);
    wire_->post(to, kReqTag, op + " " + rtag + rest);
    runtime::Wire::Msg m;
    if (wire_->recv(rtag, &m, opts_.reply_timeout, to)) {
      *reply = m.payload;
      return true;
    }
  }
  declare_dead(to, "no reply");
  return false;
}

bool WireDriver::acquire(std::uint32_t txn, const std::string& item,
                         LockMode mode) {
  const std::vector<runtime::PeerId> targets = live();
  if (targets.size() < opts_.min_survivors) return false;
  std::vector<runtime::PeerId> granted;
  bool ok = true;
  for (runtime::PeerId id : targets) {
    std::string reply;
    if (request(id,
                "acq " + std::to_string(txn) + " " + item + " " +
                    (mode == LockMode::Exclusive ? "X" : "S") + " " +
                    std::to_string(opts_.lease_ticks),
                &reply) &&
        reply == "ok") {
      granted.push_back(id);
    } else if (dead_.count(id) != 0) {
      // Dead replica: degrade, don't fail the acquire.
      continue;
    } else {
      ok = false;
      break;
    }
  }
  if (!ok) {
    for (runtime::PeerId id : granted) {
      std::string ignored;
      request(id, "rel " + std::to_string(txn), &ignored);
    }
  }
  return ok;
}

void WireDriver::release(std::uint32_t txn) {
  for (runtime::PeerId id : live()) {
    std::string ignored;
    request(id, "rel " + std::to_string(txn), &ignored);
  }
}

bool WireDriver::update(
    std::uint32_t txn,
    const std::vector<std::pair<std::string, std::string>>& writes) {
  std::vector<runtime::PeerId> targets = live();
  if (targets.size() < opts_.min_survivors) {
    ++aborts_;
    publish("lockdb.refused", "below min_survivors");
    return false;
  }
  std::map<std::string, std::string> wmap(writes.begin(), writes.end());
  const std::string staged = lockdb_serialize_kv(wmap);
  const std::string t = std::to_string(txn);

  // Phase 1 — prepare everywhere. A replica that dies mid-prepare
  // degrades the set; a live "no" vetoes.
  bool all_yes = true;
  for (runtime::PeerId id : targets) {
    std::string vote;
    if (!request(id, "prep " + t + " " + staged, &vote)) continue;  // dead
    if (vote != "yes") {
      all_yes = false;
      break;
    }
  }
  if (live().size() < opts_.min_survivors) all_yes = false;

  // The decision hits OUR log before any participant learns it: a
  // coordinator crash after this line re-drives the same decision, and
  // a participant crash resolves its in-doubt against this record via
  // the survivors.
  wal_->append("decision." + t, all_yes ? "commit" : "abort");

  // Phase 2 — drive the decision to whoever is still alive.
  for (runtime::PeerId id : live()) {
    std::string ack;
    request(id, "dec " + t + " " + (all_yes ? "commit" : "abort"), &ack);
  }
  if (all_yes)
    ++commits_;
  else
    ++aborts_;
  return all_yes;
}

std::optional<std::string> WireDriver::get(const std::string& key) {
  for (runtime::PeerId id : live()) {
    std::string reply;
    if (request(id, "get " + key, &reply))
      return reply == "?" ? std::nullopt
                          : std::optional<std::string>(reply);
  }
  return std::nullopt;
}

std::string WireDriver::digest_of(runtime::PeerId replica) {
  std::string reply;
  if (!request(replica, "digest", &reply)) return "";
  return reply;
}

}  // namespace script::lockdb
