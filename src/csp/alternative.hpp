// CSP alternative (guarded) and repetitive commands.
//
// An Alternative is one evaluation of a CSP alternative command:
//   [ g1; io1 -> body1  []  g2; io2 -> body2  [] ... ]
// Guards are evaluated at construction (as in CSP, once per attempt);
// branches whose boolean guard is false or whose named partner has
// terminated are *failed*. select() commits to exactly one ready branch
// (nondeterministically among candidates), runs its body, and returns
// its index — or kFailed when every branch has failed, which is the CSP
// termination rule that `repetitive` uses to exit DO-OD loops.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "csp/net.hpp"

namespace script::csp {

class Alternative {
 public:
  static constexpr int kFailed = -1;

  explicit Alternative(Net& net) : net_(&net) {}

  /// `guard; from ? tag(x) -> body(x)`
  template <typename T>
  int recv_case(ProcessId from, const std::string& tag,
                std::function<void(T)> body, bool guard = true) {
    return add_branch(detail::Dir::Recv, from, {}, tag,
                      std::type_index(typeid(T)), Message(),
                      [body = std::move(body)](ProcessId, Message& m) {
                        if (body) body(m.as<T>());
                      },
                      guard);
  }

  /// `guard; (any) ? tag(x) -> body(sender, x)` — never fails.
  template <typename T>
  int recv_any_case(const std::string& tag,
                    std::function<void(ProcessId, T)> body,
                    bool guard = true) {
    return add_branch(detail::Dir::Recv, kAnyProcess, {}, tag,
                      std::type_index(typeid(T)), Message(),
                      [body = std::move(body)](ProcessId who, Message& m) {
                        if (body) body(who, m.as<T>());
                      },
                      guard);
  }

  /// Receive from any of `candidates`; branch fails when all terminate.
  template <typename T>
  int recv_from_case(std::vector<ProcessId> candidates,
                     const std::string& tag,
                     std::function<void(ProcessId, T)> body,
                     bool guard = true) {
    return add_branch(detail::Dir::Recv, kAnyProcess, std::move(candidates),
                      tag, std::type_index(typeid(T)), Message(),
                      [body = std::move(body)](ProcessId who, Message& m) {
                        if (body) body(who, m.as<T>());
                      },
                      guard);
  }

  /// `guard; to ! tag(value) -> body()` — output guard (CSP extension).
  template <typename T>
  int send_case(ProcessId to, const std::string& tag, T value,
                std::function<void()> body = nullptr, bool guard = true) {
    return add_branch(detail::Dir::Send, to, {}, tag,
                      std::type_index(typeid(T)),
                      Message::of<T>(std::move(value)),
                      [body = std::move(body)](ProcessId, Message&) {
                        if (body) body();
                      },
                      guard);
  }

  /// Block until one branch communicates; run its body; return its index.
  /// Returns kFailed when no branch can ever proceed.
  int select();

  std::size_t branch_count() const { return branches_.size(); }

 private:
  struct Branch {
    detail::Dir dir;
    ProcessId peer;
    std::vector<ProcessId> peer_set;
    std::string tag;
    std::type_index type;
    Message out_value;  // payload for send branches
    std::function<void(ProcessId, Message&)> handler;
    bool guard;
  };

  int add_branch(detail::Dir dir, ProcessId peer,
                 std::vector<ProcessId> peer_set, const std::string& tag,
                 std::type_index type, Message out_value,
                 std::function<void(ProcessId, Message&)> handler,
                 bool guard);
  bool branch_viable(const Branch& b) const;

  Net* net_;
  std::vector<Branch> branches_;
};

/// CSP repetitive command *[ ... ]: rebuild the alternative each
/// iteration (so boolean guards are re-evaluated, as CSP requires) and
/// loop until every branch has failed. Returns the iteration count.
std::size_t repetitive(Net& net,
                       const std::function<void(Alternative&)>& build);

}  // namespace script::csp
