// Type-erased message payload for CSP-style rendezvous.
//
// A CSP communication matches on (sender, receiver, tag, payload type);
// the payload type is part of the pattern, as in CSP's typed channels.
#pragma once

#include <any>
#include <typeindex>
#include <utility>

#include "support/panic.hpp"

namespace script::csp {

class Message {
 public:
  Message() : type_(typeid(void)) {}

  template <typename T>
  static Message of(T value) {
    Message m;
    m.payload_ = std::move(value);
    m.type_ = typeid(T);
    return m;
  }

  template <typename T>
  T as() const {
    SCRIPT_ASSERT(type_ == std::type_index(typeid(T)),
                  "Message payload type mismatch");
    return std::any_cast<T>(payload_);
  }

  std::type_index type() const { return type_; }
  bool empty() const { return !payload_.has_value(); }

 private:
  std::any payload_;
  std::type_index type_;
};

}  // namespace script::csp
