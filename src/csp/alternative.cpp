#include "csp/alternative.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace script::csp {

using detail::AltGroup;
using detail::Dir;
using detail::PendingOp;

int Alternative::add_branch(Dir dir, ProcessId peer,
                            std::vector<ProcessId> peer_set,
                            const std::string& tag, std::type_index type,
                            Message out_value,
                            std::function<void(ProcessId, Message&)> handler,
                            bool guard) {
  Branch b{dir,
           peer,
           std::move(peer_set),
           tag,
           type,
           std::move(out_value),
           std::move(handler),
           guard};
  branches_.push_back(std::move(b));
  return static_cast<int>(branches_.size()) - 1;
}

bool Alternative::branch_viable(const Branch& b) const {
  if (!b.guard) return false;
  if (b.peer != kAnyProcess) return !net_->is_terminated(b.peer);
  if (!b.peer_set.empty())
    return std::any_of(b.peer_set.begin(), b.peer_set.end(),
                       [&](ProcessId p) { return !net_->is_terminated(p); });
  return true;  // anonymous input never fails
}

int Alternative::select() {
  Net& net = *net_;
  const ProcessId me = net.scheduler().current();

  std::vector<int> viable;
  for (std::size_t i = 0; i < branches_.size(); ++i)
    if (branch_viable(branches_[i])) viable.push_back(static_cast<int>(i));
  if (viable.empty()) return kFailed;

  // Phase 1: is some branch ready right now? Collect (branch, parked-op)
  // candidate pairs and commit to one nondeterministically.
  struct Candidate {
    int branch;
    PendingOp* parked;
  };
  std::vector<Candidate> ready;
  for (const int bi : viable) {
    const Branch& b = branches_[static_cast<std::size_t>(bi)];
    for (PendingOp* op :
         net.find_matches(b.dir, me, b.peer, b.peer_set, b.tag, b.type))
      ready.push_back({bi, op});
  }
  if (!ready.empty()) {
    const Candidate c =
        ready.size() == 1
            ? ready[0]
            : ready[net.scheduler().rng().pick_index(ready.size())];
    Branch& b = branches_[static_cast<std::size_t>(c.branch)];
    const ProcessId partner = c.parked->owner;
    Message payload =
        net.complete_with(c.parked, b.dir, std::move(b.out_value));
    b.handler(partner, payload);
    return c.branch;
  }

  // Phase 2: park every viable branch as one atomic group and wait.
  AltGroup group;
  group.owner = me;
  std::vector<PendingOp> ops(viable.size());
  for (std::size_t k = 0; k < viable.size(); ++k) {
    const int bi = viable[k];
    Branch& b = branches_[static_cast<std::size_t>(bi)];
    PendingOp& op = ops[k];
    op.dir = b.dir;
    op.owner = me;
    op.peer = b.peer;
    op.peer_set = b.peer_set;
    op.tag = b.tag;
    op.type = b.type;
    if (b.dir == Dir::Send) op.value = std::move(b.out_value);
    op.group = &group;
    op.branch = bi;
    group.ops.push_back(&op);
    net.link(&op);
  }
  // If a FaultPlan crash unwinds this fiber while parked, every branch
  // still linked must leave the Net with the stack it lives on. After a
  // normal wake the matcher has unlinked the whole group: no-op.
  struct GroupUnlinkGuard {
    Net* net;
    std::vector<PendingOp>* ops;
    ~GroupUnlinkGuard() {
      for (PendingOp& op : *ops)
        if (op.linked) net->unlink(&op);
    }
  };
  GroupUnlinkGuard guard{&net, &ops};
  net.scheduler().block("alternative (" + std::to_string(viable.size()) +
                        " branches)");

  if (group.all_failed) return kFailed;
  SCRIPT_ASSERT(group.chosen >= 0, "alternative woke without a choice");
  // Find the op that fired to recover the partner and payload.
  PendingOp* fired = nullptr;
  for (PendingOp& op : ops)
    if (op.branch == group.chosen && op.matched_with != kNoProcess)
      fired = &op;
  SCRIPT_ASSERT(fired != nullptr, "chosen alternative op not found");
  Branch& b = branches_[static_cast<std::size_t>(group.chosen)];
  b.handler(fired->matched_with, fired->value);
  return group.chosen;
}

std::size_t repetitive(Net& net,
                       const std::function<void(Alternative&)>& build) {
  std::size_t iterations = 0;
  for (;;) {
    Alternative alt(net);
    build(alt);
    if (alt.select() == Alternative::kFailed) return iterations;
    ++iterations;
  }
}

}  // namespace script::csp
