// CSP-style synchronous message passing.
//
// Reproduces the host-language substrate of the paper's §IV "Scripts in
// CSP": Hoare's "!" (output) and "?" (input) with strict mutual naming,
// plus the extensions the paper leans on —
//   * input from an anonymous partner (`recv_any`), the extension of
//     Francez [2] cited by the paper for the script supervisor p_s;
//   * distributed termination: communication with a terminated process
//     fails, which is what makes CSP repetitive commands (DO-OD) exit.
//
// A rendezvous only completes when both parties are committed; an
// optional LatencyModel charges virtual time to both parties at the
// moment of transfer, which is how the broadcast-strategy benches get a
// topology-shaped cost without a real network.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "csp/message.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/sim_link.hpp"
#include "support/expected.hpp"

namespace script::csp {

using runtime::ProcessId;
using runtime::kNoProcess;
inline constexpr ProcessId kAnyProcess = kNoProcess;

enum class CommError : std::uint8_t {
  PeerTerminated,  // the named partner has finished (CSP failure rule)
  TimedOut,        // a *_for variant expired before the rendezvous
};

/// No deadline: *_for variants with this value behave like the plain ones.
inline constexpr std::uint64_t kNoTimeout =
    static_cast<std::uint64_t>(-1);

template <typename T>
using Result = support::Expected<T, CommError>;

namespace detail {

enum class Dir : std::uint8_t { Send, Recv };

struct AltGroup;

// One posted communication offer, parked in the Net until matched.
struct PendingOp {
  Dir dir;
  ProcessId owner;           // the process that posted the offer
  ProcessId peer;            // named partner, or kAnyProcess (recv only)
  std::vector<ProcessId> peer_set;  // non-empty: any of these (recv only)
  std::string tag;
  std::type_index type{typeid(void)};
  Message value;             // payload (Send) or delivery slot (Recv)
  ProcessId matched_with = kNoProcess;  // filled on completion
  bool failed = false;       // peer terminated while parked
  bool linked = false;       // currently parked in the Net's buckets
  bool ghost = false;        // heap-owned in-flight duplicate (fault)
  AltGroup* group = nullptr; // non-null when part of an Alternative
  int branch = -1;           // branch index within the Alternative
};

// A blocked Alternative: all its branches are parked as one atomic group.
struct AltGroup {
  ProcessId owner;
  int chosen = -1;          // branch index that fired
  bool all_failed = false;  // every viable branch's peer terminated
  std::vector<PendingOp*> ops;
};

}  // namespace detail

class Alternative;

class Net {
 public:
  /// Registers a scheduler crash hook so a FaultPlan-killed process is
  /// treated exactly like a terminated one (CSP failure rule).
  explicit Net(runtime::Scheduler& sched);
  ~Net();

  Net(const Net&) = delete;
  Net& operator=(const Net&) = delete;

  /// Charge each completed rendezvous `model->latency(from, to)` ticks
  /// of virtual time to both parties. Pass nullptr to disable.
  void set_latency_model(runtime::LatencyModel* model) { latency_ = model; }

  // ---- Primitive communication commands (block the calling fiber) ----

  /// Output command `to ! tag(value)`. Fails if `to` has terminated.
  template <typename T>
  Result<void> send(ProcessId to, const std::string& tag, T value) {
    return send_erased(to, tag, Message::of<T>(std::move(value)),
                       std::type_index(typeid(T)));
  }

  /// Input command `from ? tag(x)`. Fails if `from` has terminated.
  template <typename T>
  Result<T> recv(ProcessId from, const std::string& tag) {
    auto r = recv_erased(from, {}, tag, std::type_index(typeid(T)));
    if (!r) return support::make_unexpected(r.error());
    return r->second.template as<T>();
  }

  // ---- Timed variants (fault-tolerant protocols' building blocks) ----

  /// send() that gives up with CommError::TimedOut after `timeout_ticks`
  /// of virtual time with no willing receiver.
  template <typename T>
  Result<void> send_for(ProcessId to, const std::string& tag, T value,
                        std::uint64_t timeout_ticks) {
    return send_erased(to, tag, Message::of<T>(std::move(value)),
                       std::type_index(typeid(T)), timeout_ticks);
  }

  /// recv() that gives up with CommError::TimedOut after `timeout_ticks`.
  template <typename T>
  Result<T> recv_for(ProcessId from, const std::string& tag,
                     std::uint64_t timeout_ticks) {
    auto r = recv_erased(from, {}, tag, std::type_index(typeid(T)),
                         timeout_ticks);
    if (!r) return support::make_unexpected(r.error());
    return r->second.template as<T>();
  }

  /// Input from any partner (paper's unnamed-communication extension).
  /// Never fails; blocks until some process sends.
  template <typename T>
  Result<std::pair<ProcessId, T>> recv_any(const std::string& tag) {
    auto r = recv_erased(kAnyProcess, {}, tag, std::type_index(typeid(T)));
    if (!r) return support::make_unexpected(r.error());
    return std::pair<ProcessId, T>{r->first, r->second.template as<T>()};
  }

  /// Input from any of `candidates`; fails once all have terminated.
  template <typename T>
  Result<std::pair<ProcessId, T>> recv_from(
      std::vector<ProcessId> candidates, const std::string& tag) {
    auto r = recv_erased(kAnyProcess, std::move(candidates), tag,
                         std::type_index(typeid(T)));
    if (!r) return support::make_unexpected(r.error());
    return std::pair<ProcessId, T>{r->first, r->second.template as<T>()};
  }

  // ---- Polling (non-committal) variants ----

  /// Complete a rendezvous with an already-parked matching receiver;
  /// otherwise return false WITHOUT parking (never blocks beyond the
  /// transfer latency).
  template <typename T>
  bool try_send(ProcessId to, const std::string& tag, T value) {
    if (is_terminated(to)) return false;
    const auto matches =
        find_matches(detail::Dir::Send, sched_->current(), to, {}, tag,
                     std::type_index(typeid(T)));
    if (matches.empty()) return false;
    complete_with(choose(matches), detail::Dir::Send,
                  Message::of<T>(std::move(value)));
    return true;
  }

  /// Take a message from an already-parked matching sender; otherwise
  /// return nullopt WITHOUT parking.
  template <typename T>
  std::optional<std::pair<ProcessId, T>> try_recv(ProcessId from,
                                                  const std::string& tag) {
    const auto matches =
        find_matches(detail::Dir::Recv, sched_->current(), from, {}, tag,
                     std::type_index(typeid(T)));
    if (matches.empty()) return std::nullopt;
    detail::PendingOp* pick = choose(matches);
    const ProcessId sender = pick->owner;
    Message payload = complete_with(pick, detail::Dir::Recv, Message());
    return std::pair<ProcessId, T>{sender, payload.template as<T>()};
  }

  /// try_recv from any partner.
  template <typename T>
  std::optional<std::pair<ProcessId, T>> try_recv_any(
      const std::string& tag) {
    return try_recv<T>(kAnyProcess, tag);
  }

  // ---- Process lifecycle ----

  /// Declare `pid` terminated: all its parked offers are cancelled and
  /// every offer naming it as sole partner fails (wakes with error).
  /// Call at the end of a process body (see Process helper below).
  void mark_terminated(ProcessId pid);
  bool is_terminated(ProcessId pid) const;

  /// Fail every parked offer whose tag starts with `prefix` (owners wake
  /// with PeerTerminated) and discard matching in-flight duplicates.
  /// script::Instance aborts a performance by failing its scoped-tag
  /// namespace "<script>#<perf>/" in one sweep.
  void fail_tagged(const std::string& prefix);

  /// Re-point every parked offer under `prefix` that names `old_peer`
  /// (as sole partner or peer-set member) at `fresh` instead. Role
  /// takeover (FailurePolicy::Replace) uses this so survivors parked on
  /// the crashed incarnation's pid rendezvous with its replacement —
  /// offers stay linked under their tag and owner, so no re-bucketing
  /// is needed. Ghosts FROM the old pid are left alone (a dead sender's
  /// in-flight duplicate never delivers anyway).
  void rebind_peer(ProcessId old_peer, ProcessId fresh,
                   const std::string& prefix);

  /// Declare that `peer` will post no further offers under `prefix`:
  /// every parked offer there naming it as sole partner fails, and it is
  /// struck from peer sets (failing offers whose set empties out).
  /// script::Instance retires a COMPLETED role's pid this way under the
  /// Replace policy — a replacement incarnation may have re-posted an
  /// exchange its predecessor already concluded, and without this the
  /// orphaned offer would pend forever (the role's fiber is done, but
  /// not Net-terminated until the performance releases it).
  void retire_peer(ProcessId peer, const std::string& prefix);

  // ---- Introspection for tests and benches ----

  std::uint64_t rendezvous_count() const { return rendezvous_count_; }
  std::size_t pending_count() const { return pending_count_; }
  runtime::Scheduler& scheduler() { return *sched_; }

  /// Spawn a process whose termination is reported to this Net
  /// automatically (even if the body returns early).
  ProcessId spawn_process(std::string name, std::function<void()> body);

  /// Same, but placed in an explicit scheduler group. Under the parallel
  /// scheduler all communicators of one Net must share a group (the Net's
  /// matching tables are unlocked); this is the placement hook for
  /// running several independent Nets on different workers.
  ProcessId spawn_process_in_group(runtime::GroupId gid, std::string name,
                                   std::function<void()> body);

 private:
  friend class Alternative;

  Result<void> send_erased(ProcessId to, const std::string& tag,
                           Message value, std::type_index type,
                           std::uint64_t timeout_ticks = kNoTimeout);
  Result<std::pair<ProcessId, Message>> recv_erased(
      ProcessId from, std::vector<ProcessId> peer_set,
      const std::string& tag, std::type_index type,
      std::uint64_t timeout_ticks = kNoTimeout);

  /// Fail one parked offer: wake its owner with PeerTerminated (and
  /// collapse its Alternative group when every branch has failed).
  void fail_op(detail::PendingOp* op);

  /// Park a heap-owned duplicate of a just-delivered message; the
  /// receiver's next matching input takes it like any parked send.
  void add_ghost(ProcessId sender, ProcessId receiver,
                 const std::string& tag, std::type_index type,
                 Message value);
  void free_ghost(detail::PendingOp* op);

  /// Nondeterministic choice among matching parked offers.
  detail::PendingOp* choose(const std::vector<detail::PendingOp*>& matches);

  // Matching helpers shared with Alternative. Parked offers are indexed
  // by tag, then by owner (a send to P can only match offers OWNED by
  // P), so named-peer lookups touch a handful of offers no matter how
  // many are parked; only anonymous input scans its whole tag bucket.
  bool op_matches(const detail::PendingOp& parked, detail::Dir my_dir,
                  ProcessId me, ProcessId my_peer,
                  const std::vector<ProcessId>& my_peer_set,
                  std::type_index type) const;
  std::vector<detail::PendingOp*> find_matches(
      detail::Dir my_dir, ProcessId me, ProcessId my_peer,
      const std::vector<ProcessId>& my_peer_set, const std::string& tag,
      std::type_index type) const;

  /// Park / unpark an offer in its tag bucket.
  void link(detail::PendingOp* op);
  void unlink(detail::PendingOp* op);

  /// Complete the rendezvous between the running fiber and a parked op:
  /// transfers the payload, unlinks the parked op (and collapses its
  /// alt group), wakes the parked owner, and charges latency to both
  /// sides. Returns the payload seen by the running party.
  Message complete_with(detail::PendingOp* parked, detail::Dir my_dir,
                        Message my_value);

  void remove_group_ops(detail::AltGroup* group);
  std::uint64_t charge_latency(ProcessId a, ProcessId b);

  runtime::Scheduler* sched_;
  runtime::LatencyModel* latency_ = nullptr;
  // Raw pointers: each PendingOp lives on its poster's fiber stack, which
  // is pinned while the poster is blocked; the matcher unlinks it before
  // waking the poster.
  using Bucket = std::map<ProcessId, std::vector<detail::PendingOp*>>;
  std::map<std::string, Bucket> pending_;
  std::size_t pending_count_ = 0;
  std::vector<bool> terminated_;  // indexed by ProcessId
  std::uint64_t rendezvous_count_ = 0;
  // In-flight duplicates (FaultPlan::duplicate_message) are the one kind
  // of parked op with no fiber stack to live on; the Net owns them.
  std::vector<std::unique_ptr<detail::PendingOp>> ghosts_;
  std::uint64_t crash_hook_id_ = 0;
};

}  // namespace script::csp
