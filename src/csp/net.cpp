#include "csp/net.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace script::csp {

using detail::AltGroup;
using detail::Dir;
using detail::PendingOp;

namespace {

// Unparks a posted offer if the posting fiber unwinds while it is still
// linked (a FaultPlan crash killing a blocked communicator). On normal
// wake-ups the matcher has already unlinked the op and this is a no-op.
struct UnlinkGuard {
  Net* net;
  PendingOp* op;
  void (Net::*unlink)(PendingOp*);
  ~UnlinkGuard() {
    if (op->linked) (net->*unlink)(op);
  }
};

}  // namespace

Net::Net(runtime::Scheduler& sched) : sched_(&sched) {
  crash_hook_id_ = sched_->add_crash_hook(
      [this](ProcessId pid) { mark_terminated(pid); });
}

Net::~Net() { sched_->remove_crash_hook(crash_hook_id_); }

ProcessId Net::spawn_process(std::string name, std::function<void()> body) {
  return spawn_process_in_group(runtime::kInheritGroup, std::move(name),
                                std::move(body));
}

ProcessId Net::spawn_process_in_group(runtime::GroupId gid, std::string name,
                                      std::function<void()> body) {
  const auto pid = sched_->spawn_in_group(
      gid, std::move(name), [this, body = std::move(body)] {
        body();
        mark_terminated(sched_->current());
      });
  return pid;
}

bool Net::is_terminated(ProcessId pid) const {
  return pid < terminated_.size() && terminated_[pid];
}

void Net::link(PendingOp* op) {
  pending_[op->tag][op->owner].push_back(op);
  op->linked = true;
  ++pending_count_;
}

void Net::unlink(PendingOp* op) {
  const auto bucket = pending_.find(op->tag);
  SCRIPT_ASSERT(bucket != pending_.end(), "unlink: tag bucket missing");
  const auto shelf = bucket->second.find(op->owner);
  SCRIPT_ASSERT(shelf != bucket->second.end(), "unlink: owner shelf missing");
  auto& ops = shelf->second;
  const auto it = std::find(ops.begin(), ops.end(), op);
  SCRIPT_ASSERT(it != ops.end(), "unlink: op not parked");
  ops.erase(it);
  if (ops.empty()) bucket->second.erase(shelf);
  if (bucket->second.empty()) pending_.erase(bucket);
  op->linked = false;
  --pending_count_;
}

void Net::mark_terminated(ProcessId pid) {
  if (pid >= terminated_.size()) terminated_.resize(pid + 1, false);
  if (terminated_[pid]) return;
  terminated_[pid] = true;

  // Fail every parked offer whose partner(s) can no longer arrive.
  // Snapshot first: failing an alt branch unlinks sibling ops.
  std::vector<PendingOp*> snapshot;
  for (const auto& [tag, bucket] : pending_)
    for (const auto& [owner, ops] : bucket)
      snapshot.insert(snapshot.end(), ops.begin(), ops.end());
  for (PendingOp* op : snapshot) {
    if (!op->linked)
      continue;  // already removed (e.g. sibling of a failed alt branch)
    if (op->ghost) {
      // A duplicate TO the dead process can never be taken; one FROM it
      // is already in flight and stays deliverable.
      if (op->peer == pid) {
        unlink(op);
        free_ghost(op);
      }
      continue;
    }
    SCRIPT_ASSERT(op->owner != pid,
                  "process terminated while it still has parked offers");
    bool dead = false;
    if (op->peer != kAnyProcess) {
      dead = op->peer == pid;
    } else if (!op->peer_set.empty()) {
      dead = std::all_of(op->peer_set.begin(), op->peer_set.end(),
                         [&](ProcessId p) { return is_terminated(p); });
    }
    if (dead) fail_op(op);
  }
}

void Net::fail_op(PendingOp* op) {
  if (op->group == nullptr) {
    op->failed = true;
    unlink(op);
    sched_->unblock(op->owner);
  } else {
    AltGroup* g = op->group;
    unlink(op);
    g->ops.erase(std::find(g->ops.begin(), g->ops.end(), op));
    if (g->ops.empty()) {
      g->all_failed = true;
      sched_->unblock(g->owner);
    }
  }
}

void Net::fail_tagged(const std::string& prefix) {
  std::vector<PendingOp*> snapshot;
  for (auto it = pending_.lower_bound(prefix);
       it != pending_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it)
    for (const auto& [owner, ops] : it->second)
      snapshot.insert(snapshot.end(), ops.begin(), ops.end());
  for (PendingOp* op : snapshot) {
    if (!op->linked) continue;  // sibling of a failed alt branch
    if (op->ghost) {
      unlink(op);
      free_ghost(op);
      continue;
    }
    fail_op(op);
  }
}

void Net::rebind_peer(ProcessId old_peer, ProcessId fresh,
                      const std::string& prefix) {
  for (auto it = pending_.lower_bound(prefix);
       it != pending_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    for (const auto& [owner, ops] : it->second) {
      for (PendingOp* op : ops) {
        if (op->ghost) continue;
        if (op->peer == old_peer) op->peer = fresh;
        std::replace(op->peer_set.begin(), op->peer_set.end(), old_peer,
                     fresh);
      }
    }
  }
}

void Net::retire_peer(ProcessId peer, const std::string& prefix) {
  // Snapshot first: fail_op unlinks, which mutates the buckets.
  std::vector<PendingOp*> snapshot;
  for (auto it = pending_.lower_bound(prefix);
       it != pending_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it)
    for (const auto& [owner, ops] : it->second)
      snapshot.insert(snapshot.end(), ops.begin(), ops.end());
  for (PendingOp* op : snapshot) {
    if (!op->linked || op->ghost) continue;
    if (op->owner == peer) continue;
    if (op->peer == peer) {
      fail_op(op);
      continue;
    }
    const auto member =
        std::find(op->peer_set.begin(), op->peer_set.end(), peer);
    if (member == op->peer_set.end()) continue;
    op->peer_set.erase(member);
    if (op->peer_set.empty()) fail_op(op);
  }
}

void Net::add_ghost(ProcessId sender, ProcessId receiver,
                    const std::string& tag, std::type_index type,
                    Message value) {
  auto g = std::make_unique<PendingOp>();
  g->dir = Dir::Send;
  g->owner = sender;
  g->peer = receiver;
  g->tag = tag;
  g->type = type;
  g->value = std::move(value);
  g->ghost = true;
  link(g.get());
  if (sched_->bus().wants(obs::Subsystem::Fault))
    sched_->bus().publish({obs::EventKind::Instant, obs::Subsystem::Fault,
                           obs::kAutoTime, sender, obs::kNoLane,
                           "fault.duplicate", tag});
  ghosts_.push_back(std::move(g));
}

void Net::free_ghost(PendingOp* op) {
  const auto it = std::find_if(
      ghosts_.begin(), ghosts_.end(),
      [op](const std::unique_ptr<PendingOp>& g) { return g.get() == op; });
  SCRIPT_ASSERT(it != ghosts_.end(), "free_ghost: not a ghost op");
  ghosts_.erase(it);
}

PendingOp* Net::choose(const std::vector<PendingOp*>& matches) {
  return matches.size() == 1
             ? matches[0]
             : matches[sched_->rng().pick_index(matches.size())];
}

Result<void> Net::send_erased(ProcessId to, const std::string& tag,
                              Message value, std::type_index type,
                              std::uint64_t timeout_ticks) {
  const ProcessId me = sched_->current();
  if (is_terminated(to))
    return support::make_unexpected(CommError::PeerTerminated);

  const auto matches = find_matches(Dir::Send, me, to, {}, tag, type);
  if (!matches.empty()) {
    PendingOp* pick = choose(matches);
    runtime::FaultPlan* plan = sched_->fault_plan();
    if (plan != nullptr && plan->has_message_faults() &&
        plan->should_drop(tag)) {
      // Lost at the transfer instant: the sender believes it delivered
      // (and pays latency); the receiver keeps waiting.
      const std::uint64_t lat = charge_latency(me, pick->owner);
      if (sched_->bus().wants(obs::Subsystem::Fault))
        sched_->bus().publish({obs::EventKind::Instant,
                               obs::Subsystem::Fault, obs::kAutoTime, me,
                               obs::kNoLane, "fault.drop", tag});
      if (lat > 0) sched_->sleep_for(lat);
      return {};
    }
    complete_with(pick, Dir::Send, std::move(value));
    return {};
  }

  PendingOp op;
  op.dir = Dir::Send;
  op.owner = me;
  op.peer = to;
  op.tag = tag;
  op.type = type;
  op.value = std::move(value);
  UnlinkGuard guard{this, &op, &Net::unlink};
  link(&op);
  const std::string reason = "! " + sched_->name_of(to) + " tag=" + tag;
  if (timeout_ticks == kNoTimeout) {
    sched_->block(reason, to);
  } else {
    const bool expired = sched_->block_with_timeout(
        reason, timeout_ticks,
        [this, p = &op] {
          if (p->linked) unlink(p);
        },
        to);
    if (expired) return support::make_unexpected(CommError::TimedOut);
  }
  if (op.failed) return support::make_unexpected(CommError::PeerTerminated);
  return {};
}

Result<std::pair<ProcessId, Message>> Net::recv_erased(
    ProcessId from, std::vector<ProcessId> peer_set, const std::string& tag,
    std::type_index type, std::uint64_t timeout_ticks) {
  const ProcessId me = sched_->current();
  runtime::FaultPlan* plan = sched_->fault_plan();
  const bool faulty = plan != nullptr && plan->has_message_faults();

  // Deliverable parked offers are taken before the terminated checks: an
  // in-flight duplicate from a since-dead sender must still arrive (it
  // already left that sender). Non-ghost offers from terminated owners
  // cannot exist, so this reordering only affects ghosts.
  for (;;) {
    const auto matches =
        find_matches(Dir::Recv, me, from, peer_set, tag, type);
    if (matches.empty()) break;
    PendingOp* pick = choose(matches);
    if (faulty && !pick->ghost && plan->should_drop(tag)) {
      // Complete the parked send so the sender believes it delivered,
      // then lose the payload; keep looking (or park below).
      if (sched_->bus().wants(obs::Subsystem::Fault))
        sched_->bus().publish({obs::EventKind::Instant,
                               obs::Subsystem::Fault, obs::kAutoTime, me,
                               obs::kNoLane, "fault.drop", tag});
      complete_with(pick, Dir::Recv, Message());
      continue;
    }
    const ProcessId sender = pick->owner;
    Message payload = complete_with(pick, Dir::Recv, Message());
    return std::pair<ProcessId, Message>{sender, std::move(payload)};
  }

  if (from != kAnyProcess && is_terminated(from))
    return support::make_unexpected(CommError::PeerTerminated);
  if (from == kAnyProcess && !peer_set.empty() &&
      std::all_of(peer_set.begin(), peer_set.end(),
                  [&](ProcessId p) { return is_terminated(p); }))
    return support::make_unexpected(CommError::PeerTerminated);

  PendingOp op;
  op.dir = Dir::Recv;
  op.owner = me;
  op.peer = from;
  op.peer_set = std::move(peer_set);
  op.tag = tag;
  op.type = type;
  UnlinkGuard guard{this, &op, &Net::unlink};
  link(&op);
  const std::string who =
      from == kAnyProcess ? std::string("any") : sched_->name_of(from);
  const std::string reason = "? " + who + " tag=" + tag;
  const ProcessId hint = from == kAnyProcess ? kNoProcess : from;
  if (timeout_ticks == kNoTimeout) {
    sched_->block(reason, hint);
  } else {
    const bool expired = sched_->block_with_timeout(
        reason, timeout_ticks,
        [this, p = &op] {
          if (p->linked) unlink(p);
        },
        hint);
    if (expired) return support::make_unexpected(CommError::TimedOut);
  }
  if (op.failed) return support::make_unexpected(CommError::PeerTerminated);
  return std::pair<ProcessId, Message>{op.matched_with, std::move(op.value)};
}

bool Net::op_matches(const PendingOp& parked, Dir my_dir, ProcessId me,
                     ProcessId my_peer,
                     const std::vector<ProcessId>& my_peer_set,
                     std::type_index type) const {
  if (parked.dir == my_dir) return false;
  if (parked.type != type) return false;

  // The parked offer must accept me as its partner...
  const bool parked_accepts_me =
      parked.peer == me ||
      (parked.peer == kAnyProcess &&
       (parked.peer_set.empty() ||
        std::find(parked.peer_set.begin(), parked.peer_set.end(), me) !=
            parked.peer_set.end()));
  if (!parked_accepts_me) return false;

  // ...and I must accept the parked owner as mine.
  return my_peer == parked.owner ||
         (my_peer == kAnyProcess &&
          (my_peer_set.empty() ||
           std::find(my_peer_set.begin(), my_peer_set.end(),
                     parked.owner) != my_peer_set.end()));
}

std::vector<PendingOp*> Net::find_matches(
    Dir my_dir, ProcessId me, ProcessId my_peer,
    const std::vector<ProcessId>& my_peer_set, const std::string& tag,
    std::type_index type) const {
  std::vector<PendingOp*> out;
  const auto bucket = pending_.find(tag);
  if (bucket == pending_.end()) return out;
  auto scan_shelf = [&](ProcessId owner) {
    const auto shelf = bucket->second.find(owner);
    if (shelf == bucket->second.end()) return;
    for (PendingOp* op : shelf->second)
      if (op_matches(*op, my_dir, me, my_peer, my_peer_set, type))
        out.push_back(op);
  };
  if (my_peer != kAnyProcess) {
    scan_shelf(my_peer);  // a match can only be owned by my named peer
  } else if (!my_peer_set.empty()) {
    for (const ProcessId p : my_peer_set) scan_shelf(p);
  } else {
    for (const auto& [owner, ops] : bucket->second)
      for (PendingOp* op : ops)
        if (op_matches(*op, my_dir, me, my_peer, my_peer_set, type))
          out.push_back(op);
  }
  return out;
}

Message Net::complete_with(PendingOp* parked, Dir my_dir, Message my_value) {
  const ProcessId me = sched_->current();
  runtime::FaultPlan* plan = sched_->fault_plan();
  const bool faulty = plan != nullptr && plan->has_message_faults();

  if (parked->ghost) {
    // Taking an in-flight duplicate: there is no partner to wake; only
    // the receiver pays the hop latency.
    SCRIPT_ASSERT(my_dir == Dir::Recv, "ghost matched by a send");
    Message result = std::move(parked->value);
    const ProcessId sender = parked->owner;
    const std::string tag = parked->tag;
    unlink(parked);
    free_ghost(parked);
    // The duplicate's payload still carries the (dead) sender's causal
    // past into the receiver.
    sched_->causal_edge(sender, me, "msg");
    const std::uint64_t lat = charge_latency(sender, me);
    if (sched_->bus().wants(obs::Subsystem::Fault))
      sched_->bus().publish({obs::EventKind::Instant, obs::Subsystem::Fault,
                             obs::kAutoTime, me, obs::kNoLane,
                             "fault.duplicate.delivered", tag});
    if (lat > 0) sched_->sleep_for(lat);
    return result;
  }

  Message result;
  if (my_dir == Dir::Send) {
    parked->value = std::move(my_value);  // deliver into the parked recv
  } else {
    result = std::move(parked->value);  // take from the parked send
  }
  parked->matched_with = me;
  ++rendezvous_count_;

  if (parked->group != nullptr) {
    parked->group->chosen = parked->branch;
    remove_group_ops(parked->group);
  } else {
    unlink(parked);
  }

  const ProcessId sender = my_dir == Dir::Send ? me : parked->owner;
  const ProcessId receiver = my_dir == Dir::Send ? parked->owner : me;
  std::uint64_t lat = charge_latency(sender, receiver);
  if (faulty) {
    // The op is unlinked but still valid (it lives on the owner's pinned
    // fiber stack), so the payload can be copied for a duplicate.
    if (const std::uint64_t extra = plan->extra_delay(parked->tag);
        extra > 0) {
      lat += extra;
      if (sched_->bus().wants(obs::Subsystem::Fault))
        sched_->bus().publish({obs::EventKind::Instant,
                               obs::Subsystem::Fault, obs::kAutoTime,
                               sender, obs::kNoLane, "fault.delay",
                               parked->tag, static_cast<double>(extra)});
    }
    if (plan->should_duplicate(parked->tag))
      add_ghost(sender, receiver, parked->tag, parked->type,
                my_dir == Dir::Send ? parked->value : result);
  }
  if (sched_->bus().wants(obs::Subsystem::Csp))
    sched_->bus().publish({obs::EventKind::Instant, obs::Subsystem::Csp,
                           obs::kAutoTime, sender, obs::kNoLane,
                           "rendezvous", parked->tag,
                           static_cast<double>(lat)});
  // Completing a parked SEND hands its payload to me: a data-flow edge
  // the wake below (me -> sender) does not cover.
  if (my_dir == Dir::Recv) sched_->causal_edge(parked->owner, me, "msg");
  const ProcessId woken =
      parked->group != nullptr ? parked->group->owner : parked->owner;
  // A Net's matching tables are unlocked: every communicator of one Net
  // must live in the same scheduler group so rendezvous never crosses a
  // worker. The parallel scheduler pins whole groups to workers, so this
  // holds by construction when processes are placed via
  // spawn_process_in_group; a mixed-group rendezvous is a placement bug.
  SCRIPT_ASSERT(!sched_->parallel_mode() ||
                    sched_->group_of(me) == sched_->group_of(woken),
                "csp::Net rendezvous across scheduler groups");
  sched_->wake_at(woken, lat);
  if (lat > 0) sched_->sleep_for(lat);
  return result;
}

void Net::remove_group_ops(AltGroup* group) {
  for (PendingOp* op : group->ops) unlink(op);
}

std::uint64_t Net::charge_latency(ProcessId a, ProcessId b) {
  return latency_ == nullptr ? 0 : latency_->latency(a, b);
}

}  // namespace script::csp
