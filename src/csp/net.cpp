#include "csp/net.hpp"

#include <algorithm>

#include "support/panic.hpp"

namespace script::csp {

using detail::AltGroup;
using detail::Dir;
using detail::PendingOp;

ProcessId Net::spawn_process(std::string name, std::function<void()> body) {
  const auto pid = sched_->spawn(
      std::move(name), [this, body = std::move(body)] {
        body();
        mark_terminated(sched_->current());
      });
  return pid;
}

bool Net::is_terminated(ProcessId pid) const {
  return pid < terminated_.size() && terminated_[pid];
}

void Net::link(PendingOp* op) {
  pending_[op->tag][op->owner].push_back(op);
  ++pending_count_;
}

void Net::unlink(PendingOp* op) {
  const auto bucket = pending_.find(op->tag);
  SCRIPT_ASSERT(bucket != pending_.end(), "unlink: tag bucket missing");
  const auto shelf = bucket->second.find(op->owner);
  SCRIPT_ASSERT(shelf != bucket->second.end(), "unlink: owner shelf missing");
  auto& ops = shelf->second;
  const auto it = std::find(ops.begin(), ops.end(), op);
  SCRIPT_ASSERT(it != ops.end(), "unlink: op not parked");
  ops.erase(it);
  if (ops.empty()) bucket->second.erase(shelf);
  if (bucket->second.empty()) pending_.erase(bucket);
  --pending_count_;
}

void Net::mark_terminated(ProcessId pid) {
  if (pid >= terminated_.size()) terminated_.resize(pid + 1, false);
  if (terminated_[pid]) return;
  terminated_[pid] = true;

  // Fail every parked offer whose partner(s) can no longer arrive.
  // Snapshot first: failing an alt branch unlinks sibling ops.
  std::vector<PendingOp*> snapshot;
  for (const auto& [tag, bucket] : pending_)
    for (const auto& [owner, ops] : bucket)
      snapshot.insert(snapshot.end(), ops.begin(), ops.end());
  auto still_parked = [&](PendingOp* op) {
    const auto bucket = pending_.find(op->tag);
    if (bucket == pending_.end()) return false;
    const auto shelf = bucket->second.find(op->owner);
    if (shelf == bucket->second.end()) return false;
    return std::find(shelf->second.begin(), shelf->second.end(), op) !=
           shelf->second.end();
  };
  for (PendingOp* op : snapshot) {
    if (!still_parked(op))
      continue;  // already removed (e.g. sibling of a failed alt branch)
    SCRIPT_ASSERT(op->owner != pid,
                  "process terminated while it still has parked offers");
    bool dead = false;
    if (op->peer != kAnyProcess) {
      dead = op->peer == pid;
    } else if (!op->peer_set.empty()) {
      dead = std::all_of(op->peer_set.begin(), op->peer_set.end(),
                         [&](ProcessId p) { return is_terminated(p); });
    }
    if (!dead) continue;

    if (op->group == nullptr) {
      op->failed = true;
      unlink(op);
      sched_->unblock(op->owner);
    } else {
      AltGroup* g = op->group;
      unlink(op);
      g->ops.erase(std::find(g->ops.begin(), g->ops.end(), op));
      if (g->ops.empty()) {
        g->all_failed = true;
        sched_->unblock(g->owner);
      }
    }
  }
}

PendingOp* Net::choose(const std::vector<PendingOp*>& matches) {
  return matches.size() == 1
             ? matches[0]
             : matches[sched_->rng().pick_index(matches.size())];
}

Result<void> Net::send_erased(ProcessId to, const std::string& tag,
                              Message value, std::type_index type) {
  const ProcessId me = sched_->current();
  if (is_terminated(to))
    return support::make_unexpected(CommError::PeerTerminated);

  const auto matches = find_matches(Dir::Send, me, to, {}, tag, type);
  if (!matches.empty()) {
    complete_with(choose(matches), Dir::Send, std::move(value));
    return {};
  }

  PendingOp op;
  op.dir = Dir::Send;
  op.owner = me;
  op.peer = to;
  op.tag = tag;
  op.type = type;
  op.value = std::move(value);
  link(&op);
  sched_->block("! " + sched_->name_of(to) + " tag=" + tag);
  if (op.failed) return support::make_unexpected(CommError::PeerTerminated);
  return {};
}

Result<std::pair<ProcessId, Message>> Net::recv_erased(
    ProcessId from, std::vector<ProcessId> peer_set, const std::string& tag,
    std::type_index type) {
  const ProcessId me = sched_->current();
  if (from != kAnyProcess && is_terminated(from))
    return support::make_unexpected(CommError::PeerTerminated);
  if (from == kAnyProcess && !peer_set.empty() &&
      std::all_of(peer_set.begin(), peer_set.end(),
                  [&](ProcessId p) { return is_terminated(p); }))
    return support::make_unexpected(CommError::PeerTerminated);

  const auto matches = find_matches(Dir::Recv, me, from, peer_set, tag, type);
  if (!matches.empty()) {
    PendingOp* pick = choose(matches);
    const ProcessId sender = pick->owner;
    Message payload = complete_with(pick, Dir::Recv, Message());
    return std::pair<ProcessId, Message>{sender, std::move(payload)};
  }

  PendingOp op;
  op.dir = Dir::Recv;
  op.owner = me;
  op.peer = from;
  op.peer_set = std::move(peer_set);
  op.tag = tag;
  op.type = type;
  link(&op);
  const std::string who =
      from == kAnyProcess ? std::string("any") : sched_->name_of(from);
  sched_->block("? " + who + " tag=" + tag);
  if (op.failed) return support::make_unexpected(CommError::PeerTerminated);
  return std::pair<ProcessId, Message>{op.matched_with, std::move(op.value)};
}

bool Net::op_matches(const PendingOp& parked, Dir my_dir, ProcessId me,
                     ProcessId my_peer,
                     const std::vector<ProcessId>& my_peer_set,
                     std::type_index type) const {
  if (parked.dir == my_dir) return false;
  if (parked.type != type) return false;

  // The parked offer must accept me as its partner...
  const bool parked_accepts_me =
      parked.peer == me ||
      (parked.peer == kAnyProcess &&
       (parked.peer_set.empty() ||
        std::find(parked.peer_set.begin(), parked.peer_set.end(), me) !=
            parked.peer_set.end()));
  if (!parked_accepts_me) return false;

  // ...and I must accept the parked owner as mine.
  return my_peer == parked.owner ||
         (my_peer == kAnyProcess &&
          (my_peer_set.empty() ||
           std::find(my_peer_set.begin(), my_peer_set.end(),
                     parked.owner) != my_peer_set.end()));
}

std::vector<PendingOp*> Net::find_matches(
    Dir my_dir, ProcessId me, ProcessId my_peer,
    const std::vector<ProcessId>& my_peer_set, const std::string& tag,
    std::type_index type) const {
  std::vector<PendingOp*> out;
  const auto bucket = pending_.find(tag);
  if (bucket == pending_.end()) return out;
  auto scan_shelf = [&](ProcessId owner) {
    const auto shelf = bucket->second.find(owner);
    if (shelf == bucket->second.end()) return;
    for (PendingOp* op : shelf->second)
      if (op_matches(*op, my_dir, me, my_peer, my_peer_set, type))
        out.push_back(op);
  };
  if (my_peer != kAnyProcess) {
    scan_shelf(my_peer);  // a match can only be owned by my named peer
  } else if (!my_peer_set.empty()) {
    for (const ProcessId p : my_peer_set) scan_shelf(p);
  } else {
    for (const auto& [owner, ops] : bucket->second)
      for (PendingOp* op : ops)
        if (op_matches(*op, my_dir, me, my_peer, my_peer_set, type))
          out.push_back(op);
  }
  return out;
}

Message Net::complete_with(PendingOp* parked, Dir my_dir, Message my_value) {
  const ProcessId me = sched_->current();

  Message result;
  if (my_dir == Dir::Send) {
    parked->value = std::move(my_value);  // deliver into the parked recv
  } else {
    result = std::move(parked->value);  // take from the parked send
  }
  parked->matched_with = me;
  ++rendezvous_count_;

  if (parked->group != nullptr) {
    parked->group->chosen = parked->branch;
    remove_group_ops(parked->group);
  } else {
    unlink(parked);
  }

  const ProcessId sender = my_dir == Dir::Send ? me : parked->owner;
  const ProcessId receiver = my_dir == Dir::Send ? parked->owner : me;
  const std::uint64_t lat = charge_latency(sender, receiver);
  if (sched_->bus().wants(obs::Subsystem::Csp))
    sched_->bus().publish({obs::EventKind::Instant, obs::Subsystem::Csp,
                           obs::kAutoTime, sender, obs::kNoLane,
                           "rendezvous", parked->tag,
                           static_cast<double>(lat)});
  const ProcessId woken =
      parked->group != nullptr ? parked->group->owner : parked->owner;
  sched_->wake_at(woken, lat);
  if (lat > 0) sched_->sleep_for(lat);
  return result;
}

void Net::remove_group_ops(AltGroup* group) {
  for (PendingOp* op : group->ops) unlink(op);
}

std::uint64_t Net::charge_latency(ProcessId a, ProcessId b) {
  return latency_ == nullptr ? 0 : latency_->latency(a, b);
}

}  // namespace script::csp
