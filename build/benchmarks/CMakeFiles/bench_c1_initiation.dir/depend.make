# Empty dependencies file for bench_c1_initiation.
# This may be replaced when dependencies are built.
