file(REMOVE_RECURSE
  "../bench/bench_c1_initiation"
  "../bench/bench_c1_initiation.pdb"
  "CMakeFiles/bench_c1_initiation.dir/bench_c1_initiation.cpp.o"
  "CMakeFiles/bench_c1_initiation.dir/bench_c1_initiation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_initiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
