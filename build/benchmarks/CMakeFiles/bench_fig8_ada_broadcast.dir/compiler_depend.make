# Empty compiler generated dependencies file for bench_fig8_ada_broadcast.
# This may be replaced when dependencies are built.
