file(REMOVE_RECURSE
  "../bench/bench_fig8_ada_broadcast"
  "../bench/bench_fig8_ada_broadcast.pdb"
  "CMakeFiles/bench_fig8_ada_broadcast.dir/bench_fig8_ada_broadcast.cpp.o"
  "CMakeFiles/bench_fig8_ada_broadcast.dir/bench_fig8_ada_broadcast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ada_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
