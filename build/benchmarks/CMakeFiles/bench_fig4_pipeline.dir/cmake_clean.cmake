file(REMOVE_RECURSE
  "../bench/bench_fig4_pipeline"
  "../bench/bench_fig4_pipeline.pdb"
  "CMakeFiles/bench_fig4_pipeline.dir/bench_fig4_pipeline.cpp.o"
  "CMakeFiles/bench_fig4_pipeline.dir/bench_fig4_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
