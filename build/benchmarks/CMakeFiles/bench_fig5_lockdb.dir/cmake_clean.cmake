file(REMOVE_RECURSE
  "../bench/bench_fig5_lockdb"
  "../bench/bench_fig5_lockdb.pdb"
  "CMakeFiles/bench_fig5_lockdb.dir/bench_fig5_lockdb.cpp.o"
  "CMakeFiles/bench_fig5_lockdb.dir/bench_fig5_lockdb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lockdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
