# Empty dependencies file for bench_fig5_lockdb.
# This may be replaced when dependencies are built.
