# Empty compiler generated dependencies file for bench_c3_locking.
# This may be replaced when dependencies are built.
