file(REMOVE_RECURSE
  "../bench/bench_c3_locking"
  "../bench/bench_c3_locking.pdb"
  "CMakeFiles/bench_c3_locking.dir/bench_c3_locking.cpp.o"
  "CMakeFiles/bench_c3_locking.dir/bench_c3_locking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
