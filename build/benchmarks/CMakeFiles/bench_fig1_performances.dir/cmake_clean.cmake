file(REMOVE_RECURSE
  "../bench/bench_fig1_performances"
  "../bench/bench_fig1_performances.pdb"
  "CMakeFiles/bench_fig1_performances.dir/bench_fig1_performances.cpp.o"
  "CMakeFiles/bench_fig1_performances.dir/bench_fig1_performances.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_performances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
