file(REMOVE_RECURSE
  "../bench/bench_fig12_monitors"
  "../bench/bench_fig12_monitors.pdb"
  "CMakeFiles/bench_fig12_monitors.dir/bench_fig12_monitors.cpp.o"
  "CMakeFiles/bench_fig12_monitors.dir/bench_fig12_monitors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
