# Empty dependencies file for bench_fig12_monitors.
# This may be replaced when dependencies are built.
