file(REMOVE_RECURSE
  "../bench/bench_fig6_csp_broadcast"
  "../bench/bench_fig6_csp_broadcast.pdb"
  "CMakeFiles/bench_fig6_csp_broadcast.dir/bench_fig6_csp_broadcast.cpp.o"
  "CMakeFiles/bench_fig6_csp_broadcast.dir/bench_fig6_csp_broadcast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_csp_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
