# Empty dependencies file for bench_fig6_csp_broadcast.
# This may be replaced when dependencies are built.
