# Empty compiler generated dependencies file for bench_fig7_csp_supervisor.
# This may be replaced when dependencies are built.
