file(REMOVE_RECURSE
  "../bench/bench_fig7_csp_supervisor"
  "../bench/bench_fig7_csp_supervisor.pdb"
  "CMakeFiles/bench_fig7_csp_supervisor.dir/bench_fig7_csp_supervisor.cpp.o"
  "CMakeFiles/bench_fig7_csp_supervisor.dir/bench_fig7_csp_supervisor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_csp_supervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
