# Empty dependencies file for bench_c4_distributed.
# This may be replaced when dependencies are built.
