file(REMOVE_RECURSE
  "../bench/bench_c4_distributed"
  "../bench/bench_c4_distributed.pdb"
  "CMakeFiles/bench_c4_distributed.dir/bench_c4_distributed.cpp.o"
  "CMakeFiles/bench_c4_distributed.dir/bench_c4_distributed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
