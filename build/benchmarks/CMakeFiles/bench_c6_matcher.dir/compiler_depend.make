# Empty compiler generated dependencies file for bench_c6_matcher.
# This may be replaced when dependencies are built.
