
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/benchmarks/bench_c6_matcher.cpp" "benchmarks/CMakeFiles/bench_c6_matcher.dir/bench_c6_matcher.cpp.o" "gcc" "benchmarks/CMakeFiles/bench_c6_matcher.dir/bench_c6_matcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/script_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_ada.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_csp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_lockdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
