file(REMOVE_RECURSE
  "../bench/bench_c6_matcher"
  "../bench/bench_c6_matcher.pdb"
  "CMakeFiles/bench_c6_matcher.dir/bench_c6_matcher.cpp.o"
  "CMakeFiles/bench_c6_matcher.dir/bench_c6_matcher.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
