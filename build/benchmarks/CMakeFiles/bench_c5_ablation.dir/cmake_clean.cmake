file(REMOVE_RECURSE
  "../bench/bench_c5_ablation"
  "../bench/bench_c5_ablation.pdb"
  "CMakeFiles/bench_c5_ablation.dir/bench_c5_ablation.cpp.o"
  "CMakeFiles/bench_c5_ablation.dir/bench_c5_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
