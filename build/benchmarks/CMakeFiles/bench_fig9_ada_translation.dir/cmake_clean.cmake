file(REMOVE_RECURSE
  "../bench/bench_fig9_ada_translation"
  "../bench/bench_fig9_ada_translation.pdb"
  "CMakeFiles/bench_fig9_ada_translation.dir/bench_fig9_ada_translation.cpp.o"
  "CMakeFiles/bench_fig9_ada_translation.dir/bench_fig9_ada_translation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_ada_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
