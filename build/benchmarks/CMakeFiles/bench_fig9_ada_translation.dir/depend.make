# Empty dependencies file for bench_fig9_ada_translation.
# This may be replaced when dependencies are built.
