# Empty compiler generated dependencies file for bench_c2_strategies.
# This may be replaced when dependencies are built.
