file(REMOVE_RECURSE
  "../bench/bench_c2_strategies"
  "../bench/bench_c2_strategies.pdb"
  "CMakeFiles/bench_c2_strategies.dir/bench_c2_strategies.cpp.o"
  "CMakeFiles/bench_c2_strategies.dir/bench_c2_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
