# Empty dependencies file for bench_c7_scale.
# This may be replaced when dependencies are built.
