file(REMOVE_RECURSE
  "../bench/bench_c7_scale"
  "../bench/bench_c7_scale.pdb"
  "CMakeFiles/bench_c7_scale.dir/bench_c7_scale.cpp.o"
  "CMakeFiles/bench_c7_scale.dir/bench_c7_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c7_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
