# Empty compiler generated dependencies file for bench_fig3_star.
# This may be replaced when dependencies are built.
