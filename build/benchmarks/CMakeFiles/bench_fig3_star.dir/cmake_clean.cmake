file(REMOVE_RECURSE
  "../bench/bench_fig3_star"
  "../bench/bench_fig3_star.pdb"
  "CMakeFiles/bench_fig3_star.dir/bench_fig3_star.cpp.o"
  "CMakeFiles/bench_fig3_star.dir/bench_fig3_star.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
