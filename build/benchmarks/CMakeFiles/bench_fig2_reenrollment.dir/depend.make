# Empty dependencies file for bench_fig2_reenrollment.
# This may be replaced when dependencies are built.
