file(REMOVE_RECURSE
  "../bench/bench_fig2_reenrollment"
  "../bench/bench_fig2_reenrollment.pdb"
  "CMakeFiles/bench_fig2_reenrollment.dir/bench_fig2_reenrollment.cpp.o"
  "CMakeFiles/bench_fig2_reenrollment.dir/bench_fig2_reenrollment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_reenrollment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
