# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_csp[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_ada[1]_include.cmake")
include("/root/repo/build/tests/test_script_core[1]_include.cmake")
include("/root/repo/build/tests/test_lockdb[1]_include.cmake")
include("/root/repo/build/tests/test_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
