file(REMOVE_RECURSE
  "CMakeFiles/test_csp.dir/csp/alternative_test.cpp.o"
  "CMakeFiles/test_csp.dir/csp/alternative_test.cpp.o.d"
  "CMakeFiles/test_csp.dir/csp/net_test.cpp.o"
  "CMakeFiles/test_csp.dir/csp/net_test.cpp.o.d"
  "CMakeFiles/test_csp.dir/csp/polling_test.cpp.o"
  "CMakeFiles/test_csp.dir/csp/polling_test.cpp.o.d"
  "test_csp"
  "test_csp.pdb"
  "test_csp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
