# Empty compiler generated dependencies file for test_csp.
# This may be replaced when dependencies are built.
