# Empty compiler generated dependencies file for test_script_core.
# This may be replaced when dependencies are built.
