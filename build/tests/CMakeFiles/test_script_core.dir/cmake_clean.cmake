file(REMOVE_RECURSE
  "CMakeFiles/test_script_core.dir/script/contention_test.cpp.o"
  "CMakeFiles/test_script_core.dir/script/contention_test.cpp.o.d"
  "CMakeFiles/test_script_core.dir/script/instance_test.cpp.o"
  "CMakeFiles/test_script_core.dir/script/instance_test.cpp.o.d"
  "CMakeFiles/test_script_core.dir/script/matching_test.cpp.o"
  "CMakeFiles/test_script_core.dir/script/matching_test.cpp.o.d"
  "CMakeFiles/test_script_core.dir/script/observer_test.cpp.o"
  "CMakeFiles/test_script_core.dir/script/observer_test.cpp.o.d"
  "CMakeFiles/test_script_core.dir/script/role_comm_test.cpp.o"
  "CMakeFiles/test_script_core.dir/script/role_comm_test.cpp.o.d"
  "CMakeFiles/test_script_core.dir/script/spec_test.cpp.o"
  "CMakeFiles/test_script_core.dir/script/spec_test.cpp.o.d"
  "CMakeFiles/test_script_core.dir/script/stats_collector_test.cpp.o"
  "CMakeFiles/test_script_core.dir/script/stats_collector_test.cpp.o.d"
  "test_script_core"
  "test_script_core.pdb"
  "test_script_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_script_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
