
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/script/contention_test.cpp" "tests/CMakeFiles/test_script_core.dir/script/contention_test.cpp.o" "gcc" "tests/CMakeFiles/test_script_core.dir/script/contention_test.cpp.o.d"
  "/root/repo/tests/script/instance_test.cpp" "tests/CMakeFiles/test_script_core.dir/script/instance_test.cpp.o" "gcc" "tests/CMakeFiles/test_script_core.dir/script/instance_test.cpp.o.d"
  "/root/repo/tests/script/matching_test.cpp" "tests/CMakeFiles/test_script_core.dir/script/matching_test.cpp.o" "gcc" "tests/CMakeFiles/test_script_core.dir/script/matching_test.cpp.o.d"
  "/root/repo/tests/script/observer_test.cpp" "tests/CMakeFiles/test_script_core.dir/script/observer_test.cpp.o" "gcc" "tests/CMakeFiles/test_script_core.dir/script/observer_test.cpp.o.d"
  "/root/repo/tests/script/role_comm_test.cpp" "tests/CMakeFiles/test_script_core.dir/script/role_comm_test.cpp.o" "gcc" "tests/CMakeFiles/test_script_core.dir/script/role_comm_test.cpp.o.d"
  "/root/repo/tests/script/spec_test.cpp" "tests/CMakeFiles/test_script_core.dir/script/spec_test.cpp.o" "gcc" "tests/CMakeFiles/test_script_core.dir/script/spec_test.cpp.o.d"
  "/root/repo/tests/script/stats_collector_test.cpp" "tests/CMakeFiles/test_script_core.dir/script/stats_collector_test.cpp.o" "gcc" "tests/CMakeFiles/test_script_core.dir/script/stats_collector_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/script_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_ada.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_csp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_lockdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
