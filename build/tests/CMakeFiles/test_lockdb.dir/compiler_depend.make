# Empty compiler generated dependencies file for test_lockdb.
# This may be replaced when dependencies are built.
