file(REMOVE_RECURSE
  "CMakeFiles/test_lockdb.dir/lockdb/granularity_test.cpp.o"
  "CMakeFiles/test_lockdb.dir/lockdb/granularity_test.cpp.o.d"
  "CMakeFiles/test_lockdb.dir/lockdb/lock_table_test.cpp.o"
  "CMakeFiles/test_lockdb.dir/lockdb/lock_table_test.cpp.o.d"
  "CMakeFiles/test_lockdb.dir/lockdb/replica_strategies_test.cpp.o"
  "CMakeFiles/test_lockdb.dir/lockdb/replica_strategies_test.cpp.o.d"
  "test_lockdb"
  "test_lockdb.pdb"
  "test_lockdb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lockdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
