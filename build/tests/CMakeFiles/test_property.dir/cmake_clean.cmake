file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/ada_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/ada_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/csp_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/csp_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/interleaving_test.cpp.o"
  "CMakeFiles/test_property.dir/property/interleaving_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/lockdb_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/lockdb_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/matcher_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/matcher_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/pattern_sweep_test.cpp.o"
  "CMakeFiles/test_property.dir/property/pattern_sweep_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/script_fuzz_test.cpp.o"
  "CMakeFiles/test_property.dir/property/script_fuzz_test.cpp.o.d"
  "test_property"
  "test_property.pdb"
  "test_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
