
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property/ada_property_test.cpp" "tests/CMakeFiles/test_property.dir/property/ada_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_property.dir/property/ada_property_test.cpp.o.d"
  "/root/repo/tests/property/csp_property_test.cpp" "tests/CMakeFiles/test_property.dir/property/csp_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_property.dir/property/csp_property_test.cpp.o.d"
  "/root/repo/tests/property/interleaving_test.cpp" "tests/CMakeFiles/test_property.dir/property/interleaving_test.cpp.o" "gcc" "tests/CMakeFiles/test_property.dir/property/interleaving_test.cpp.o.d"
  "/root/repo/tests/property/lockdb_property_test.cpp" "tests/CMakeFiles/test_property.dir/property/lockdb_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_property.dir/property/lockdb_property_test.cpp.o.d"
  "/root/repo/tests/property/matcher_property_test.cpp" "tests/CMakeFiles/test_property.dir/property/matcher_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_property.dir/property/matcher_property_test.cpp.o.d"
  "/root/repo/tests/property/pattern_sweep_test.cpp" "tests/CMakeFiles/test_property.dir/property/pattern_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/test_property.dir/property/pattern_sweep_test.cpp.o.d"
  "/root/repo/tests/property/script_fuzz_test.cpp" "tests/CMakeFiles/test_property.dir/property/script_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_property.dir/property/script_fuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/script_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_ada.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_csp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_lockdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
