file(REMOVE_RECURSE
  "CMakeFiles/test_patterns.dir/scripts/auction_test.cpp.o"
  "CMakeFiles/test_patterns.dir/scripts/auction_test.cpp.o.d"
  "CMakeFiles/test_patterns.dir/scripts/broadcast_test.cpp.o"
  "CMakeFiles/test_patterns.dir/scripts/broadcast_test.cpp.o.d"
  "CMakeFiles/test_patterns.dir/scripts/embeddings_test.cpp.o"
  "CMakeFiles/test_patterns.dir/scripts/embeddings_test.cpp.o.d"
  "CMakeFiles/test_patterns.dir/scripts/extensions_test.cpp.o"
  "CMakeFiles/test_patterns.dir/scripts/extensions_test.cpp.o.d"
  "CMakeFiles/test_patterns.dir/scripts/lock_manager_test.cpp.o"
  "CMakeFiles/test_patterns.dir/scripts/lock_manager_test.cpp.o.d"
  "CMakeFiles/test_patterns.dir/scripts/patterns_test.cpp.o"
  "CMakeFiles/test_patterns.dir/scripts/patterns_test.cpp.o.d"
  "test_patterns"
  "test_patterns.pdb"
  "test_patterns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
