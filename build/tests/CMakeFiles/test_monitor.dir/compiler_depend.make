# Empty compiler generated dependencies file for test_monitor.
# This may be replaced when dependencies are built.
