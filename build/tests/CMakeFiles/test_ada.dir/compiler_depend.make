# Empty compiler generated dependencies file for test_ada.
# This may be replaced when dependencies are built.
