file(REMOVE_RECURSE
  "CMakeFiles/test_ada.dir/ada/entry_test.cpp.o"
  "CMakeFiles/test_ada.dir/ada/entry_test.cpp.o.d"
  "CMakeFiles/test_ada.dir/ada/select_test.cpp.o"
  "CMakeFiles/test_ada.dir/ada/select_test.cpp.o.d"
  "CMakeFiles/test_ada.dir/ada/timed_call_test.cpp.o"
  "CMakeFiles/test_ada.dir/ada/timed_call_test.cpp.o.d"
  "test_ada"
  "test_ada.pdb"
  "test_ada[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ada.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
