file(REMOVE_RECURSE
  "CMakeFiles/script_csp.dir/csp/alternative.cpp.o"
  "CMakeFiles/script_csp.dir/csp/alternative.cpp.o.d"
  "CMakeFiles/script_csp.dir/csp/net.cpp.o"
  "CMakeFiles/script_csp.dir/csp/net.cpp.o.d"
  "libscript_csp.a"
  "libscript_csp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_csp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
