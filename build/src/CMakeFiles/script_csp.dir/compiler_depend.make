# Empty compiler generated dependencies file for script_csp.
# This may be replaced when dependencies are built.
