file(REMOVE_RECURSE
  "libscript_csp.a"
)
