file(REMOVE_RECURSE
  "CMakeFiles/script_core.dir/script/distributed.cpp.o"
  "CMakeFiles/script_core.dir/script/distributed.cpp.o.d"
  "CMakeFiles/script_core.dir/script/instance.cpp.o"
  "CMakeFiles/script_core.dir/script/instance.cpp.o.d"
  "CMakeFiles/script_core.dir/script/matching.cpp.o"
  "CMakeFiles/script_core.dir/script/matching.cpp.o.d"
  "CMakeFiles/script_core.dir/script/spec.cpp.o"
  "CMakeFiles/script_core.dir/script/spec.cpp.o.d"
  "CMakeFiles/script_core.dir/script/stats.cpp.o"
  "CMakeFiles/script_core.dir/script/stats.cpp.o.d"
  "libscript_core.a"
  "libscript_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
