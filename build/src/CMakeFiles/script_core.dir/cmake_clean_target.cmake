file(REMOVE_RECURSE
  "libscript_core.a"
)
