# Empty dependencies file for script_core.
# This may be replaced when dependencies are built.
