
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/script/distributed.cpp" "src/CMakeFiles/script_core.dir/script/distributed.cpp.o" "gcc" "src/CMakeFiles/script_core.dir/script/distributed.cpp.o.d"
  "/root/repo/src/script/instance.cpp" "src/CMakeFiles/script_core.dir/script/instance.cpp.o" "gcc" "src/CMakeFiles/script_core.dir/script/instance.cpp.o.d"
  "/root/repo/src/script/matching.cpp" "src/CMakeFiles/script_core.dir/script/matching.cpp.o" "gcc" "src/CMakeFiles/script_core.dir/script/matching.cpp.o.d"
  "/root/repo/src/script/spec.cpp" "src/CMakeFiles/script_core.dir/script/spec.cpp.o" "gcc" "src/CMakeFiles/script_core.dir/script/spec.cpp.o.d"
  "/root/repo/src/script/stats.cpp" "src/CMakeFiles/script_core.dir/script/stats.cpp.o" "gcc" "src/CMakeFiles/script_core.dir/script/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/script_csp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
