file(REMOVE_RECURSE
  "CMakeFiles/script_support.dir/support/log.cpp.o"
  "CMakeFiles/script_support.dir/support/log.cpp.o.d"
  "CMakeFiles/script_support.dir/support/panic.cpp.o"
  "CMakeFiles/script_support.dir/support/panic.cpp.o.d"
  "CMakeFiles/script_support.dir/support/rng.cpp.o"
  "CMakeFiles/script_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/script_support.dir/support/stats.cpp.o"
  "CMakeFiles/script_support.dir/support/stats.cpp.o.d"
  "libscript_support.a"
  "libscript_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
