# Empty compiler generated dependencies file for script_support.
# This may be replaced when dependencies are built.
