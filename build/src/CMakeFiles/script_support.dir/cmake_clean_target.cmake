file(REMOVE_RECURSE
  "libscript_support.a"
)
