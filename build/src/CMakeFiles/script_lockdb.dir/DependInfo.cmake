
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lockdb/granularity.cpp" "src/CMakeFiles/script_lockdb.dir/lockdb/granularity.cpp.o" "gcc" "src/CMakeFiles/script_lockdb.dir/lockdb/granularity.cpp.o.d"
  "/root/repo/src/lockdb/lock_table.cpp" "src/CMakeFiles/script_lockdb.dir/lockdb/lock_table.cpp.o" "gcc" "src/CMakeFiles/script_lockdb.dir/lockdb/lock_table.cpp.o.d"
  "/root/repo/src/lockdb/replica.cpp" "src/CMakeFiles/script_lockdb.dir/lockdb/replica.cpp.o" "gcc" "src/CMakeFiles/script_lockdb.dir/lockdb/replica.cpp.o.d"
  "/root/repo/src/lockdb/strategies.cpp" "src/CMakeFiles/script_lockdb.dir/lockdb/strategies.cpp.o" "gcc" "src/CMakeFiles/script_lockdb.dir/lockdb/strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/script_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
