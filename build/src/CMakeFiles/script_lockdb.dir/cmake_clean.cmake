file(REMOVE_RECURSE
  "CMakeFiles/script_lockdb.dir/lockdb/granularity.cpp.o"
  "CMakeFiles/script_lockdb.dir/lockdb/granularity.cpp.o.d"
  "CMakeFiles/script_lockdb.dir/lockdb/lock_table.cpp.o"
  "CMakeFiles/script_lockdb.dir/lockdb/lock_table.cpp.o.d"
  "CMakeFiles/script_lockdb.dir/lockdb/replica.cpp.o"
  "CMakeFiles/script_lockdb.dir/lockdb/replica.cpp.o.d"
  "CMakeFiles/script_lockdb.dir/lockdb/strategies.cpp.o"
  "CMakeFiles/script_lockdb.dir/lockdb/strategies.cpp.o.d"
  "libscript_lockdb.a"
  "libscript_lockdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_lockdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
