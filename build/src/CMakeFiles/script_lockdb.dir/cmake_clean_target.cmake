file(REMOVE_RECURSE
  "libscript_lockdb.a"
)
