# Empty dependencies file for script_lockdb.
# This may be replaced when dependencies are built.
