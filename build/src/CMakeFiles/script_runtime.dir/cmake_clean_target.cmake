file(REMOVE_RECURSE
  "libscript_runtime.a"
)
