file(REMOVE_RECURSE
  "CMakeFiles/script_runtime.dir/runtime/explore.cpp.o"
  "CMakeFiles/script_runtime.dir/runtime/explore.cpp.o.d"
  "CMakeFiles/script_runtime.dir/runtime/fiber.cpp.o"
  "CMakeFiles/script_runtime.dir/runtime/fiber.cpp.o.d"
  "CMakeFiles/script_runtime.dir/runtime/scheduler.cpp.o"
  "CMakeFiles/script_runtime.dir/runtime/scheduler.cpp.o.d"
  "CMakeFiles/script_runtime.dir/runtime/sim_link.cpp.o"
  "CMakeFiles/script_runtime.dir/runtime/sim_link.cpp.o.d"
  "CMakeFiles/script_runtime.dir/runtime/stack.cpp.o"
  "CMakeFiles/script_runtime.dir/runtime/stack.cpp.o.d"
  "CMakeFiles/script_runtime.dir/runtime/wait_queue.cpp.o"
  "CMakeFiles/script_runtime.dir/runtime/wait_queue.cpp.o.d"
  "libscript_runtime.a"
  "libscript_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
