# Empty dependencies file for script_runtime.
# This may be replaced when dependencies are built.
