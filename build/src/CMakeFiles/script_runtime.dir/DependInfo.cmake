
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/explore.cpp" "src/CMakeFiles/script_runtime.dir/runtime/explore.cpp.o" "gcc" "src/CMakeFiles/script_runtime.dir/runtime/explore.cpp.o.d"
  "/root/repo/src/runtime/fiber.cpp" "src/CMakeFiles/script_runtime.dir/runtime/fiber.cpp.o" "gcc" "src/CMakeFiles/script_runtime.dir/runtime/fiber.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/CMakeFiles/script_runtime.dir/runtime/scheduler.cpp.o" "gcc" "src/CMakeFiles/script_runtime.dir/runtime/scheduler.cpp.o.d"
  "/root/repo/src/runtime/sim_link.cpp" "src/CMakeFiles/script_runtime.dir/runtime/sim_link.cpp.o" "gcc" "src/CMakeFiles/script_runtime.dir/runtime/sim_link.cpp.o.d"
  "/root/repo/src/runtime/stack.cpp" "src/CMakeFiles/script_runtime.dir/runtime/stack.cpp.o" "gcc" "src/CMakeFiles/script_runtime.dir/runtime/stack.cpp.o.d"
  "/root/repo/src/runtime/wait_queue.cpp" "src/CMakeFiles/script_runtime.dir/runtime/wait_queue.cpp.o" "gcc" "src/CMakeFiles/script_runtime.dir/runtime/wait_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/script_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
