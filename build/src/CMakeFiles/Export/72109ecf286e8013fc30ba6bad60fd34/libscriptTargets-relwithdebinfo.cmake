#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "libscript::script_support" for configuration "RelWithDebInfo"
set_property(TARGET libscript::script_support APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(libscript::script_support PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libscript_support.a"
  )

list(APPEND _cmake_import_check_targets libscript::script_support )
list(APPEND _cmake_import_check_files_for_libscript::script_support "${_IMPORT_PREFIX}/lib/libscript_support.a" )

# Import target "libscript::script_runtime" for configuration "RelWithDebInfo"
set_property(TARGET libscript::script_runtime APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(libscript::script_runtime PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libscript_runtime.a"
  )

list(APPEND _cmake_import_check_targets libscript::script_runtime )
list(APPEND _cmake_import_check_files_for_libscript::script_runtime "${_IMPORT_PREFIX}/lib/libscript_runtime.a" )

# Import target "libscript::script_csp" for configuration "RelWithDebInfo"
set_property(TARGET libscript::script_csp APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(libscript::script_csp PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libscript_csp.a"
  )

list(APPEND _cmake_import_check_targets libscript::script_csp )
list(APPEND _cmake_import_check_files_for_libscript::script_csp "${_IMPORT_PREFIX}/lib/libscript_csp.a" )

# Import target "libscript::script_monitor" for configuration "RelWithDebInfo"
set_property(TARGET libscript::script_monitor APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(libscript::script_monitor PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libscript_monitor.a"
  )

list(APPEND _cmake_import_check_targets libscript::script_monitor )
list(APPEND _cmake_import_check_files_for_libscript::script_monitor "${_IMPORT_PREFIX}/lib/libscript_monitor.a" )

# Import target "libscript::script_ada" for configuration "RelWithDebInfo"
set_property(TARGET libscript::script_ada APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(libscript::script_ada PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libscript_ada.a"
  )

list(APPEND _cmake_import_check_targets libscript::script_ada )
list(APPEND _cmake_import_check_files_for_libscript::script_ada "${_IMPORT_PREFIX}/lib/libscript_ada.a" )

# Import target "libscript::script_core" for configuration "RelWithDebInfo"
set_property(TARGET libscript::script_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(libscript::script_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libscript_core.a"
  )

list(APPEND _cmake_import_check_targets libscript::script_core )
list(APPEND _cmake_import_check_files_for_libscript::script_core "${_IMPORT_PREFIX}/lib/libscript_core.a" )

# Import target "libscript::script_lockdb" for configuration "RelWithDebInfo"
set_property(TARGET libscript::script_lockdb APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(libscript::script_lockdb PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libscript_lockdb.a"
  )

list(APPEND _cmake_import_check_targets libscript::script_lockdb )
list(APPEND _cmake_import_check_files_for_libscript::script_lockdb "${_IMPORT_PREFIX}/lib/libscript_lockdb.a" )

# Import target "libscript::script_patterns" for configuration "RelWithDebInfo"
set_property(TARGET libscript::script_patterns APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(libscript::script_patterns PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libscript_patterns.a"
  )

list(APPEND _cmake_import_check_targets libscript::script_patterns )
list(APPEND _cmake_import_check_files_for_libscript::script_patterns "${_IMPORT_PREFIX}/lib/libscript_patterns.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
