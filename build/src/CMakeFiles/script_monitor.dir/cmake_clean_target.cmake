file(REMOVE_RECURSE
  "libscript_monitor.a"
)
