file(REMOVE_RECURSE
  "CMakeFiles/script_monitor.dir/monitor/monitor.cpp.o"
  "CMakeFiles/script_monitor.dir/monitor/monitor.cpp.o.d"
  "libscript_monitor.a"
  "libscript_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
