# Empty dependencies file for script_monitor.
# This may be replaced when dependencies are built.
