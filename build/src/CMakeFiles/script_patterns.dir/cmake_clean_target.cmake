file(REMOVE_RECURSE
  "libscript_patterns.a"
)
