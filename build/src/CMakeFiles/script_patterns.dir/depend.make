# Empty dependencies file for script_patterns.
# This may be replaced when dependencies are built.
