
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scripts/ada_embedding.cpp" "src/CMakeFiles/script_patterns.dir/scripts/ada_embedding.cpp.o" "gcc" "src/CMakeFiles/script_patterns.dir/scripts/ada_embedding.cpp.o.d"
  "/root/repo/src/scripts/auction.cpp" "src/CMakeFiles/script_patterns.dir/scripts/auction.cpp.o" "gcc" "src/CMakeFiles/script_patterns.dir/scripts/auction.cpp.o.d"
  "/root/repo/src/scripts/barrier.cpp" "src/CMakeFiles/script_patterns.dir/scripts/barrier.cpp.o" "gcc" "src/CMakeFiles/script_patterns.dir/scripts/barrier.cpp.o.d"
  "/root/repo/src/scripts/broadcast.cpp" "src/CMakeFiles/script_patterns.dir/scripts/broadcast.cpp.o" "gcc" "src/CMakeFiles/script_patterns.dir/scripts/broadcast.cpp.o.d"
  "/root/repo/src/scripts/csp_embedding.cpp" "src/CMakeFiles/script_patterns.dir/scripts/csp_embedding.cpp.o" "gcc" "src/CMakeFiles/script_patterns.dir/scripts/csp_embedding.cpp.o.d"
  "/root/repo/src/scripts/lock_manager.cpp" "src/CMakeFiles/script_patterns.dir/scripts/lock_manager.cpp.o" "gcc" "src/CMakeFiles/script_patterns.dir/scripts/lock_manager.cpp.o.d"
  "/root/repo/src/scripts/mailbox_broadcast.cpp" "src/CMakeFiles/script_patterns.dir/scripts/mailbox_broadcast.cpp.o" "gcc" "src/CMakeFiles/script_patterns.dir/scripts/mailbox_broadcast.cpp.o.d"
  "/root/repo/src/scripts/monitor_embedding.cpp" "src/CMakeFiles/script_patterns.dir/scripts/monitor_embedding.cpp.o" "gcc" "src/CMakeFiles/script_patterns.dir/scripts/monitor_embedding.cpp.o.d"
  "/root/repo/src/scripts/scatter_gather.cpp" "src/CMakeFiles/script_patterns.dir/scripts/scatter_gather.cpp.o" "gcc" "src/CMakeFiles/script_patterns.dir/scripts/scatter_gather.cpp.o.d"
  "/root/repo/src/scripts/token_ring.cpp" "src/CMakeFiles/script_patterns.dir/scripts/token_ring.cpp.o" "gcc" "src/CMakeFiles/script_patterns.dir/scripts/token_ring.cpp.o.d"
  "/root/repo/src/scripts/two_phase_commit.cpp" "src/CMakeFiles/script_patterns.dir/scripts/two_phase_commit.cpp.o" "gcc" "src/CMakeFiles/script_patterns.dir/scripts/two_phase_commit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/script_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_ada.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_lockdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_csp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/script_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
