file(REMOVE_RECURSE
  "CMakeFiles/script_patterns.dir/scripts/ada_embedding.cpp.o"
  "CMakeFiles/script_patterns.dir/scripts/ada_embedding.cpp.o.d"
  "CMakeFiles/script_patterns.dir/scripts/auction.cpp.o"
  "CMakeFiles/script_patterns.dir/scripts/auction.cpp.o.d"
  "CMakeFiles/script_patterns.dir/scripts/barrier.cpp.o"
  "CMakeFiles/script_patterns.dir/scripts/barrier.cpp.o.d"
  "CMakeFiles/script_patterns.dir/scripts/broadcast.cpp.o"
  "CMakeFiles/script_patterns.dir/scripts/broadcast.cpp.o.d"
  "CMakeFiles/script_patterns.dir/scripts/csp_embedding.cpp.o"
  "CMakeFiles/script_patterns.dir/scripts/csp_embedding.cpp.o.d"
  "CMakeFiles/script_patterns.dir/scripts/lock_manager.cpp.o"
  "CMakeFiles/script_patterns.dir/scripts/lock_manager.cpp.o.d"
  "CMakeFiles/script_patterns.dir/scripts/mailbox_broadcast.cpp.o"
  "CMakeFiles/script_patterns.dir/scripts/mailbox_broadcast.cpp.o.d"
  "CMakeFiles/script_patterns.dir/scripts/monitor_embedding.cpp.o"
  "CMakeFiles/script_patterns.dir/scripts/monitor_embedding.cpp.o.d"
  "CMakeFiles/script_patterns.dir/scripts/scatter_gather.cpp.o"
  "CMakeFiles/script_patterns.dir/scripts/scatter_gather.cpp.o.d"
  "CMakeFiles/script_patterns.dir/scripts/token_ring.cpp.o"
  "CMakeFiles/script_patterns.dir/scripts/token_ring.cpp.o.d"
  "CMakeFiles/script_patterns.dir/scripts/two_phase_commit.cpp.o"
  "CMakeFiles/script_patterns.dir/scripts/two_phase_commit.cpp.o.d"
  "libscript_patterns.a"
  "libscript_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
