file(REMOVE_RECURSE
  "libscript_ada.a"
)
