# Empty compiler generated dependencies file for script_ada.
# This may be replaced when dependencies are built.
