file(REMOVE_RECURSE
  "CMakeFiles/script_ada.dir/ada/entry.cpp.o"
  "CMakeFiles/script_ada.dir/ada/entry.cpp.o.d"
  "CMakeFiles/script_ada.dir/ada/select.cpp.o"
  "CMakeFiles/script_ada.dir/ada/select.cpp.o.d"
  "CMakeFiles/script_ada.dir/ada/task.cpp.o"
  "CMakeFiles/script_ada.dir/ada/task.cpp.o.d"
  "libscript_ada.a"
  "libscript_ada.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_ada.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
