# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libscript_support.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libscript_runtime.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libscript_csp.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libscript_monitor.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libscript_ada.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libscript_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libscript_lockdb.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/libscript_patterns.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/libscript" TYPE DIRECTORY FILES
    "/root/repo/src/support"
    "/root/repo/src/runtime"
    "/root/repo/src/csp"
    "/root/repo/src/ada"
    "/root/repo/src/monitor"
    "/root/repo/src/script"
    "/root/repo/src/scripts"
    "/root/repo/src/lockdb"
    FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/libscript" TYPE FILE FILES "/root/repo/src/script.hpp")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/libscript/libscriptTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/libscript/libscriptTargets.cmake"
         "/root/repo/build/src/CMakeFiles/Export/72109ecf286e8013fc30ba6bad60fd34/libscriptTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/libscript/libscriptTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/libscript/libscriptTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/libscript" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/72109ecf286e8013fc30ba6bad60fd34/libscriptTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ww][Ii][Tt][Hh][Dd][Ee][Bb][Ii][Nn][Ff][Oo])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/libscript" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/72109ecf286e8013fc30ba6bad60fd34/libscriptTargets-relwithdebinfo.cmake")
  endif()
endif()

