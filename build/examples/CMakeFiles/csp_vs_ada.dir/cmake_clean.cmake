file(REMOVE_RECURSE
  "CMakeFiles/csp_vs_ada.dir/csp_vs_ada.cpp.o"
  "CMakeFiles/csp_vs_ada.dir/csp_vs_ada.cpp.o.d"
  "csp_vs_ada"
  "csp_vs_ada.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csp_vs_ada.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
