# Empty compiler generated dependencies file for csp_vs_ada.
# This may be replaced when dependencies are built.
