file(REMOVE_RECURSE
  "CMakeFiles/dining_philosophers.dir/dining_philosophers.cpp.o"
  "CMakeFiles/dining_philosophers.dir/dining_philosophers.cpp.o.d"
  "dining_philosophers"
  "dining_philosophers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dining_philosophers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
