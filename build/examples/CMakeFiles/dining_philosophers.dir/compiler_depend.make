# Empty compiler generated dependencies file for dining_philosophers.
# This may be replaced when dependencies are built.
