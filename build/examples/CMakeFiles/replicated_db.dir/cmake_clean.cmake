file(REMOVE_RECURSE
  "CMakeFiles/replicated_db.dir/replicated_db.cpp.o"
  "CMakeFiles/replicated_db.dir/replicated_db.cpp.o.d"
  "replicated_db"
  "replicated_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
