# Empty compiler generated dependencies file for replicated_db.
# This may be replaced when dependencies are built.
