file(REMOVE_RECURSE
  "CMakeFiles/verify_script.dir/verify_script.cpp.o"
  "CMakeFiles/verify_script.dir/verify_script.cpp.o.d"
  "verify_script"
  "verify_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
