# Empty compiler generated dependencies file for verify_script.
# This may be replaced when dependencies are built.
