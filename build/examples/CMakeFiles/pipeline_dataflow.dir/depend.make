# Empty dependencies file for pipeline_dataflow.
# This may be replaced when dependencies are built.
