#include "lockdb/granularity.hpp"

#include <gtest/gtest.h>

namespace {

using script::lockdb::ancestor_chain;
using script::lockdb::compatible;
using script::lockdb::GranMode;
using script::lockdb::GranularityLockTable;
using script::lockdb::intention_for;

TEST(Granularity, CompatibilityMatrix) {
  EXPECT_TRUE(compatible(GranMode::IS, GranMode::IX));
  EXPECT_TRUE(compatible(GranMode::IX, GranMode::IX));
  EXPECT_TRUE(compatible(GranMode::S, GranMode::IS));
  EXPECT_TRUE(compatible(GranMode::IS, GranMode::SIX));
  EXPECT_FALSE(compatible(GranMode::IX, GranMode::S));
  EXPECT_FALSE(compatible(GranMode::S, GranMode::IX));
  EXPECT_FALSE(compatible(GranMode::SIX, GranMode::SIX));
  EXPECT_FALSE(compatible(GranMode::X, GranMode::IS));
  EXPECT_FALSE(compatible(GranMode::IS, GranMode::X));
}

TEST(Granularity, IntentionModes) {
  EXPECT_EQ(intention_for(GranMode::S), GranMode::IS);
  EXPECT_EQ(intention_for(GranMode::X), GranMode::IX);
  EXPECT_EQ(intention_for(GranMode::SIX), GranMode::IX);
}

TEST(Granularity, AncestorChain) {
  const auto chain = ancestor_chain("db/a1/f2/r9");
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0], "db");
  EXPECT_EQ(chain[1], "db/a1");
  EXPECT_EQ(chain[3], "db/a1/f2/r9");
}

TEST(Granularity, LockTakesIntentionsOnAncestors) {
  GranularityLockTable t;
  ASSERT_TRUE(t.lock("db/a1/r1", GranMode::X, 1));
  EXPECT_TRUE(t.holds("db", GranMode::IX, 1));
  EXPECT_TRUE(t.holds("db/a1", GranMode::IX, 1));
  EXPECT_TRUE(t.holds("db/a1/r1", GranMode::X, 1));
}

TEST(Granularity, RecordLocksInDifferentFilesCoexist) {
  // The whole point of granularity locking: two writers in different
  // subtrees both get X record locks (IX intentions are compatible).
  GranularityLockTable t;
  ASSERT_TRUE(t.lock("db/f1/r1", GranMode::X, 1));
  EXPECT_TRUE(t.lock("db/f2/r2", GranMode::X, 2));
}

TEST(Granularity, SubtreeLockBlocksDescendantWriter) {
  GranularityLockTable t;
  ASSERT_TRUE(t.lock("db/f1", GranMode::S, 1));  // whole-file read lock
  EXPECT_FALSE(t.lock("db/f1/r1", GranMode::X, 2));  // IX vs S on db/f1
  EXPECT_TRUE(t.lock("db/f1/r1", GranMode::S, 2));   // IS vs S is fine
}

TEST(Granularity, RootXBlocksEverything) {
  GranularityLockTable t;
  ASSERT_TRUE(t.lock("db", GranMode::X, 1));
  EXPECT_FALSE(t.lock("db/f1/r1", GranMode::S, 2));
  EXPECT_FALSE(t.lock("db/f1", GranMode::IS, 2));
}

TEST(Granularity, SIXAllowsReadersButBlocksWriters) {
  GranularityLockTable t;
  ASSERT_TRUE(t.lock("db/f1", GranMode::SIX, 1));
  // Another reader of a record under f1 needs IS on f1: IS vs SIX ok.
  EXPECT_TRUE(t.lock("db/f1/r1", GranMode::S, 2));
  // Another writer needs IX on f1: IX vs SIX incompatible.
  EXPECT_FALSE(t.lock("db/f1/r2", GranMode::X, 2));
}

TEST(Granularity, OwnLocksNeverSelfConflict) {
  GranularityLockTable t;
  ASSERT_TRUE(t.lock("db/f1", GranMode::S, 1));
  EXPECT_TRUE(t.lock("db/f1/r1", GranMode::X, 1));
}

TEST(Granularity, FailedLockChangesNothing) {
  GranularityLockTable t;
  ASSERT_TRUE(t.lock("db/f1", GranMode::X, 1));
  const auto nodes_before = t.node_count();
  EXPECT_FALSE(t.lock("db/f1/r1", GranMode::S, 2));
  EXPECT_EQ(t.node_count(), nodes_before);
  EXPECT_FALSE(t.holds("db", GranMode::IS, 2));
}

TEST(Granularity, ReleaseAllDropsWholeChain) {
  GranularityLockTable t;
  ASSERT_TRUE(t.lock("db/a/f/r", GranMode::X, 1));
  EXPECT_EQ(t.release_all(1), 4u);
  EXPECT_EQ(t.node_count(), 0u);
  EXPECT_TRUE(t.lock("db", GranMode::X, 2));
}

TEST(Granularity, GrantDenialCounters) {
  GranularityLockTable t;
  ASSERT_TRUE(t.lock("db/x", GranMode::X, 1));
  ASSERT_FALSE(t.lock("db/x", GranMode::S, 2));
  EXPECT_EQ(t.grants(), 1u);
  EXPECT_EQ(t.denials(), 1u);
}

TEST(Granularity, PerPathReleaseKeepsSiblingIntentions) {
  // Two record locks under one file share the file's IX intention;
  // releasing one must not strip the other's protection.
  GranularityLockTable t;
  ASSERT_TRUE(t.lock("db/f1/r1", GranMode::X, 1));
  ASSERT_TRUE(t.lock("db/f1/r2", GranMode::X, 1));
  t.release("db/f1/r1", GranMode::X, 1);
  EXPECT_FALSE(t.holds("db/f1/r1", GranMode::X, 1));
  EXPECT_TRUE(t.holds("db/f1/r2", GranMode::X, 1));
  // The surviving IX on db/f1 still blocks a whole-file S lock.
  EXPECT_FALSE(t.lock("db/f1", GranMode::S, 2));
}

TEST(Granularity, PerPathReleaseFreesChainWhenLastLockGoes) {
  GranularityLockTable t;
  ASSERT_TRUE(t.lock("db/f1/r1", GranMode::X, 1));
  t.release("db/f1/r1", GranMode::X, 1);
  EXPECT_EQ(t.node_count(), 0u);
  EXPECT_TRUE(t.lock("db", GranMode::X, 2));
}

TEST(Granularity, ReleaseOfUnheldLockIsNoOp) {
  GranularityLockTable t;
  ASSERT_TRUE(t.lock("db/f1/r1", GranMode::S, 1));
  t.release("db/f1/r1", GranMode::X, 1);  // wrong mode: no-op
  t.release("db/f9/r9", GranMode::S, 1);  // wrong path: no-op
  EXPECT_TRUE(t.holds("db/f1/r1", GranMode::S, 1));
}

TEST(Granularity, ReleaseOnlyAffectsOneOwner) {
  GranularityLockTable t;
  ASSERT_TRUE(t.lock("db/f1/r1", GranMode::S, 1));
  ASSERT_TRUE(t.lock("db/f1/r1", GranMode::S, 2));
  t.release("db/f1/r1", GranMode::S, 1);
  EXPECT_TRUE(t.holds("db/f1/r1", GranMode::S, 2));
}

}  // namespace
