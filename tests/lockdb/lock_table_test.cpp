#include "lockdb/lock_table.hpp"

#include <gtest/gtest.h>

namespace {

using script::lockdb::LockMode;
using script::lockdb::LockTable;

TEST(LockTable, SharedLocksCoexist) {
  LockTable t;
  EXPECT_TRUE(t.acquire("x", LockMode::Shared, 1));
  EXPECT_TRUE(t.acquire("x", LockMode::Shared, 2));
  EXPECT_EQ(t.holder_count("x"), 2u);
}

TEST(LockTable, ExclusiveExcludesEveryoneElse) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Exclusive, 1));
  EXPECT_FALSE(t.acquire("x", LockMode::Shared, 2));
  EXPECT_FALSE(t.acquire("x", LockMode::Exclusive, 2));
}

TEST(LockTable, SharedBlocksExclusiveFromOthers) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Shared, 1));
  EXPECT_FALSE(t.acquire("x", LockMode::Exclusive, 2));
}

TEST(LockTable, SoleOwnerCanUpgrade) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Shared, 1));
  EXPECT_TRUE(t.acquire("x", LockMode::Exclusive, 1));
  EXPECT_FALSE(t.acquire("x", LockMode::Shared, 2));
}

TEST(LockTable, UpgradeDeniedWithCoHolders) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Shared, 1));
  ASSERT_TRUE(t.acquire("x", LockMode::Shared, 2));
  EXPECT_FALSE(t.acquire("x", LockMode::Exclusive, 1));
}

TEST(LockTable, ReacquisitionIsIdempotent) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Shared, 1));
  EXPECT_TRUE(t.acquire("x", LockMode::Shared, 1));
  EXPECT_EQ(t.holder_count("x"), 1u);
}

TEST(LockTable, ReleaseFreesTheItem) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Exclusive, 1));
  t.release("x", 1);
  EXPECT_FALSE(t.holds("x", 1));
  EXPECT_TRUE(t.acquire("x", LockMode::Exclusive, 2));
}

TEST(LockTable, ReleaseOfOneSharedHolderKeepsOthers) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Shared, 1));
  ASSERT_TRUE(t.acquire("x", LockMode::Shared, 2));
  t.release("x", 1);
  EXPECT_TRUE(t.holds("x", 2));
  EXPECT_EQ(t.holder_count("x"), 1u);
}

TEST(LockTable, ReleaseAllDropsEverything) {
  LockTable t;
  ASSERT_TRUE(t.acquire("a", LockMode::Shared, 1));
  ASSERT_TRUE(t.acquire("b", LockMode::Exclusive, 1));
  ASSERT_TRUE(t.acquire("a", LockMode::Shared, 2));
  EXPECT_EQ(t.release_all(1), 2u);
  EXPECT_FALSE(t.holds("a", 1));
  EXPECT_FALSE(t.holds("b", 1));
  EXPECT_TRUE(t.holds("a", 2));
}

TEST(LockTable, ItemsAreIndependent) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Exclusive, 1));
  EXPECT_TRUE(t.acquire("y", LockMode::Exclusive, 2));
  EXPECT_EQ(t.locked_items(), 2u);
}

TEST(LockTable, GrantAndDenialCounters) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Exclusive, 1));
  ASSERT_FALSE(t.acquire("x", LockMode::Shared, 2));
  EXPECT_EQ(t.grants(), 1u);
  EXPECT_EQ(t.denials(), 1u);
}

}  // namespace
