#include "lockdb/lock_table.hpp"

#include <gtest/gtest.h>

namespace {

using script::lockdb::AcquireOutcome;
using script::lockdb::LockMode;
using script::lockdb::LockTable;

TEST(LockTable, SharedLocksCoexist) {
  LockTable t;
  EXPECT_TRUE(t.acquire("x", LockMode::Shared, 1));
  EXPECT_TRUE(t.acquire("x", LockMode::Shared, 2));
  EXPECT_EQ(t.holder_count("x"), 2u);
}

TEST(LockTable, ExclusiveExcludesEveryoneElse) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Exclusive, 1));
  EXPECT_FALSE(t.acquire("x", LockMode::Shared, 2));
  EXPECT_FALSE(t.acquire("x", LockMode::Exclusive, 2));
}

TEST(LockTable, SharedBlocksExclusiveFromOthers) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Shared, 1));
  EXPECT_FALSE(t.acquire("x", LockMode::Exclusive, 2));
}

TEST(LockTable, SoleOwnerCanUpgrade) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Shared, 1));
  EXPECT_TRUE(t.acquire("x", LockMode::Exclusive, 1));
  EXPECT_FALSE(t.acquire("x", LockMode::Shared, 2));
}

TEST(LockTable, UpgradeDeniedWithCoHolders) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Shared, 1));
  ASSERT_TRUE(t.acquire("x", LockMode::Shared, 2));
  EXPECT_FALSE(t.acquire("x", LockMode::Exclusive, 1));
}

TEST(LockTable, ReacquisitionIsIdempotent) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Shared, 1));
  EXPECT_TRUE(t.acquire("x", LockMode::Shared, 1));
  EXPECT_EQ(t.holder_count("x"), 1u);
}

TEST(LockTable, ReleaseFreesTheItem) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Exclusive, 1));
  t.release("x", 1);
  EXPECT_FALSE(t.holds("x", 1));
  EXPECT_TRUE(t.acquire("x", LockMode::Exclusive, 2));
}

TEST(LockTable, ReleaseOfOneSharedHolderKeepsOthers) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Shared, 1));
  ASSERT_TRUE(t.acquire("x", LockMode::Shared, 2));
  t.release("x", 1);
  EXPECT_TRUE(t.holds("x", 2));
  EXPECT_EQ(t.holder_count("x"), 1u);
}

TEST(LockTable, ReleaseAllDropsEverything) {
  LockTable t;
  ASSERT_TRUE(t.acquire("a", LockMode::Shared, 1));
  ASSERT_TRUE(t.acquire("b", LockMode::Exclusive, 1));
  ASSERT_TRUE(t.acquire("a", LockMode::Shared, 2));
  EXPECT_EQ(t.release_all(1), 2u);
  EXPECT_FALSE(t.holds("a", 1));
  EXPECT_FALSE(t.holds("b", 1));
  EXPECT_TRUE(t.holds("a", 2));
}

TEST(LockTable, ItemsAreIndependent) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Exclusive, 1));
  EXPECT_TRUE(t.acquire("y", LockMode::Exclusive, 2));
  EXPECT_EQ(t.locked_items(), 2u);
}

TEST(LockTable, GrantAndDenialCounters) {
  LockTable t;
  ASSERT_TRUE(t.acquire("x", LockMode::Exclusive, 1));
  ASSERT_FALSE(t.acquire("x", LockMode::Shared, 2));
  EXPECT_EQ(t.grants(), 1u);
  EXPECT_EQ(t.denials(), 1u);
}

// ---- Deadline-aware acquires (docs/ROBUSTNESS.md "Overload") ----

TEST(LockTableDeadline, ExpiredRequestIsTypedAndLeavesTheTableUntouched) {
  LockTable t;
  // now == deadline: already too late — distinct from a Denied.
  EXPECT_EQ(t.acquire("x", LockMode::Exclusive, 1, /*now=*/10,
                      /*deadline=*/10),
            AcquireOutcome::DeadlineExpired);
  EXPECT_EQ(t.holder_count("x"), 0u);
  EXPECT_EQ(t.deadline_expiries(), 1u);
  EXPECT_EQ(t.grants(), 0u);
  EXPECT_EQ(t.denials(), 0u);
}

TEST(LockTableDeadline, LiveDeadlineGrantsAndContentionStaysDenied) {
  LockTable t;
  EXPECT_EQ(t.acquire("x", LockMode::Exclusive, 1, /*now=*/5,
                      /*deadline=*/10),
            AcquireOutcome::Granted);
  EXPECT_EQ(t.acquire("x", LockMode::Exclusive, 2, /*now=*/6,
                      /*deadline=*/100),
            AcquireOutcome::Denied);
  EXPECT_EQ(t.deadline_expiries(), 0u);
}

TEST(LockTableDeadline, NoDeadlineNeverExpires) {
  LockTable t;
  EXPECT_EQ(t.acquire("x", LockMode::Shared, 1, /*now=*/999999,
                      script::lockdb::kNoDeadline),
            AcquireOutcome::Granted);
}

TEST(LockTableDeadline, LeasedOverloadStampsTheLeaseOnlyOnGrant) {
  LockTable t;
  EXPECT_EQ(t.acquire_leased("x", LockMode::Exclusive, 1,
                             /*expires_at=*/50, /*now=*/0,
                             /*deadline=*/20),
            AcquireOutcome::Granted);
  EXPECT_TRUE(t.holds("x", 1));
  // Expired request: no lease, no holder, just the typed refusal.
  EXPECT_EQ(t.acquire_leased("y", LockMode::Exclusive, 2,
                             /*expires_at=*/50, /*now=*/30,
                             /*deadline=*/20),
            AcquireOutcome::DeadlineExpired);
  EXPECT_FALSE(t.holds("y", 2));
  EXPECT_EQ(t.deadline_expiries(), 1u);
}

TEST(LockTableDeadline, SnapshotCarriesExpiryCountOnlyWhenNonzero) {
  LockTable clean;
  ASSERT_TRUE(clean.acquire("x", LockMode::Shared, 1));
  EXPECT_EQ(clean.snapshot_json().find("deadline_expiries"),
            std::string::npos);

  LockTable t;
  ASSERT_EQ(t.acquire("x", LockMode::Shared, 1, 10, 10),
            AcquireOutcome::DeadlineExpired);
  EXPECT_NE(t.snapshot_json().find("\"deadline_expiries\": 1"),
            std::string::npos);
}

}  // namespace
