// lockdb over the wire, run in the deterministic sim twin: leased-lock
// reaping for silent clients, 2PC commit/abort across wire replicas,
// WAL recovery with in-doubt resolution, degradation when a replica
// dies, and primary takeover.
#include "lockdb/wire_server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "runtime/sim_log.hpp"
#include "runtime/transport.hpp"
#include "runtime/wire.hpp"

namespace {

using script::lockdb::FileWal;
using script::lockdb::LockMode;
using script::lockdb::LockTable;
using script::lockdb::SimWal;
using script::lockdb::Wal;
using script::lockdb::WireDriver;
using script::lockdb::WireDriverOptions;
using script::lockdb::WireReplica;
using script::lockdb::WireReplicaOptions;
using script::runtime::PeerId;
using script::runtime::Scheduler;
using script::runtime::SimLogStore;
using script::runtime::SimNetwork;
using script::runtime::SimTransport;
using script::runtime::Wire;

TEST(FileWal, RoundTripsAndDropsTornTail) {
  const std::string path =
      "/tmp/script_filewal_" + std::to_string(::getpid()) + ".wal";
  std::remove(path.c_str());
  {
    FileWal w(path);
    w.append("decision.1", "commit");
    w.append("prep.2", "a=1;b=2");
    w.append("odd\tkey", "with\nnewline");
  }
  {
    // Simulate a crash mid-append: a torn, unterminated tail line.
    std::FILE* f = std::fopen(path.c_str(), "a");
    std::fputs("decision.3\tcom", f);
    std::fclose(f);
  }
  FileWal r(path);
  ASSERT_EQ(r.all().size(), 3u) << "torn tail must be discarded";
  EXPECT_EQ(r.last("decision.1").value(), "commit");
  EXPECT_EQ(r.last("prep.2").value(), "a=1;b=2");
  EXPECT_EQ(r.last("odd\tkey").value(), "with\nnewline");
  EXPECT_FALSE(r.last("decision.3").has_value());
  std::remove(path.c_str());
}

/// A 3-replica + driver cluster over one SimNetwork, everything inside
/// one scheduler — the CI twin of the multi-process TCP deployment.
struct Cluster {
  Scheduler sched;
  SimNetwork net{1};
  SimLogStore store;
  std::vector<std::unique_ptr<SimTransport>> trans;
  std::vector<std::unique_ptr<Wire>> wires;
  std::vector<std::unique_ptr<LockTable>> tables;
  std::vector<std::unique_ptr<SimWal>> wals;
  std::vector<std::unique_ptr<WireReplica>> reps;
  std::unique_ptr<SimTransport> dtrans;
  std::unique_ptr<Wire> dwire;
  std::unique_ptr<SimWal> dwal;
  std::unique_ptr<WireDriver> driver;

  explicit Cluster(std::uint64_t driver_lease = 500) {
    const std::vector<PeerId> members{0, 1, 2};
    for (PeerId id : members) {
      trans.push_back(std::make_unique<SimTransport>(net, id));
      wires.push_back(std::make_unique<Wire>(sched, *trans.back()));
      wires.back()->start();
      tables.push_back(std::make_unique<LockTable>());
      tables.back()->set_clock([this] { return sched.now(); });
      wals.push_back(
          std::make_unique<SimWal>(store.open("r" + std::to_string(id))));
      WireReplicaOptions ro;
      ro.self = id;
      ro.replicas = members;
      reps.push_back(std::make_unique<WireReplica>(
          sched, *wires.back(), *tables.back(), *wals.back(), ro));
      reps.back()->start();
    }
    dtrans = std::make_unique<SimTransport>(net, 100);
    dwire = std::make_unique<Wire>(sched, *dtrans);
    dwire->start();
    dwal = std::make_unique<SimWal>(store.open("driver"));
    WireDriverOptions dopts;
    dopts.self = 100;
    dopts.replicas = members;
    dopts.lease_ticks = driver_lease;
    driver = std::make_unique<WireDriver>(sched, *dwire, *dwal, dopts);
  }

  void shutdown() {
    for (auto& r : reps) r->stop();
    for (auto& w : wires) w->stop();
    dwire->stop();
  }
};

TEST(WireLockdb, TwoPhaseCommitReplicatesWrites) {
  Cluster c;
  c.sched.spawn("driver", [&] {
    ASSERT_TRUE(c.driver->acquire(7, "x", LockMode::Exclusive));
    ASSERT_TRUE(c.driver->acquire(7, "y", LockMode::Exclusive));
    EXPECT_TRUE(c.driver->update(7, {{"x", "42"}, {"y", "43"}}));
    EXPECT_EQ(c.driver->get("x").value(), "42");
    EXPECT_EQ(c.driver->get("y").value(), "43");
    // All three replicas converged to the same state.
    const std::string d0 = c.driver->digest_of(0);
    EXPECT_EQ(d0, c.driver->digest_of(1));
    EXPECT_EQ(d0, c.driver->digest_of(2));
    EXPECT_EQ(c.driver->commits(), 1u);
    c.shutdown();
  });
  c.sched.run();
  for (auto& r : c.reps) {
    EXPECT_EQ(r->committed(), 1u);
    EXPECT_EQ(r->data().at("x"), "42");
  }
}

TEST(WireLockdb, PrepareWithoutLocksIsVetoed) {
  Cluster c;
  c.sched.spawn("driver", [&] {
    // No locks taken for txn 9: every replica votes no, 2PC aborts.
    EXPECT_FALSE(c.driver->update(9, {{"x", "evil"}}));
    EXPECT_EQ(c.driver->aborts(), 1u);
    EXPECT_FALSE(c.driver->get("x").has_value());
    c.shutdown();
  });
  c.sched.run();
  for (auto& r : c.reps) EXPECT_EQ(r->aborted(), 1u);
}

TEST(WireLockdb, SilentClientLeasesAreReaped) {
  Cluster c(/*driver_lease=*/100);
  c.sched.spawn("driver", [&] {
    // The zombie client: takes X locks, then goes silent forever.
    ASSERT_TRUE(c.driver->acquire(1, "x", LockMode::Exclusive));
    // A competing txn is refused while the lease lives...
    EXPECT_FALSE(c.driver->acquire(2, "x", LockMode::Exclusive));
    // ...then the lease expires and housekeeping sweeps reap it.
    c.sched.sleep_for(300);
    ASSERT_TRUE(c.driver->acquire(3, "x", LockMode::Exclusive));
    EXPECT_TRUE(c.driver->update(3, {{"x", "recovered"}}));
    c.shutdown();
  });
  c.sched.run();
  std::uint64_t reaped = 0;
  for (auto& t : c.tables) reaped += t->leases_reaped();
  EXPECT_GT(reaped, 0u) << "the zombie's grants must have been reaped";
  for (auto& r : c.reps) EXPECT_EQ(r->data().at("x"), "recovered");
}

TEST(WireLockdb, ReplicaDeathDegradesAndRecoveryCatchesUp) {
  Cluster c;
  std::string final_digest;
  c.sched.spawn("scenario", [&] {
    // Healthy commit with all three replicas.
    ASSERT_TRUE(c.driver->acquire(1, "a", LockMode::Exclusive));
    ASSERT_TRUE(c.driver->update(1, {{"a", "1"}}));

    // Replica 0 (the primary) is killed: network down, fiber stopped.
    c.reps[0]->stop();
    c.net.set_down(0);
    // Survivors learn about it (PeerSupervisor::on_gone in the real
    // deployment; driven by hand in the sim twin).
    c.reps[1]->note_peer_gone(0);
    c.reps[2]->note_peer_gone(0);
    EXPECT_TRUE(c.reps[1]->is_primary()) << "next-lowest id takes over";
    EXPECT_EQ(c.reps[1]->takeovers(), 1u);

    // The driver degrades: first update times out replica 0, declares
    // it dead, and commits on the survivors.
    ASSERT_TRUE(c.driver->acquire(2, "b", LockMode::Exclusive));
    ASSERT_TRUE(c.driver->update(2, {{"b", "2"}}));
    EXPECT_TRUE(c.driver->degraded());
    EXPECT_EQ(c.driver->peers_declared_dead(), 1u);

    // Replica 0 restarts as a new incarnation: same WAL, fresh state.
    // Two in-doubt prepares sit in its log (staged mid-2PC, never
    // decided locally): txn 55's outcome is known to a survivor
    // (commit), txn 66's is known to nobody (presumed abort).
    c.wals[0]->append("prep.55", "c=3");
    c.wals[0]->append("prep.66", "e=666");
    c.wals[1]->append("decision.55", "commit");
    c.net.set_up(0);
    c.tables[0] = std::make_unique<LockTable>();
    c.tables[0]->set_clock([&] { return c.sched.now(); });
    WireReplicaOptions ro;
    ro.self = 0;
    ro.replicas = {0, 1, 2};
    auto restarted = std::make_unique<WireReplica>(
        c.sched, *c.wires[0], *c.tables[0], *c.wals[0], ro);
    restarted->recover();
    // Recovery replayed txn 1, resolved in-doubt 55 as commit via a
    // survivor's log, presumed-aborted unknown txn 66, and caught up
    // txn 2 (committed while dead) from the primary.
    EXPECT_EQ(restarted->data().at("a"), "1");
    EXPECT_EQ(restarted->data().at("c"), "3");
    EXPECT_EQ(restarted->data().at("b"), "2");
    EXPECT_EQ(restarted->data().count("e"), 0u) << "presumed abort";
    EXPECT_EQ(restarted->indoubt_resolved(), 2u);
    restarted->start();

    // Back in rotation: the driver re-admits it and the next commit
    // lands everywhere. The survivors stay mutually consistent, and
    // replica 0 holds everything they do (plus the resolved in-doubt
    // write whose phase 2 never reached them — a test contrivance).
    c.driver->revive(0);
    ASSERT_TRUE(c.driver->acquire(4, "d", LockMode::Exclusive));
    ASSERT_TRUE(c.driver->update(4, {{"d", "4"}}));
    final_digest = c.driver->digest_of(1);
    EXPECT_EQ(final_digest, c.driver->digest_of(2));
    EXPECT_EQ(restarted->data().at("d"), "4");
    EXPECT_EQ(restarted->data().at("b"), "2");
    restarted->stop();
    c.reps[0] = std::move(restarted);  // keep alive till shutdown
    c.shutdown();
  });
  c.sched.run();
  EXPECT_FALSE(final_digest.empty());
}

TEST(WireLockdb, BelowMinSurvivorsRefusesWrites) {
  Cluster c;
  c.sched.spawn("driver", [&] {
    // Kill everything: Abort policy refuses instead of committing to
    // a void.
    for (PeerId id : {0u, 1u, 2u}) {
      c.reps[id]->stop();
      c.net.set_down(id);
    }
    EXPECT_FALSE(c.driver->update(9, {{"x", "1"}}));
    EXPECT_EQ(c.driver->commits(), 0u);
    c.shutdown();
  });
  c.sched.run();
}

}  // namespace
